"""Static verifier suite and lint diagnostics engine.

Three verifier levels over the compiler's own output, plus a
user-facing lint front end:

* :mod:`.nir_verifier`  — NIR well-formedness (V3xx), runnable
  standalone and between every transform pass under ``REPRO_VERIFY=1``;
* :mod:`.dep_audit`     — dependence preservation of the blocking stage
  (D4xx), recomputed from scratch rather than trusted;
* :mod:`.peac_verifier` — PEAC routine invariants (P5xx): register
  lifetimes, spill/restore pairing, chaining and dual-issue legality;
* :mod:`.lint`          — ``repro lint``: frontend + semantic analysis
  with source-located diagnostics (F0xx/S1xx errors, W2xx warnings);
* :mod:`.dataflow`      — CFG construction and the generic forward/
  backward fixed-point solver (reaching defs, liveness, access
  summaries) the two analyses below are built on;
* :mod:`.racecheck`     — ``repro analyze``: parallel-semantics race
  detection (R6xx) over the lowered program;
* :mod:`.commaudit`     — ``repro analyze``: static communication-cost
  audit (C7xx) over the transformed program, priced with the target's
  network cost model.

This package root stays import-light (diagnostics only); the verifier
modules import the compiler layers they check, so pull them in lazily
from pipeline/driver/service code to avoid cycles.
"""

from __future__ import annotations

import os

from .diagnostics import (Diagnostic, DiagnosticSink, Severity,
                          VerifyError, error, warning)

__all__ = [
    "Diagnostic", "DiagnosticSink", "Severity", "VerifyError",
    "error", "warning", "verify_enabled",
]


def verify_enabled() -> bool:
    """True when ``REPRO_VERIFY=1`` asks for inter-pass verification."""
    return os.environ.get("REPRO_VERIFY") == "1"
