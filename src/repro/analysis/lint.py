"""The ``repro lint`` engine: frontend + semantic analysis, no codegen.

Runs the lexer, parser, declaration processing, and per-statement
semantic lowering over a Fortran source file, converting every failure
into a source-located :class:`Diagnostic` instead of stopping at the
first exception the compile path would raise.  On top of the error
codes (``F0xx`` frontend, ``S1xx`` semantic) it adds flow-insensitive
warnings the compiler itself never needs:

* ``W201`` — a scalar is read before any statement sets it,
* ``W202`` — an array assignment reads the target array through a
  region that overlaps, but does not equal, the stored region (the
  Fortran-90 right-hand side is evaluated fully before the store, so
  such statements need a compiler temporary and often signal a
  shifted-recurrence mistake),
* ``W203`` — a declared entity is never referenced.

Exit-code contract (``LintResult.exit_code``): 0 clean; 1 warnings
only; 2 any error, or warnings under ``--strict``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import nir
from ..frontend import ast_nodes as A
from ..frontend.lexer import LexError
from ..frontend.parser import ParseError, parse_program
from ..lowering.environment import (Environment, LoweringError,
                                    declare_type_decl)
from ..lowering.lower import Lowerer, lower_program
from ..sourceloc import SourceLoc
from ..transform.regions import (region_of_field, regions_equal,
                                 regions_overlap)
from .diagnostics import Diagnostic, Severity, error, warning
from .nir_verifier import verify_program


@dataclass
class LintResult:
    """All diagnostics for one source file plus the exit-code contract."""

    file: str | None
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 2
        if self.warnings:
            return 2 if strict else 1
        return 0

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def lint_source(source: str, path: str | None = None) -> LintResult:
    """Lint Fortran source text; never raises on bad input."""
    result = LintResult(file=path)
    add = result.diagnostics.append

    try:
        unit = parse_program(source)
    except LexError as exc:
        add(error("F001", exc.args[0] if exc.args else str(exc),
                  SourceLoc(exc.line, exc.col), path))
        return result
    except ParseError as exc:
        loc = SourceLoc(exc.token.line, exc.token.col) \
            if exc.token is not None else None
        add(error("F002", str(exc), loc, path))
        return result

    env = Environment()
    for decl in unit.decls:
        try:
            declare_type_decl(env, decl)
        except LoweringError as exc:
            add(error("S101", str(exc), _loc_of_exc(exc), path))

    lowerer = Lowerer(unit, env=env)
    lowered: list[nir.Imperative] = []
    for stmt in unit.body:
        try:
            lowered.append(lowerer.lower_imperative(stmt))
        except (LoweringError, nir.TypeError_, nir.ShapeError) as exc:
            add(Diagnostic(_semantic_code(exc), str(exc), Severity.ERROR,
                           _loc_of_exc(exc), path))

    _warn_use_before_set(unit, env, result, path)
    _warn_aliasing(lowered, env, result, path)
    _warn_unused(unit, env, result, path)

    if not result.errors:
        # Whole-program pass: the NIR verifier re-derives every type and
        # shape over the assembled program, catching violations the
        # per-statement walk cannot see (e.g. type mixing, which only
        # program-level checking enforces).  V-codes map back to their
        # semantic S-codes for the user.
        vmap = {"V301": "S102", "V302": "S106", "V303": "S104"}
        try:
            low = lower_program(parse_program(source))
        except (LoweringError, nir.TypeError_, nir.ShapeError) as exc:
            add(error("S108", str(exc), _loc_of_exc(exc), path))
        else:
            for d in verify_program(low.nir, low.env):
                add(Diagnostic(vmap.get(d.code, "S108"), d.message,
                               d.severity, d.loc, path))

    # Deterministic emission order: golden tests and CI diffs key on it.
    result.diagnostics.sort(
        key=lambda d: (d.file or "", d.line, d.col, d.code))
    return result


def lint_file(path: str) -> LintResult:
    with open(path, encoding="utf-8") as f:
        return lint_source(f.read(), path)


def format_text(result: LintResult) -> str:
    lines = [d.format() for d in result.diagnostics]
    lines.append(f"{result.file or '<stdin>'}: {len(result.errors)} "
                 f"error(s), {len(result.warnings)} warning(s)")
    return "\n".join(lines)


def _loc_of_exc(exc: Exception) -> SourceLoc | None:
    return getattr(exc, "source_loc", None)


def _semantic_code(exc: Exception) -> str:
    """Map a lowering-time exception to its S1xx diagnostic code."""
    msg = str(exc)
    if isinstance(exc, nir.ShapeError):
        return "S105" if "rank" in msg else "S104"
    if isinstance(exc, nir.TypeError_):
        return "S106"
    if "undeclared identifier" in msg:
        return "S102"
    if "unknown function or array" in msg or "intrinsic" in msg:
        return "S103"
    return "S107"


# ---------------------------------------------------------------------------
# Warnings
# ---------------------------------------------------------------------------


def _expr_reads(expr: A.Expr):
    """(name, loc) for every variable read inside an expression."""
    for e in A.walk_exprs(expr):
        if isinstance(e, (A.VarRef, A.ArrayRef)):
            yield e.name.lower(), e.loc


def _warn_use_before_set(unit: A.ProgramUnit, env: Environment,
                         result: LintResult, path: str | None) -> None:
    """W201: scalar reads with no earlier statement setting the name."""
    tracked = {
        name for name, sym in env.symbols.items()
        if not sym.is_array and sym.init is None
        and name not in env.params}
    assigned: set[str] = set()
    warned: set[str] = set()

    def read(expr: A.Expr, line: int) -> None:
        for name, loc in _expr_reads(expr):
            if name in tracked and name not in assigned \
                    and name not in warned:
                warned.add(name)
                result.diagnostics.append(warning(
                    "W201", f"'{name}' may be used before it is set",
                    loc or SourceLoc(line), path))

    for stmt in A.walk_stmts(unit.body):
        line = getattr(stmt, "line", 0)
        if isinstance(stmt, A.Assignment):
            if isinstance(stmt.target, A.ArrayRef):
                for sub in stmt.target.subscripts:
                    read(sub, line)
            read(stmt.expr, line)
            if isinstance(stmt.target, A.VarRef):
                assigned.add(stmt.target.name.lower())
        elif isinstance(stmt, A.ForallStmt):
            for t in stmt.triplets:
                read(t.lo, line)
                read(t.hi, line)
                assigned.add(t.var.lower())
            if stmt.mask is not None:
                read(stmt.mask, line)
            # The body assignment is revisited by walk_stmts.
        elif isinstance(stmt, A.WhereConstruct):
            read(stmt.mask, line)
        elif isinstance(stmt, A.DoLoop):
            read(stmt.lo, line)
            read(stmt.hi, line)
            if stmt.step is not None:
                read(stmt.step, line)
            assigned.add(stmt.var.lower())
        elif isinstance(stmt, A.DoWhile):
            read(stmt.cond, line)
        elif isinstance(stmt, A.IfConstruct):
            for cond, _ in stmt.arms:
                read(cond, line)
        elif isinstance(stmt, (A.CallStmt, A.PrintStmt)):
            for e in getattr(stmt, "args", getattr(stmt, "items", ())):
                read(e, line)


def _warn_aliasing(lowered: list[nir.Imperative], env: Environment,
                   result: LintResult, path: str | None) -> None:
    """W202: a MOVE reads its target through an overlapping ≠ region."""
    domains = env.domains
    for node in lowered:
        for imp in nir.imperatives.walk(node):
            if not isinstance(imp, nir.Move):
                continue
            for clause in imp.clauses:
                if not isinstance(clause.tgt, nir.AVar):
                    continue
                name = clause.tgt.name
                try:
                    sym = env.lookup(name)
                except LoweringError:
                    continue
                tgt_region = region_of_field(
                    clause.tgt.field, sym.extents, domains)
                for v in nir.values.walk(clause.src):
                    if not (isinstance(v, nir.AVar) and v.name == name):
                        continue
                    src_region = region_of_field(
                        v.field, sym.extents, domains)
                    if regions_overlap(tgt_region, src_region) \
                            and not regions_equal(tgt_region, src_region):
                        result.diagnostics.append(warning(
                            "W202",
                            f"assignment to '{name}' reads an "
                            "overlapping but different section of the "
                            "same array; the right-hand side needs its "
                            "pre-assignment value",
                            v.loc or clause.loc, path))
                        break


def _warn_unused(unit: A.ProgramUnit, env: Environment,
                 result: LintResult, path: str | None) -> None:
    """W203: declared entities no statement or declaration references."""
    used: set[str] = set()
    for stmt in A.walk_stmts(unit.body):
        for expr in _stmt_exprs(stmt):
            for name, _ in _expr_reads(expr):
                used.add(name)
        if isinstance(stmt, A.Assignment) \
                and isinstance(stmt.target, A.VarRef):
            used.add(stmt.target.name.lower())
        elif isinstance(stmt, A.DoLoop):
            used.add(stmt.var.lower())
        elif isinstance(stmt, A.ForallStmt):
            used.update(t.var.lower() for t in stmt.triplets)
    decl_lines: dict[str, int] = {}
    for decl in unit.decls:
        for entity in decl.entities:
            decl_lines[entity.name.lower()] = decl.line
            for d in (entity.dims or decl.dims or ()):
                if isinstance(d, A.Expr):
                    used.update(n for n, _ in _expr_reads(d))
            if entity.init is not None:
                used.update(n for n, _ in _expr_reads(entity.init))
    for name in env.symbols:
        if name not in used and name in decl_lines:
            result.diagnostics.append(warning(
                "W203", f"'{name}' is declared but never used",
                SourceLoc(decl_lines[name]), path))


def _stmt_exprs(stmt: A.Stmt):
    if isinstance(stmt, A.Assignment):
        yield stmt.target
        yield stmt.expr
    elif isinstance(stmt, A.ForallStmt):
        for t in stmt.triplets:
            yield t.lo
            yield t.hi
        if stmt.mask is not None:
            yield stmt.mask
    elif isinstance(stmt, A.WhereConstruct):
        yield stmt.mask
    elif isinstance(stmt, A.DoLoop):
        yield stmt.lo
        yield stmt.hi
        if stmt.step is not None:
            yield stmt.step
    elif isinstance(stmt, A.DoWhile):
        yield stmt.cond
    elif isinstance(stmt, A.IfConstruct):
        for cond, _ in stmt.arms:
            yield cond
    elif isinstance(stmt, (A.CallStmt, A.PrintStmt)):
        yield from getattr(stmt, "args", getattr(stmt, "items", ()))
