"""The ``repro analyze`` engine: lint + dataflow analyses, no execution.

Runs the full lint battery first (``F``/``S``/``W`` codes), then — when
the program actually compiles — lowers it, drives the transform
pipeline with the two report-only analysis passes enabled, and folds
their findings in:

* the parallel-semantics race detector (:mod:`.racecheck`, ``R6xx``),
  run on the *lowered* program so diagnostics point at source lines;
* the static communication-cost auditor (:mod:`.commaudit`, ``C7xx``),
  run on the *transformed* program — the same NIR the backend compiles
  — and priced under the selected target's cost model so the static
  totals reconcile with the runtime meters.

Exit-code contract mirrors lint: 0 clean, 1 findings (2 under
``--strict``), 2 errors or an internal analysis failure.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..frontend.directives import DirectiveError, parse_layout_directives
from ..frontend.parser import parse_program
from ..lowering.lower import lower_program
from .diagnostics import Diagnostic
from .lint import LintResult, format_text, lint_source


def _sort_key(d: Diagnostic) -> tuple[str, int, int, str]:
    return (d.file or "", d.line, d.col, d.code)


@dataclass
class AnalyzeResult:
    """Lint diagnostics + analysis findings + the static comm report."""

    lint: LintResult
    comm: dict[str, object] | None = None
    dataflow: dict[str, int] | None = None
    internal_error: str | None = None

    @property
    def file(self) -> str | None:
        return self.lint.file

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return self.lint.diagnostics

    @property
    def errors(self) -> list[Diagnostic]:
        return self.lint.errors

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.lint.warnings

    def exit_code(self, strict: bool = False) -> int:
        if self.internal_error is not None:
            return 2
        return self.lint.exit_code(strict)

    def to_dict(self) -> dict[str, object]:
        payload = self.lint.to_dict()
        payload["comm"] = self.comm
        payload["dataflow"] = self.dataflow
        payload["internal_error"] = self.internal_error
        return payload


def analyze_source(source: str, path: str | None = None, *,
                   target: str = "cm2", model: str | None = None,
                   pes: int | None = None) -> AnalyzeResult:
    """Analyze Fortran source text; never raises on bad input.

    Internal analysis failures (a bug in an analysis, an unknown target
    name, …) are captured in ``internal_error`` and force exit code 2 —
    never a traceback across the CLI/service boundary.
    """
    lint = lint_source(source, path)
    result = AnalyzeResult(lint=lint)
    if lint.errors:
        return result  # analysis needs a compilable program
    try:
        _run_analyses(source, path, result, target, model, pes)
    except Exception as exc:  # pragma: no cover - exercised via tests
        result.internal_error = f"{type(exc).__name__}: {exc}"
    lint.diagnostics.sort(key=_sort_key)
    return result


def _run_analyses(source: str, path: str | None, result: AnalyzeResult,
                  target: str, model: str | None,
                  pes: int | None) -> None:
    from ..targets import get_model_factory, get_target, resolve_model
    from ..transform.pipeline import Options, optimize
    from .commaudit import cost_table

    lowered = lower_program(parse_program(source))
    transformed = optimize(lowered, Options(analyze=True))
    race = transformed.report.racecheck
    audit = transformed.report.commaudit

    record = get_target(target)
    cost_model = get_model_factory(resolve_model(record, model))(
        pes if pes is not None else record.default_pes)
    try:
        layouts = parse_layout_directives(source)
    except DirectiveError:
        layouts = {}
    result.comm = cost_table(audit, cost_model, layouts)
    result.comm["target"] = record.name
    result.dataflow = race.stats.to_dict() if race.stats else None

    for d in (*race.diagnostics, *audit.diagnostics):
        result.lint.diagnostics.append(
            dataclasses.replace(d, file=path))


def analyze_file(path: str, *, target: str = "cm2",
                 model: str | None = None,
                 pes: int | None = None) -> AnalyzeResult:
    with open(path, encoding="utf-8") as f:
        return analyze_source(f.read(), path, target=target, model=model,
                              pes=pes)


def format_analyze_text(result: AnalyzeResult) -> str:
    """Human-readable report: diagnostics + the static comm table."""
    lines = [format_text(result.lint)]
    if result.internal_error is not None:
        lines.append(f"internal error: {result.internal_error}")
    if result.comm is not None:
        c = result.comm
        lines.append(
            f"static comm [{c['target']}/{c['model']}, {c['n_pes']} PEs"
            f"{'' if c['exact'] else ', lower bound'}]: "
            f"{c['comm_cycles']} network cycles, "
            f"{c['serial_host_cycles']} serialized host cycles")
        for row in c["entries"]:
            where = f"line {row['line']}" if row["line"] else "?"
            trips = f" x{row['trips']}" if row["trips"] != 1 else ""
            lines.append(
                f"  {where}: {row['kind']} ({row['class']}) "
                f"'{row['array']}'{trips} -> {row['cycles']} cycles")
    return "\n".join(lines)
