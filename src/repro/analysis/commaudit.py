"""Static communication-cost auditor (``C7xx`` diagnostics).

The paper's network-cost model distinguishes cheap *grid* (NEWS)
communication — CSHIFT-style nearest-neighbor traffic where only
subgrid boundary columns cross the wire — from the general *router*,
whose per-element tariff is an order of magnitude higher.  This module
walks a (transformed) program, classifies every off-PE access into the
same service classes the runtime meters charge, and prices each with
the very formulas of :mod:`repro.machine.network` — so for a program
with static control flow the audit's total reconciles exactly with
``RunResult.stats.comm_cycles``, *before* anything executes.

Classes:

* ``shift``  — CSHIFT/EOSHIFT: grid network, boundary columns only.
* ``grid``   — regular section copies and SPREAD: grid latency + per
  element grid cost.
* ``router`` — gathers and TRANSPOSE: router latency + per-element
  router cost (the expensive class).
* ``reduce`` — reduction combine trees.
* ``serial`` — element-at-a-time front-end loops; these charge the
  *host* meter at runtime, not the network, but the audit lists them
  because they are where vectorizable communication hides.

Diagnostics:

* ``C701`` — a serialized element loop whose subscripts are a uniform
  offset of the target's coordinates: a CSHIFT/EOSHIFT would serve the
  access on the grid network (and vectorize the copy).
* ``C702`` — a router-class gather: every element pays the router
  tariff; if the access pattern is regular, restructuring it as shifts
  or section copies moves it to the grid network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import nir
from ..lowering.environment import Environment, LoweringError
from ..sourceloc import SourceLoc
from ..machine import network
from ..machine.costs import CostModel
from ..machine.geometry import Geometry, make_geometry
from ..transform import regions as rg
from ..transform.phases import PhaseClassifier, PhaseKind
from .diagnostics import Diagnostic, warning

#: Service class of each communication kind, mirroring the runtime.
CLASS_OF = {
    "cshift": "shift", "eoshift": "shift",
    "copy": "grid", "spread": "grid",
    "gather": "router", "transpose": "router",
    "reduce": "reduce", "element": "serial",
}

#: Classes whose cycles land on the network meter at runtime.
COMM_CLASSES = ("shift", "grid", "router", "reduce")


@dataclass(frozen=True)
class CommEntry:
    """One statically-discovered communication (or serialized) access."""

    kind: str                      # cshift/eoshift/transpose/spread/...
    klass: str                     # shift/grid/router/reduce/serial
    array: str | None              # array whose geometry prices the op
    extents: tuple[int, ...]       # that array's declared extents
    elements: int                  # element count for per-element terms
    axis: int | None = None        # 1-based shift axis (shift class)
    shift: int | None = None       # shift distance (shift class)
    trips: int = 1                 # static loop-trip multiplier
    exact: bool = True             # False under unresolved control flow
    line: int | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind, "class": self.klass, "array": self.array,
            "elements": self.elements, "axis": self.axis,
            "shift": self.shift, "trips": self.trips,
            "exact": self.exact, "line": self.line,
        }


@dataclass
class CommAuditReport:
    """Everything the static audit discovered (model-independent)."""

    entries: list[CommEntry] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def exact(self) -> bool:
        return all(e.exact for e in self.entries)

    def to_dict(self) -> dict[str, object]:
        return {
            "entries": [e.to_dict() for e in self.entries],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "exact": self.exact,
        }


class CommAuditor:
    """Walks a program collecting :class:`CommEntry` records."""

    def __init__(self, env: Environment,
                 domains: dict[str, nir.Shape] | None = None) -> None:
        self.env = env
        self.domains: dict[str, nir.Shape] = (
            domains if domains is not None else env.domains)
        self.classifier = PhaseClassifier(env, self.domains)
        self.report = CommAuditReport()

    # -- helpers -----------------------------------------------------------

    def _extents(self, name: str) -> tuple[int, ...]:
        try:
            return self.env.lookup(name).extents
        except LoweringError:
            return ()

    def _region(self, node: nir.AVar) -> rg.Region:
        extents = self._extents(node.name)
        if not extents:
            return rg.unknown_region((1,))
        return rg.region_of_field(node.field, extents, self.domains)

    @staticmethod
    def _primary_array(value: nir.Value) -> nir.AVar | None:
        for node in nir.values.walk(value):
            if isinstance(node, nir.AVar):
                return node
        return None

    @staticmethod
    def _const_int(value: nir.Value) -> int | None:
        if isinstance(value, nir.Scalar):
            try:
                return int(value.rep)
            except (TypeError, ValueError):
                return None
        return None

    def _loc(self, clause: nir.MoveClause) -> SourceLoc | None:
        if clause.loc is not None:
            return clause.loc
        # Normalize-extracted communication moves carry no clause loc;
        # the expression nodes they wrap usually still do.
        for value in (clause.src, clause.tgt, clause.mask):
            for node in nir.values.walk(value):
                if node.loc is not None:
                    return node.loc
        return None

    def _line(self, clause: nir.MoveClause) -> int | None:
        loc = self._loc(clause)
        return loc.line if loc is not None else None

    # -- the walk ----------------------------------------------------------

    def audit(self, body: nir.Imperative) -> CommAuditReport:
        self._walk(body, trips=1, exact=True)
        return self.report

    def _walk(self, node: nir.Imperative, trips: int, exact: bool) -> None:
        if isinstance(node, (nir.Program, nir.WithDecl, nir.WithDomain)):
            self._walk(node.body, trips, exact)
        elif isinstance(node, nir.Sequentially):
            for action in node.actions:
                self._walk(action, trips, exact)
        elif isinstance(node, nir.Concurrently):
            for action in node.actions:
                self._walk(action, trips, exact)
        elif isinstance(node, nir.Do):
            try:
                count = nir.shapes.size(node.shape, self.domains)
            except Exception:
                count, exact = 1, False
            self._walk(node.body, trips * max(1, count), exact)
        elif isinstance(node, nir.While):
            # Trip count unknowable statically: price one trip, inexact.
            self._walk(node.body, trips, False)
        elif isinstance(node, nir.IfThenElse):
            self._walk(node.then, trips, False)
            self._walk(node.els, trips, False)
        elif isinstance(node, nir.Move):
            self._move(node, trips, exact)
        # Skip, CallStmt, RefOut/CopyOut: no network traffic of their own
        # (subroutine bodies are inlined before lowering).

    def _move(self, move: nir.Move, trips: int, exact: bool) -> None:
        phase = self.classifier.classify(move)
        if phase.kind is PhaseKind.COMM:
            for clause in move.clauses:
                self._comm_clause(clause, trips, exact)
        elif phase.kind is PhaseKind.REDUCE:
            for clause in move.clauses:
                self._reduce_clause(clause, trips, exact)
        elif phase.kind is PhaseKind.SERIAL:
            for clause in move.clauses:
                self._serial_clause(clause, trips, exact)
        elif phase.kind is PhaseKind.CONTROL and len(move.clauses) > 1:
            # Mixed multi-clause MOVE: classify each clause on its own.
            for clause in move.clauses:
                self._move(nir.Move((clause,)), trips, exact)
        # COMPUTE phases are pure node work: no entry.

    # -- clause handlers ---------------------------------------------------

    def _comm_clause(self, clause: nir.MoveClause, trips: int,
                     exact: bool) -> None:
        from ..backend.cm2.fe_compiler import comm_kind
        try:
            kind = comm_kind(clause)
        except ValueError:
            return
        src_avar = self._primary_array(clause.src)
        tgt = clause.tgt if isinstance(clause.tgt, nir.AVar) else None
        # Geometry source mirrors the runtime: the primary source array,
        # the target for SPREAD (it prices the replicated shape).
        geom_avar = tgt if kind == "spread" else (src_avar or tgt)
        if geom_avar is None:
            return
        name = geom_avar.name
        extents = self._extents(name)
        axis: int | None = None
        shift: int | None = None
        elements = 0
        if kind in ("cshift", "eoshift") and isinstance(clause.src,
                                                        nir.FcnCall):
            args = clause.src.args
            dim_index = 2 if kind == "cshift" else 3
            shift = self._const_int(args[1]) if len(args) > 1 else None
            axis = (self._const_int(args[dim_index])
                    if len(args) > dim_index else None)
            if shift is None or axis is None:
                axis, shift, exact = axis or 1, shift or 1, False
        elif kind == "copy" and src_avar is not None:
            region = self._region(src_avar)
            elements = region.size()
            exact = exact and region.exact
        elif kind == "gather" and tgt is not None:
            region = self._region(tgt)
            elements = region.size()
            exact = exact and region.exact
        entry = CommEntry(kind, CLASS_OF[kind], name, extents, elements,
                          axis, shift, trips, exact, self._line(clause))
        self.report.entries.append(entry)
        if kind == "gather":
            self.report.diagnostics.append(warning(
                "C702",
                f"gather from '{src_avar.name if src_avar else name}' "
                "uses the general router: every element pays "
                "router latency and per-element tariff; a regular "
                "access pattern restated as shifts or section copies "
                "would ride the grid network instead",
                self._loc(clause)))

    def _reduce_clause(self, clause: nir.MoveClause, trips: int,
                       exact: bool) -> None:
        src_avar = self._primary_array(clause.src)
        if src_avar is None:
            return  # scalar-only reductions charge no network
        extents = self._extents(src_avar.name)
        self.report.entries.append(CommEntry(
            "reduce", "reduce", src_avar.name, extents, 0,
            None, None, trips, exact, self._line(clause)))

    def _serial_clause(self, clause: nir.MoveClause, trips: int,
                       exact: bool) -> None:
        if not isinstance(clause.tgt, nir.AVar):
            return  # scalar moves are plain host ops, not element loops
        region = self._region(clause.tgt)
        self.report.entries.append(CommEntry(
            "element", "serial", clause.tgt.name,
            self._extents(clause.tgt.name), region.size(),
            None, None, trips, exact and region.exact,
            self._line(clause)))
        offsets = self._uniform_offsets(clause)
        if offsets is not None and any(offsets):
            desc = ", ".join(str(o) for o in offsets)
            self.report.diagnostics.append(warning(
                "C701",
                f"serialized element loop over '{clause.tgt.name}' is a "
                f"uniform-offset neighbor access (offsets {desc}); a "
                "CSHIFT/EOSHIFT would serve it on the grid network and "
                "vectorize the copy",
                self._loc(clause)))

    def _uniform_offsets(self, clause: nir.MoveClause
                         ) -> tuple[int, ...] | None:
        """Per-axis constant offsets of every source read of the target's
        coordinates, or None when the pattern is not a uniform shift."""
        tgt = clause.tgt
        assert isinstance(tgt, nir.AVar)
        if not isinstance(tgt.field, nir.Subscript):
            return None
        tindices = tgt.field.indices
        offsets: list[int] | None = None
        for node in nir.values.walk(clause.src):
            if not isinstance(node, nir.AVar):
                continue
            if not isinstance(node.field, nir.Subscript):
                return None
            sindices = node.field.indices
            if len(sindices) != len(tindices):
                return None
            this: list[int] = []
            for axis, (t, s) in enumerate(zip(tindices, sindices), 1):
                off = self._index_offset(t, s, axis)
                if off is None:
                    return None
                this.append(off)
            if offsets is None:
                offsets = this
            elif offsets != this:
                return None  # mixed offsets: not one shift
        return tuple(offsets) if offsets is not None else None

    @staticmethod
    def _index_offset(t: nir.Value, s: nir.Value,
                      axis: int) -> int | None:
        """Constant c with ``s = coord(t) + c``, or None if not provable.

        Lowered FORALL bodies address the target through an IndexRange
        and the source through ``local_under`` coordinate values; a
        ``LocalUnder`` of the same axis *is* the target coordinate, so
        ``b(local_under + 1)`` against target ``a(lo:hi)`` is offset +1.
        """
        def is_coord(v: nir.Value) -> bool:
            if v == t:
                return True
            return (isinstance(v, nir.LocalUnder) and v.dim == axis
                    and isinstance(t, (nir.IndexRange, nir.LocalUnder)))

        if is_coord(s):
            return 0
        if isinstance(s, nir.Binary) and s.op in (nir.BinOp.ADD,
                                                  nir.BinOp.SUB):
            sign = 1 if s.op is nir.BinOp.ADD else -1
            if is_coord(s.left) and isinstance(s.right, nir.Scalar):
                try:
                    return sign * int(s.right.rep)
                except (TypeError, ValueError):
                    return None
            if (s.op is nir.BinOp.ADD and is_coord(s.right)
                    and isinstance(s.left, nir.Scalar)):
                try:
                    return int(s.left.rep)
                except (TypeError, ValueError):
                    return None
        return None


def audit_program(body: nir.Imperative, env: Environment,
                  domains: dict[str, nir.Shape] | None = None
                  ) -> CommAuditReport:
    """Collect the static communication entries of a program body."""
    return CommAuditor(env, domains).audit(body)


# ---------------------------------------------------------------------------
# Pricing (model-dependent)
# ---------------------------------------------------------------------------


def _entry_cycles(entry: CommEntry, model: CostModel,
                  geom: Geometry) -> int:
    """Cycles for one trip of one entry — the runtime's exact formulas."""
    if entry.klass == "shift":
        return network.cshift_cycles(model, geom, entry.axis or 1,
                                     entry.shift if entry.shift is not None
                                     else 1)
    if entry.kind == "transpose":
        return network.transpose_cycles(model, geom)
    if entry.kind == "spread":
        return network.spread_cycles(model, geom)
    if entry.kind == "copy":
        return network.section_copy_cycles(model, geom, entry.elements,
                                           regular=True)
    if entry.kind == "gather":
        per_pe = max(1, entry.elements // max(1, geom.pes_used))
        return network.router_cycles(model, geom, elements_per_pe=per_pe)
    if entry.klass == "reduce":
        return network.reduction_cycles(model, geom)
    if entry.klass == "serial":
        return model.host_element_op * max(1, entry.elements)
    raise ValueError(f"unknown entry kind {entry.kind!r}")


def cost_table(report: CommAuditReport, model: CostModel,
               layouts: dict[str, tuple[str, ...]] | None = None
               ) -> dict[str, object]:
    """Price the audit's entries under one cost model.

    Returns the ``comm`` section of the analyze JSON report: a table row
    per entry plus per-class and network totals.  ``layouts`` carries
    any ``!layout:`` directives so geometries match the runtime's.
    """
    layouts = layouts or {}
    rows: list[dict[str, object]] = []
    by_class: dict[str, int] = {c: 0 for c in (*COMM_CLASSES, "serial")}
    for entry in report.entries:
        if entry.extents:
            geom = make_geometry(entry.extents, model.n_pes,
                                 layouts.get(entry.array or ""))
        else:  # unknown array: a degenerate 1-element geometry
            geom = make_geometry((1,), model.n_pes)
        per_trip = _entry_cycles(entry, model, geom)
        cycles = per_trip * entry.trips
        by_class[entry.klass] += cycles
        row = dict(entry.to_dict(), cycles_per_trip=per_trip,
                   cycles=cycles)
        rows.append(row)
    comm_total = sum(by_class[c] for c in COMM_CLASSES)
    return {
        "model": model.name,
        "n_pes": model.n_pes,
        "entries": rows,
        "by_class": by_class,
        "comm_cycles": comm_total,
        "serial_host_cycles": by_class["serial"],
        "exact": report.exact,
    }


__all__ = [
    "CLASS_OF", "COMM_CLASSES", "CommAuditReport", "CommAuditor",
    "CommEntry", "audit_program", "cost_table",
]
