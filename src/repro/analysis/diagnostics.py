"""Diagnostic records shared by every verifier level and the lint engine.

Error-code namespaces:

* ``F0xx`` — frontend (lexical / syntax) errors,
* ``S1xx`` — semantic errors from lowering (types, shapes, symbols),
* ``W2xx`` — lint warnings (use-before-set, aliasing, unused),
* ``V3xx`` — NIR verifier violations (level 1),
* ``D4xx`` — dependence-audit violations (level 2),
* ``P5xx`` — PEAC/VIR verifier violations (level 3),
* ``R6xx`` — parallel-semantics races (dataflow race detector),
* ``C7xx`` — communication-cost findings (static comm auditor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..sourceloc import SourceLoc


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One verifier/lint finding, optionally located in source text."""

    code: str
    message: str
    severity: Severity = Severity.ERROR
    loc: SourceLoc | None = None
    file: str | None = None

    @property
    def line(self) -> int:
        return self.loc.line if self.loc is not None else 0

    @property
    def col(self) -> int:
        return self.loc.col if self.loc is not None else 0

    def format(self) -> str:
        where = self.file or "<nir>"
        if self.loc is not None:
            where += f":{self.loc.line}:{self.loc.col}"
        return f"{where}: {self.severity}: {self.message} [{self.code}]"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "line": self.line,
            "col": self.col,
            "file": self.file,
        }


def error(code: str, message: str, loc: SourceLoc | None = None,
          file: str | None = None) -> Diagnostic:
    return Diagnostic(code, message, Severity.ERROR, loc, file)


def warning(code: str, message: str, loc: SourceLoc | None = None,
            file: str | None = None) -> Diagnostic:
    return Diagnostic(code, message, Severity.WARNING, loc, file)


class VerifyError(Exception):
    """A verifier level rejected the program.

    ``stage`` names the pipeline pass whose *output* failed (so a
    corrupted transform is pinpointed, not just detected);
    ``diagnostics`` holds the individual violations.
    """

    def __init__(self, stage: str, diagnostics: list[Diagnostic]) -> None:
        self.stage = stage
        self.diagnostics = list(diagnostics)
        head = self.diagnostics[0].message if self.diagnostics else "?"
        more = (f" (+{len(self.diagnostics) - 1} more)"
                if len(self.diagnostics) > 1 else "")
        super().__init__(f"verification failed after pass "
                         f"'{stage}': {head}{more}")


@dataclass
class DiagnosticSink:
    """Accumulates diagnostics; the collecting analogue of raising."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def error(self, code: str, message: str,
              loc: SourceLoc | None = None) -> None:
        self.add(error(code, message, loc))

    def warning(self, code: str, message: str,
                loc: SourceLoc | None = None) -> None:
        self.add(warning(code, message, loc))

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    def raise_if_errors(self, stage: str) -> None:
        if self.errors:
            raise VerifyError(stage, self.errors)
