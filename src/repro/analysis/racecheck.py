"""Parallel-semantics race detector (``R6xx`` diagnostics).

Fortran 90 array statements have *vector* semantics: the whole right-
hand side (and every mask) is evaluated before any element is stored.
A scalarizing compiler — or a programmer reasoning statement-by-
statement with an in-place element loop — uses *serialized* semantics.
This detector flags the places where the two diverge, which is exactly
where the paper's prototype needs compiler temporaries or ordered
communication:

* ``R601`` — an unmasked assignment reads its own target through an
  overlapping-but-different section (``A(2:n) = A(1:n-1)``) or through
  a communication intrinsic (``A = CSHIFT(A, 1)``): the right-hand side
  needs the pre-store value, so a serialized in-place loop diverges.
* ``R602`` — the masked form of the same conflict inside a WHERE or
  FORALL body: a masked store whose source or mask loads the stored
  array through a shifted/overlapping section.
* ``R603`` — inter-statement write-write hazard within one fusable
  group: two masked statements of the same shape-and-alignment class
  (the blocking scheduler may fuse them into one multi-clause MOVE)
  store overlapping sections of one array under masks that cannot be
  proven disjoint — correct only because clause order is preserved,
  a latent race under unordered parallel execution.

All three are warnings; the detector runs over *lowered* NIR (before
any transform) so diagnostics carry the original source locations.  It
is deliberately conservative: a program with no ``R6xx`` diagnostic is
claimed to produce bit-identical results under vector and serialized
execution — the differential-oracle property test in
``tests/test_analyze.py`` checks that claim against the real engines.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from .. import nir
from ..frontend import intrinsics as intr
from ..lowering.environment import Environment, LoweringError
from ..sourceloc import SourceLoc
from ..transform import regions as rg
from ..transform.phases import PhaseClassifier, PhaseKind
from .dataflow import (CFG, AccessSummary, DataflowStats,
                       ReachingDefinitions, Statement, build_cfg, solve,
                       summarize)
from .diagnostics import Diagnostic, warning


@dataclass
class RacecheckReport:
    """Race diagnostics plus the dataflow shape that produced them."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    stats: DataflowStats | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "dataflow": self.stats.to_dict() if self.stats else None,
        }


def check_program(program: nir.Imperative, env: Environment,
                  domains: dict[str, nir.Shape] | None = None
                  ) -> RacecheckReport:
    """Run the race detector over a lowered program body."""
    report = RacecheckReport()
    domains = domains if domains is not None else env.domains
    cfg = build_cfg(program)
    summaries = summarize(cfg, env, domains)
    # The reaching-definitions fixed point names, per statement, the
    # statements whose stores may still be visible — R601/R602 only fire
    # when the conflicting array is actually defined on some path (an
    # undefined read is W201's business, not a race).
    reaching = solve(cfg, ReachingDefinitions(summaries))
    report.stats = DataflowStats(
        blocks=len(cfg.blocks), statements=cfg.n_statements,
        edges=cfg.n_edges, iterations=reaching.iterations)

    for stmt in cfg.statements():
        if isinstance(stmt.node, nir.Move) and stmt.role == "stmt":
            defined = {name for name, _sid in reaching.before(stmt)}
            for clause in stmt.node.clauses:
                _check_clause(clause, env, domains, defined, report)

    _check_write_write(cfg, env, domains, summaries, report)
    return report


# ---------------------------------------------------------------------------
# R601 / R602: RHS-read vs LHS-write conflicts in one statement
# ---------------------------------------------------------------------------


def _target_reads(value: nir.Value,
                  name: str) -> Iterator[tuple[nir.AVar, bool]]:
    """(node, via_comm) for each read of array ``name`` inside ``value``.

    ``via_comm`` marks reads that happen through a communication
    intrinsic (CSHIFT and friends): those observe *other* elements of
    the array than the ones aligned with the store, so they conflict
    even when the section regions are equal.
    """
    def walk(v: nir.Value,
             via_comm: bool) -> Iterator[tuple[nir.AVar, bool]]:
        if isinstance(v, nir.AVar) and v.name == name:
            yield v, via_comm
        comm = (isinstance(v, nir.FcnCall)
                and v.name.lower() in intr.COMMUNICATION)
        for child in nir.values.children(v):
            yield from walk(child, via_comm or comm)
    yield from walk(value, False)


def _check_clause(clause: nir.MoveClause, env: Environment,
                  domains: dict[str, nir.Shape], defined: set[str],
                  report: RacecheckReport) -> None:
    if not isinstance(clause.tgt, nir.AVar):
        return
    name = clause.tgt.name
    if name not in defined:
        return
    try:
        sym = env.lookup(name)
    except LoweringError:
        return
    tregion = rg.region_of_field(clause.tgt.field, sym.extents, domains)
    masked = clause.mask != nir.TRUE
    for value in (clause.src, clause.mask):
        for node, via_comm in _target_reads(value, name):
            sregion = rg.region_of_field(node.field, sym.extents, domains)
            overlap_conflict = (rg.regions_overlap(tregion, sregion)
                                and not rg.regions_equal(tregion, sregion))
            if not (via_comm or overlap_conflict):
                continue
            loc = node.loc or clause.loc
            how = ("through a communication intrinsic" if via_comm
                   else "through an overlapping but different section")
            if masked:
                report.diagnostics.append(warning(
                    "R602",
                    f"masked store to '{name}' loads the same array "
                    f"{how}; the vector semantics read the pre-store "
                    "values, so a serialized masked loop diverges",
                    loc))
            else:
                report.diagnostics.append(warning(
                    "R601",
                    f"assignment to '{name}' reads its own target {how}; "
                    "vector semantics need the pre-assignment values (a "
                    "compiler temporary), so a serialized in-place loop "
                    "diverges",
                    loc))
            return  # one diagnostic per clause is enough


# ---------------------------------------------------------------------------
# R603: write-write hazards inside a fusable group
# ---------------------------------------------------------------------------


def _conjuncts(mask: nir.Value) -> list[nir.Value]:
    if isinstance(mask, nir.Binary) and mask.op is nir.BinOp.AND:
        return _conjuncts(mask.left) + _conjuncts(mask.right)
    return [mask]


def masks_disjoint(a: nir.Value, b: nir.Value) -> bool:
    """Can the two masks be *proven* to never hold at the same point?

    Two syntactic proofs are attempted, matching the patterns real
    programs use (WHERE/ELSEWHERE chains, case-on-value updates):
    a conjunct of one being the negation of a conjunct of the other,
    and equality tests of one expression against different constants.
    """
    ca, cb = _conjuncts(a), _conjuncts(b)
    for x in ca:
        for y in cb:
            if isinstance(x, nir.Unary) and x.op is nir.UnOp.NOT \
                    and x.operand == y:
                return True
            if isinstance(y, nir.Unary) and y.op is nir.UnOp.NOT \
                    and y.operand == x:
                return True
            if (isinstance(x, nir.Binary) and isinstance(y, nir.Binary)
                    and x.op is nir.BinOp.EQ and y.op is nir.BinOp.EQ
                    and x.left == y.left
                    and isinstance(x.right, nir.Scalar)
                    and isinstance(y.right, nir.Scalar)
                    and x.right.rep != y.right.rep):
                return True
    return False


def _masked_writes(move: nir.Move,
                   name: str) -> Iterator[nir.MoveClause]:
    for clause in move.clauses:
        if isinstance(clause.tgt, nir.AVar) and clause.tgt.name == name \
                and clause.mask != nir.TRUE:
            yield clause


def _check_write_write(cfg: CFG, env: Environment,
                       domains: dict[str, nir.Shape],
                       summaries: dict[int, AccessSummary],
                       report: RacecheckReport) -> None:
    classifier = PhaseClassifier(env, domains)
    for block in cfg.blocks:
        groups: dict[object, list[Statement]] = {}
        for stmt in block.statements:
            if not isinstance(stmt.node, nir.Move) or stmt.role != "stmt":
                continue
            phase = classifier.classify(stmt.node)
            if phase.kind is PhaseKind.COMPUTE and phase.key is not None:
                groups.setdefault(phase.key, []).append(stmt)
        for stmts in groups.values():
            for i, first in enumerate(stmts):
                for second in stmts[i + 1:]:
                    _check_pair(first, second, env, domains,
                                summaries, report)


def _check_pair(first: Statement, second: Statement, env: Environment,
                domains: dict[str, nir.Shape],
                summaries: dict[int, AccessSummary],
                report: RacecheckReport) -> None:
    a, b = summaries[first.sid], summaries[second.sid]
    names = ({w.name for w in a.array_writes if w.masked}
             & {w.name for w in b.array_writes if w.masked})
    for name in sorted(names):
        assert isinstance(first.node, nir.Move)
        assert isinstance(second.node, nir.Move)
        for ca in _masked_writes(first.node, name):
            for cb in _masked_writes(second.node, name):
                ra = [w.region for w in a.array_writes if w.name == name]
                rb = [w.region for w in b.array_writes if w.name == name]
                if not any(rg.regions_overlap(x, y)
                           for x in ra for y in rb):
                    continue
                if masks_disjoint(ca.mask, cb.mask):
                    continue
                loc: SourceLoc | None = cb.loc or ca.loc
                report.diagnostics.append(warning(
                    "R603",
                    f"masked stores to '{name}' from two statements of "
                    "one fusable group overlap and their masks are not "
                    "provably disjoint; the fused MOVE is order-"
                    "sensitive (write-write race under unordered "
                    "parallel execution)",
                    loc))
                return
