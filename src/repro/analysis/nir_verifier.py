"""Level-1 verifier: NIR well-formedness (the ``V3xx`` namespace).

A collecting analogue of :mod:`repro.lowering.check` extended with the
invariants the transform pipeline must preserve:

* ``V301`` — every storage reference names a declared entity,
* ``V302`` — type conformance of values, masks, and assignments,
* ``V303`` — shape conformance of values, masks, and assignments,
* ``V304`` — MOVE structure (targets reference storage),
* ``V305`` — region/phase nesting: DO and WITH_DOMAIN shapes resolve in
  the domain scope they appear under; PROGRAM appears only at the root,
* ``V306`` — unknown imperative forms,
* ``V307`` — mask coverage: the region selected by a padded subsection
  move's mask lies inside the target's declared bounds.

Unlike the checkers, which stop at the first violation, the verifier
walks the whole program and reports every violation, each tagged with
the closest source location the IR still carries.
"""

from __future__ import annotations

from .. import nir
from ..lowering.analysis import Inference
from ..lowering.environment import Environment, LoweringError
from ..sourceloc import SourceLoc
from .diagnostics import Diagnostic, DiagnosticSink, VerifyError


def verify_program(node: nir.Imperative, env: Environment,
                   domains: dict[str, nir.Shape] | None = None
                   ) -> list[Diagnostic]:
    """All V3xx violations in an NIR program (or bare imperative)."""
    verifier = NirVerifier(env, domains)
    verifier.verify(node)
    return verifier.sink.diagnostics


def assert_valid(node: nir.Imperative, env: Environment, stage: str,
                 domains: dict[str, nir.Shape] | None = None) -> None:
    """Raise :class:`VerifyError` naming ``stage`` on any violation."""
    diagnostics = verify_program(node, env, domains)
    if diagnostics:
        raise VerifyError(stage, diagnostics)


def region_of_mask(mask: nir.Value, extents: tuple[int, ...]
                   ) -> list[tuple[int, int | None, int]] | None:
    """Reverse-parse a padder-generated region mask.

    Recognizes the exact condition grammar :meth:`MaskPadder.region_mask`
    emits — AND-chains of ``coord >= lo``, ``coord <= hi`` and
    ``mod(coord - lo, st) == 0`` over ``local_under`` coordinates — and
    returns one ``(lo, hi_or_None, stride)`` triple per axis.  Returns
    None for anything else (user-written masks are not region masks).
    """
    conds: list[nir.Value] = []
    work = [mask]
    while work:
        m = work.pop()
        if isinstance(m, nir.Binary) and m.op is nir.BinOp.AND:
            work.extend((m.left, m.right))
        else:
            conds.append(m)
    axes: dict[int, list[int | None]] = {
        axis: [1, None, 1] for axis in range(1, len(extents) + 1)}

    def int_of(v: nir.Value) -> int | None:
        if isinstance(v, nir.Scalar) and v.type.is_integer:
            return int(v.rep)
        return None

    for cond in conds:
        if not isinstance(cond, nir.Binary):
            return None
        if cond.op in (nir.BinOp.GE, nir.BinOp.LE) \
                and isinstance(cond.left, nir.LocalUnder):
            bound = int_of(cond.right)
            if bound is None or cond.left.dim not in axes:
                return None
            axes[cond.left.dim][0 if cond.op is nir.BinOp.GE else 1] = bound
            continue
        if cond.op is nir.BinOp.EQ and isinstance(cond.left, nir.Binary) \
                and cond.left.op is nir.BinOp.MOD:
            offset, modulus = cond.left.left, cond.left.right
            st = int_of(modulus)
            if st is None or int_of(cond.right) != 0:
                return None
            if not (isinstance(offset, nir.Binary)
                    and offset.op is nir.BinOp.SUB
                    and isinstance(offset.left, nir.LocalUnder)
                    and int_of(offset.right) is not None):
                return None
            if offset.left.dim not in axes:
                return None
            axes[offset.left.dim][2] = st
            continue
        return None
    return [tuple(axes[a]) for a in sorted(axes)]  # type: ignore[misc]


class NirVerifier:
    """Collects every V3xx violation in an imperative tree."""

    def __init__(self, env: Environment,
                 domains: dict[str, nir.Shape] | None = None) -> None:
        self.env = env
        self.domains: dict[str, nir.Shape] = dict(
            domains if domains is not None else env.domains)
        self.infer = Inference(env, self.domains)
        self.sink = DiagnosticSink()
        self.declared: set[str] = set(env.symbols)

    # ------------------------------------------------------------------

    def verify(self, node: nir.Imperative) -> None:
        self._imp(node, at_root=True)

    def _imp(self, node: nir.Imperative, at_root: bool = False) -> None:
        if isinstance(node, nir.Program):
            if not at_root:
                self.sink.error("V305", "PROGRAM nested inside the body")
            self._imp(node.body, at_root=False)
        elif isinstance(node, nir.WithDomain):
            prior = self.domains.get(node.name)
            self.domains[node.name] = node.shape
            try:
                self._imp(node.body)
            finally:
                if prior is None:
                    self.domains.pop(node.name, None)
                else:
                    self.domains[node.name] = prior
        elif isinstance(node, nir.WithDecl):
            names = {d.name for d in node.decl.decls} \
                if hasattr(node.decl, "decls") else set()
            added = names - self.declared
            self.declared |= added
            try:
                self._imp(node.body)
            finally:
                self.declared -= added
        elif isinstance(node, (nir.Sequentially, nir.Concurrently)):
            for a in node.actions:
                self._imp(a)
        elif isinstance(node, nir.Move):
            for clause in node.clauses:
                self._clause(clause)
        elif isinstance(node, nir.IfThenElse):
            self._condition(node.cond, "IFTHENELSE condition")
            self._imp(node.then)
            self._imp(node.els)
        elif isinstance(node, nir.While):
            self._condition(node.cond, "WHILE condition")
            self._imp(node.body)
        elif isinstance(node, nir.Do):
            try:
                nir.resolve(node.shape, self.domains)
            except Exception as exc:
                self.sink.error("V305", f"DO shape does not resolve: {exc}")
            for name in node.index_names:
                if name not in self.declared:
                    self.sink.error(
                        "V301", f"DO index '{name}' is not declared")
            self._imp(node.body)
        elif isinstance(node, nir.CallStmt):
            for a in node.args:
                self._value(a)
        elif isinstance(node, (nir.Skip, nir.RefOut, nir.CopyOut)):
            pass
        else:
            self.sink.error(
                "V306", f"unknown imperative {type(node).__name__}")

    # ------------------------------------------------------------------

    def _names_declared(self, value: nir.Value,
                        loc: SourceLoc | None) -> bool:
        ok = True
        for n in nir.values.walk(value):
            if isinstance(n, (nir.SVar, nir.AVar, nir.RefIn, nir.CopyIn)) \
                    and n.name not in self.declared:
                self.sink.error(
                    "V301", f"reference to undeclared '{n.name}'",
                    n.loc or loc)
                ok = False
        return ok

    def _value(self, value: nir.Value, loc: SourceLoc | None = None):
        """Infer a value, reporting rather than raising; None on failure."""
        loc = value.loc or loc
        if not self._names_declared(value, loc):
            return None
        try:
            return self.infer.infer(value)
        except nir.TypeError_ as exc:
            self.sink.error("V302", str(exc), loc)
        except nir.ShapeError as exc:
            self.sink.error("V303", str(exc), loc)
        except LoweringError as exc:
            self.sink.error("V301", str(exc), loc)
        return None

    def _condition(self, cond: nir.Value, what: str) -> None:
        info = self._value(cond)
        if info is None:
            return
        if not info.elem.is_logical:
            self.sink.error("V302", f"{what} is not logical", cond.loc)
        if info.shape is not None:
            self.sink.error("V303", f"{what} must be scalar", cond.loc)

    def _clause(self, clause: nir.MoveClause) -> None:
        loc = clause.loc
        if not isinstance(clause.tgt, (nir.SVar, nir.AVar)):
            self.sink.error(
                "V304",
                f"MOVE target must reference storage, got {clause.tgt}",
                loc)
            return
        tinfo = self._value(clause.tgt, loc)
        sinfo = self._value(clause.src, loc)
        minfo = self._value(clause.mask, loc)
        if tinfo is None or sinfo is None or minfo is None:
            return

        if not minfo.elem.is_logical:
            self.sink.error(
                "V302", f"MOVE mask is not logical: {clause.mask}", loc)
        if sinfo.elem.is_logical != tinfo.elem.is_logical:
            self.sink.error(
                "V302", "MOVE mixes logical and arithmetic types: "
                f"{sinfo.elem} -> {tinfo.elem}", loc)

        if tinfo.shape is None:
            if sinfo.shape is not None:
                self.sink.error(
                    "V303",
                    f"array value stored to scalar target {clause.tgt}",
                    loc)
            if minfo.shape is not None:
                self.sink.error(
                    "V303", f"array mask on scalar move to {clause.tgt}",
                    loc)
            return
        if sinfo.shape is not None and not nir.conformable(
                tinfo.shape, sinfo.shape, self.domains):
            self.sink.error(
                "V303", "MOVE shapes do not conform: "
                f"{nir.extents(tinfo.shape, self.domains)} <- "
                f"{nir.extents(sinfo.shape, self.domains)}", loc)
        if minfo.shape is not None and not nir.conformable(
                tinfo.shape, minfo.shape, self.domains):
            self.sink.error(
                "V303", "MOVE mask shape does not conform to target: "
                f"{nir.extents(tinfo.shape, self.domains)} vs "
                f"{nir.extents(minfo.shape, self.domains)}", loc)
        self._mask_coverage(clause, loc)

    def _mask_coverage(self, clause: nir.MoveClause,
                       loc: SourceLoc | None) -> None:
        """V307: a padded move's region mask stays inside the target."""
        if clause.mask == nir.TRUE or not isinstance(clause.tgt, nir.AVar) \
                or not isinstance(clause.tgt.field, nir.Everywhere):
            return
        try:
            sym = self.env.lookup(clause.tgt.name)
        except LoweringError:
            return  # already reported as V301
        axes = region_of_mask(clause.mask, sym.extents)
        if axes is None:
            return  # not a padder-generated mask
        for axis, ((lo, hi, st), n) in enumerate(zip(axes, sym.extents),
                                                 start=1):
            hi = n if hi is None else hi
            if lo < 1 or hi > n or lo > hi or st < 1:
                self.sink.error(
                    "V307",
                    f"mask of padded move to '{clause.tgt.name}' selects "
                    f"{lo}:{hi}:{st} on axis {axis}, outside declared "
                    f"bounds 1:{n}", loc)
