"""Level-3 verifier: PEAC/VIR backend output (the ``P5xx`` namespace).

Checks the node routines the CM2 backend emits, per virtual-subgrid
loop body:

* ``P501`` — no vector register is read before something defines it,
* ``P502`` — spill/restore slots stay inside ``Routine.spill_slots``,
* ``P503`` — every restore reads a slot a prior spill wrote,
* ``P504`` — every streaming memory operand's pointer register is bound
  by a subgrid/coord/halo parameter (and does not collide with the
  spill-scratch pointers allocated from ``aP15`` down),
* ``P505`` — every scalar register read is bound by a scalar parameter,
* ``P506`` — a chained in-memory operand appears only on opcodes the
  chaining pass may legally fold into,
* ``P507`` — dual-issue pairs are hazard-free: both halves read
  pre-instruction register state, so the paired load may not write the
  computation's destination and the paired store may not read it.

Body order is per-trip SSA (the register allocator's contract), so a
linear read-before-def scan is exact — nothing is live across the
virtual subgrid loop's back edge except the streams themselves.
"""

from __future__ import annotations

from ..peac import isa
from .diagnostics import Diagnostic, DiagnosticSink, VerifyError

try:
    from ..backend.cm2.chaining import _CHAINABLE_KINDS_OPS as CHAINABLE_OPS
except ImportError:  # keep the verifier usable without the cm2 backend
    CHAINABLE_OPS = {
        "faddv", "fsubv", "fmulv", "fdivv", "fminv", "fmaxv", "fmodv",
        "fpowv", "fmav", "fmsv", "fceqv", "fcnev", "fcltv", "fclev",
        "fcgtv", "fcgev", "candv", "corv", "cxorv", "fselv",
        "iaddv", "isubv", "imulv", "idivv", "imodv",
    }


def verify_routine(routine: isa.Routine) -> list[Diagnostic]:
    """All P5xx violations in one PEAC routine."""
    verifier = _RoutineVerifier(routine)
    verifier.run()
    return verifier.sink.diagnostics


def verify_routines(routines: dict[str, isa.Routine],
                    stage: str = "backend/peac") -> None:
    """Raise :class:`VerifyError` if any routine fails verification."""
    diagnostics: list[Diagnostic] = []
    for routine in routines.values():
        diagnostics.extend(verify_routine(routine))
    if diagnostics:
        raise VerifyError(stage, diagnostics)


def _is_spill_mem(mem: isa.Mem) -> bool:
    """Spill scratch is addressed without post-increment (incr == 0)."""
    return mem.incr == 0


def _spill_slot(mem: isa.Mem) -> int:
    """Slot index of a spill-scratch operand (aP15 binds slot 0)."""
    return isa.NUM_PREGS - 1 - mem.preg.n


def _written_mem(instr: isa.Instr) -> isa.Mem | None:
    """The memory operand a store writes (``Instr.dest`` is None for
    stores, so the written location needs its own accessor)."""
    if instr.kind == "store" and isinstance(instr.operands[-1], isa.Mem):
        return instr.operands[-1]
    return None


class _RoutineVerifier:
    def __init__(self, routine: isa.Routine) -> None:
        self.routine = routine
        self.sink = DiagnosticSink()
        self.stream_pregs = {
            p.reg.n for p in routine.params
            if p.kind in ("subgrid", "coord", "halo")
            and isinstance(p.reg, isa.PReg)}
        self.scalar_sregs = {
            p.reg.n for p in routine.params
            if p.kind == "scalar" and isinstance(p.reg, isa.SReg)}
        self.defined_vregs: set[int] = set()
        self.spilled_slots: set[int] = set()

    def run(self) -> None:
        for pos, instr in enumerate(self.routine.body):
            if instr.paired is not None:
                self._check_pair(pos, instr)
            self._check_instr(pos, instr)
            # The paired memory half reads pre-instruction state but its
            # write lands with the computation's, so define both after.
            self._define(instr)
            if instr.paired is not None:
                self._check_instr(pos, instr.paired, in_pair=True)
                self._define(instr.paired)

    # ------------------------------------------------------------------

    def _where(self, pos: int, instr: isa.Instr) -> str:
        return f"{self.routine.name}[{pos}] '{instr}'"

    def _check_instr(self, pos: int, instr: isa.Instr,
                     in_pair: bool = False) -> None:
        where = self._where(pos, instr)
        for src in instr.sources:
            if isinstance(src, isa.VReg) \
                    and src.n not in self.defined_vregs:
                self.sink.error(
                    "P501", f"{where}: reads aV{src.n} before any "
                    "definition in the loop body")
            elif isinstance(src, isa.SReg) \
                    and src.n not in self.scalar_sregs:
                self.sink.error(
                    "P505", f"{where}: reads aS{src.n}, which no scalar "
                    "parameter binds")
            elif isinstance(src, isa.Mem):
                self._check_mem(where, src, reading=True)
        dest = instr.dest
        if isinstance(dest, isa.Mem):
            self._check_mem(where, dest, reading=False)
        written = _written_mem(instr)
        if written is not None:
            self._check_mem(where, written, reading=False)
        if instr.has_chained_mem and instr.op not in CHAINABLE_OPS:
            self.sink.error(
                "P506", f"{where}: opcode {instr.op} may not take a "
                "chained in-memory operand")

    def _check_mem(self, where: str, mem: isa.Mem, reading: bool) -> None:
        if _is_spill_mem(mem):
            slot = _spill_slot(mem)
            if not 0 <= slot < self.routine.spill_slots:
                self.sink.error(
                    "P502", f"{where}: spill slot {slot} outside the "
                    f"routine's {self.routine.spill_slots} scratch slots")
            elif reading and slot not in self.spilled_slots:
                self.sink.error(
                    "P503", f"{where}: restores slot {slot} before any "
                    "spill writes it")
        else:
            if mem.preg.n not in self.stream_pregs:
                self.sink.error(
                    "P504", f"{where}: streams through aP{mem.preg.n}, "
                    "which no subgrid/coord/halo parameter binds")
            elif mem.preg.n >= isa.NUM_PREGS - self.routine.spill_slots:
                self.sink.error(
                    "P504", f"{where}: stream pointer aP{mem.preg.n} "
                    "collides with the spill-scratch pointers")

    def _define(self, instr: isa.Instr) -> None:
        dest = instr.dest
        if isinstance(dest, isa.VReg):
            self.defined_vregs.add(dest.n)
        written = _written_mem(instr)
        if written is not None and _is_spill_mem(written) \
                and 0 <= _spill_slot(written) < self.routine.spill_slots:
            self.spilled_slots.add(_spill_slot(written))

    def _check_pair(self, pos: int, instr: isa.Instr) -> None:
        mem = instr.paired
        where = self._where(pos, instr)
        if mem.kind not in ("load", "store"):
            self.sink.error(
                "P507", f"{where}: only loads/stores may be dual-issued")
            return
        if instr.kind in ("load", "store", "branch"):
            self.sink.error(
                "P507", f"{where}: memory/branch ops cannot carry a "
                "dual-issued memory half")
            return
        comp_dest = instr.dest
        if not isinstance(comp_dest, isa.VReg):
            return
        if mem.kind == "load":
            if mem.dest == comp_dest:
                self.sink.error(
                    "P507", f"{where}: paired load writes the "
                    f"computation's destination {comp_dest}")
        else:  # store / spill
            if comp_dest in mem.sources:
                self.sink.error(
                    "P507", f"{where}: paired store reads the "
                    f"computation's destination {comp_dest} before it "
                    "is written")
