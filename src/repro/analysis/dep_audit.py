"""Level-2 verifier: dependence preservation audit (the ``D4xx`` namespace).

The blocking stage reorders phases (list scheduling) and fuses adjacent
compute phases into multi-clause MOVEs.  Both are only correct if they
preserve every statement-level dependence of the pre-transform program.
This module recomputes those dependences *from scratch* — fresh
:class:`~repro.transform.dependence.EffectAnalyzer` runs over the phase
nodes, never the cached ``Phase.effects`` (which ``fuse_phases`` mutates
in place) — and asserts:

* ``D401`` — the scheduled output is a permutation of the input phases
  (nothing dropped, nothing duplicated),
* ``D402`` — every dependent pair keeps its original relative order,
* ``D403`` — fusion only concatenates MOVE clauses; the flattened clause
  sequence is unchanged.
"""

from __future__ import annotations

from .. import nir
from ..lowering.environment import Environment
from ..transform.dependence import EffectAnalyzer, may_depend
from ..transform.phases import Phase
from .diagnostics import Diagnostic, DiagnosticSink, VerifyError


def audit_schedule(before: list[Phase], after: list[Phase],
                   env: Environment,
                   domains: dict[str, nir.Shape] | None = None
                   ) -> list[Diagnostic]:
    """D4xx violations introduced by reordering ``before`` into ``after``."""
    sink = DiagnosticSink()
    analyzer = EffectAnalyzer(env, domains)

    if sorted(p.index for p in after) != sorted(p.index for p in before):
        missing = {p.index for p in before} - {p.index for p in after}
        extra = {p.index for p in after} - {p.index for p in before}
        sink.error(
            "D401", "schedule is not a permutation of the input phases"
            + (f"; dropped {sorted(missing)}" if missing else "")
            + (f"; duplicated or invented {sorted(extra)}" if extra else ""))
        return sink.diagnostics

    # Dependences of the ORIGINAL program, from freshly computed effects.
    by_index = {p.index: p for p in before}
    effects = {p.index: analyzer.effects(p.node) for p in before}
    ordered = sorted(by_index)
    position = {p.index: pos for pos, p in enumerate(after)}
    for i, a in enumerate(ordered):
        for b in ordered[i + 1:]:
            if may_depend(effects[a], effects[b]) \
                    and position[b] < position[a]:
                sink.error(
                    "D402",
                    f"schedule violates dependence: phase {b} "
                    f"({by_index[b].kind.name}) moved before phase {a} "
                    f"({by_index[a].kind.name}) it depends on")
    return sink.diagnostics


def audit_fusion(before: list[Phase], after: list[Phase]
                 ) -> list[Diagnostic]:
    """D403 violations introduced by fusing ``before`` into ``after``.

    Fusion may only concatenate adjacent MOVEs: flattening every phase
    node to its clause sequence must yield identical programs.
    """
    sink = DiagnosticSink()
    flat_before = _flatten(before)
    flat_after = _flatten(after)
    if len(flat_before) != len(flat_after):
        sink.error(
            "D403", "fusion changed the number of atomic actions: "
            f"{len(flat_before)} before, {len(flat_after)} after")
        return sink.diagnostics
    for pos, (x, y) in enumerate(zip(flat_before, flat_after)):
        if x != y:
            sink.error(
                "D403",
                f"fusion altered atomic action {pos}: {_describe(x)} "
                f"became {_describe(y)}")
    return sink.diagnostics


def assert_schedule(before: list[Phase], after: list[Phase],
                    env: Environment, stage: str,
                    domains: dict[str, nir.Shape] | None = None) -> None:
    diagnostics = audit_schedule(before, after, env, domains)
    if diagnostics:
        raise VerifyError(stage, diagnostics)


def assert_fusion(before: list[Phase], after: list[Phase],
                  stage: str) -> None:
    diagnostics = audit_fusion(before, after)
    if diagnostics:
        raise VerifyError(stage, diagnostics)


def _flatten(phases: list[Phase]) -> list[object]:
    """Phase nodes flattened to MOVE clauses plus opaque non-MOVE nodes."""
    out: list[object] = []
    for p in phases:
        if isinstance(p.node, nir.Move):
            out.extend(p.node.clauses)
        else:
            out.append(p.node)
    return out


def _describe(item: object) -> str:
    if isinstance(item, nir.MoveClause):
        return f"move to {item.tgt}"
    return type(item).__name__
