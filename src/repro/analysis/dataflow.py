"""Dataflow analysis over lowered NIR: CFG construction + fixed point.

The lint layer (PR 3) is per-statement — it cannot see that a value
flows around a loop or that two WHERE bodies write the same section.
This module supplies the missing substrate: a control-flow graph built
from an NIR imperative tree (basic blocks of straight-line MOVEs, edges
from IF/WHILE/DO structure) and a generic forward/backward worklist
solver over it, plus the three classic instances the analyses on top
consume — reaching definitions, liveness, and per-statement array
*section* access summaries (reusing the Region math of
:mod:`repro.transform.regions` via :mod:`repro.transform.dependence`).

The module is deliberately self-contained and fully type-annotated (it
is the one corner of the tree checked under ``mypy --strict`` in CI);
everything here is pure — no machine, no cost model, no mutation of the
program being analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Iterator, TypeVar

from .. import nir
from ..lowering.environment import Environment, LoweringError
from ..sourceloc import SourceLoc
from ..transform import regions as rg

L = TypeVar("L")

#: Statement roles: a ``stmt`` is an ordinary straight-line action; a
#: ``branch`` holds an IF or WHILE condition (only its condition's reads
#: belong to the statement); a ``loop`` heads a DO (its index variables
#: are the writes).
ROLES = ("stmt", "branch", "loop")


@dataclass
class Statement:
    """One CFG-resident action with a stable whole-program id."""

    sid: int
    node: nir.Imperative
    role: str = "stmt"
    block: int = -1

    @property
    def loc(self) -> SourceLoc | None:
        if isinstance(self.node, nir.Move):
            for clause in self.node.clauses:
                if clause.loc is not None:
                    return clause.loc
        return None


@dataclass
class BasicBlock:
    """A maximal straight-line run of statements."""

    bid: int
    statements: list[Statement] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


class CFG:
    """Control-flow graph of one NIR imperative tree.

    ``entry`` and ``exit`` are synthetic empty blocks so every analysis
    has a unique boundary node in each direction.
    """

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.entry: int = self._new_block()
        self.exit: int = -1  # patched by build_cfg
        self._next_sid = 0

    # -- construction ------------------------------------------------------

    def _new_block(self) -> int:
        bid = len(self.blocks)
        self.blocks.append(BasicBlock(bid))
        return bid

    def _edge(self, a: int, b: int) -> None:
        if b not in self.blocks[a].succs:
            self.blocks[a].succs.append(b)
            self.blocks[b].preds.append(a)

    def _append(self, bid: int, node: nir.Imperative, role: str) -> Statement:
        stmt = Statement(self._next_sid, node, role, bid)
        self._next_sid += 1
        self.blocks[bid].statements.append(stmt)
        return stmt

    # -- queries -----------------------------------------------------------

    def statements(self) -> Iterator[Statement]:
        for block in self.blocks:
            yield from block.statements

    @property
    def n_statements(self) -> int:
        return sum(len(b.statements) for b in self.blocks)

    @property
    def n_edges(self) -> int:
        return sum(len(b.succs) for b in self.blocks)


def build_cfg(body: nir.Imperative) -> CFG:
    """Build the CFG of an imperative tree (usually a lowered program).

    ``Program``/``WITH_DECL``/``WITH_DOMAIN`` wrappers are transparent.
    ``CONCURRENTLY`` groups stay single statements (their internal order
    is the analyzed property, not a control-flow fact).
    """
    cfg = CFG()

    def walk(node: nir.Imperative, cur: int) -> int:
        if isinstance(node, (nir.Program, nir.WithDecl, nir.WithDomain)):
            return walk(node.body, cur)
        if isinstance(node, nir.Sequentially):
            for action in node.actions:
                cur = walk(action, cur)
            return cur
        if isinstance(node, nir.IfThenElse):
            cfg._append(cur, node, "branch")
            then_entry = cfg._new_block()
            cfg._edge(cur, then_entry)
            then_exit = walk(node.then, then_entry)
            else_entry = cfg._new_block()
            cfg._edge(cur, else_entry)
            else_exit = walk(node.els, else_entry)
            join = cfg._new_block()
            cfg._edge(then_exit, join)
            cfg._edge(else_exit, join)
            return join
        if isinstance(node, nir.While):
            header = cfg._new_block()
            cfg._edge(cur, header)
            cfg._append(header, node, "branch")
            body_entry = cfg._new_block()
            cfg._edge(header, body_entry)
            body_exit = walk(node.body, body_entry)
            cfg._edge(body_exit, header)
            after = cfg._new_block()
            cfg._edge(header, after)
            return after
        if isinstance(node, nir.Do):
            header = cfg._new_block()
            cfg._edge(cur, header)
            cfg._append(header, node, "loop")
            body_entry = cfg._new_block()
            cfg._edge(header, body_entry)
            body_exit = walk(node.body, body_entry)
            cfg._edge(body_exit, header)
            after = cfg._new_block()
            cfg._edge(header, after)
            return after
        if isinstance(node, nir.Skip):
            return cur
        # Straight-line statements: MOVE, CALL, CONCURRENTLY, REF/COPY_OUT.
        cfg._append(cur, node, "stmt")
        return cur

    cfg.exit = walk(body, cfg.entry)
    return cfg


# ---------------------------------------------------------------------------
# Access summaries (the section-precision instance)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayAccess:
    """One array section touched by a statement."""

    name: str
    region: rg.Region
    masked: bool = False

    @property
    def definite(self) -> bool:
        """A write that certainly covers its whole region."""
        return not self.masked and bool(self.region.is_full)


@dataclass(frozen=True)
class AccessSummary:
    """The read/write footprint of one statement, section-precise."""

    scalar_reads: frozenset[str]
    scalar_writes: frozenset[str]
    array_reads: tuple[ArrayAccess, ...]
    array_writes: tuple[ArrayAccess, ...]
    barrier: bool = False

    @property
    def written_names(self) -> frozenset[str]:
        return self.scalar_writes | frozenset(
            a.name for a in self.array_writes)

    @property
    def read_names(self) -> frozenset[str]:
        return self.scalar_reads | frozenset(
            a.name for a in self.array_reads)

    def definite_writes(self) -> frozenset[str]:
        """Names whose previous definitions this statement surely kills."""
        return self.scalar_writes | frozenset(
            a.name for a in self.array_writes if a.definite)


class SummaryBuilder:
    """Computes :class:`AccessSummary` records for CFG statements."""

    def __init__(self, env: Environment,
                 domains: dict[str, nir.Shape] | None = None) -> None:
        self.env = env
        self.domains: dict[str, nir.Shape] = (
            domains if domains is not None else env.domains)

    # -- helpers -----------------------------------------------------------

    def region_of(self, name: str, fa: nir.FieldAction) -> rg.Region:
        try:
            sym = self.env.lookup(name)
        except LoweringError:
            return rg.unknown_region((1,))
        return rg.region_of_field(fa, sym.extents, self.domains)

    def _value(self, value: nir.Value, masked: bool,
               sreads: set[str], areads: list[ArrayAccess]) -> None:
        for node in nir.values.walk(value):
            if isinstance(node, nir.SVar):
                sreads.add(node.name)
            elif isinstance(node, nir.AVar):
                areads.append(ArrayAccess(
                    node.name, self.region_of(node.name, node.field),
                    masked))

    # -- per-statement -----------------------------------------------------

    def summary(self, stmt: Statement) -> AccessSummary:
        sreads: set[str] = set()
        swrites: set[str] = set()
        areads: list[ArrayAccess] = []
        awrites: list[ArrayAccess] = []
        barrier = False
        node = stmt.node

        if stmt.role == "branch":
            cond = (node.cond if isinstance(node, (nir.IfThenElse,
                                                   nir.While)) else None)
            if cond is not None:
                self._value(cond, False, sreads, areads)
        elif stmt.role == "loop" and isinstance(node, nir.Do):
            swrites.update(node.index_names)
        elif isinstance(node, nir.Move):
            for clause in node.clauses:
                masked = clause.mask != nir.TRUE
                self._value(clause.mask, False, sreads, areads)
                self._value(clause.src, masked, sreads, areads)
                if isinstance(clause.tgt, nir.SVar):
                    if masked:
                        # A masked scalar store may leave the old value.
                        sreads.add(clause.tgt.name)
                    swrites.add(clause.tgt.name)
                elif isinstance(clause.tgt, nir.AVar):
                    awrites.append(ArrayAccess(
                        clause.tgt.name,
                        self.region_of(clause.tgt.name, clause.tgt.field),
                        masked))
                    if isinstance(clause.tgt.field, nir.Subscript):
                        for idx in clause.tgt.field.indices:
                            if not isinstance(idx, nir.IndexRange):
                                self._value(idx, False, sreads, areads)
        elif isinstance(node, nir.Concurrently):
            for action in node.actions:
                sub = self.summary(Statement(stmt.sid, action, "stmt"))
                sreads |= sub.scalar_reads
                swrites |= sub.scalar_writes
                areads.extend(sub.array_reads)
                awrites.extend(sub.array_writes)
                barrier = barrier or sub.barrier
        elif isinstance(node, nir.CallStmt):
            for arg in node.args:
                self._value(arg, False, sreads, areads)
            barrier = True
        elif isinstance(node, (nir.RefOut, nir.CopyOut)):
            self._value(node.value, False, sreads, areads)
        elif isinstance(node, nir.Skip):
            pass
        else:  # unmodelled constructs depend on everything
            barrier = True

        return AccessSummary(frozenset(sreads), frozenset(swrites),
                             tuple(areads), tuple(awrites), barrier)


def summarize(cfg: CFG, env: Environment,
              domains: dict[str, nir.Shape] | None = None
              ) -> dict[int, AccessSummary]:
    """Access summaries for every statement in the CFG, keyed by sid."""
    builder = SummaryBuilder(env, domains)
    return {stmt.sid: builder.summary(stmt) for stmt in cfg.statements()}


# ---------------------------------------------------------------------------
# The generic solver
# ---------------------------------------------------------------------------


class Analysis(Generic[L]):
    """One dataflow problem: lattice values of type ``L`` over sets.

    Subclasses define the direction, the boundary value (at entry for
    forward problems, at exit for backward ones), the optimistic initial
    value, the join, and the per-statement transfer function.
    """

    direction: str = "forward"

    def boundary(self) -> L:
        raise NotImplementedError

    def initial(self) -> L:
        raise NotImplementedError

    def join(self, a: L, b: L) -> L:
        raise NotImplementedError

    def transfer(self, stmt: Statement, value: L) -> L:
        raise NotImplementedError


@dataclass
class DataflowResult(Generic[L]):
    """Fixed-point block states plus per-statement replay access."""

    cfg: CFG
    analysis: Analysis[L]
    block_in: dict[int, L]
    block_out: dict[int, L]
    iterations: int

    def before(self, stmt: Statement) -> L:
        """The dataflow value holding just before ``stmt`` (program
        order for forward problems, reverse order for backward ones)."""
        block = self.cfg.blocks[stmt.block]
        stmts = list(block.statements)
        if self.analysis.direction == "backward":
            stmts = list(reversed(stmts))
            value = self.block_out[block.bid]
        else:
            value = self.block_in[block.bid]
        for s in stmts:
            if s.sid == stmt.sid:
                return value
            value = self.analysis.transfer(s, value)
        raise KeyError(f"statement {stmt.sid} not in block {block.bid}")

    def after(self, stmt: Statement) -> L:
        return self.analysis.transfer(stmt, self.before(stmt))


def solve(cfg: CFG, analysis: Analysis[L]) -> DataflowResult[L]:
    """Worklist fixed point of ``analysis`` over ``cfg``.

    Terminates for any monotone transfer over a finite lattice; the
    instances here all work on finite powersets of program facts.
    """
    forward = analysis.direction != "backward"
    n = len(cfg.blocks)
    start = cfg.entry if forward else cfg.exit
    block_in: dict[int, L] = {}
    block_out: dict[int, L] = {}
    for bid in range(n):
        block_in[bid] = analysis.initial()
        block_out[bid] = analysis.initial()

    def preds_of(bid: int) -> list[int]:
        return cfg.blocks[bid].preds if forward else cfg.blocks[bid].succs

    def transfer_block(bid: int, value: L) -> L:
        stmts = cfg.blocks[bid].statements
        ordered = stmts if forward else list(reversed(stmts))
        for stmt in ordered:
            value = analysis.transfer(stmt, value)
        return value

    worklist = list(range(n))
    iterations = 0
    while worklist:
        bid = worklist.pop(0)
        iterations += 1
        if bid == start:
            incoming = analysis.boundary()
        else:
            incoming = analysis.initial()
            for p in preds_of(bid):
                incoming = analysis.join(
                    incoming, block_out[p] if forward else block_in[p])
        changed = incoming != (block_in[bid] if forward
                               else block_out[bid])
        if forward:
            block_in[bid] = incoming
        else:
            block_out[bid] = incoming
        outgoing = transfer_block(bid, incoming)
        out_slot = block_out if forward else block_in
        if outgoing != out_slot[bid] or changed:
            out_slot[bid] = outgoing
            nexts = (cfg.blocks[bid].succs if forward
                     else cfg.blocks[bid].preds)
            for s in nexts:
                if s not in worklist:
                    worklist.append(s)
    return DataflowResult(cfg, analysis, block_in, block_out, iterations)


# ---------------------------------------------------------------------------
# Classic instances
# ---------------------------------------------------------------------------


#: One reaching definition: (variable name, defining statement id).
Definition = tuple[str, int]


class ReachingDefinitions(Analysis[frozenset[Definition]]):
    """Forward may-analysis: which definitions reach each point.

    Array writes kill previous definitions only when *definite* — an
    unmasked store to the full region; masked or sectioned stores merely
    add a definition (the older one may survive in other elements).
    """

    direction = "forward"

    def __init__(self, summaries: dict[int, AccessSummary]) -> None:
        self.summaries = summaries

    def boundary(self) -> frozenset[Definition]:
        return frozenset()

    def initial(self) -> frozenset[Definition]:
        return frozenset()

    def join(self, a: frozenset[Definition],
             b: frozenset[Definition]) -> frozenset[Definition]:
        return a | b

    def transfer(self, stmt: Statement,
                 value: frozenset[Definition]) -> frozenset[Definition]:
        summary = self.summaries[stmt.sid]
        kills = summary.definite_writes()
        gens = frozenset((name, stmt.sid)
                         for name in summary.written_names)
        if not kills and not gens:
            return value
        return frozenset((name, sid) for name, sid in value
                         if name not in kills) | gens


class Liveness(Analysis[frozenset[str]]):
    """Backward may-analysis: names whose value may still be read."""

    direction = "backward"

    def __init__(self, summaries: dict[int, AccessSummary],
                 live_out: frozenset[str] = frozenset()) -> None:
        self.summaries = summaries
        self.live_out = live_out

    def boundary(self) -> frozenset[str]:
        return self.live_out

    def initial(self) -> frozenset[str]:
        return frozenset()

    def join(self, a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
        return a | b

    def transfer(self, stmt: Statement,
                 value: frozenset[str]) -> frozenset[str]:
        summary = self.summaries[stmt.sid]
        return (value - summary.definite_writes()) | summary.read_names


@dataclass(frozen=True)
class DataflowStats:
    """Shape of one CFG + solve, for reports and the analyze JSON."""

    blocks: int
    statements: int
    edges: int
    iterations: int

    def to_dict(self) -> dict[str, int]:
        return {"blocks": self.blocks, "statements": self.statements,
                "edges": self.edges, "iterations": self.iterations}
