"""A lexer for the Fortran 90 subset accepted by Fortran-90-Y.

Accepts free-form source with a few fixed-form courtesies used by the
paper's examples: ``C``/``*`` comment lines in column one, numeric
statement labels, and ``&`` continuations (both trailing and leading).
Keywords are case-insensitive; the lexer does not distinguish keywords
from identifiers (the parser does, contextually, as Fortran requires).
"""

from __future__ import annotations

from .tokens import DOT_LITERALS, DOT_OPERATORS, OPERATORS, TokKind, Token


class LexError(Exception):
    """Raised on malformed source text."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"line {line}, col {col}: {message}")
        self.line = line
        self.col = col


def _strip_comment(text: str) -> str:
    """Remove a trailing ``!`` comment, respecting character literals."""
    in_string: str | None = None
    for i, ch in enumerate(text):
        if in_string:
            if ch == in_string:
                in_string = None
        elif ch in "'\"":
            in_string = ch
        elif ch == "!":
            return text[:i]
    return text


def _logical_lines(source: str):
    """Yield ``(line_number, text)`` logical lines after continuation joining."""
    pending: str | None = None
    pending_line = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        # Fixed-form '*' comment lines ('C' comments are ambiguous with
        # assignments to a variable named C in free form, so only '!' and
        # column-one '*' comments are recognized).
        if raw[:1] == "*":
            continue
        text = _strip_comment(raw).rstrip()
        if not text.strip():
            if pending is None:
                continue
            # Blank line inside a continuation is skipped.
            continue
        body = text.strip()
        if pending is not None:
            if body.startswith("&"):
                body = body[1:].lstrip()
            pending = pending + " " + body
        else:
            pending = body
            pending_line = lineno
        if pending.endswith("&"):
            pending = pending[:-1].rstrip()
            continue
        yield pending_line, pending
        pending = None
    if pending is not None:
        yield pending_line, pending


def tokenize(source: str) -> list[Token]:
    """Tokenize Fortran 90 source into a flat token list.

    Statement boundaries (end of logical line, or ``;``) appear as
    ``NEWLINE`` tokens; the list always ends with a single ``EOF``.
    """
    tokens: list[Token] = []
    for lineno, text in _logical_lines(source):
        _lex_line(text, lineno, tokens)
        tokens.append(Token(TokKind.NEWLINE, "\n", lineno, len(text) + 1))
    tokens.append(Token(TokKind.EOF, "", -1, 0))
    return tokens


def _lex_line(text: str, lineno: int, out: list[Token]) -> None:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t":
            i += 1
            continue
        col = i + 1

        if ch == ";":
            out.append(Token(TokKind.NEWLINE, ";", lineno, col))
            i += 1
            continue

        if ch in "'\"":
            j = i + 1
            while j < n and text[j] != ch:
                j += 1
            if j >= n:
                raise LexError("unterminated character literal", lineno, col)
            out.append(Token(TokKind.STRING, text[i + 1:j], lineno, col))
            i = j + 1
            continue

        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            i = _lex_number(text, i, lineno, out)
            continue

        if ch == ".":
            matched = False
            for dot, canon in {**DOT_OPERATORS,
                               **{k: k for k in DOT_LITERALS}}.items():
                if text[i:i + len(dot)].lower() == dot:
                    if dot in DOT_LITERALS:
                        out.append(Token(TokKind.LOGICAL, dot.strip("."),
                                         lineno, col))
                    else:
                        out.append(Token(TokKind.OP, canon, lineno, col))
                    i += len(dot)
                    matched = True
                    break
            if matched:
                continue
            raise LexError(f"unexpected '.'", lineno, col)

        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            out.append(Token(TokKind.IDENT, text[i:j], lineno, col))
            i = j
            continue

        for op in OPERATORS:
            if text.startswith(op, i):
                out.append(Token(TokKind.OP, op, lineno, col))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", lineno, col)


def _lex_number(text: str, i: int, lineno: int, out: list[Token]) -> int:
    n = len(text)
    col = i + 1
    j = i
    while j < n and text[j].isdigit():
        j += 1
    is_real = False
    kind = TokKind.REAL
    # A '.' begins a fraction only if not a dot-operator like 1.eq.2 / 1..2.
    if j < n and text[j] == ".":
        rest = text[j:].lower()
        if not any(rest.startswith(d) for d in
                   list(DOT_OPERATORS) + list(DOT_LITERALS)):
            is_real = True
            j += 1
            while j < n and text[j].isdigit():
                j += 1
    if j < n and text[j] in "eEdD":
        k = j + 1
        if k < n and text[k] in "+-":
            k += 1
        if k < n and text[k].isdigit():
            if text[j] in "dD":
                kind = TokKind.DREAL
            is_real = True
            j = k
            while j < n and text[j].isdigit():
                j += 1
    lit = text[i:j]
    if is_real:
        out.append(Token(kind, lit, lineno, col))
    else:
        out.append(Token(TokKind.INT, lit, lineno, col))
    return j
