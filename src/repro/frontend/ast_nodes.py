"""Abstract syntax trees produced by the Fortran 90 front end.

These are purely syntactic: no types or shapes are attached.  The
semantic lowering phase (``repro.lowering``) pattern-matches these forms
and emits NIR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sourceloc import SourceLoc


@dataclass(frozen=True)
class AstNode:
    """Base class for all AST nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr(AstNode):
    """Base class for expressions.

    ``loc`` carries the lexer token position the expression began at.
    It is excluded from equality/hashing so location-stamped nodes stay
    structurally identical to unstamped ones.
    """

    loc: SourceLoc | None = field(default=None, compare=False, repr=False,
                                  kw_only=True)


@dataclass(frozen=True)
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class RealLit(Expr):
    value: float
    double: bool = False

    def __str__(self) -> str:
        return repr(self.value) + ("d0" if self.double else "")


@dataclass(frozen=True)
class LogicalLit(Expr):
    value: bool

    def __str__(self) -> str:
        return ".true." if self.value else ".false."


@dataclass(frozen=True)
class StringLit(Expr):
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class VarRef(Expr):
    """A bare identifier reference (scalar variable or whole array)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SectionRange(Expr):
    """A subscript triplet ``lo:hi:stride``; any part may be omitted."""

    lo: Expr | None = None
    hi: Expr | None = None
    stride: Expr | None = None

    def __str__(self) -> str:
        s = f"{self.lo or ''}:{self.hi or ''}"
        if self.stride is not None:
            s += f":{self.stride}"
        return s


@dataclass(frozen=True)
class ArrayRef(Expr):
    """``name(sub1, sub2, ...)`` — array element, section, or function call.

    Fortran syntax cannot distinguish array references from function calls
    without declarations, so the parser emits ``ArrayRef`` and the
    lowerer disambiguates against the symbol table and intrinsics list.
    """

    name: str
    subscripts: tuple[Expr, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self.subscripts)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class KeywordArg(Expr):
    """``DIM=1`` style keyword argument inside an intrinsic call."""

    name: str
    value: Expr

    def __str__(self) -> str:
        return f"{self.name}={self.value}"


@dataclass(frozen=True)
class BinExpr(Expr):
    op: str  # '+','-','*','/','**','==','/=','<','<=','>','>=','.and.',...
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnExpr(Expr):
    op: str  # '-', '+', '.not.'
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Entity(AstNode):
    """One declared name with optional per-entity array spec and init."""

    name: str
    dims: tuple[Expr, ...] = ()
    init: Expr | None = None


@dataclass(frozen=True)
class TypeDecl(AstNode):
    """A type declaration statement.

    ``base`` is one of ``integer | real | double | logical``; ``dims``
    holds an ``ARRAY(...)``/``DIMENSION(...)`` attribute applying to all
    entities lacking their own spec; ``parameter`` marks named constants.
    """

    base: str
    entities: tuple[Entity, ...]
    dims: tuple[Expr, ...] = ()
    parameter: bool = False
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt(AstNode):
    """Base class for executable statements."""


@dataclass(frozen=True)
class Assignment(Stmt):
    target: Expr  # VarRef or ArrayRef
    expr: Expr
    line: int = 0

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


@dataclass(frozen=True)
class ForallTriplet(AstNode):
    var: str
    lo: Expr
    hi: Expr
    stride: Expr | None = None


@dataclass(frozen=True)
class ForallStmt(Stmt):
    """Statement-form FORALL over one assignment (Figure 7)."""

    triplets: tuple[ForallTriplet, ...]
    assignment: Assignment
    mask: Expr | None = None
    line: int = 0


@dataclass(frozen=True)
class WhereConstruct(Stmt):
    """``WHERE (mask) ... [ELSEWHERE ...] END WHERE`` (or statement form)."""

    mask: Expr
    body: tuple[Assignment, ...]
    elsewhere: tuple[Assignment, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class DoLoop(Stmt):
    """A serial DO loop, either labelled (F77) or block (F90) form."""

    var: str
    lo: Expr
    hi: Expr
    step: Expr | None
    body: tuple[Stmt, ...]
    line: int = 0


@dataclass(frozen=True)
class DoWhile(Stmt):
    cond: Expr
    body: tuple[Stmt, ...]
    line: int = 0


@dataclass(frozen=True)
class IfConstruct(Stmt):
    """IF/ELSE IF/ELSE chain; ``arms`` pairs conditions with bodies."""

    arms: tuple[tuple[Expr, tuple[Stmt, ...]], ...]
    else_body: tuple[Stmt, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class CallStmt(Stmt):
    name: str
    args: tuple[Expr, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class PrintStmt(Stmt):
    items: tuple[Expr, ...]
    line: int = 0


@dataclass(frozen=True)
class ContinueStmt(Stmt):
    line: int = 0


@dataclass(frozen=True)
class StopStmt(Stmt):
    line: int = 0


@dataclass(frozen=True)
class ReturnStmt(Stmt):
    """RETURN from a subroutine (only trailing returns are supported)."""

    line: int = 0


@dataclass(frozen=True)
class ProgramUnit(AstNode):
    """A PROGRAM or SUBROUTINE unit: declarations then statements."""

    name: str
    decls: tuple[TypeDecl, ...]
    body: tuple[Stmt, ...]
    kind: str = "program"          # 'program' | 'subroutine'
    params: tuple[str, ...] = ()   # subroutine formal parameter names


@dataclass(frozen=True)
class SourceFile(AstNode):
    """A whole source file: one main program plus subroutine units."""

    units: tuple[ProgramUnit, ...]

    @property
    def main(self) -> "ProgramUnit":
        for unit in self.units:
            if unit.kind == "program":
                return unit
        raise ValueError("source file has no main program")

    @property
    def subroutines(self) -> dict[str, "ProgramUnit"]:
        return {u.name: u for u in self.units if u.kind == "subroutine"}

    @property
    def functions(self) -> dict[str, "ProgramUnit"]:
        return {u.name: u for u in self.units if u.kind == "function"}


def walk_stmts(stmts):
    """Pre-order traversal of all statements, descending into blocks."""
    for s in stmts:
        yield s
        if isinstance(s, (DoLoop, DoWhile)):
            yield from walk_stmts(s.body)
        elif isinstance(s, IfConstruct):
            for _, arm in s.arms:
                yield from walk_stmts(arm)
            yield from walk_stmts(s.else_body)
        elif isinstance(s, WhereConstruct):
            yield from walk_stmts(s.body)
            yield from walk_stmts(s.elsewhere)
        elif isinstance(s, ForallStmt):
            yield s.assignment


def walk_exprs(e: Expr):
    """Pre-order traversal of an expression tree."""
    yield e
    if isinstance(e, BinExpr):
        yield from walk_exprs(e.left)
        yield from walk_exprs(e.right)
    elif isinstance(e, UnExpr):
        yield from walk_exprs(e.operand)
    elif isinstance(e, ArrayRef):
        for s in e.subscripts:
            yield from walk_exprs(s)
    elif isinstance(e, KeywordArg):
        yield from walk_exprs(e.value)
    elif isinstance(e, SectionRange):
        for part in (e.lo, e.hi, e.stride):
            if part is not None:
                yield from walk_exprs(part)
