"""Fortran 90 front end: lexer, parser, ASTs and intrinsic catalogue."""

from . import ast_nodes
from .lexer import LexError, tokenize
from .parser import ParseError, parse_expression, parse_program, parse_statements

__all__ = [
    "ast_nodes",
    "tokenize",
    "LexError",
    "ParseError",
    "parse_program",
    "parse_statements",
    "parse_expression",
]
