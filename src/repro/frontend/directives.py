"""Layout directives: explicit data layout as a source-level annotation.

Section 5.3.2 suggests "extra modules to provide services from the
runtime system previously taken for granted, such as explicit data
layout."  CM Fortran exposed this as ``CMF$ LAYOUT`` directives; the
reproduction accepts the same idea as comment directives::

    !layout: a(news, serial)

Each axis is either ``news`` (spread across processing elements — the
default) or ``serial`` (kept entirely within each PE's subgrid, so
communication along it is free and the PE grid concentrates on the
other axes).  Directives are comments: the reference semantics are
unchanged; only the machine geometry (and therefore the cost profile)
responds.
"""

from __future__ import annotations

import re

_DIRECTIVE_RE = re.compile(
    r"^\s*!\s*layout\s*:\s*(?P<name>[a-z_]\w*)\s*\(\s*(?P<axes>[^)]*)\)\s*$",
    re.IGNORECASE,
)

VALID_MODES = ("news", "serial")


class DirectiveError(Exception):
    """Raised on malformed layout directives."""


def parse_layout_directives(source: str) -> dict[str, tuple[str, ...]]:
    """Extract ``!layout:`` directives from raw source text.

    Returns a map of array name to per-axis modes.  Raises
    :class:`DirectiveError` on unknown modes; rank agreement with the
    declaration is checked later, at allocation.
    """
    out: dict[str, tuple[str, ...]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _DIRECTIVE_RE.match(line)
        if m is None:
            continue
        name = m.group("name").lower()
        modes = tuple(part.strip().lower().lstrip(":")
                      for part in m.group("axes").split(","))
        for mode in modes:
            if mode not in VALID_MODES:
                raise DirectiveError(
                    f"line {lineno}: unknown layout mode '{mode}' "
                    f"(expected one of {', '.join(VALID_MODES)})")
        out[name] = modes
    return out
