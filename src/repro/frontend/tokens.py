"""Token definitions for the Fortran 90 front end."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    REAL = "real"          # single-precision literal (E exponent or plain)
    DREAL = "dreal"        # double-precision literal (D exponent)
    STRING = "string"
    LOGICAL = "logical"    # .true. / .false.
    OP = "op"              # operators and punctuation
    NEWLINE = "newline"    # statement separator (end of line or ';')
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        if self.kind is TokKind.NEWLINE:
            return "<newline>"
        return self.text

    @property
    def upper(self) -> str:
        return self.text.upper()


# Multi-character operators, longest first so the lexer matches greedily.
OPERATORS = [
    "::", "**", "==", "/=", "<=", ">=", "=>", "(", ")", ",", "=", "+",
    "-", "*", "/", "<", ">", ":", ";", "%",
]

# Dot-delimited operators (case-insensitive).
DOT_OPERATORS = {
    ".eq.": "==",
    ".ne.": "/=",
    ".lt.": "<",
    ".le.": "<=",
    ".gt.": ">",
    ".ge.": ">=",
    ".and.": ".and.",
    ".or.": ".or.",
    ".not.": ".not.",
    ".eqv.": ".eqv.",
    ".neqv.": ".neqv.",
}

DOT_LITERALS = {".true.": "true", ".false.": "false"}
