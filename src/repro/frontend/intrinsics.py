"""Fortran 90 intrinsic procedure catalogue.

Classifies the intrinsics the prototype understands, the way the paper's
compiler does: *elemental* intrinsics compile to node instructions inside
the virtual subgrid loop; *communication* intrinsics (CSHIFT and friends)
become CM runtime library calls; *reductions* become runtime calls whose
results live on the front end.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nir.ops import BinOp, UnOp


@dataclass(frozen=True)
class Intrinsic:
    name: str
    category: str          # 'elemental' | 'communication' | 'reduction'
    min_args: int
    max_args: int
    keywords: tuple[str, ...] = ()  # positional order of keyword names


# Elemental intrinsics mapping to UNARY operators.
UNARY_INTRINSICS: dict[str, UnOp] = {
    "abs": UnOp.ABS,
    "sqrt": UnOp.SQRT,
    "sin": UnOp.SIN,
    "cos": UnOp.COS,
    "tan": UnOp.TAN,
    "asin": UnOp.ASIN,
    "acos": UnOp.ACOS,
    "atan": UnOp.ATAN,
    "exp": UnOp.EXP,
    "log": UnOp.LOG,
    "log10": UnOp.LOG10,
    "floor": UnOp.FLOOR,
    "ceiling": UnOp.CEILING,
    "int": UnOp.TO_INT,
    "real": UnOp.TO_FLOAT32,
    "dble": UnOp.TO_FLOAT64,
}

# Elemental intrinsics mapping to BINARY operators.
BINARY_INTRINSICS: dict[str, BinOp] = {
    "mod": BinOp.MOD,
    "min": BinOp.MIN,
    "max": BinOp.MAX,
}

# merge(tsource, fsource, mask) is elemental but three-argument; it lowers
# to a masked pair of MOVE clauses.
SPECIAL_ELEMENTAL = {"merge"}

COMMUNICATION = {
    "cshift": Intrinsic("cshift", "communication", 2, 3,
                        ("array", "shift", "dim")),
    "eoshift": Intrinsic("eoshift", "communication", 2, 4,
                         ("array", "shift", "boundary", "dim")),
    "transpose": Intrinsic("transpose", "communication", 1, 1, ("matrix",)),
    "spread": Intrinsic("spread", "communication", 3, 3,
                        ("source", "dim", "ncopies")),
}

REDUCTIONS = {
    "sum": Intrinsic("sum", "reduction", 1, 2, ("array", "dim")),
    "product": Intrinsic("product", "reduction", 1, 2, ("array", "dim")),
    "maxval": Intrinsic("maxval", "reduction", 1, 2, ("array", "dim")),
    "minval": Intrinsic("minval", "reduction", 1, 2, ("array", "dim")),
    "count": Intrinsic("count", "reduction", 1, 2, ("mask", "dim")),
    "any": Intrinsic("any", "reduction", 1, 2, ("mask", "dim")),
    "all": Intrinsic("all", "reduction", 1, 2, ("mask", "dim")),
}

INQUIRY = {"size", "shape", "lbound", "ubound"}


def is_intrinsic(name: str) -> bool:
    name = name.lower()
    return (
        name in UNARY_INTRINSICS
        or name in BINARY_INTRINSICS
        or name in SPECIAL_ELEMENTAL
        or name in COMMUNICATION
        or name in REDUCTIONS
        or name in INQUIRY
    )


def category_of(name: str) -> str:
    """The compilation category of an intrinsic name."""
    name = name.lower()
    if name in UNARY_INTRINSICS or name in BINARY_INTRINSICS \
            or name in SPECIAL_ELEMENTAL:
        return "elemental"
    if name in COMMUNICATION:
        return "communication"
    if name in REDUCTIONS:
        return "reduction"
    if name in INQUIRY:
        return "inquiry"
    raise KeyError(f"not an intrinsic: {name}")


def normalize_args(intr: Intrinsic, positional, keyword) -> list:
    """Arrange positional + keyword actual arguments into signature order.

    Returns a list as long as ``intr.max_args`` with ``None`` for omitted
    optionals.  Raises ``ValueError`` on arity or keyword errors.
    """
    slots: list = [None] * intr.max_args
    if len(positional) > intr.max_args:
        raise ValueError(f"{intr.name}: too many arguments")
    for i, arg in enumerate(positional):
        slots[i] = arg
    for kw, arg in keyword.items():
        kw = kw.lower()
        if kw not in intr.keywords:
            raise ValueError(f"{intr.name}: unknown keyword '{kw}'")
        idx = intr.keywords.index(kw)
        if slots[idx] is not None:
            raise ValueError(f"{intr.name}: duplicate argument '{kw}'")
        slots[idx] = arg
    required = slots[: intr.min_args]
    if any(a is None for a in required):
        raise ValueError(f"{intr.name}: missing required argument")
    return slots
