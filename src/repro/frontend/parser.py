"""Recursive-descent parser for the Fortran 90 subset.

Produces :mod:`repro.frontend.ast_nodes` trees.  Handles both Fortran 90
block forms (``DO ... END DO``, ``IF ... END IF``, ``WHERE``, ``FORALL``)
and the labelled Fortran 77 forms used in the paper's examples
(``DO 10 I=1,128`` ... ``10 CONTINUE``).
"""

from __future__ import annotations

from ..sourceloc import SourceLoc
from . import ast_nodes as A
from .lexer import tokenize
from .tokens import TokKind, Token


class ParseError(Exception):
    """Raised on syntax errors, with source position."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}: {message} (near {token!s})")
        self.token = token


_TYPE_KEYWORDS = {"INTEGER", "REAL", "LOGICAL", "DOUBLE", "DOUBLEPRECISION"}

_BLOCK_ENDERS = {
    "END", "ENDDO", "ENDIF", "ENDWHERE", "ELSE", "ELSEWHERE", "ELSEIF",
    "ENDPROGRAM", "ENDFORALL", "ENDSUBROUTINE", "ENDFUNCTION",
}


def parse_source(source: str) -> A.SourceFile:
    """Parse a whole source file: one main program plus subroutines."""
    return Parser(tokenize(source)).parse_source()


def parse_program(source: str) -> A.ProgramUnit:
    """Parse source text to an executable main PROGRAM unit.

    Subroutine units, if present, are inline-expanded into the main
    program (call-by-reference for variable actuals, call-by-value
    temporaries for expression actuals), so the result is a single
    self-contained unit — the form every later phase consumes.
    """
    source_file = Parser(tokenize(source)).parse_source()
    if len(source_file.units) == 1 \
            and source_file.units[0].kind == "program":
        return source_file.units[0]
    from .inline import inline_program

    return inline_program(source_file)


def parse_statements(source: str) -> tuple[A.Stmt, ...]:
    """Parse a bare statement sequence (no PROGRAM wrapper); test helper."""
    p = Parser(tokenize(source))
    decls, stmts = p.parse_body(stop=lambda kw: kw == "<eof>")
    if decls:
        raise ParseError("declarations not allowed here", p.peek())
    return stmts


def parse_expression(source: str) -> A.Expr:
    """Parse a single expression; test helper."""
    p = Parser(tokenize(source))
    e = p.parse_expr()
    p.skip_newlines()
    p.expect_kind(TokKind.EOF)
    return e


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        i = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def at_op(self, text: str) -> bool:
        t = self.peek()
        return t.kind is TokKind.OP and t.text == text

    def accept_op(self, text: str) -> bool:
        if self.at_op(text):
            self.next()
            return True
        return False

    def expect_op(self, text: str) -> Token:
        if not self.at_op(text):
            raise ParseError(f"expected '{text}'", self.peek())
        return self.next()

    def at_keyword(self, *words: str) -> bool:
        t = self.peek()
        return t.kind is TokKind.IDENT and t.upper in words

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.next()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise ParseError(f"expected {word}", self.peek())
        return self.next()

    def expect_kind(self, kind: TokKind) -> Token:
        if self.peek().kind is not kind:
            raise ParseError(f"expected {kind.value}", self.peek())
        return self.next()

    def expect_ident(self) -> Token:
        return self.expect_kind(TokKind.IDENT)

    def skip_newlines(self) -> None:
        while self.peek().kind is TokKind.NEWLINE:
            self.next()

    def end_statement(self) -> None:
        t = self.peek()
        if t.kind is TokKind.EOF:
            return
        if t.kind is not TokKind.NEWLINE:
            raise ParseError("expected end of statement", t)
        self.skip_newlines()

    # -- program structure --------------------------------------------------

    def parse_source(self) -> A.SourceFile:
        units: list[A.ProgramUnit] = []
        self.skip_newlines()
        while self.peek().kind is not TokKind.EOF:
            units.append(self.parse_unit())
            self.skip_newlines()
        if not units:
            units.append(A.ProgramUnit(name="main", decls=(), body=()))
        return A.SourceFile(units=tuple(units))

    def parse_program(self) -> A.ProgramUnit:
        return self.parse_unit()

    def parse_unit(self) -> A.ProgramUnit:
        self.skip_newlines()
        name = "main"
        kind = "program"
        params: tuple[str, ...] = ()
        if self.accept_keyword("PROGRAM"):
            name = self.expect_ident().text.lower()
            self.end_statement()
        elif self.at_keyword("SUBROUTINE"):
            self.next()
            kind = "subroutine"
            name = self.expect_ident().text.lower()
            params = self._parse_formals()
            self.end_statement()
        elif self._at_function_header():
            base = None
            if not self.at_keyword("FUNCTION"):
                base = self._parse_type_spec()
            self.expect_keyword("FUNCTION")
            kind = "function"
            name = self.expect_ident().text.lower()
            params = self._parse_formals()
            self.end_statement()
            decls, stmts = self.parse_body(stop=self._at_unit_end)
            self._consume_unit_end()
            if base is not None:
                # A result-type prefix declares the function name.
                decls = (A.TypeDecl(base=base,
                                    entities=(A.Entity(name=name),)),
                         ) + decls
            return A.ProgramUnit(name=name, decls=decls, body=stmts,
                                 kind=kind, params=params)
        decls, stmts = self.parse_body(stop=self._at_unit_end)
        self._consume_unit_end()
        return A.ProgramUnit(name=name, decls=decls, body=stmts,
                             kind=kind, params=params)

    def _parse_formals(self) -> tuple[str, ...]:
        if not self.accept_op("("):
            return ()
        formals: list[str] = []
        if not self.at_op(")"):
            formals.append(self.expect_ident().text.lower())
            while self.accept_op(","):
                formals.append(self.expect_ident().text.lower())
        self.expect_op(")")
        return tuple(formals)

    def _at_function_header(self) -> bool:
        """FUNCTION f(...) or <type> FUNCTION f(...)."""
        if self.at_keyword("FUNCTION"):
            return True
        t = self.peek()
        if t.kind is not TokKind.IDENT or t.upper not in _TYPE_KEYWORDS:
            return False
        j = 1
        if t.upper == "DOUBLE":
            if self.peek(1).kind is TokKind.IDENT \
                    and self.peek(1).upper == "PRECISION":
                j = 2
            else:
                return False
        t2 = self.peek(j)
        return t2.kind is TokKind.IDENT and t2.upper == "FUNCTION"

    def _at_unit_end(self, kw: str) -> bool:
        return kw in ("END", "ENDPROGRAM", "ENDSUBROUTINE",
                      "ENDFUNCTION", "<eof>")

    def _consume_unit_end(self) -> None:
        if self.peek().kind is TokKind.EOF:
            return
        if self.accept_keyword("ENDPROGRAM") \
                or self.accept_keyword("ENDSUBROUTINE") \
                or self.accept_keyword("ENDFUNCTION") \
                or self.accept_keyword("END"):
            # END [PROGRAM|SUBROUTINE|FUNCTION [name]]
            self.accept_keyword("PROGRAM")
            self.accept_keyword("SUBROUTINE")
            self.accept_keyword("FUNCTION")
            if self.peek().kind is TokKind.IDENT:
                self.next()
            self.end_statement()

    def parse_body(self, stop):
        """Parse declarations then statements until ``stop(keyword)``.

        Returns ``(decls, stmts)``.  ``stop`` receives the upper-cased
        leading keyword of each statement ("<eof>" at end of input).
        """
        decls: list[A.TypeDecl] = []
        stmts: list[A.Stmt] = []
        self.skip_newlines()
        while True:
            kw = self._leading_keyword()
            if stop(kw):
                break
            if not stmts and kw in _TYPE_KEYWORDS and self._is_declaration():
                decls.append(self.parse_declaration())
            elif kw == "PARAMETER":
                self._parse_parameter_stmt(decls)
            else:
                stmt = self.parse_statement()
                if isinstance(stmt, _Labelled):
                    stmt = stmt.stmt
                stmts.append(stmt)
            self.skip_newlines()
        return tuple(decls), tuple(stmts)

    def _leading_keyword(self) -> str:
        t = self.peek()
        if t.kind is TokKind.EOF:
            return "<eof>"
        if t.kind is TokKind.INT:  # statement label
            t = self.peek(1)
        if t.kind is not TokKind.IDENT:
            return ""
        kw = t.upper
        # Join two-word enders/types: END DO, END IF, DOUBLE PRECISION, ...
        j = 1 + (1 if self.peek().kind is TokKind.INT else 0)
        t2 = self.peek(j)
        if t2.kind is TokKind.IDENT:
            joined = kw + t2.upper
            if joined in _BLOCK_ENDERS or joined in ("DOUBLEPRECISION",):
                return joined
        return kw

    def _is_declaration(self) -> bool:
        """Disambiguate ``REAL x`` (decl) from assignments like ``real = 1``."""
        t1 = self.peek(1)
        if self.peek().upper in ("DOUBLE",) and t1.kind is TokKind.IDENT \
                and t1.upper == "PRECISION":
            return True
        if t1.kind is TokKind.OP and t1.text in ("=", "("):
            # "INTEGER(KIND=4) :: x" is a decl; "integer = 3" is not.
            return t1.text == "(" and self._scan_decl_colons()
        return True

    def _scan_decl_colons(self) -> bool:
        # Look ahead for '::' before the newline.
        i = self.pos
        while i < len(self.tokens):
            t = self.tokens[i]
            if t.kind is TokKind.NEWLINE or t.kind is TokKind.EOF:
                return False
            if t.kind is TokKind.OP and t.text == "::":
                return True
            i += 1
        return False

    # -- declarations ---------------------------------------------------------

    def parse_declaration(self) -> A.TypeDecl:
        line = self.peek().line
        base = self._parse_type_spec()
        dims: tuple[A.Expr, ...] = ()
        parameter = False
        # Attribute list: ", ARRAY(...)", ", DIMENSION(...)", ", PARAMETER"
        while self.accept_op(","):
            attr = self.expect_ident().upper
            if attr in ("ARRAY", "DIMENSION"):
                self.expect_op("(")
                dims = self._parse_dim_list()
                self.expect_op(")")
            elif attr == "PARAMETER":
                parameter = True
            elif attr in ("INTENT", "SAVE"):
                if self.accept_op("("):
                    while not self.accept_op(")"):
                        self.next()
            else:
                raise ParseError(f"unsupported attribute {attr}", self.peek())
        self.accept_op("::")
        entities = [self._parse_entity()]
        while self.accept_op(","):
            entities.append(self._parse_entity())
        self.end_statement()
        return A.TypeDecl(base=base, entities=tuple(entities), dims=dims,
                          parameter=parameter, line=line)

    def _parse_type_spec(self) -> str:
        t = self.expect_ident()
        kw = t.upper
        if kw == "DOUBLE":
            self.expect_keyword("PRECISION")
            return "double"
        if kw == "DOUBLEPRECISION":
            return "double"
        if kw in ("INTEGER", "REAL", "LOGICAL"):
            # Optional kind selector: REAL(KIND=8) / REAL(8).
            if self.at_op("("):
                self.next()
                kind_val: A.Expr | None = None
                if self.at_keyword("KIND"):
                    self.next()
                    self.expect_op("=")
                kind_val = self.parse_expr()
                self.expect_op(")")
                if (kw == "REAL" and isinstance(kind_val, A.IntLit)
                        and kind_val.value == 8):
                    return "double"
            return kw.lower()
        raise ParseError(f"unknown type {t.text}", t)

    def _parse_dim_list(self) -> tuple[A.Expr, ...]:
        dims = [self.parse_expr()]
        while self.accept_op(","):
            dims.append(self.parse_expr())
        return tuple(dims)

    def _parse_entity(self) -> A.Entity:
        name = self.expect_ident().text.lower()
        dims: tuple[A.Expr, ...] = ()
        init: A.Expr | None = None
        if self.accept_op("("):
            dims = self._parse_dim_list()
            self.expect_op(")")
        if self.accept_op("="):
            init = self.parse_expr()
        return A.Entity(name=name, dims=dims, init=init)

    def _parse_parameter_stmt(self, decls: list[A.TypeDecl]) -> None:
        """F77 ``PARAMETER (N=64, M=128)``: retrofit init onto prior decls."""
        self.expect_keyword("PARAMETER")
        self.expect_op("(")
        assigns: list[tuple[str, A.Expr]] = []
        while True:
            name = self.expect_ident().text.lower()
            self.expect_op("=")
            assigns.append((name, self.parse_expr()))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        self.end_statement()
        by_name = dict(assigns)
        for i, decl in enumerate(decls):
            hit = any(e.name in by_name for e in decl.entities)
            if not hit:
                continue
            new_entities = tuple(
                A.Entity(e.name, e.dims, by_name.get(e.name, e.init))
                for e in decl.entities
            )
            decls[i] = A.TypeDecl(decl.base, new_entities, decl.dims,
                                  parameter=True, line=decl.line)

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> A.Stmt:
        label: int | None = None
        if self.peek().kind is TokKind.INT:
            label = int(self.next().text)
        stmt = self._parse_unlabelled_statement()
        if label is not None:
            stmt = _Labelled(label, stmt)  # unwrapped by labelled-DO parsing
        return stmt

    def _parse_unlabelled_statement(self) -> A.Stmt:
        t = self.peek()
        line = t.line
        if t.kind is not TokKind.IDENT:
            raise ParseError("expected a statement", t)
        kw = t.upper

        if kw == "DO":
            return self._parse_do(line)
        if kw == "IF":
            return self._parse_if(line)
        if kw == "WHERE":
            return self._parse_where(line)
        if kw == "FORALL":
            return self._parse_forall(line)
        if kw == "CALL":
            self.next()
            name = self.expect_ident().text.lower()
            args: tuple[A.Expr, ...] = ()
            if self.accept_op("("):
                args = self._parse_arg_list()
                self.expect_op(")")
            self.end_statement()
            return A.CallStmt(name=name, args=args, line=line)
        if kw == "PRINT":
            self.next()
            self.expect_op("*")
            items: list[A.Expr] = []
            while self.accept_op(","):
                items.append(self.parse_expr())
            self.end_statement()
            return A.PrintStmt(items=tuple(items), line=line)
        if kw == "CONTINUE":
            self.next()
            self.end_statement()
            return A.ContinueStmt(line=line)
        if kw == "RETURN":
            self.next()
            self.end_statement()
            return A.ReturnStmt(line=line)
        if kw == "STOP":
            self.next()
            if self.peek().kind in (TokKind.INT, TokKind.STRING):
                self.next()
            self.end_statement()
            return A.StopStmt(line=line)

        return self._parse_assignment(line)

    def _parse_assignment(self, line: int) -> A.Assignment:
        target = self._parse_designator()
        self.expect_op("=")
        expr = self.parse_expr()
        self.end_statement()
        return A.Assignment(target=target, expr=expr, line=line)

    def _parse_designator(self) -> A.Expr:
        t = self.peek()
        name = self.expect_ident().text.lower()
        loc = SourceLoc(t.line, t.col)
        if self.accept_op("("):
            subs = self._parse_arg_list()
            self.expect_op(")")
            return A.ArrayRef(name=name, subscripts=subs, loc=loc)
        return A.VarRef(name=name, loc=loc)

    # DO loops ---------------------------------------------------------------

    def _parse_do(self, line: int) -> A.Stmt:
        self.expect_keyword("DO")
        # DO WHILE (cond)
        if self.at_keyword("WHILE"):
            self.next()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            self.end_statement()
            body = self._parse_block(until={"ENDDO"})
            self._consume_end("DO")
            return A.DoWhile(cond=cond, body=body, line=line)

        term_label: int | None = None
        if self.peek().kind is TokKind.INT:
            term_label = int(self.next().text)
        var = self.expect_ident().text.lower()
        self.expect_op("=")
        lo = self.parse_expr()
        self.expect_op(",")
        hi = self.parse_expr()
        step = None
        if self.accept_op(","):
            step = self.parse_expr()
        self.end_statement()

        if term_label is None:
            body = self._parse_block(until={"ENDDO"})
            self._consume_end("DO")
        else:
            body = self._parse_labelled_body(term_label)
        return A.DoLoop(var=var, lo=lo, hi=hi, step=step, body=body,
                        line=line)

    def _parse_labelled_body(self, term_label: int) -> tuple[A.Stmt, ...]:
        stmts: list[A.Stmt] = []
        while True:
            self.skip_newlines()
            if self.peek().kind is TokKind.EOF:
                raise ParseError(
                    f"missing terminator label {term_label}", self.peek())
            stmt = self.parse_statement()
            if isinstance(stmt, _Labelled) and stmt.label == term_label:
                if not isinstance(stmt.stmt, A.ContinueStmt):
                    stmts.append(stmt.stmt)
                return tuple(stmts)
            if isinstance(stmt, _Labelled):
                stmt = stmt.stmt
            stmts.append(stmt)

    # IF ---------------------------------------------------------------------

    def _parse_if(self, line: int) -> A.Stmt:
        self.expect_keyword("IF")
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        if not self.at_keyword("THEN"):
            # Logical IF: one trailing statement on the same line.
            stmt = self._parse_unlabelled_statement()
            return A.IfConstruct(arms=((cond, (stmt,)),), line=line)
        self.next()
        self.end_statement()
        arms: list[tuple[A.Expr, tuple[A.Stmt, ...]]] = []
        body = self._parse_block(until={"ELSE", "ELSEIF", "ENDIF"})
        arms.append((cond, body))
        else_body: tuple[A.Stmt, ...] = ()
        while True:
            kw = self._leading_keyword()
            if kw == "ELSEIF":
                self._consume_joined("ELSE", "IF")
                self.expect_op("(")
                c = self.parse_expr()
                self.expect_op(")")
                self.expect_keyword("THEN")
                self.end_statement()
                arms.append(
                    (c, self._parse_block(until={"ELSE", "ELSEIF", "ENDIF"})))
            elif kw == "ELSE":
                self.next()
                self.end_statement()
                else_body = self._parse_block(until={"ENDIF"})
            elif kw == "ENDIF":
                self._consume_end("IF")
                break
            else:
                raise ParseError("expected ELSE/END IF", self.peek())
        return A.IfConstruct(arms=tuple(arms), else_body=else_body, line=line)

    # WHERE --------------------------------------------------------------------

    def _parse_where(self, line: int) -> A.Stmt:
        self.expect_keyword("WHERE")
        self.expect_op("(")
        mask = self.parse_expr()
        self.expect_op(")")
        if self.peek().kind is not TokKind.NEWLINE:
            # Statement form: WHERE (mask) a = b
            assignment = self._parse_assignment(line)
            return A.WhereConstruct(mask=mask, body=(assignment,), line=line)
        self.end_statement()
        body = self._parse_assign_block(until={"ELSEWHERE", "ENDWHERE"})
        elsewhere: tuple[A.Assignment, ...] = ()
        if self._leading_keyword() == "ELSEWHERE":
            self.next()
            self.end_statement()
            elsewhere = self._parse_assign_block(until={"ENDWHERE"})
        self._consume_end("WHERE")
        return A.WhereConstruct(mask=mask, body=body, elsewhere=elsewhere,
                                line=line)

    def _parse_assign_block(self, until) -> tuple[A.Assignment, ...]:
        out: list[A.Assignment] = []
        while True:
            self.skip_newlines()
            if self._leading_keyword() in until:
                return tuple(out)
            stmt = self.parse_statement()
            if isinstance(stmt, _Labelled):
                stmt = stmt.stmt
            if not isinstance(stmt, A.Assignment):
                raise ParseError("only assignments allowed in WHERE",
                                 self.peek())
            out.append(stmt)

    # FORALL -------------------------------------------------------------------

    def _parse_forall(self, line: int) -> A.Stmt:
        self.expect_keyword("FORALL")
        self.expect_op("(")
        triplets: list[A.ForallTriplet] = []
        mask: A.Expr | None = None
        while True:
            if (self.peek().kind is TokKind.IDENT
                    and self.peek(1).kind is TokKind.OP
                    and self.peek(1).text == "="):
                var = self.expect_ident().text.lower()
                self.expect_op("=")
                lo = self.parse_expr()
                self.expect_op(":")
                hi = self.parse_expr()
                stride = None
                if self.accept_op(":"):
                    stride = self.parse_expr()
                triplets.append(A.ForallTriplet(var, lo, hi, stride))
            else:
                mask = self.parse_expr()
            if not self.accept_op(","):
                break
        self.expect_op(")")
        if self.peek().kind is TokKind.NEWLINE:
            self.end_statement()
            assigns = self._parse_assign_block(until={"ENDFORALL"})
            self._consume_end("FORALL")
            if len(assigns) != 1:
                raise ParseError("FORALL blocks must hold one assignment",
                                 self.peek())
            assignment = assigns[0]
        else:
            assignment = self._parse_assignment(line)
        return A.ForallStmt(triplets=tuple(triplets), assignment=assignment,
                            mask=mask, line=line)

    # Block plumbing -------------------------------------------------------------

    def _parse_block(self, until: set[str]) -> tuple[A.Stmt, ...]:
        stmts: list[A.Stmt] = []
        while True:
            self.skip_newlines()
            kw = self._leading_keyword()
            if kw in until:
                return tuple(stmts)
            if kw == "<eof>":
                raise ParseError("unexpected end of input", self.peek())
            stmt = self.parse_statement()
            if isinstance(stmt, _Labelled):
                stmt = stmt.stmt
            stmts.append(stmt)

    def _consume_end(self, which: str) -> None:
        if self.accept_keyword("END" + which):
            self.end_statement()
            return
        self.expect_keyword("END")
        self.expect_keyword(which)
        self.end_statement()

    def _consume_joined(self, first: str, second: str) -> None:
        if self.accept_keyword(first + second):
            return
        self.expect_keyword(first)
        self.expect_keyword(second)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self._parse_or()

    def _parse_or(self) -> A.Expr:
        left = self._parse_and()
        while self.at_op(".or.") or self.at_op(".eqv.") or self.at_op(".neqv."):
            op = self.next().text
            left = A.BinExpr(op, left, self._parse_and(), loc=left.loc)
        return left

    def _parse_and(self) -> A.Expr:
        left = self._parse_not()
        while self.at_op(".and."):
            self.next()
            left = A.BinExpr(".and.", left, self._parse_not(), loc=left.loc)
        return left

    def _parse_not(self) -> A.Expr:
        if self.at_op(".not."):
            t = self.peek()
            self.next()
            return A.UnExpr(".not.", self._parse_not(),
                            loc=SourceLoc(t.line, t.col))
        return self._parse_relational()

    def _parse_relational(self) -> A.Expr:
        left = self._parse_addsub()
        for op in ("==", "/=", "<=", ">=", "<", ">"):
            if self.at_op(op):
                self.next()
                return A.BinExpr(op, left, self._parse_addsub(),
                                 loc=left.loc)
        return left

    def _parse_addsub(self) -> A.Expr:
        if self.at_op("-") or self.at_op("+"):
            t = self.peek()
            op = self.next().text
            operand = self._parse_term()
            left: A.Expr = operand if op == "+" \
                else A.UnExpr("-", operand, loc=SourceLoc(t.line, t.col))
        else:
            left = self._parse_term()
        while self.at_op("+") or self.at_op("-"):
            op = self.next().text
            left = A.BinExpr(op, left, self._parse_term(), loc=left.loc)
        return left

    def _parse_term(self) -> A.Expr:
        left = self._parse_factor()
        while self.at_op("*") or self.at_op("/"):
            op = self.next().text
            left = A.BinExpr(op, left, self._parse_factor(), loc=left.loc)
        return left

    def _parse_factor(self) -> A.Expr:
        base = self._parse_primary()
        if self.at_op("**"):
            self.next()
            # '**' is right-associative; unary minus binds looser.
            if self.at_op("-"):
                self.next()
                return A.BinExpr(
                    "**", base,
                    A.UnExpr("-", self._parse_factor(), loc=base.loc),
                    loc=base.loc)
            return A.BinExpr("**", base, self._parse_factor(), loc=base.loc)
        return base

    def _parse_primary(self) -> A.Expr:
        t = self.peek()
        loc = SourceLoc(t.line, t.col)
        if t.kind is TokKind.INT:
            self.next()
            return A.IntLit(int(t.text), loc=loc)
        if t.kind is TokKind.REAL:
            self.next()
            return A.RealLit(float(t.text.lower().replace("d", "e")),
                             loc=loc)
        if t.kind is TokKind.DREAL:
            self.next()
            return A.RealLit(float(t.text.lower().replace("d", "e")),
                             double=True, loc=loc)
        if t.kind is TokKind.LOGICAL:
            self.next()
            return A.LogicalLit(t.text.lower() == "true", loc=loc)
        if t.kind is TokKind.STRING:
            self.next()
            return A.StringLit(t.text, loc=loc)
        if t.kind is TokKind.IDENT:
            return self._parse_designator()
        if self.accept_op("("):
            e = self.parse_expr()
            self.expect_op(")")
            return e
        if self.at_op("-") or self.at_op("+"):
            op = self.next().text
            operand = self._parse_factor()
            return operand if op == "+" else A.UnExpr("-", operand, loc=loc)
        raise ParseError("expected an expression", t)

    def _parse_arg_list(self) -> tuple[A.Expr, ...]:
        if self.at_op(")"):
            return ()
        args = [self._parse_arg_item()]
        while self.accept_op(","):
            args.append(self._parse_arg_item())
        return tuple(args)

    def _parse_arg_item(self) -> A.Expr:
        t = self.peek()
        loc = SourceLoc(t.line, t.col)
        # Keyword argument: IDENT '=' expr (DIM=1).
        if (self.peek().kind is TokKind.IDENT
                and self.peek(1).kind is TokKind.OP
                and self.peek(1).text == "="):
            name = self.next().text.lower()
            self.next()
            return A.KeywordArg(name, self.parse_expr(), loc=loc)
        # Section triplet: [expr] ':' [expr] [':' expr]
        lo: A.Expr | None = None
        if not self.at_op(":"):
            lo = self.parse_expr()
            if not self.at_op(":"):
                return lo
        self.expect_op(":")
        hi: A.Expr | None = None
        if not (self.at_op(":") or self.at_op(",") or self.at_op(")")):
            hi = self.parse_expr()
        stride: A.Expr | None = None
        if self.accept_op(":"):
            stride = self.parse_expr()
        return A.SectionRange(lo=lo, hi=hi, stride=stride, loc=loc)


class _Labelled(A.Stmt):
    """Internal wrapper carrying a numeric statement label."""

    def __init__(self, label: int, stmt: A.Stmt) -> None:
        self.label = label
        self.stmt = stmt
