"""Subroutine inline expansion: parameter passing at the AST level.

NIR's value and imperative domains carry the parameter-passing operators
``REF_IN``/``COPY_IN``/``REF_OUT``/``COPY_OUT`` (Figure 5).  The
prototype realizes them by inline expansion before lowering:

* a *variable* actual argument binds by reference (``REF_IN``): the
  formal is renamed to the actual throughout the callee body, so stores
  are visible to the caller;
* an *expression* actual binds by value (``COPY_IN``): a fresh temporary
  receives the value and substitutes for the formal (callee stores land
  in the discarded temporary, matching Fortran's rule that such actuals
  must not be redefined);
* callee locals are renamed apart (``<name>_<sub><k>``);
* a FUNCTION reference in an expression hoists an inlined body computing
  into a fresh result temporary (the function-name variable, renamed),
  emitted before the statement — with lazily-re-evaluated positions
  (DO WHILE conditions, later ELSE IF arms, FORALL bodies) rejected
  rather than silently evaluated eagerly.

Only trailing RETURNs are supported, and recursion is rejected (the
paper's prototype likewise compiled an "interesting subset").
"""

from __future__ import annotations

import dataclasses

from . import ast_nodes as A


class InlineError(Exception):
    """Raised for unsupported call forms or arity errors."""


_MAX_DEPTH = 16


def inline_program(source_file: A.SourceFile) -> A.ProgramUnit:
    """Expand every subroutine CALL and function reference into main."""
    inliner = Inliner(source_file.subroutines, source_file.functions)
    main = source_file.main
    body = inliner.expand_block(main.body, depth=0)
    decls = main.decls + tuple(inliner.new_decls)
    return A.ProgramUnit(name=main.name, decls=decls, body=body,
                         kind="program")


class Inliner:
    def __init__(self, subroutines: dict[str, A.ProgramUnit],
                 functions: dict[str, A.ProgramUnit] | None = None) -> None:
        self.subroutines = subroutines
        self.functions = functions or {}
        self.new_decls: list[A.TypeDecl] = []
        self._counter = 0

    # ------------------------------------------------------------------

    def expand_block(self, stmts, depth: int) -> tuple[A.Stmt, ...]:
        out: list[A.Stmt] = []
        for stmt in stmts:
            out.extend(self.expand_stmt(stmt, depth))
        return tuple(out)

    def expand_stmt(self, stmt: A.Stmt, depth: int) -> list[A.Stmt]:
        prelude, stmt = self._hoist_functions(stmt, depth)
        if prelude:
            out = list(prelude)
            out.extend(self.expand_stmt_after_hoist(stmt, depth))
            return out
        return self.expand_stmt_after_hoist(stmt, depth)

    def expand_stmt_after_hoist(self, stmt: A.Stmt,
                                depth: int) -> list[A.Stmt]:
        if isinstance(stmt, A.CallStmt) and stmt.name in self.subroutines:
            return list(self.expand_call(stmt, depth))
        if isinstance(stmt, A.DoLoop):
            return [dataclasses.replace(
                stmt, body=self.expand_block(stmt.body, depth))]
        if isinstance(stmt, A.DoWhile):
            return [dataclasses.replace(
                stmt, body=self.expand_block(stmt.body, depth))]
        if isinstance(stmt, A.IfConstruct):
            arms = tuple((cond, self.expand_block(body, depth))
                         for cond, body in stmt.arms)
            return [dataclasses.replace(
                stmt, arms=arms,
                else_body=self.expand_block(stmt.else_body, depth))]
        return [stmt]

    # -- function reference expansion ------------------------------------

    def _contains_function_call(self, expr: A.Expr) -> bool:
        return any(isinstance(e, A.ArrayRef) and e.name in self.functions
                   for e in A.walk_exprs(expr))

    def _hoist_functions(self, stmt: A.Stmt, depth: int
                         ) -> tuple[list[A.Stmt], A.Stmt]:
        """Replace function references in a statement's expressions.

        Each reference becomes an inlined body computing into a fresh
        result temporary, emitted before the statement.  Forms whose
        expressions are re-evaluated lazily (DO WHILE conditions, later
        ELSE IF arms, FORALL bodies) reject function references rather
        than silently changing evaluation order.
        """
        if not self.functions:
            return [], stmt
        prelude: list[A.Stmt] = []

        def rewrite(expr: A.Expr) -> A.Expr:
            if isinstance(expr, A.ArrayRef) and expr.name in self.functions:
                args = tuple(rewrite(a) for a in expr.subscripts)
                return self._expand_function(expr.name, args, prelude,
                                             depth)
            if isinstance(expr, A.ArrayRef):
                return A.ArrayRef(expr.name,
                                  tuple(rewrite(a) for a in expr.subscripts))
            if isinstance(expr, A.BinExpr):
                return A.BinExpr(expr.op, rewrite(expr.left),
                                 rewrite(expr.right))
            if isinstance(expr, A.UnExpr):
                return A.UnExpr(expr.op, rewrite(expr.operand))
            if isinstance(expr, A.KeywordArg):
                return A.KeywordArg(expr.name, rewrite(expr.value))
            if isinstance(expr, A.SectionRange):
                def part(e):
                    return None if e is None else rewrite(e)
                return A.SectionRange(part(expr.lo), part(expr.hi),
                                      part(expr.stride))
            return expr

        if isinstance(stmt, A.Assignment):
            new = A.Assignment(rewrite(stmt.target), rewrite(stmt.expr),
                               stmt.line)
            return prelude, new
        if isinstance(stmt, A.CallStmt):
            return prelude, A.CallStmt(stmt.name,
                                       tuple(rewrite(a) for a in stmt.args),
                                       stmt.line)
        if isinstance(stmt, A.PrintStmt):
            return prelude, A.PrintStmt(
                tuple(rewrite(e) for e in stmt.items), stmt.line)
        if isinstance(stmt, A.DoLoop):
            new = A.DoLoop(stmt.var, rewrite(stmt.lo), rewrite(stmt.hi),
                           None if stmt.step is None else rewrite(stmt.step),
                           stmt.body, stmt.line)
            return prelude, new
        if isinstance(stmt, A.DoWhile):
            if self._contains_function_call(stmt.cond):
                raise InlineError(
                    "function references in DO WHILE conditions are not "
                    "supported (re-evaluated each iteration)")
            return [], stmt
        if isinstance(stmt, A.IfConstruct):
            first_cond, first_body = stmt.arms[0]
            for cond, _ in stmt.arms[1:]:
                if self._contains_function_call(cond):
                    raise InlineError(
                        "function references in ELSE IF conditions are "
                        "not supported (evaluated lazily)")
            arms = ((rewrite(first_cond), first_body),) + stmt.arms[1:]
            return prelude, A.IfConstruct(arms, stmt.else_body, stmt.line)
        if isinstance(stmt, A.WhereConstruct):
            body = tuple(self._hoisted_assign(a, prelude, depth)
                         for a in stmt.body)
            elsewhere = tuple(self._hoisted_assign(a, prelude, depth)
                              for a in stmt.elsewhere)
            return prelude, A.WhereConstruct(rewrite(stmt.mask), body,
                                             elsewhere, stmt.line)
        if isinstance(stmt, A.ForallStmt):
            for e in A.walk_exprs(stmt.assignment.expr):
                if isinstance(e, A.ArrayRef) and e.name in self.functions:
                    raise InlineError(
                        "function references inside FORALL are not "
                        "supported (per-point evaluation)")
            return [], stmt
        return [], stmt

    def _hoisted_assign(self, a: A.Assignment, prelude: list[A.Stmt],
                        depth: int) -> A.Assignment:
        extra, new = self._hoist_functions(a, depth)
        prelude.extend(extra)
        return new

    def _expand_function(self, name: str, args, prelude: list[A.Stmt],
                         depth: int) -> A.Expr:
        if depth >= _MAX_DEPTH:
            raise InlineError(
                f"function '{name}' exceeds inline depth {_MAX_DEPTH} "
                f"(recursion is not supported)")
        fn = self.functions[name]
        call = A.CallStmt(name=name, args=tuple(args))
        # Reuse the subroutine machinery, treating the function name as
        # an extra by-value local that receives the result.
        stmts, result_temp = self._expand_unit(fn, call, depth,
                                               result_name=name)
        prelude.extend(stmts)
        return A.VarRef(result_temp)

    # ------------------------------------------------------------------

    def expand_call(self, call: A.CallStmt, depth: int):
        if depth >= _MAX_DEPTH:
            raise InlineError(
                f"call to '{call.name}' exceeds inline depth "
                f"{_MAX_DEPTH} (recursion is not supported)")
        stmts, _ = self._expand_unit(self.subroutines[call.name], call,
                                     depth, result_name=None)
        return tuple(stmts)

    def _expand_unit(self, sub: A.ProgramUnit, call: A.CallStmt,
                     depth: int, result_name: str | None
                     ) -> tuple[list[A.Stmt], str]:
        if len(call.args) != len(sub.params):
            raise InlineError(
                f"'{call.name}' expects {len(sub.params)} arguments, "
                f"got {len(call.args)}")
        self._counter += 1
        tag = f"{sub.name}{self._counter}"

        renames: dict[str, str] = {}
        prelude: list[A.Stmt] = []

        formal_decls = {}
        for decl in sub.decls:
            for entity in decl.entities:
                formal_decls[entity.name] = (decl, entity)

        # Formals: by reference for plain variables, by value otherwise.
        for formal, actual in zip(sub.params, call.args):
            if isinstance(actual, A.KeywordArg):
                raise InlineError(
                    f"'{call.name}': keyword arguments are not supported")
            if isinstance(actual, A.VarRef):
                renames[formal] = actual.name  # REF_IN / REF_OUT
                continue
            if formal not in formal_decls:
                raise InlineError(
                    f"'{call.name}': formal '{formal}' is undeclared")
            temp = f"{formal}_{tag}"
            renames[formal] = temp  # COPY_IN
            self._declare_like(temp, *formal_decls[formal])
            prelude.append(A.Assignment(target=A.VarRef(temp),
                                        expr=actual, line=call.line))

        # Locals (declared, not formal), including the function result
        # variable, which shares the unit's name.
        result_temp = ""
        for decl in sub.decls:
            for entity in decl.entities:
                if entity.name in sub.params:
                    continue
                local = f"{entity.name}_{tag}"
                renames[entity.name] = local
                self._declare_like(local, decl, entity)
                if result_name is not None and entity.name == result_name:
                    result_temp = local
        if result_name is not None and not result_temp:
            raise InlineError(
                f"function '{sub.name}' never declares its result type")
        if result_name is not None:
            # A subscripted reference to the function's own name inside
            # its body is recursion when the result is scalar (for array
            # results it is an element access of the result variable).
            result_is_array = any(
                (entity.dims or decl.dims)
                for decl in sub.decls for entity in decl.entities
                if entity.name == result_name)
            if not result_is_array:
                for stmt in A.walk_stmts(sub.body):
                    for e in _stmt_exprs(stmt):
                        for node in A.walk_exprs(e):
                            if isinstance(node, A.ArrayRef) \
                                    and node.name == sub.name:
                                raise InlineError(
                                    f"function '{sub.name}' exceeds "
                                    f"inline depth (recursion is not "
                                    f"supported)")

        body = _strip_trailing_return(sub.body, sub.name)
        renamed = tuple(_rename_stmt(s, renames) for s in body)
        expanded = self.expand_block(renamed, depth + 1)
        return list(prelude) + list(expanded), result_temp

    def _declare_like(self, name: str, decl: A.TypeDecl,
                      entity: A.Entity) -> None:
        new_entity = A.Entity(name=name, dims=entity.dims,
                              init=entity.init)
        self.new_decls.append(A.TypeDecl(
            base=decl.base, entities=(new_entity,), dims=decl.dims,
            parameter=decl.parameter, line=decl.line))


# ---------------------------------------------------------------------------
# Renaming
# ---------------------------------------------------------------------------


def _stmt_exprs(stmt: A.Stmt):
    """The expressions a statement evaluates directly."""
    if isinstance(stmt, A.Assignment):
        return (stmt.target, stmt.expr)
    if isinstance(stmt, A.CallStmt):
        return stmt.args
    if isinstance(stmt, A.PrintStmt):
        return stmt.items
    if isinstance(stmt, A.DoLoop):
        return tuple(e for e in (stmt.lo, stmt.hi, stmt.step)
                     if e is not None)
    if isinstance(stmt, A.DoWhile):
        return (stmt.cond,)
    if isinstance(stmt, A.IfConstruct):
        return tuple(cond for cond, _ in stmt.arms)
    if isinstance(stmt, A.WhereConstruct):
        return (stmt.mask,)
    if isinstance(stmt, A.ForallStmt):
        return (stmt.assignment.target, stmt.assignment.expr) + (
            (stmt.mask,) if stmt.mask is not None else ())
    return ()


def _strip_trailing_return(body, name: str):
    stmts = list(body)
    while stmts and isinstance(stmts[-1], A.ReturnStmt):
        stmts.pop()
    for s in A.walk_stmts(stmts):
        if isinstance(s, A.ReturnStmt):
            raise InlineError(
                f"'{name}': only trailing RETURN statements are supported")
    return tuple(stmts)


def _rename_expr(expr: A.Expr, renames: dict[str, str]) -> A.Expr:
    if isinstance(expr, A.VarRef):
        if expr.name in renames:
            return A.VarRef(renames[expr.name])
        return expr
    if isinstance(expr, A.ArrayRef):
        name = renames.get(expr.name, expr.name)
        return A.ArrayRef(name=name, subscripts=tuple(
            _rename_expr(s, renames) for s in expr.subscripts))
    if isinstance(expr, A.BinExpr):
        return A.BinExpr(expr.op, _rename_expr(expr.left, renames),
                         _rename_expr(expr.right, renames))
    if isinstance(expr, A.UnExpr):
        return A.UnExpr(expr.op, _rename_expr(expr.operand, renames))
    if isinstance(expr, A.KeywordArg):
        return A.KeywordArg(expr.name, _rename_expr(expr.value, renames))
    if isinstance(expr, A.SectionRange):
        def part(e):
            return None if e is None else _rename_expr(e, renames)
        return A.SectionRange(part(expr.lo), part(expr.hi),
                              part(expr.stride))
    return expr


def _rename_stmt(stmt: A.Stmt, renames: dict[str, str]) -> A.Stmt:
    if isinstance(stmt, A.Assignment):
        return A.Assignment(_rename_expr(stmt.target, renames),
                            _rename_expr(stmt.expr, renames), stmt.line)
    if isinstance(stmt, A.ForallStmt):
        # Triplet variables are local binders: shield them.
        shielded = {k: v for k, v in renames.items()
                    if k not in {t.var for t in stmt.triplets}}
        triplets = tuple(A.ForallTriplet(
            t.var, _rename_expr(t.lo, shielded),
            _rename_expr(t.hi, shielded),
            None if t.stride is None else _rename_expr(t.stride, shielded))
            for t in stmt.triplets)
        return A.ForallStmt(
            triplets=triplets,
            assignment=_rename_stmt(stmt.assignment, shielded),
            mask=(None if stmt.mask is None
                  else _rename_expr(stmt.mask, shielded)),
            line=stmt.line)
    if isinstance(stmt, A.WhereConstruct):
        return A.WhereConstruct(
            mask=_rename_expr(stmt.mask, renames),
            body=tuple(_rename_stmt(s, renames) for s in stmt.body),
            elsewhere=tuple(_rename_stmt(s, renames)
                            for s in stmt.elsewhere),
            line=stmt.line)
    if isinstance(stmt, A.DoLoop):
        var = renames.get(stmt.var, stmt.var)
        return A.DoLoop(
            var=var, lo=_rename_expr(stmt.lo, renames),
            hi=_rename_expr(stmt.hi, renames),
            step=(None if stmt.step is None
                  else _rename_expr(stmt.step, renames)),
            body=tuple(_rename_stmt(s, renames) for s in stmt.body),
            line=stmt.line)
    if isinstance(stmt, A.DoWhile):
        return A.DoWhile(
            cond=_rename_expr(stmt.cond, renames),
            body=tuple(_rename_stmt(s, renames) for s in stmt.body),
            line=stmt.line)
    if isinstance(stmt, A.IfConstruct):
        return A.IfConstruct(
            arms=tuple((
                _rename_expr(cond, renames),
                tuple(_rename_stmt(s, renames) for s in body))
                for cond, body in stmt.arms),
            else_body=tuple(_rename_stmt(s, renames)
                            for s in stmt.else_body),
            line=stmt.line)
    if isinstance(stmt, A.CallStmt):
        return A.CallStmt(
            name=stmt.name,
            args=tuple(_rename_expr(a, renames) for a in stmt.args),
            line=stmt.line)
    if isinstance(stmt, A.PrintStmt):
        return A.PrintStmt(items=tuple(_rename_expr(e, renames)
                                       for e in stmt.items),
                           line=stmt.line)
    return stmt
