"""The hand-coded \\*Lisp comparison model (fieldwise, per-operation).

The paper's lower data point: "A hand-coded \\*Lisp version of SWE
running under fieldwise mode peaked at 1.89 gigaflops."  \\*Lisp programs
apply elemental operations over whole pvars one operation at a time:
every ``+!!``/``*!!`` is its own node sweep, with its operands loaded
from and its result stored to CM memory through the fieldwise
transposer.  There is no cross-operation register reuse, no load
chaining and no chained multiply-add.

The model: the optimized program is *atomized* — every computation MOVE
is split into single-operator MOVEs through temporaries — compiled with
the naive node encoder (every operand through a register) and run on the
fieldwise cost table.
"""

from __future__ import annotations

from .. import nir
from ..backend.cm2.partition import Cm2Compiler
from ..backend.cm2.pe_compiler import BackendOptions
from ..driver.compiler import (
    CompilerOptions,
    Executable,
    RunResult,
)
from ..frontend.parser import parse_program
from ..lowering import check_program, lower_program
from ..lowering.analysis import Inference
from ..lowering.environment import Environment
from ..machine.cm2 import Machine
from ..machine.costs import fieldwise_model
from ..transform.pipeline import Options as TransformOptions
from ..transform.pipeline import optimize, unwrap_body, wrap_body
from ..transform.phases import PhaseClassifier, PhaseKind


class Atomizer:
    """Splits computation MOVEs into single-operator MOVEs (pvar style)."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.infer = Inference(env)
        self.classifier = PhaseClassifier(env)
        self.atomized_ops = 0

    def atomize(self, node: nir.Imperative) -> nir.Imperative:
        if isinstance(node, (nir.Program, nir.WithDomain, nir.WithDecl)):
            import dataclasses

            return dataclasses.replace(node, body=self.atomize(node.body))
        if isinstance(node, nir.Sequentially):
            return nir.seq(*[self.atomize(a) for a in node.actions])
        if isinstance(node, nir.Do):
            return nir.Do(node.shape, self.atomize(node.body),
                          node.index_names)
        if isinstance(node, nir.While):
            return nir.While(node.cond, self.atomize(node.body))
        if isinstance(node, nir.IfThenElse):
            return nir.IfThenElse(node.cond, self.atomize(node.then),
                                  self.atomize(node.els))
        if isinstance(node, nir.Move):
            phase = self.classifier.classify(node)
            if phase.kind is not PhaseKind.COMPUTE:
                return node
            out: list[nir.Imperative] = []
            for clause in node.clauses:
                out.extend(self.atomize_clause(clause))
            return nir.seq(*out)
        return node

    # ------------------------------------------------------------------

    def atomize_clause(self, clause: nir.MoveClause
                       ) -> list[nir.Imperative]:
        prelude: list[nir.Imperative] = []
        src = self._flatten(clause.src, prelude)
        mask = clause.mask
        if mask != nir.TRUE:
            mask = self._flatten(clause.mask, prelude)
        prelude.append(nir.Move((nir.MoveClause(mask, src, clause.tgt),)))
        return prelude

    def _flatten(self, value: nir.Value,
                 prelude: list[nir.Imperative]) -> nir.Value:
        """Reduce a value tree to a leaf, materializing every operator."""
        if isinstance(value, (nir.Scalar, nir.SVar, nir.AVar,
                              nir.LocalUnder)):
            return value
        if isinstance(value, nir.Binary):
            left = self._flatten(value.left, prelude)
            right = self._flatten(value.right, prelude)
            return self._materialize(nir.Binary(value.op, left, right),
                                     prelude)
        if isinstance(value, nir.Unary):
            operand = self._flatten(value.operand, prelude)
            return self._materialize(nir.Unary(value.op, operand), prelude)
        if isinstance(value, nir.FcnCall):
            args = tuple(self._flatten(a, prelude) for a in value.args)
            return self._materialize(nir.FcnCall(value.name, args), prelude)
        raise TypeError(f"cannot atomize {type(value).__name__}")

    def _materialize(self, value: nir.Value,
                     prelude: list[nir.Imperative]) -> nir.Value:
        info = self.infer.infer(value)
        if info.shape is None:
            # Purely scalar subtree: leave it whole (broadcast operand).
            return value
        tmp = self.env.fresh_temp(
            nir.extents(info.shape, self.env.domains), info.elem)
        prelude.append(
            nir.move1(value, nir.AVar(tmp.name, nir.Everywhere())))
        self.atomized_ops += 1
        return nir.AVar(tmp.name, nir.Everywhere())


def starlisp_backend_options() -> BackendOptions:
    return BackendOptions.naive()


def compile_starlisp(source: str) -> Executable:
    """Compile under the fieldwise \\*Lisp execution model."""
    unit = parse_program(source)
    lowered = lower_program(unit)
    check_program(lowered.nir, lowered.env)
    transformed = optimize(lowered, TransformOptions(
        block=False, fuse=False, pad_masks=False))
    atomizer = Atomizer(transformed.env)
    body = atomizer.atomize(unwrap_body(transformed.nir))
    program = wrap_body(body, transformed.env, transformed.nir.name)
    transformed.nir = program

    compiler = Cm2Compiler(transformed.env,
                           options=starlisp_backend_options())
    host_program = compiler.compile_program(program)
    options = CompilerOptions(
        transform=TransformOptions(block=False, fuse=False,
                                   pad_masks=False),
        backend=starlisp_backend_options())
    return Executable(host_program=host_program, env=transformed.env,
                      unit=unit, lowered=lowered, transformed=transformed,
                      partition=compiler.report, options=options)


def run_starlisp(source: str, n_pes: int = 2048) -> RunResult:
    """Compile and run under the \\*Lisp fieldwise model."""
    exe = compile_starlisp(source)
    return exe.run(Machine(fieldwise_model(n_pes)))
