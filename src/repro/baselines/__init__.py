"""Comparison models: hand-coded *Lisp (fieldwise) and CM Fortran v1.1."""

from .cmfortran import cmfortran_options, compile_cmfortran, run_cmfortran
from .starlisp import Atomizer, compile_starlisp, run_starlisp

__all__ = [
    "cmfortran_options",
    "compile_cmfortran",
    "run_cmfortran",
    "Atomizer",
    "compile_starlisp",
    "run_starlisp",
]
