"""The CM Fortran v1.1 comparison model (slicewise, per-statement).

The paper's middle data point: "The slicewise CM Fortran compiler (v1.1)
reached an extrapolated 2.79 gigaflops."  CMF generated good slicewise
node code — chained operands, multiply-adds — but compiled statement at
a time: no cross-statement domain blocking, so shorter virtual subgrid
loops, more PEAC calls, and more memory traffic between statements.

The model: the full Fortran-90-Y front end and PE code generator with
the *blocking/fusion/padding transformations disabled* (each source
statement becomes its own computation phase) and without the prototype's
spill-overlap scheduling, on the standard slicewise cost model.
"""

from __future__ import annotations

from ..backend.cm2.pe_compiler import BackendOptions
from ..driver.compiler import CompilerOptions, Executable, compile_source
from ..machine.cm2 import Machine
from ..machine.costs import slicewise_model
from ..transform.pipeline import Options as TransformOptions


def cmfortran_options() -> CompilerOptions:
    """Pipeline switches modelling CM Fortran v1.1."""
    return CompilerOptions(
        transform=TransformOptions(block=False, fuse=False, pad_masks=False),
        backend=BackendOptions(memoize=True, fma=True, chaining=True,
                               overlap=False),
    )


def compile_cmfortran(source: str) -> Executable:
    """Compile with the CM Fortran v1.1 model."""
    return compile_source(source, cmfortran_options())


def run_cmfortran(source: str, n_pes: int = 2048):
    """Compile and run under the CMF model; returns the RunResult."""
    exe = compile_cmfortran(source)
    return exe.run(Machine(slicewise_model(n_pes)))
