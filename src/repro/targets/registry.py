"""Target and cost-model resolution — the retargeting registry.

A :class:`Target` bundles everything target-specific that used to be
scattered across stringly-typed ``if/elif`` chains in the driver, the
CLI, and the service: the backend compiler class (imported lazily so
registering a target costs nothing), the cost models it can run under
and which is the default, and whether the backend's PEAC output is
subject to routine verification.  Every dispatch site resolves through
:func:`get_target` / :func:`resolve_model`, so an unknown target or
model is a loud, typed error — and adding a target is one
:func:`register_target` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..machine import MODEL_FACTORIES, CostModel, Machine


class UnknownTargetError(ValueError):
    """A target name that is not registered."""

    def __init__(self, name: str) -> None:
        self.target = name
        super().__init__(
            f"unknown target {name!r}; registered targets: "
            f"{', '.join(target_names())}")


class UnknownModelError(ValueError):
    """A cost-model name that is not registered (no silent fallback)."""

    def __init__(self, name: str) -> None:
        self.model = name
        super().__init__(
            f"unknown cost model {name!r}; registered models: "
            f"{', '.join(MODEL_FACTORIES)}")


class TargetModelMismatchError(ValueError):
    """An explicit model that the chosen target cannot run under."""

    def __init__(self, target: "Target", model: str) -> None:
        self.target = target.name
        self.model = model
        super().__init__(
            f"cost model {model!r} does not run on target "
            f"{target.name!r} (compatible: {', '.join(target.models)}; "
            f"default: {target.default_model})")


@dataclass(frozen=True)
class Target:
    """One compilation target: backend, cost models, verification."""

    name: str
    description: str
    #: Lazy loader for the backend compiler class — resolving a target
    #: must not import its backend.
    compiler_loader: Callable[[], type]
    #: Cost models this target's executables can run under; the first
    #: is the default when the user names a target but no model.
    models: tuple[str, ...]
    #: Run the PEAC routine verifier on the backend output (under
    #: ``--verify`` / ``REPRO_VERIFY=1``).
    verify_peac: bool = False
    default_pes: int = 2048
    paper_section: str = ""
    #: Allow the run-time execution-plan fusion layer (``"fused"`` exec
    #: mode batches node calls into cross-routine mega-kernels).  A
    #: target whose dispatch semantics cannot tolerate merged IFIFO
    #: pushes can opt out here.
    fuse_exec: bool = True
    #: Lazy loader for the machine class executables run on (defaults to
    #: the simulated CM :class:`~repro.machine.Machine`); a target with
    #: its own dispatch engine registers it here.
    machine_loader: Callable[[], type] | None = None

    @property
    def default_model(self) -> str:
        return self.models[0]

    def compiler(self) -> type:
        """The backend compiler class (imported on first use)."""
        return self.compiler_loader()

    def machine_class(self) -> type:
        """The machine class for this target (imported on first use)."""
        if self.machine_loader is None:
            return Machine
        return self.machine_loader()


_TARGETS: dict[str, Target] = {}


def register_target(target: Target) -> Target:
    if target.name in _TARGETS:
        raise ValueError(f"target {target.name!r} registered twice")
    for model in target.models:
        if model not in MODEL_FACTORIES:
            raise UnknownModelError(model)
    _TARGETS[target.name] = target
    return target


def get_target(name: str) -> Target:
    try:
        return _TARGETS[name]
    except KeyError:
        raise UnknownTargetError(name) from None


def target_names() -> list[str]:
    return list(_TARGETS)


def targets() -> list[Target]:
    return list(_TARGETS.values())


# -- cost-model resolution --------------------------------------------------


def get_model_factory(name: str) -> Callable[..., CostModel]:
    try:
        return MODEL_FACTORIES[name]
    except KeyError:
        raise UnknownModelError(name) from None


def resolve_model(target: str | Target, model: str | None = None) -> str:
    """The cost-model name to run under ``target``.

    ``None`` defaults to the target's own model (``--target cm5`` runs
    under the cm5 model without also saying ``--model cm5``); an
    explicit name is validated against the target's compatible set so a
    mismatch is an error instead of silently mis-costing the run.
    """
    record = target if isinstance(target, Target) else get_target(target)
    if model is None:
        return record.default_model
    if model not in MODEL_FACTORIES:
        raise UnknownModelError(model)
    if model not in record.models:
        raise TargetModelMismatchError(record, model)
    return model


def build_machine(target: str | Target, model: str | None = None,
                  pes: int | None = None,
                  exec_mode: str | None = None) -> Machine:
    """A fresh simulated machine for ``target``, via the registries."""
    record = target if isinstance(target, Target) else get_target(target)
    factory = get_model_factory(resolve_model(record, model))
    cls = record.machine_class()
    return cls(factory(pes if pes is not None else record.default_pes),
               exec_mode=exec_mode)
