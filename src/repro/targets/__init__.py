"""The target registry and its built-in targets.

"The CM/5 NIR compiler retains the majority of its structure ... from
the CM/2 version" (§5.3.1) — retargeting is cheap because everything
target-specific hangs off one record.  The driver, the CLI, and the
service all resolve targets and cost models here; adding a machine is
one :func:`register_target` call naming its backend class and models.
"""

from __future__ import annotations

from .registry import (
    Target,
    TargetModelMismatchError,
    UnknownModelError,
    UnknownTargetError,
    build_machine,
    get_model_factory,
    get_target,
    register_target,
    resolve_model,
    target_names,
    targets,
)

__all__ = [
    "Target",
    "TargetModelMismatchError",
    "UnknownModelError",
    "UnknownTargetError",
    "build_machine",
    "get_model_factory",
    "get_target",
    "register_target",
    "resolve_model",
    "target_names",
    "targets",
]


def _cm2_compiler() -> type:
    from ..backend.cm2.partition import Cm2Compiler

    return Cm2Compiler


def _cm5_compiler() -> type:
    from ..backend.cm5.compiler import Cm5Compiler

    return Cm5Compiler


def _host_compiler() -> type:
    from ..backend.host.compiler import HostCompiler

    return HostCompiler


def _host_machine() -> type:
    from ..backend.host.machine import HostMachine

    return HostMachine


register_target(Target(
    name="cm2",
    description="CM/2: 2,048 slicewise PEs over the Weitek datapath",
    compiler_loader=_cm2_compiler,
    # slicewise is the compiled Fortran-90-Y model; fieldwise is the
    # bit-serial transposer environment of the hand-coded baselines and
    # remains runnable for the §6 comparisons.
    models=("slicewise", "fieldwise"),
    verify_peac=True,
    default_pes=2048,
    paper_section="§5.1-5.2",
))

register_target(Target(
    name="cm5",
    description="CM/5: SPARC nodes driving four vector datapaths",
    compiler_loader=_cm5_compiler,
    models=("cm5",),
    verify_peac=False,
    default_pes=256,
    paper_section="§5.3.1",
))

register_target(Target(
    name="host",
    description="native host: blocked phases run as compiled C/numpy "
                "kernels on this CPU, costed by measurement",
    compiler_loader=_host_compiler,
    models=("host",),
    verify_peac=True,
    default_pes=1,
    paper_section="§5.3.1 (retargeting, applied again)",
    machine_loader=_host_machine,
))
