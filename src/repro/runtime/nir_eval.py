"""A numpy evaluator for NIR value trees over machine storage.

The front-end (host) side of the runtime needs to evaluate NIR values in
several situations: scalar expressions (loop bounds, conditions, PEAC
scalar arguments), element reads inside serial loops, gather subscripts,
and reduction arguments.  This evaluator implements the reference
semantics of the value domain directly with numpy; the PE executor must
agree with it (tests compare the two).
"""

from __future__ import annotations

import numpy as np

from .. import nir


class EvalError(Exception):
    """Raised on unevaluable values (unbound names, bad subscripts)."""


_BINOP_FUNCS = {
    nir.BinOp.ADD: np.add,
    nir.BinOp.SUB: np.subtract,
    nir.BinOp.MUL: np.multiply,
    nir.BinOp.DIV: None,  # special: Fortran integer division truncates
    nir.BinOp.POW: np.power,
    nir.BinOp.MOD: None,  # special: sign-of-dividend semantics
    nir.BinOp.MIN: np.minimum,
    nir.BinOp.MAX: np.maximum,
    nir.BinOp.EQ: np.equal,
    nir.BinOp.NE: np.not_equal,
    nir.BinOp.LT: np.less,
    nir.BinOp.LE: np.less_equal,
    nir.BinOp.GT: np.greater,
    nir.BinOp.GE: np.greater_equal,
    nir.BinOp.AND: np.logical_and,
    nir.BinOp.OR: np.logical_or,
    nir.BinOp.EQV: lambda a, b: np.equal(np.asarray(a, bool),
                                         np.asarray(b, bool)),
    nir.BinOp.NEQV: np.logical_xor,
}

_UNOP_FUNCS = {
    nir.UnOp.NEG: np.negative,
    nir.UnOp.NOT: np.logical_not,
    nir.UnOp.ABS: np.abs,
    nir.UnOp.SQRT: np.sqrt,
    nir.UnOp.SIN: np.sin,
    nir.UnOp.COS: np.cos,
    nir.UnOp.TAN: np.tan,
    nir.UnOp.ASIN: np.arcsin,
    nir.UnOp.ACOS: np.arccos,
    nir.UnOp.ATAN: np.arctan,
    nir.UnOp.EXP: np.exp,
    nir.UnOp.LOG: np.log,
    nir.UnOp.LOG10: np.log10,
    nir.UnOp.FLOOR: lambda a: np.floor(a).astype(np.int32),
    nir.UnOp.CEILING: lambda a: np.ceil(a).astype(np.int32),
    nir.UnOp.TO_INT: lambda a: np.trunc(np.asarray(a, np.float64)).astype(
        np.int32),
    nir.UnOp.TO_FLOAT32: lambda a: np.asarray(a, np.float32),
    nir.UnOp.TO_FLOAT64: lambda a: np.asarray(a, np.float64),
}


def _is_int_like(x) -> bool:
    if isinstance(x, (bool, np.bool_)):
        return False
    if isinstance(x, (int, np.integer)):
        return True
    return isinstance(x, np.ndarray) and np.issubdtype(x.dtype, np.integer)


def apply_binop(op: nir.BinOp, a, b):
    """Apply a BinOp with Fortran semantics (integer DIV truncates)."""
    if op is nir.BinOp.DIV:
        if _is_int_like(a) and _is_int_like(b):
            return np.trunc(np.asarray(a, np.float64)
                            / np.asarray(b, np.float64)).astype(np.int32)
        return np.divide(a, b)
    if op is nir.BinOp.MOD:
        return np.fmod(a, b)
    fn = _BINOP_FUNCS[op]
    return fn(a, b)


def apply_unop(op: nir.UnOp, a):
    if op.is_transcendental and _is_int_like(a):
        a = np.asarray(a, np.float64)
    return _UNOP_FUNCS[op](a)


class NirEvaluator:
    """Evaluates NIR values against scalar bindings and array storage.

    ``read_array(name)`` must return the full numpy array for a name;
    ``scalars`` maps scalar names to Python numbers.  ``region`` (per
    evaluation call) gives the iteration region for field-valued results:
    ``everywhere`` references and ``local_under`` coordinates are cut to
    it so all array results share one shape.
    """

    def __init__(self, read_array, scalars: dict[str, object],
                 domains: dict[str, nir.Shape] | None = None) -> None:
        self.read_array = read_array
        self.scalars = scalars
        self.domains = domains or {}

    # ------------------------------------------------------------------

    def eval(self, value: nir.Value, region=None):
        """Evaluate; returns a numpy array (field) or Python scalar."""
        with np.errstate(all="ignore"):
            return self._eval(value, region)

    def eval_scalar(self, value: nir.Value):
        out = self._eval(value, None)
        if isinstance(out, np.ndarray):
            if out.size != 1:
                raise EvalError(f"expected a scalar, got shape {out.shape}")
            out = out.reshape(()).item()
        if isinstance(out, np.generic):
            out = out.item()
        return out

    # ------------------------------------------------------------------

    def _eval(self, value: nir.Value, region):
        if isinstance(value, nir.Scalar):
            return value.pyvalue
        if isinstance(value, nir.SVar):
            try:
                return self.scalars[value.name]
            except KeyError:
                raise EvalError(f"unbound scalar '{value.name}'") from None
        if isinstance(value, nir.AVar):
            return self._eval_avar(value, region)
        if isinstance(value, nir.LocalUnder):
            return self._eval_local_under(value, region)
        if isinstance(value, nir.Binary):
            return apply_binop(value.op, self._eval(value.left, region),
                               self._eval(value.right, region))
        if isinstance(value, nir.Unary):
            return apply_unop(value.op, self._eval(value.operand, region))
        if isinstance(value, nir.FcnCall):
            return self._eval_call(value, region)
        raise EvalError(f"cannot evaluate {type(value).__name__}")

    # ------------------------------------------------------------------

    def _eval_avar(self, ref: nir.AVar, region):
        data = np.asarray(self.read_array(ref.name))
        if isinstance(ref.field, nir.Everywhere):
            return data
        if isinstance(ref.field, nir.Subscript):
            return self._eval_subscript(data, ref.field, region)
        raise EvalError(f"cannot evaluate field {ref.field}")

    def _eval_subscript(self, data: np.ndarray, sub: nir.Subscript, region):
        # Gather form: any field-valued index makes every non-scalar
        # index a pointwise coordinate over the common region.
        evaluated = []
        gather = False
        for idx in sub.indices:
            if isinstance(idx, nir.IndexRange):
                evaluated.append(idx)
            else:
                val = self._eval(idx, region)
                evaluated.append(val)
                if isinstance(val, np.ndarray):
                    gather = True
        if gather:
            index_arrays = []
            shape = None
            for val in evaluated:
                if isinstance(val, nir.IndexRange):
                    raise EvalError("ranges may not mix with gather indices")
                arr = np.asarray(val)
                if arr.ndim > 0:
                    shape = arr.shape
            for val in evaluated:
                arr = np.asarray(val)
                if arr.ndim == 0:
                    arr = np.broadcast_to(arr, shape)
                index_arrays.append(arr.astype(np.int64) - 1)
            return data[tuple(index_arrays)]
        slices = []
        for axis, val in enumerate(evaluated):
            n = data.shape[axis]
            if isinstance(val, nir.IndexRange):
                lo = self._index_const(val.lo, 1)
                hi = self._index_const(val.hi, n)
                st = self._index_const(val.stride, 1)
                slices.append(slice(lo - 1, hi, st))
            else:
                slices.append(int(val) - 1)
        return data[tuple(slices)]

    def _index_const(self, v, default: int) -> int:
        if v is None:
            return default
        out = self._eval(v, None)
        return int(out)

    def _eval_local_under(self, value: nir.LocalUnder, region):
        shape = nir.resolve(value.shape, self.domains)
        dims = nir.dims_of(shape, self.domains)
        axis = dims[value.dim - 1]
        coords_1d = np.array(
            [p[0] for p in nir.points(axis)], dtype=np.int32)
        full_shape = nir.extents(shape, self.domains)
        reshape = [1] * len(dims)
        reshape[value.dim - 1] = len(coords_1d)
        return np.broadcast_to(
            coords_1d.reshape(reshape), full_shape).copy()

    # ------------------------------------------------------------------

    def _eval_call(self, call: nir.FcnCall, region):
        name = call.name.lower()
        args = call.args
        if name == "merge":
            t = self._eval(args[0], region)
            f = self._eval(args[1], region)
            m = self._eval(args[2], region)
            return np.where(np.asarray(m, bool), t, f)
        if name == "cshift":
            arr = np.asarray(self._eval(args[0], region))
            shift = int(self.eval_scalar(args[1]))
            dim = int(self.eval_scalar(args[2]))
            return np.roll(arr, -shift, axis=dim - 1)
        if name == "eoshift":
            arr = np.asarray(self._eval(args[0], region))
            shift = int(self.eval_scalar(args[1]))
            boundary = self.eval_scalar(args[2])
            dim = int(self.eval_scalar(args[3])) - 1
            out = np.roll(arr, -shift, axis=dim)
            index = [slice(None)] * arr.ndim
            if shift > 0:
                index[dim] = slice(arr.shape[dim] - shift, None)
            elif shift < 0:
                index[dim] = slice(0, -shift)
            else:
                return out
            out[tuple(index)] = boundary
            return out
        if name == "transpose":
            return np.asarray(self._eval(args[0], region)).T.copy()
        if name == "spread":
            arr = np.asarray(self._eval(args[0], region))
            dim = int(self.eval_scalar(args[1]))
            ncopies = int(self.eval_scalar(args[2]))
            return np.repeat(np.expand_dims(arr, dim - 1), ncopies,
                             axis=dim - 1)
        if name in ("sum", "product", "maxval", "minval", "count", "any",
                    "all"):
            arr = np.asarray(self._eval(args[0], region))
            axis = None
            if len(args) > 1:
                axis = int(self.eval_scalar(args[1])) - 1
            return self._reduce(name, arr, axis)
        raise EvalError(f"cannot evaluate call '{call.name}'")

    @staticmethod
    def _reduce(name: str, arr: np.ndarray, axis):
        if name == "sum":
            return arr.sum(axis=axis)
        if name == "product":
            return arr.prod(axis=axis)
        if name == "maxval":
            return arr.max(axis=axis)
        if name == "minval":
            return arr.min(axis=axis)
        if name == "count":
            return np.asarray(arr, bool).sum(axis=axis).astype(np.int32)
        if name == "any":
            return np.asarray(arr, bool).any(axis=axis)
        if name == "all":
            return np.asarray(arr, bool).all(axis=axis)
        raise EvalError(f"unknown reduction {name}")
