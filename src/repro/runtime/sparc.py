"""SPARC assembly rendering of the front-end program.

"The FE/NIR compiler translates the NIR remainder program into SPARC
assembly code plus runtime system library calls" (section 5.2).  The
executable semantics of the host program live in the host IR
(:mod:`repro.runtime.host`); this module renders that IR as the SPARC
assembly the paper's compiler emitted, using the prototype's own stated
conventions — "a simple memory-to-memory load/store model with little
attention to effective register use or delay slot filling."

Scalar variables live in a frame-pointer-relative spill area; every
operation loads its operands, computes in ``%o`` registers, and stores
back (the memory-to-memory model).  CM runtime services and PEAC
dispatches become ``call`` instructions into ``_CMRT_*`` / ``_CMPE_*``
entry points, with IFIFO argument pushes before each node call.
"""

from __future__ import annotations

from .. import nir
from . import host as h


def _target_name(clause: nir.MoveClause) -> str:
    tgt = clause.tgt
    if isinstance(tgt, (nir.AVar, nir.SVar)):
        return tgt.name
    return str(tgt)


class SparcRenderer:
    """Renders one host program as SPARC-flavoured assembly text."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.slots: dict[str, int] = {}   # scalar name -> %fp offset
        self._label = 0
        self._depth = 0

    # ------------------------------------------------------------------

    def render(self, program: h.HostProgram) -> str:
        self.emit_raw(f"! host program '{program.name}' "
                      f"(FE/NIR output, memory-to-memory model)")
        self.emit_raw(f"        .global _{program.name}")
        self.emit_raw(f"_{program.name}:")
        self.emit("save %sp, -192, %sp")
        for op in program.ops:
            self.render_op(op)
        self.emit("ret")
        self.emit("restore")
        return "\n".join(self.lines)

    def emit(self, text: str) -> None:
        self.lines.append("        " + text)

    def emit_raw(self, text: str) -> None:
        self.lines.append(text)

    def label(self, stem: str) -> str:
        self._label += 1
        return f".L{stem}{self._label}"

    def slot(self, name: str) -> str:
        if name not in self.slots:
            self.slots[name] = -8 * (len(self.slots) + 1)
        return f"[%fp{self.slots[name]}]"

    # ------------------------------------------------------------------

    def render_op(self, op: h.HostOp) -> None:
        if isinstance(op, h.Alloc):
            dims = "x".join(str(e) for e in op.extents)
            self.emit(f"set {dims}_{op.dtype}, %o0")
            if op.layout:
                self.emit(f"set LAYOUT_{'_'.join(op.layout)}, %o1")
            self.emit(f"call _CMRT_allocate_array   ! {op.name}")
            self.emit("nop")
            self.emit(f"st %o0, {self.slot('&' + op.name)}")
        elif isinstance(op, h.ScalarInit):
            self.emit(f"set {op.value}, %o0")
            self.emit(f"st %o0, {self.slot(op.name)}")
        elif isinstance(op, h.ScalarMove):
            self.render_value(op.clause.src, "%o0")
            assert isinstance(op.clause.tgt, nir.SVar)
            self.emit(f"st %o0, {self.slot(op.clause.tgt.name)}")
        elif isinstance(op, h.NodeCall):
            self.render_node_call(op)
        elif isinstance(op, h.CommMove):
            self.emit(f"call _CMRT_{op.kind}        "
                      f"! {_target_name(op.clause)}")
            self.emit("nop")
        elif isinstance(op, h.ReduceMove):
            src = op.clause.src
            name = src.name if isinstance(src, nir.FcnCall) else "reduce"
            self.emit(f"call _CMRT_reduce_{name}")
            self.emit("nop")
            if isinstance(op.clause.tgt, nir.SVar):
                self.emit(f"st %o0, {self.slot(op.clause.tgt.name)}")
        elif isinstance(op, h.ElementMove):
            self.emit(f"call _CMRT_element_rw       "
                      f"! {_target_name(op.clause)}")
            self.emit("nop")
        elif isinstance(op, h.Loop):
            self.render_loop(op)
        elif isinstance(op, h.WhileOp):
            self.render_while(op)
        elif isinstance(op, h.IfOp):
            self.render_if(op)
        elif isinstance(op, h.Print):
            self.emit("call _printf")
            self.emit("nop")
        elif isinstance(op, h.Stop):
            self.emit("call _exit")
            self.emit("nop")
        else:  # pragma: no cover - future host ops
            self.emit(f"! unrendered host op {type(op).__name__}")

    def render_node_call(self, op: h.NodeCall) -> None:
        self.emit(f"! dispatch {op.routine.name} over "
                  f"{'x'.join(str(e) for e in op.region_extents)}")
        for arg in op.args:
            if arg.kind == "subgrid":
                self.emit(f"ld {self.slot('&' + arg.array)}, %o0")
                self.emit(f"call _CM_push_ififo         ! {arg.name}")
            elif arg.kind == "coord":
                self.emit(f"call _CMRT_coord_subgrid    "
                          f"! axis {arg.axis}")
                self.emit("call _CM_push_ififo")
            elif arg.kind == "halo":
                self.emit(f"call _CMRT_halo_exchange    "
                          f"! {arg.array} shift {arg.shift} "
                          f"dim {arg.axis}")
                self.emit("call _CM_push_ififo")
            elif arg.kind == "scalar":
                self.render_value(arg.value, "%o0")
                self.emit(f"call _CM_push_ififo         ! {arg.name}")
            self.emit("nop")
        self.emit("set vlen, %o0")
        self.emit("call _CM_push_ififo")
        self.emit("nop")
        self.emit(f"call _CMPE_{op.routine.name}")
        self.emit("nop")

    def render_loop(self, op: h.Loop) -> None:
        top = self.label("loop")
        done = self.label("done")
        self.emit(f"set {op.lo}, %o0")
        self.emit(f"st %o0, {self.slot(op.var)}")
        self.emit_raw(top + ":")
        self.emit(f"ld {self.slot(op.var)}, %o0")
        self.emit(f"set {op.hi}, %o1")
        self.emit("cmp %o0, %o1")
        branch = "bg" if op.step > 0 else "bl"
        self.emit(f"{branch} {done}")
        self.emit("nop")
        for inner in op.body:
            self.render_op(inner)
        self.emit(f"ld {self.slot(op.var)}, %o0")
        self.emit(f"add %o0, {op.step}, %o0")
        self.emit(f"st %o0, {self.slot(op.var)}")
        self.emit(f"ba {top}")
        self.emit("nop")
        self.emit_raw(done + ":")

    def render_while(self, op: h.WhileOp) -> None:
        top = self.label("while")
        done = self.label("endw")
        self.emit_raw(top + ":")
        self.render_value(op.cond, "%o0")
        self.emit("tst %o0")
        self.emit(f"bz {done}")
        self.emit("nop")
        for inner in op.body:
            self.render_op(inner)
        self.emit(f"ba {top}")
        self.emit("nop")
        self.emit_raw(done + ":")

    def render_if(self, op: h.IfOp) -> None:
        els = self.label("else")
        done = self.label("endif")
        self.render_value(op.cond, "%o0")
        self.emit("tst %o0")
        self.emit(f"bz {els}")
        self.emit("nop")
        for inner in op.then:
            self.render_op(inner)
        self.emit(f"ba {done}")
        self.emit("nop")
        self.emit_raw(els + ":")
        for inner in op.els:
            self.render_op(inner)
        self.emit_raw(done + ":")

    # ------------------------------------------------------------------

    _BINOPS = {
        nir.BinOp.ADD: "add", nir.BinOp.SUB: "sub", nir.BinOp.MUL: "smul",
        nir.BinOp.DIV: "sdiv", nir.BinOp.AND: "and", nir.BinOp.OR: "or",
    }
    _CMPS = {
        nir.BinOp.EQ: "be", nir.BinOp.NE: "bne", nir.BinOp.LT: "bl",
        nir.BinOp.LE: "ble", nir.BinOp.GT: "bg", nir.BinOp.GE: "bge",
    }

    def render_value(self, value: nir.Value, dest: str) -> None:
        """Memory-to-memory scalar evaluation into ``dest``."""
        if isinstance(value, nir.Scalar):
            self.emit(f"set {value.pyvalue}, {dest}")
        elif isinstance(value, nir.SVar):
            self.emit(f"ld {self.slot(value.name)}, {dest}")
        elif isinstance(value, nir.Binary) and value.op in self._BINOPS:
            self.render_value(value.left, "%o1")
            self.emit(f"st %o1, {self.slot('$tmp' + str(self._depth))}")
            self._depth += 1
            self.render_value(value.right, "%o2")
            self._depth -= 1
            self.emit(f"ld {self.slot('$tmp' + str(self._depth))}, %o1")
            self.emit(f"{self._BINOPS[value.op]} %o1, %o2, {dest}")
        elif isinstance(value, nir.Binary) and value.op in self._CMPS:
            label = self.label("cmp")
            self.render_value(value.left, "%o1")
            self.emit(f"st %o1, {self.slot('$tmp' + str(self._depth))}")
            self._depth += 1
            self.render_value(value.right, "%o2")
            self._depth -= 1
            self.emit(f"ld {self.slot('$tmp' + str(self._depth))}, %o1")
            self.emit("cmp %o1, %o2")
            self.emit(f"mov 1, {dest}")
            self.emit(f"{self._CMPS[value.op]} {label}")
            self.emit(f"mov 0, {dest}     ! annulled on taken branch")
            self.emit_raw(label + ":")
        elif isinstance(value, nir.Unary):
            self.render_value(value.operand, dest)
            if value.op is nir.UnOp.NEG:
                self.emit(f"neg {dest}")
            elif value.op is nir.UnOp.NOT:
                self.emit(f"xor {dest}, 1, {dest}")
            else:
                self.emit(f"call _lib_{value.op.name.lower()}")
                self.emit("nop")
        else:
            # Reductions, array reads, intrinsics: runtime library calls.
            self.emit(f"call _CMRT_eval             ! {str(value)[:50]}")
            self.emit("nop")
            if dest != "%o0":
                self.emit(f"mov %o0, {dest}")


def render_sparc(program: h.HostProgram) -> str:
    """SPARC assembly text for a compiled program's front-end half."""
    return SparcRenderer().render(program)
