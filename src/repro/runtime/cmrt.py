"""CM runtime system (CM/RT): communication and reduction services.

"When compilation to the canonical PEAC format is not possible due to
dependencies, the front end must generate calls to the CM runtime system
to perform communication.  If the dependencies are regular, grid
communications suffice; if they are not, general communications via the
CM router result" (section 2.2).

Each service executes the data motion with numpy (the functional
semantics) and charges the machine's communication meter from the
network cost model.
"""

from __future__ import annotations

import numpy as np

from .. import nir
from ..machine import network
from .nir_eval import NirEvaluator


class RuntimeError_(Exception):
    """Raised on malformed runtime requests."""


def _target_view(machine, tgt: nir.AVar):
    """Numpy view of a MOVE target (everywhere or constant section)."""
    home = machine.home(tgt.name)
    if isinstance(tgt.field, nir.Everywhere):
        return home.data
    if isinstance(tgt.field, nir.Subscript):
        slices = []
        for axis, idx in enumerate(tgt.field.indices):
            n = home.data.shape[axis]
            if isinstance(idx, nir.IndexRange):
                lo = _const(idx.lo, 1)
                hi = _const(idx.hi, n)
                st = _const(idx.stride, 1)
                slices.append(slice(lo - 1, hi, st))
            elif isinstance(idx, nir.Scalar):
                # A width-1 slice keeps the result a writable view.
                i = int(idx.rep)
                slices.append(slice(i - 1, i))
            else:
                raise RuntimeError_(
                    f"'{tgt.name}': runtime targets need constant subscripts")
        return home.data[tuple(slices)]
    raise RuntimeError_(f"cannot form a view for {tgt.field}")


def _const(v, default: int) -> int:
    if v is None:
        return default
    if isinstance(v, nir.Scalar):
        return int(v.rep)
    raise RuntimeError_("section bound is not a constant")


def _write(view: np.ndarray, value) -> None:
    arr = np.asarray(value)
    if arr.shape != view.shape:
        arr = arr.reshape(view.shape)
    np.copyto(view, arr, casting="unsafe")


def _shifted_into(out: np.ndarray, src: np.ndarray, r: int,
                  axis: int) -> None:
    """``np.roll(src, r, axis)`` written directly into ``out``."""
    if r == 0:
        np.copyto(out, src, casting="unsafe")
        return
    n = src.shape[axis]
    lo = [slice(None)] * src.ndim
    hi = [slice(None)] * src.ndim
    slo = [slice(None)] * src.ndim
    shi = [slice(None)] * src.ndim
    lo[axis] = slice(0, r)
    slo[axis] = slice(n - r, None)
    hi[axis] = slice(r, None)
    shi[axis] = slice(None, n - r)
    np.copyto(out[tuple(lo)], src[tuple(slo)], casting="unsafe")
    np.copyto(out[tuple(hi)], src[tuple(shi)], casting="unsafe")


def _shifted_copy(machine, view: np.ndarray, src: np.ndarray,
                  shift: int, axis: int) -> None:
    """One-pass CSHIFT: the roll lands straight in the target view.

    The generic path materializes ``np.roll`` (an allocation and a full
    copy) and then copies again into the target.  A circular shift is
    just two block copies, so write them directly — via a pooled
    staging buffer only when source and target share memory.
    """
    r = (-int(shift)) % src.shape[axis]
    if np.shares_memory(view, src):
        tmp = machine.pool.acquire(src.shape, src.dtype)
        _shifted_into(tmp, src, r, axis)
        np.copyto(view, tmp, casting="unsafe")
        machine.pool.release(tmp)
    else:
        _shifted_into(view, src, r, axis)


def _primary_array(value: nir.Value) -> str | None:
    for node in nir.values.walk(value):
        if isinstance(node, nir.AVar):
            return node.name
    return None


def execute_comm(machine, evaluator: NirEvaluator,
                 clause: nir.MoveClause, kind: str) -> None:
    """Perform one communication MOVE and charge the network meter."""
    if clause.mask != nir.TRUE:
        raise RuntimeError_("communication phases are unmasked")
    if not isinstance(clause.tgt, nir.AVar):
        raise RuntimeError_("communication target must be an array")
    result = None
    view = _target_view(machine, clause.tgt)
    src_arr = None
    if kind == "cshift" and isinstance(clause.src, nir.FcnCall):
        arg = clause.src.args[0]
        if isinstance(arg, nir.AVar) and isinstance(arg.field, nir.Everywhere):
            data = machine.home(arg.name).data
            if (isinstance(data, np.ndarray) and data.shape == view.shape
                    and data.size):
                src_arr = data
    if src_arr is None:
        result = evaluator.eval(clause.src)
        _write(view, result)

    model = machine.model
    src_name = _primary_array(clause.src)
    geom = (machine.home(src_name).geometry if src_name is not None
            else machine.home(clause.tgt.name).geometry)

    if kind == "cshift" or kind == "eoshift":
        call = clause.src
        assert isinstance(call, nir.FcnCall)
        shift = int(evaluator.eval_scalar(call.args[1]))
        dim_index = 2 if kind == "cshift" else 3
        dim = int(evaluator.eval_scalar(call.args[dim_index]))
        if src_arr is not None:
            if 1 <= dim <= src_arr.ndim:
                _shifted_copy(machine, view, src_arr, shift, dim - 1)
            else:
                _write(view, evaluator.eval(clause.src))
        machine.charge_comm(network.cshift_cycles(model, geom, dim, shift))
    elif kind == "transpose":
        machine.charge_comm(network.transpose_cycles(model, geom))
    elif kind == "spread":
        tgt_geom = machine.home(clause.tgt.name).geometry
        machine.charge_comm(network.spread_cycles(model, tgt_geom))
    elif kind == "copy":
        machine.charge_comm(network.section_copy_cycles(
            model, geom, int(np.asarray(result).size), regular=True))
    elif kind == "gather":
        machine.charge_comm(network.router_cycles(
            model, geom, elements_per_pe=max(
                1, int(np.asarray(result).size) // max(1, geom.pes_used))))
    else:
        raise RuntimeError_(f"unknown communication kind {kind!r}")


def execute_reduce(machine, evaluator: NirEvaluator,
                   clause: nir.MoveClause, scalars: dict) -> None:
    """Perform a reduction MOVE: combine tree into the front end."""
    if not isinstance(clause.src, nir.FcnCall):
        raise RuntimeError_("reduction source must be an intrinsic call")
    result = evaluator.eval(clause.src)
    src_name = _primary_array(clause.src)
    geom = machine.home(src_name).geometry if src_name else None
    if geom is not None:
        machine.charge_comm(network.reduction_cycles(machine.model, geom))
        machine.stats.reductions += 1
    if isinstance(clause.tgt, nir.SVar):
        value = result.item() if isinstance(result, np.generic) else result
        if isinstance(value, np.ndarray):
            value = value.reshape(()).item()
        scalars[clause.tgt.name] = value
        machine.charge_host(machine.model.host_op)
    elif isinstance(clause.tgt, nir.AVar):
        view = _target_view(machine, clause.tgt)
        _write(view, result)
    else:
        raise RuntimeError_("invalid reduction target")
