"""CM runtime system and front-end (host) program executor."""

from .cmrt import RuntimeError_, execute_comm, execute_reduce
from .host import (
    Alloc,
    ArgBinding,
    CommMove,
    ElementMove,
    HostExecutor,
    HostOp,
    HostProgram,
    IfOp,
    Loop,
    NodeCall,
    Print,
    ReduceMove,
    ScalarInit,
    ScalarMove,
    Stop,
    WhileOp,
    format_host_program,
)
from .nir_eval import EvalError, NirEvaluator, apply_binop, apply_unop
from .sparc import SparcRenderer, render_sparc

__all__ = [name for name in dir() if not name.startswith("_")]
