"""Host (front-end) program representation and executor.

The FE/NIR compiler "translates the NIR remainder program into SPARC
assembly code plus runtime system library calls" (section 5.2).  The
reproduction's host program is a small IR of front-end operations —
allocation, scalar work, control flow, CM runtime calls, and PEAC
dispatches with their IFIFO argument pushes — interpreted against a
:class:`~repro.machine.cm2.Machine`.  A textual disassembly is available
via :func:`format_host_program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nir
from ..machine.plan import get_plan
from ..peac.isa import Routine
from . import cmrt
from .nir_eval import NirEvaluator

Region = tuple[tuple[int, int, int], ...]


@dataclass(frozen=True)
class HostOp:
    """Base class for host-program operations."""


@dataclass(frozen=True)
class Alloc(HostOp):
    name: str
    extents: tuple[int, ...]
    dtype: str  # numpy dtype name
    layout: tuple[str, ...] | None = None  # !layout: directive modes


@dataclass(frozen=True)
class ScalarInit(HostOp):
    name: str
    value: object


@dataclass(frozen=True)
class ArgBinding:
    """One actual argument of a node call (matches a ParamSpec)."""

    kind: str                       # 'subgrid' | 'coord' | 'scalar'
    name: str                       # parameter name
    array: str | None = None        # subgrid: array name
    region: Region | None = None    # subgrid/coord: region, None = full
    extents: tuple[int, ...] = ()   # coord: base extents
    axis: int = 0                   # coord: axis
    lo: int = 1                     # coord: first point along the axis
    step: int = 1                   # coord: axis stride
    shift: int = 0                  # halo: circular shift amount
    value: nir.Value | None = None  # scalar: host-evaluated NIR value


@dataclass(frozen=True)
class NodeCall(HostOp):
    """Dispatch a PEAC routine: push args over the IFIFO, start the loop."""

    routine: Routine
    args: tuple[ArgBinding, ...]
    region_extents: tuple[int, ...]
    real_elements: int
    layout: tuple[str, ...] | None = None  # target array's !layout: modes


@dataclass(frozen=True)
class CommMove(HostOp):
    """A communication phase: one MOVE executed by the CM runtime."""

    clause: nir.MoveClause
    kind: str  # 'cshift'|'eoshift'|'transpose'|'spread'|'copy'|'gather'


@dataclass(frozen=True)
class ReduceMove(HostOp):
    """A reduction phase: runtime combine tree into a front-end scalar."""

    clause: nir.MoveClause


@dataclass(frozen=True)
class ScalarMove(HostOp):
    """Front-end scalar assignment."""

    clause: nir.MoveClause


@dataclass(frozen=True)
class ElementMove(HostOp):
    """Serial element-at-a-time array access executed by the front end."""

    clause: nir.MoveClause


@dataclass(frozen=True)
class Loop(HostOp):
    var: str
    lo: int
    hi: int
    step: int
    body: tuple[HostOp, ...]


@dataclass(frozen=True)
class WhileOp(HostOp):
    cond: nir.Value
    body: tuple[HostOp, ...]


@dataclass(frozen=True)
class IfOp(HostOp):
    cond: nir.Value
    then: tuple[HostOp, ...]
    els: tuple[HostOp, ...] = ()


@dataclass(frozen=True)
class Print(HostOp):
    values: tuple[nir.Value, ...]


@dataclass(frozen=True)
class Stop(HostOp):
    pass


@dataclass
class HostProgram:
    """The complete front-end program plus its node routines."""

    name: str
    ops: tuple[HostOp, ...]
    routines: dict[str, Routine] = field(default_factory=dict)


class StopExecution(Exception):
    """Internal signal for the STOP statement."""


def _value_arrays(value: nir.Value) -> frozenset[str]:
    """Array names a host-evaluated NIR value reads."""
    return frozenset(n.name for n in nir.values.walk(value)
                     if isinstance(n, nir.AVar))


def _clause_reads(clause: nir.MoveClause) -> frozenset[str]:
    reads = _value_arrays(clause.src) | _value_arrays(clause.mask)
    tgt = clause.tgt
    if isinstance(tgt, nir.AVar) and isinstance(tgt.field, nir.Subscript):
        for idx in tgt.field.indices:
            if isinstance(idx, nir.IndexRange):
                for part in (idx.lo, idx.hi, idx.stride):
                    if part is not None:
                        reads |= _value_arrays(part)
            else:
                reads |= _value_arrays(idx)
    return reads


def _op_effects(op: HostOp) -> tuple[frozenset[str], frozenset[str]]:
    """Name-level (array reads, array writes) of a non-call host op."""
    if isinstance(op, CommMove):
        return _clause_reads(op.clause), frozenset({op.clause.tgt.name})
    if isinstance(op, ReduceMove):
        tgt = op.clause.tgt
        writes = (frozenset({tgt.name}) if isinstance(tgt, nir.AVar)
                  else frozenset())
        return _clause_reads(op.clause), writes
    if isinstance(op, ElementMove):
        tgt = frozenset({op.clause.tgt.name})
        return _clause_reads(op.clause) | tgt, tgt
    if isinstance(op, ScalarMove):
        return _clause_reads(op.clause), frozenset()
    if isinstance(op, Print):
        reads: frozenset[str] = frozenset()
        for value in op.values:
            reads |= _value_arrays(value)
        return reads, frozenset()
    if isinstance(op, Alloc):
        return frozenset(), frozenset({op.name})
    return frozenset(), frozenset()


class HostExecutor:
    """Interprets a host program against a simulated machine.

    With ``fuse_exec`` (and a machine in ``"fused"`` mode) adjacent node
    calls accumulate into a pending batch handed to
    :meth:`~repro.machine.cm2.Machine.call_fused` as one dispatch.  Node
    calls always append — the batch preserves their order — while other
    runtime work is *hoisted* ahead of the batch when its name-level
    array footprint is independent of every pending call; dependent work
    (a CSHIFT reading an array the batch writes, a reduction, serial
    element access) flushes the batch first.  Argument resolution is
    persistent: each call site's subgrid and coordinate views are cached
    and revalidated by array identity instead of re-resolved per trip.
    """

    def __init__(self, machine, fuse_exec: bool = False) -> None:
        self.machine = machine
        self.scalars: dict[str, object] = {}
        self.output: list[str] = []
        self.evaluator = NirEvaluator(
            read_array=lambda name: self.machine.home(name).data,
            scalars=self.scalars)
        self.fuse_exec = bool(fuse_exec) and machine.exec_mode == "fused"
        self._pending: list[tuple[HostOp, tuple]] = []
        self._pending_reads: set[str] = set()
        self._pending_writes: set[str] = set()
        self._call_infos: dict[int, tuple] = {}
        self._binding_cache: dict[int, tuple] = {}

    # ------------------------------------------------------------------

    def run(self, program: HostProgram) -> None:
        try:
            self._run_ops(program.ops)
        except StopExecution:
            pass
        self._flush()

    def _run_ops(self, ops) -> None:
        for op in ops:
            self._run_op(op)

    # ------------------------------------------------------------------

    def _run_op(self, op: HostOp) -> None:
        if not self.fuse_exec:
            return self._exec_op(op)
        if isinstance(op, NodeCall):
            return self._enqueue_call(op)
        if isinstance(op, Loop):
            return self._exec_op(op)  # bodies recurse through _run_op
        if isinstance(op, IfOp):
            self._barrier(_value_arrays(op.cond), frozenset())
            return self._exec_op(op)
        if isinstance(op, WhileOp):
            arrays = _value_arrays(op.cond)
            if not arrays:
                return self._exec_op(op)
            # An array-reading condition must observe the pending batch
            # before every evaluation, so run the loop here.
            m = self.machine
            while True:
                self._barrier(arrays, frozenset())
                if not bool(self.evaluator.eval_scalar(op.cond)):
                    break
                m.charge_host(m.model.host_op)
                self._run_ops(op.body)
            m.charge_host(m.model.host_op)
            return
        reads, writes = _op_effects(op)
        self._barrier(reads, writes)
        return self._exec_op(op)

    def _barrier(self, reads: frozenset[str],
                 writes: frozenset[str]) -> None:
        """Flush the batch if the op's footprint intersects it."""
        if not self._pending:
            return
        if (reads & self._pending_writes
                or writes & self._pending_writes
                or writes & self._pending_reads):
            self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        pending = self._pending
        self._pending = []
        self._pending_reads = set()
        self._pending_writes = set()
        if len(pending) == 1:
            self.machine.call_routine(*pending[0][1])
        else:
            site = tuple(id(op) for op, _ in pending)
            self.machine.call_fused([call for _, call in pending],
                                    site=site)

    def _call_info(self, op: NodeCall) -> tuple:
        """(plan, reads, writes, enqueue-time reads) for a call site."""
        info = self._call_infos.get(id(op))
        plan = get_plan(op.routine)
        if info is not None and info[0] is plan:
            return info
        regs = {param.name: param.reg for param in op.routine.params}
        read_pregs = set(getattr(plan, "read_pregs", plan.used_pregs))
        stored = set(plan.stored_pregs)
        reads: set[str] = set()
        writes: set[str] = set()
        prefetch: set[str] = set()
        for arg in op.args:
            if arg.kind == "subgrid":
                reg = regs.get(arg.name)
                if reg is None:
                    continue
                if reg.n in read_pregs:
                    reads.add(arg.array)
                if reg.n in stored:
                    writes.add(arg.array)
            elif arg.kind == "halo":
                # The halo snapshot is taken when the call is enqueued.
                reads.add(arg.array)
                prefetch.add(arg.array)
            elif arg.kind == "scalar" and arg.value is not None:
                prefetch |= _value_arrays(arg.value)
        info = (plan, frozenset(reads), frozenset(writes),
                frozenset(prefetch))
        self._call_infos[id(op)] = info
        return info

    def _enqueue_call(self, op: NodeCall) -> None:
        _plan, reads, writes, prefetch = self._call_info(op)
        if prefetch and (prefetch & self._pending_writes):
            self._flush()
        bindings = self._bindings(op)
        call = (op.routine, bindings, op.region_extents,
                op.real_elements, op.layout)
        self._pending.append((op, call))
        self._pending_reads |= reads
        self._pending_writes |= writes

    def _bindings(self, op: NodeCall) -> dict[str, object]:
        """Resolved argument bindings, with persistent subgrid views.

        Subgrid and coordinate views depend only on the array object,
        so they are cached per call site and revalidated by identity;
        halo snapshots and scalar values are taken fresh every call.
        """
        cached = self._binding_cache.get(id(op))
        if cached is not None:
            static, checks = cached
            for name, home, data in checks:
                if (self.machine.arrays.get(name) is not home
                        or home.data is not data):
                    cached = None
                    break
        if cached is None:
            static = {}
            checks = []
            seen: set[str] = set()
            for arg in op.args:
                if arg.kind == "subgrid":
                    static[arg.name] = self.machine.view(arg.array,
                                                         arg.region)
                    if arg.array not in seen:
                        seen.add(arg.array)
                        home = self.machine.home(arg.array)
                        checks.append((arg.array, home, home.data))
                elif arg.kind == "coord":
                    static[arg.name] = self.machine.coord_subgrid(
                        arg.extents, arg.axis, arg.region, arg.lo,
                        arg.step)
            self._binding_cache[id(op)] = (static, tuple(checks))
        else:
            static = cached[0]
        bindings: dict[str, object] = dict(static)
        for arg in op.args:
            if arg.kind == "halo":
                bindings[arg.name] = self.machine.halo_subgrid(
                    arg.array, arg.shift, arg.axis)
            elif arg.kind == "scalar":
                bindings[arg.name] = self.evaluator.eval_scalar(arg.value)
        return bindings

    # ------------------------------------------------------------------

    def _exec_op(self, op: HostOp) -> None:
        m = self.machine
        if isinstance(op, Alloc):
            # Pre-allocated inputs (Executable.run's overrides) survive.
            if op.name not in m.arrays:
                m.alloc(op.name, op.extents, np.dtype(op.dtype),
                        layout=op.layout)
        elif isinstance(op, ScalarInit):
            self.scalars[op.name] = op.value
            m.charge_host(m.model.host_op)
        elif isinstance(op, NodeCall):
            self._node_call(op)
        elif isinstance(op, CommMove):
            cmrt.execute_comm(m, self.evaluator, op.clause, op.kind)
        elif isinstance(op, ReduceMove):
            cmrt.execute_reduce(m, self.evaluator, op.clause, self.scalars)
        elif isinstance(op, ScalarMove):
            value = self.evaluator.eval_scalar(op.clause.src)
            assert isinstance(op.clause.tgt, nir.SVar)
            self.scalars[op.clause.tgt.name] = value
            m.charge_host(m.model.host_op)
        elif isinstance(op, ElementMove):
            self._element_move(op.clause)
        elif isinstance(op, Loop):
            m.charge_host(m.model.host_op)
            for i in range(op.lo, op.hi + (1 if op.step > 0 else -1),
                           op.step):
                self.scalars[op.var] = i
                m.charge_host(m.model.host_op)
                self._run_ops(op.body)
        elif isinstance(op, WhileOp):
            while bool(self.evaluator.eval_scalar(op.cond)):
                m.charge_host(m.model.host_op)
                self._run_ops(op.body)
            m.charge_host(m.model.host_op)
        elif isinstance(op, IfOp):
            m.charge_host(m.model.host_op)
            if bool(self.evaluator.eval_scalar(op.cond)):
                self._run_ops(op.then)
            else:
                self._run_ops(op.els)
        elif isinstance(op, Print):
            items = [self.evaluator.eval_scalar(v) if not self._is_field(v)
                     else str(self.evaluator.eval(v)) for v in op.values]
            self.output.append(" ".join(str(x) for x in items))
            m.charge_host(m.model.host_op)
        elif isinstance(op, Stop):
            raise StopExecution()
        else:
            raise TypeError(f"unknown host op {type(op).__name__}")

    @staticmethod
    def _is_field(value: nir.Value) -> bool:
        return any(isinstance(n, (nir.AVar, nir.LocalUnder))
                   for n in nir.values.walk(value))

    # ------------------------------------------------------------------

    def _node_call(self, op: NodeCall) -> None:
        bindings: dict[str, object] = {}
        for arg in op.args:
            if arg.kind == "subgrid":
                bindings[arg.name] = self.machine.view(arg.array, arg.region)
            elif arg.kind == "coord":
                bindings[arg.name] = self.machine.coord_subgrid(
                    arg.extents, arg.axis, arg.region, arg.lo, arg.step)
            elif arg.kind == "halo":
                bindings[arg.name] = self.machine.halo_subgrid(
                    arg.array, arg.shift, arg.axis)
            elif arg.kind == "scalar":
                bindings[arg.name] = self.evaluator.eval_scalar(arg.value)
            else:
                raise TypeError(f"unknown arg kind {arg.kind}")
        self.machine.call_routine(op.routine, bindings, op.region_extents,
                                  op.real_elements, layout=op.layout)

    def _element_move(self, clause: nir.MoveClause) -> None:
        """Serial front-end array access: single elements or sections.

        The front end pays :attr:`host_element_op` cycles per element
        touched — this is the "serial code" the compilation model pushes
        programmers away from.
        """
        m = self.machine
        tgt = clause.tgt
        assert isinstance(tgt, nir.AVar) and isinstance(tgt.field,
                                                        nir.Subscript)
        data = m.home(tgt.name).data
        index: list = []
        for axis, sub in enumerate(tgt.field.indices):
            if isinstance(sub, nir.IndexRange):
                n = data.shape[axis]
                lo = (int(self.evaluator.eval_scalar(sub.lo))
                      if sub.lo is not None else 1)
                hi = (int(self.evaluator.eval_scalar(sub.hi))
                      if sub.hi is not None else n)
                st = (int(self.evaluator.eval_scalar(sub.stride))
                      if sub.stride is not None else 1)
                index.append(slice(lo - 1, hi, st))
            else:
                index.append(int(self.evaluator.eval_scalar(sub)) - 1)
        view = data[tuple(index)]
        elements = int(np.asarray(view).size) if hasattr(view, "size") else 1
        m.charge_host(m.model.host_element_op * max(1, elements))

        mask = self.evaluator.eval(clause.mask)
        value = self.evaluator.eval(clause.src)
        if np.ndim(view) == 0:
            if bool(np.all(mask)):
                data[tuple(index)] = np.asarray(value).reshape(()).item() \
                    if isinstance(value, np.ndarray) else value
            return
        val = np.broadcast_to(np.asarray(value), view.shape)
        if np.ndim(mask) == 0:
            if bool(mask):
                np.copyto(view, val, casting="unsafe")
        else:
            mask_arr = np.broadcast_to(np.asarray(mask, bool), view.shape)
            np.copyto(view, np.where(mask_arr, val, view), casting="unsafe")


def format_host_program(program: HostProgram, indent: int = 0) -> str:
    """Readable disassembly of a host program (for docs and debugging)."""
    lines: list[str] = [f"HOST PROGRAM {program.name}:"]
    _format_ops(program.ops, lines, 1)
    return "\n".join(lines)


def _format_ops(ops, lines: list[str], depth: int) -> None:
    pad = "  " * depth
    for op in ops:
        if isinstance(op, Alloc):
            lines.append(f"{pad}alloc {op.name}{list(op.extents)} "
                         f": {op.dtype}")
        elif isinstance(op, ScalarInit):
            lines.append(f"{pad}scalar {op.name} = {op.value}")
        elif isinstance(op, NodeCall):
            args = ", ".join(a.name for a in op.args)
            lines.append(f"{pad}call_pe {op.routine.name}({args}) "
                         f"over {op.region_extents}")
        elif isinstance(op, CommMove):
            lines.append(f"{pad}cm_rt {op.kind}: {op.clause.tgt}")
        elif isinstance(op, ReduceMove):
            lines.append(f"{pad}cm_rt reduce: {op.clause.tgt}")
        elif isinstance(op, ScalarMove):
            lines.append(f"{pad}scalar_move {op.clause.tgt} <- "
                         f"{op.clause.src}")
        elif isinstance(op, ElementMove):
            lines.append(f"{pad}element_move {op.clause.tgt}")
        elif isinstance(op, Loop):
            lines.append(f"{pad}for {op.var} = {op.lo}, {op.hi}, {op.step}:")
            _format_ops(op.body, lines, depth + 1)
        elif isinstance(op, WhileOp):
            lines.append(f"{pad}while {op.cond}:")
            _format_ops(op.body, lines, depth + 1)
        elif isinstance(op, IfOp):
            lines.append(f"{pad}if {op.cond}:")
            _format_ops(op.then, lines, depth + 1)
            if op.els:
                lines.append(f"{pad}else:")
                _format_ops(op.els, lines, depth + 1)
        elif isinstance(op, Print):
            lines.append(f"{pad}print {', '.join(map(str, op.values))}")
        elif isinstance(op, Stop):
            lines.append(f"{pad}stop")
