"""Fortran-90-Y: a formally-specified data-parallel Fortran 90 compiler
for a simulated Connection Machine CM/2.

Reproduction of Chen & Cowie, "Prototyping Fortran-90 Compilers for
Massively Parallel Machines" (PLDI 1992 / YALEU/DCS/RR-881).

Quickstart::

    from repro import compile_source, Machine, run_reference

    exe = compile_source(FORTRAN_SOURCE)
    result = exe.run()                 # simulated CM/2, 2048 PEs
    print(result.arrays["a"], result.gflops())

Package map (see DESIGN.md for the paper-to-module correspondence):

* :mod:`repro.frontend`  -- Fortran 90 lexer/parser/ASTs,
* :mod:`repro.nir`       -- the NIR semantic algebra (five domains),
* :mod:`repro.lowering`  -- semantic lowering + type/shape checking,
* :mod:`repro.transform` -- shape-based NIR optimization (Figs. 4, 9, 10),
* :mod:`repro.backend`   -- CM2/NIR, PE/NIR, FE/NIR, CM5/NIR compilers,
* :mod:`repro.peac`      -- PEAC assembly (Fig. 12),
* :mod:`repro.machine`   -- the simulated CM/2 (PEs, network, costs),
* :mod:`repro.runtime`   -- CM runtime system + host executor,
* :mod:`repro.baselines` -- \\*Lisp fieldwise and CM Fortran models,
* :mod:`repro.driver`    -- end-to-end compilation and the numpy oracle,
* :mod:`repro.programs`  -- SWE and the other benchmark workloads.
"""

from .driver.compiler import (
    CompilerOptions,
    Executable,
    RunResult,
    compile_source,
    compile_unit,
)
from .driver.reference import run_reference
from .frontend.parser import parse_program
from .lowering.lower import lower_program
from .machine.cm2 import Machine
from .machine.costs import cm5_model, fieldwise_model, slicewise_model
from .transform.pipeline import Options as TransformOptions
from .transform.pipeline import optimize
from .backend.cm2.pe_compiler import BackendOptions

__version__ = "1.0.0"

__all__ = [
    "CompilerOptions",
    "Executable",
    "RunResult",
    "compile_source",
    "compile_unit",
    "run_reference",
    "parse_program",
    "lower_program",
    "Machine",
    "cm5_model",
    "fieldwise_model",
    "slicewise_model",
    "TransformOptions",
    "optimize",
    "BackendOptions",
    "__version__",
]
