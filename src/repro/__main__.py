"""Entry point: ``python -m repro <command> file.f90``."""

import sys

from .driver.cli import main

if __name__ == "__main__":
    sys.exit(main())
