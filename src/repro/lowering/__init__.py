"""Semantic lowering: Fortran 90 ASTs to typechecked, shapechecked NIR."""

from .analysis import Inference, VInfo
from .check import CheckError, check_program, shapecheck, typecheck
from .environment import Environment, LoweringError, Symbol, build_environment
from .fold import NotConstant
from .fold import fold as fold_constant
from .fold import fold_int, try_fold_int
from .lower import LoweredProgram, Lowerer, lower_program

__all__ = [
    "Inference",
    "VInfo",
    "CheckError",
    "check_program",
    "shapecheck",
    "typecheck",
    "Environment",
    "LoweringError",
    "Symbol",
    "build_environment",
    "NotConstant",
    "fold_constant",
    "fold_int",
    "try_fold_int",
    "LoweredProgram",
    "Lowerer",
    "lower_program",
]
