"""Symbol and domain environments built from Fortran declarations.

The lowerer assigns every distinct array shape a named domain
(``alpha``, ``beta``, ...) exactly as the paper's examples do
(Figures 8-10), and declares arrays with ``dfield`` types whose shape is
a ``DomainRef`` to that name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import nir
from ..frontend import ast_nodes as A
from ..sourceloc import SourceLoc, attach_loc
from . import fold


class LoweringError(Exception):
    """Raised for semantic errors discovered while building environments."""


_BASE_TYPES = {
    "integer": nir.INTEGER_32,
    "real": nir.FLOAT_32,
    "double": nir.FLOAT_64,
    "logical": nir.LOGICAL_32,
}

# Domain names follow the paper's greek-letter convention.
_GREEK = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    "iota", "kappa", "lambda", "mu", "nu", "xi", "omicron", "pi", "rho",
    "sigma", "tau", "upsilon", "phi", "chi", "psi", "omega",
]


@dataclass(frozen=True)
class Symbol:
    """One declared entity: its NIR type and (for arrays) shape info."""

    name: str
    type: nir.NirType                 # ScalarType or DField(DomainRef, elem)
    extents: tuple[int, ...] = ()     # () for scalars
    domain: str | None = None         # domain name for arrays
    init: object | None = None        # folded initializer, if any

    @property
    def is_array(self) -> bool:
        return bool(self.extents)

    @property
    def element(self) -> nir.ScalarType:
        return nir.base_element(self.type)


@dataclass
class Environment:
    """Symbols, named constants, and the domain registry for one unit."""

    symbols: dict[str, Symbol] = field(default_factory=dict)
    params: dict[str, object] = field(default_factory=dict)
    domains: dict[str, nir.Shape] = field(default_factory=dict)
    _by_extents: dict[tuple[int, ...], str] = field(default_factory=dict)
    _temp_counter: int = 0

    def domain_for(self, extents: tuple[int, ...]) -> str:
        """Name of the domain covering 1-based parallel ``extents``.

        Registers a fresh greek-lettered domain on first sight of a shape.
        """
        if extents in self._by_extents:
            return self._by_extents[extents]
        idx = len(self.domains)
        name = _GREEK[idx] if idx < len(_GREEK) else f"dom{idx}"
        self.domains[name] = nir.shape_of_extents(extents)
        self._by_extents[extents] = name
        return name

    def lookup(self, name: str) -> Symbol:
        try:
            return self.symbols[name]
        except KeyError:
            raise LoweringError(f"undeclared identifier '{name}'") from None

    def declare(self, sym: Symbol) -> None:
        if sym.name in self.symbols:
            raise LoweringError(f"duplicate declaration of '{sym.name}'")
        self.symbols[sym.name] = sym

    def fresh_temp(self, extents: tuple[int, ...],
                   element: nir.ScalarType) -> Symbol:
        """Declare a compiler temporary array (used by comm extraction)."""
        while f"tmp{self._temp_counter}" in self.symbols:
            self._temp_counter += 1
        name = f"tmp{self._temp_counter}"
        self._temp_counter += 1
        dom = self.domain_for(extents)
        sym = Symbol(
            name=name,
            type=nir.DField(nir.DomainRef(dom), element),
            extents=extents,
            domain=dom,
        )
        self.declare(sym)
        return sym

    def fresh_scalar_temp(self, element: nir.ScalarType) -> Symbol:
        """Declare a compiler temporary scalar (used by reduction hoisting)."""
        while f"stmp{self._temp_counter}" in self.symbols:
            self._temp_counter += 1
        name = f"stmp{self._temp_counter}"
        self._temp_counter += 1
        sym = Symbol(name=name, type=element)
        self.declare(sym)
        return sym

    def nir_declarations(self) -> nir.DeclSet:
        """The DECLSET for all declared entities, in declaration order."""
        decls = []
        for sym in self.symbols.values():
            if sym.init is not None and not sym.is_array:
                value = _const_value(sym.element, sym.init)
                decls.append(nir.Initialized(sym.name, sym.type, value))
            else:
                decls.append(nir.Decl(sym.name, sym.type))
        return nir.DeclSet(tuple(decls))


def _const_value(elem: nir.ScalarType, val: object) -> nir.Scalar:
    return nir.Scalar(elem, val)


def build_environment(unit: A.ProgramUnit) -> Environment:
    """Process a unit's declaration section into an :class:`Environment`."""
    env = Environment()
    for decl in unit.decls:
        declare_type_decl(env, decl)
    return env


def declare_type_decl(env: Environment, decl: A.TypeDecl) -> None:
    """Process one declaration statement into ``env``.

    Split out from :func:`build_environment` so the lint engine can
    process declarations one at a time, collecting per-declaration
    diagnostics instead of stopping at the first bad one.  Errors carry
    the declaration's source line.
    """
    try:
        _declare_type_decl(env, decl)
    except LoweringError as exc:
        attach_loc(exc, SourceLoc(decl.line) if decl.line else None)
        raise


def _declare_type_decl(env: Environment, decl: A.TypeDecl) -> None:
    base = _BASE_TYPES.get(decl.base)
    if base is None:
        raise LoweringError(f"unsupported type '{decl.base}'")
    shared_dims = decl.dims
    for entity in decl.entities:
        dims = entity.dims or shared_dims
        if decl.parameter:
            if dims:
                raise LoweringError(
                    f"array PARAMETER '{entity.name}' unsupported")
            if entity.init is None:
                raise LoweringError(
                    f"PARAMETER '{entity.name}' lacks a value")
            value = fold.fold(entity.init, env.params)
            env.params[entity.name] = _coerce(base, value)
            env.declare(Symbol(entity.name, base,
                               init=env.params[entity.name]))
            continue
        if dims:
            extents = _fold_extents(entity.name, dims, env.params)
            dom = env.domain_for(extents)
            ty = nir.DField(nir.DomainRef(dom), base)
            env.declare(Symbol(entity.name, ty, extents=extents,
                               domain=dom))
        else:
            init = None
            if entity.init is not None:
                init = _coerce(base, fold.fold(entity.init, env.params))
            env.declare(Symbol(entity.name, base, init=init))


def _fold_extents(name: str, dims, params) -> tuple[int, ...]:
    out = []
    for d in dims:
        if isinstance(d, A.SectionRange):
            raise LoweringError(
                f"'{name}': explicit lower bounds are not supported")
        n = fold.try_fold_int(d, params)
        if n is None:
            raise LoweringError(
                f"'{name}': array extent must be a constant expression")
        if n < 1:
            raise LoweringError(f"'{name}': non-positive extent {n}")
        out.append(n)
    return tuple(out)


def _coerce(base: nir.ScalarType, value: object):
    if base.is_logical:
        return bool(value)
    if base.is_integer:
        return int(value)
    return float(value)
