"""Combined static type and shape inference over NIR value trees.

The paper performs static typechecking and *shapechecking* — "an
analogous operation ... over the shape domain" — during semantic
lowering.  This module is the shared inference engine: given symbol and
domain environments it computes, for every value, its elemental scalar
type and its shape (``None`` for front-end scalars), raising
:class:`repro.nir.TypeError_` or :class:`repro.nir.ShapeError` on
disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import nir
from ..frontend import intrinsics as intr
from .environment import Environment, Symbol


@dataclass(frozen=True)
class VInfo:
    """Inference result: elemental type plus shape (None = scalar)."""

    elem: nir.ScalarType
    shape: nir.Shape | None

    @property
    def is_scalar(self) -> bool:
        return self.shape is None


def _combine_shapes(a: nir.Shape | None, b: nir.Shape | None,
                    env, what: str) -> nir.Shape | None:
    """Shape of a binary interaction: scalar broadcast or conformance."""
    if a is None:
        return b
    if b is None:
        return a
    if nir.same_domain(a, b, env):
        return a
    if nir.conformable(a, b, env):
        # Conformable but differently aligned: legal Fortran, but the
        # interaction implies data motion; keep the left operand's shape.
        return a
    raise nir.ShapeError(
        f"{what}: shapes do not conform: {a} vs {b} "
        f"(extents {nir.extents(a, env)} vs {nir.extents(b, env)})")


class Inference:
    """Type/shape inference bound to one unit's environments."""

    def __init__(self, env: Environment,
                 domain_env: dict[str, nir.Shape] | None = None) -> None:
        self.env = env
        self.domains = domain_env if domain_env is not None else env.domains

    # -- public API ---------------------------------------------------------

    def infer(self, value: nir.Value) -> VInfo:
        """Infer the elemental type and shape of a value tree."""
        method = getattr(self, "_infer_" + type(value).__name__.lower(), None)
        if method is None:
            raise nir.TypeError_(f"cannot infer {type(value).__name__}")
        return method(value)

    def shape_of_symbol(self, sym: Symbol) -> nir.Shape | None:
        if not sym.is_array:
            return None
        return nir.full_shape(sym.type, self.domains)

    def section_shape(self, sym: Symbol,
                      sub: nir.Subscript) -> nir.Shape | None:
        """Shape of an array section ``sym(sub)``; None if rank drops to 0.

        Two forms exist.  A *rectangular section* has only ranges and
        scalar subscripts; its shape is the product of the kept ranges.
        A *gather* has at least one field-valued subscript (Figure 9's
        diagonal ``subscript(prod_dom[local_under(beta,1),
        local_under(beta,1)])``); NIR subscripts apply pointwise over a
        common region, so all field-valued subscripts must share one
        shape, which is the result shape.
        """
        dims = nir.dims_of(nir.full_shape(sym.type, self.domains),
                           self.domains)
        if len(sub.indices) != len(dims):
            raise nir.ShapeError(
                f"'{sym.name}' has rank {len(dims)} but "
                f"{len(sub.indices)} subscripts were given")
        infos: list = []
        gather_region: nir.Shape | None = None
        for axis, (index, dim) in enumerate(zip(sub.indices, dims), start=1):
            if isinstance(index, nir.IndexRange):
                infos.append(("range", self._range_shape(sym, axis, index,
                                                         dim)))
                continue
            info = self.infer(index)
            if not info.elem.is_integer:
                raise nir.TypeError_(
                    f"'{sym.name}' axis {axis}: subscript must be integer")
            if info.shape is None:
                infos.append(("scalar", None))
            else:
                resolved = nir.resolve(info.shape, self.domains)
                if gather_region is None:
                    gather_region = resolved
                elif nir.extents(gather_region, self.domains) != \
                        nir.extents(resolved, self.domains):
                    raise nir.ShapeError(
                        f"'{sym.name}': gather subscripts disagree on "
                        f"region shape")
                infos.append(("field", resolved))
        if gather_region is not None:
            # Pointwise gather: ranges are not permitted alongside
            # field-valued subscripts (canonical NIR uses all-coordinate
            # form, as in Figure 9).
            if any(kind == "range" for kind, _ in infos):
                raise nir.ShapeError(
                    f"'{sym.name}': ranges may not mix with field-valued "
                    f"subscripts")
            return gather_region
        kept = [shape for kind, shape in infos if kind == "range"]
        if not kept:
            return None
        if len(kept) == 1:
            return kept[0]
        return nir.ProdDom(tuple(kept))

    def _range_shape(self, sym: Symbol, axis: int, rng: nir.IndexRange,
                     dim: nir.Shape) -> nir.Shape:
        lo = self._const_index(rng.lo, default=_dim_lo(dim))
        hi = self._const_index(rng.hi, default=_dim_hi(dim))
        stride = self._const_index(rng.stride, default=1)
        if stride == 0:
            raise nir.ShapeError(f"'{sym.name}' axis {axis}: zero stride")
        return nir.Interval(lo, hi, stride)

    def _const_index(self, v: nir.Value | None, default: int) -> int:
        if v is None:
            return default
        if isinstance(v, nir.Scalar) and v.type.is_integer:
            return int(v.rep)
        raise nir.ShapeError(
            "section bounds must be integer constants after folding")

    # -- per-node rules -------------------------------------------------------

    def _infer_scalar(self, v: nir.Scalar) -> VInfo:
        return VInfo(v.type, None)

    def _infer_svar(self, v: nir.SVar) -> VInfo:
        sym = self.env.lookup(v.name)
        if sym.is_array:
            raise nir.TypeError_(f"'{v.name}' is an array, not a scalar")
        return VInfo(sym.element, None)

    def _infer_refin(self, v: nir.RefIn) -> VInfo:
        return self._infer_svar(nir.SVar(v.name))

    def _infer_copyin(self, v: nir.CopyIn) -> VInfo:
        return self._infer_svar(nir.SVar(v.name))

    def _infer_avar(self, v: nir.AVar) -> VInfo:
        sym = self.env.lookup(v.name)
        if not sym.is_array:
            raise nir.TypeError_(f"'{v.name}' is not an array")
        if isinstance(v.field, nir.Everywhere):
            return VInfo(sym.element, self.shape_of_symbol(sym))
        if isinstance(v.field, nir.Subscript):
            return VInfo(sym.element, self.section_shape(sym, v.field))
        if isinstance(v.field, nir.LocalUnder):
            return VInfo(nir.INTEGER_32,
                         nir.resolve(v.field.shape, self.domains))
        raise nir.TypeError_(f"unknown field action on '{v.name}'")

    def _infer_localunder(self, v: nir.LocalUnder) -> VInfo:
        shape = nir.resolve(v.shape, self.domains)
        if v.dim > nir.rank(shape, self.domains):
            raise nir.ShapeError(
                f"local_under axis {v.dim} exceeds rank of {shape}")
        return VInfo(nir.INTEGER_32, shape)

    def _infer_binary(self, v: nir.Binary) -> VInfo:
        left = self.infer(v.left)
        right = self.infer(v.right)
        shape = _combine_shapes(left.shape, right.shape, self.domains,
                                f"BINARY({v.op.name})")
        if v.op.is_logical:
            if not (left.elem.is_logical and right.elem.is_logical):
                raise nir.TypeError_(
                    f"{v.op.value}: operands must be logical")
            return VInfo(nir.LOGICAL_32, shape)
        if left.elem.is_logical or right.elem.is_logical:
            raise nir.TypeError_(
                f"{v.op.value}: logical operand in arithmetic")
        if v.op.is_relational:
            return VInfo(nir.LOGICAL_32, shape)
        return VInfo(nir.join_arith(left.elem, right.elem), shape)

    def _infer_unary(self, v: nir.Unary) -> VInfo:
        info = self.infer(v.operand)
        op = v.op
        if op is nir.UnOp.NOT:
            if not info.elem.is_logical:
                raise nir.TypeError_(".not. requires a logical operand")
            return info
        if info.elem.is_logical:
            raise nir.TypeError_(f"{op.value}: logical operand in arithmetic")
        if op is nir.UnOp.TO_INT or op in (nir.UnOp.FLOOR, nir.UnOp.CEILING):
            return VInfo(nir.INTEGER_32, info.shape)
        if op is nir.UnOp.TO_FLOAT32:
            return VInfo(nir.FLOAT_32, info.shape)
        if op is nir.UnOp.TO_FLOAT64:
            return VInfo(nir.FLOAT_64, info.shape)
        if op.is_transcendental:
            elem = info.elem if info.elem.is_float else nir.FLOAT_64
            return VInfo(elem, info.shape)
        return info  # NEG, ABS preserve type

    def _infer_fcncall(self, v: nir.FcnCall) -> VInfo:
        name = v.name.lower()
        if name == "merge":
            t, f, m = (self.infer(a) for a in v.args)
            if not m.elem.is_logical:
                raise nir.TypeError_("merge: mask must be logical")
            shape = _combine_shapes(
                _combine_shapes(t.shape, f.shape, self.domains, "merge"),
                m.shape, self.domains, "merge")
            return VInfo(nir.join_arith(t.elem, f.elem), shape)
        if name in intr.COMMUNICATION:
            return self._infer_comm(name, v)
        if name in intr.REDUCTIONS:
            return self._infer_reduction(name, v)
        raise nir.TypeError_(f"unknown function '{v.name}'")

    def _infer_comm(self, name: str, v: nir.FcnCall) -> VInfo:
        arg = self.infer(v.args[0])
        if arg.shape is None:
            raise nir.ShapeError(f"{name}: argument must be an array")
        if name in ("cshift", "eoshift"):
            return arg
        if name == "transpose":
            dims = nir.dims_of(arg.shape, self.domains)
            if len(dims) != 2:
                raise nir.ShapeError("transpose requires a rank-2 array")
            return VInfo(arg.elem, nir.ProdDom((dims[1], dims[0])))
        if name == "spread":
            dim = self._const_index(v.args[1], default=1)
            ncopies = self._const_index(v.args[2], default=1)
            dims = list(nir.dims_of(arg.shape, self.domains))
            dims.insert(dim - 1, nir.Interval(1, ncopies))
            return VInfo(arg.elem, nir.ProdDom(tuple(dims)))
        raise nir.TypeError_(f"unknown communication intrinsic {name}")

    def _infer_reduction(self, name: str, v: nir.FcnCall) -> VInfo:
        arg = self.infer(v.args[0])
        if arg.shape is None:
            raise nir.ShapeError(f"{name}: argument must be an array")
        if name in ("count",):
            elem = nir.INTEGER_32
        elif name in ("any", "all"):
            elem = nir.LOGICAL_32
        else:
            elem = arg.elem
        if len(v.args) > 1 and v.args[1] is not None:
            dim = self._const_index(v.args[1], default=1)
            dims = list(nir.dims_of(arg.shape, self.domains))
            if not 1 <= dim <= len(dims):
                raise nir.ShapeError(f"{name}: DIM={dim} out of range")
            del dims[dim - 1]
            if not dims:
                return VInfo(elem, None)
            shape = dims[0] if len(dims) == 1 else nir.ProdDom(tuple(dims))
            return VInfo(elem, shape)
        return VInfo(elem, None)


def _dim_lo(dim: nir.Shape) -> int:
    if isinstance(dim, nir.Point):
        return dim.value
    if isinstance(dim, (nir.Interval, nir.SerialInterval)):
        return dim.lo
    raise nir.ShapeError(f"not a one-dimensional shape: {dim}")


def _dim_hi(dim: nir.Shape) -> int:
    if isinstance(dim, nir.Point):
        return dim.value
    if isinstance(dim, (nir.Interval, nir.SerialInterval)):
        return dim.hi
    raise nir.ShapeError(f"not a one-dimensional shape: {dim}")
