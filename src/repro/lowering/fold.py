"""Compile-time constant folding over front-end expressions.

Shapes in NIR are static, so array bounds, section limits, FORALL
triplets and intrinsic SHIFT/DIM arguments must fold to integers at
lowering time.  Folding consults the named-constant (PARAMETER)
environment.
"""

from __future__ import annotations

import math

from ..frontend import ast_nodes as A


class NotConstant(Exception):
    """Raised when an expression cannot be folded at compile time."""


def fold_int(expr: A.Expr, params: dict[str, object]) -> int:
    """Fold to a Python int; raises :class:`NotConstant` otherwise."""
    val = fold(expr, params)
    if isinstance(val, bool) or not isinstance(val, (int, float)):
        raise NotConstant(f"not an integer constant: {expr}")
    if isinstance(val, float):
        if not val.is_integer():
            raise NotConstant(f"not an integer constant: {expr}")
        val = int(val)
    return val


def try_fold_int(expr: A.Expr, params: dict[str, object]) -> int | None:
    """Fold to int, or ``None`` when the expression is not constant."""
    try:
        return fold_int(expr, params)
    except NotConstant:
        return None


def fold(expr: A.Expr, params: dict[str, object]):
    """Evaluate a constant expression to a Python value (int/float/bool)."""
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.RealLit):
        return expr.value
    if isinstance(expr, A.LogicalLit):
        return expr.value
    if isinstance(expr, A.VarRef):
        if expr.name in params:
            return params[expr.name]
        raise NotConstant(f"'{expr.name}' is not a named constant")
    if isinstance(expr, A.UnExpr):
        val = fold(expr.operand, params)
        if expr.op == "-":
            return -val
        if expr.op == ".not.":
            return not val
        raise NotConstant(f"cannot fold unary {expr.op}")
    if isinstance(expr, A.BinExpr):
        left = fold(expr.left, params)
        right = fold(expr.right, params)
        return _apply(expr.op, left, right)
    if isinstance(expr, A.ArrayRef):
        return _fold_intrinsic(expr, params)
    raise NotConstant(f"cannot fold {expr}")


def _apply(op: str, left, right):
    both_int = isinstance(left, int) and isinstance(right, int) \
        and not isinstance(left, bool) and not isinstance(right, bool)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if both_int:
            return int(left / right)  # Fortran integer division truncates
        return left / right
    if op == "**":
        return left ** right
    if op == "==":
        return left == right
    if op == "/=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == ".and.":
        return bool(left) and bool(right)
    if op == ".or.":
        return bool(left) or bool(right)
    if op == ".eqv.":
        return bool(left) == bool(right)
    if op == ".neqv.":
        return bool(left) != bool(right)
    raise NotConstant(f"cannot fold operator {op}")


def _fold_intrinsic(expr: A.ArrayRef, params: dict[str, object]):
    name = expr.name.lower()
    args = [fold(a, params) for a in expr.subscripts
            if not isinstance(a, (A.SectionRange, A.KeywordArg))]
    if len(args) != len(expr.subscripts):
        raise NotConstant(f"cannot fold call {name}")
    if name == "mod" and len(args) == 2:
        return math.fmod(args[0], args[1]) if any(
            isinstance(a, float) for a in args) else args[0] % args[1]
    if name == "min":
        return min(args)
    if name == "max":
        return max(args)
    if name == "abs" and len(args) == 1:
        return abs(args[0])
    if name == "sqrt" and len(args) == 1:
        return math.sqrt(args[0])
    raise NotConstant(f"cannot fold call {name}")
