"""Program-level static typechecking and shapechecking of NIR.

"Each complete procedural unit or main program compiles to a single
imperative action which has been typechecked and shapechecked.  Static
shapechecking is an analogous operation to static typechecking, but over
the shape domain.  This step satisfies assertions that in all direct
computations between arrays, the shapes of interacting arrays agree."
(section 4.1)

These passes walk a lowered (or transformed) NIR program, re-deriving
every value's type and shape with :class:`~repro.lowering.analysis.Inference`
and enforcing the imperative-level rules: MOVE targets are storage
references, sources conform to targets, masks are logical, conditions
are scalar, and DO bodies only use domains in scope.
"""

from __future__ import annotations

from .. import nir
from .analysis import Inference, VInfo
from .environment import Environment


class CheckError(Exception):
    """A type or shape violation found by the program checkers."""


def typecheck(program: nir.Program, env: Environment) -> None:
    """Raise :class:`CheckError` on any type-domain violation."""
    _Checker(env, mode="type").check(program)


def shapecheck(program: nir.Program, env: Environment) -> None:
    """Raise :class:`CheckError` on any shape-domain violation."""
    _Checker(env, mode="shape").check(program)


def check_program(program: nir.Program, env: Environment) -> None:
    """Run both checkers (the order the paper's front end applies them)."""
    typecheck(program, env)
    shapecheck(program, env)


class _Checker:
    def __init__(self, env: Environment, mode: str) -> None:
        self.env = env
        self.mode = mode
        self.domains: dict[str, nir.Shape] = dict(env.domains)
        self.infer = Inference(env, self.domains)

    def check(self, node: nir.Imperative) -> None:
        try:
            self._imp(node)
        except (nir.TypeError_, nir.ShapeError) as exc:
            raise CheckError(str(exc)) from exc

    # ------------------------------------------------------------------

    def _value(self, v: nir.Value) -> VInfo:
        return self.infer.infer(v)

    def _imp(self, node: nir.Imperative) -> None:
        if isinstance(node, nir.Program):
            self._imp(node.body)
        elif isinstance(node, nir.WithDomain):
            # Domain scoping: visible to the subtree only.
            prior = self.domains.get(node.name)
            self.domains[node.name] = node.shape
            try:
                self._imp(node.body)
            finally:
                if prior is None:
                    self.domains.pop(node.name, None)
                else:
                    self.domains[node.name] = prior
        elif isinstance(node, nir.WithDecl):
            self._imp(node.body)
        elif isinstance(node, (nir.Sequentially, nir.Concurrently)):
            for a in node.actions:
                self._imp(a)
        elif isinstance(node, nir.Move):
            for clause in node.clauses:
                self._move_clause(clause)
        elif isinstance(node, nir.IfThenElse):
            self._condition(node.cond, "IFTHENELSE condition")
            self._imp(node.then)
            self._imp(node.els)
        elif isinstance(node, nir.While):
            self._condition(node.cond, "WHILE condition")
            self._imp(node.body)
        elif isinstance(node, nir.Do):
            nir.resolve(node.shape, self.domains)  # raises if unbound
            self._imp(node.body)
        elif isinstance(node, nir.CallStmt):
            for a in node.args:
                self._value(a)
        elif isinstance(node, (nir.Skip, nir.RefOut, nir.CopyOut)):
            pass
        else:
            raise CheckError(
                f"unknown imperative {type(node).__name__}")

    def _move_clause(self, clause: nir.MoveClause) -> None:
        if not isinstance(clause.tgt, (nir.SVar, nir.AVar)):
            raise CheckError(
                f"MOVE target must reference storage, got {clause.tgt}")
        tinfo = self._value(clause.tgt)
        sinfo = self._value(clause.src)
        minfo = self._value(clause.mask)

        if self.mode == "type":
            if not minfo.elem.is_logical:
                raise CheckError(f"MOVE mask is not logical: {clause.mask}")
            if sinfo.elem.is_logical != tinfo.elem.is_logical:
                raise CheckError(
                    "MOVE mixes logical and arithmetic types: "
                    f"{sinfo.elem} -> {tinfo.elem}")
            return

        # shape mode
        if tinfo.shape is None:
            if sinfo.shape is not None:
                raise CheckError(
                    f"array value stored to scalar target {clause.tgt}")
            if minfo.shape is not None:
                raise CheckError(
                    f"array mask on scalar move to {clause.tgt}")
            return
        if sinfo.shape is not None and not nir.conformable(
                tinfo.shape, sinfo.shape, self.domains):
            raise CheckError(
                f"MOVE shapes do not conform: "
                f"{nir.extents(tinfo.shape, self.domains)} <- "
                f"{nir.extents(sinfo.shape, self.domains)}")
        if minfo.shape is not None and not nir.conformable(
                tinfo.shape, minfo.shape, self.domains):
            raise CheckError(
                f"MOVE mask shape does not conform to target: "
                f"{nir.extents(tinfo.shape, self.domains)} vs "
                f"{nir.extents(minfo.shape, self.domains)}")

    def _condition(self, cond: nir.Value, what: str) -> None:
        info = self._value(cond)
        if self.mode == "type" and not info.elem.is_logical:
            raise CheckError(f"{what} is not logical")
        if self.mode == "shape" and info.shape is not None:
            raise CheckError(f"{what} must be scalar")
