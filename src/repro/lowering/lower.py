"""Front-end semantic lowering: Fortran 90 ASTs to valid NIR programs.

This is the paper's section 4.1: "five semantic equations, one for each
of the semantic domains — declarations, types, values, imperatives, and
shapes ... defined piecewise as a mapping from specific syntactic forms
to NIR fragments."  The result is target-independent NIR, typechecked
and shapechecked, with no attempt at optimization.

The equations are the methods of :class:`Lowerer`:

* ``lower_type``       — type domain (TypeDecl base types to NIR types),
* ``lower_decls``      — declaration domain (via ``build_environment``),
* ``lower_value``      — value domain (expressions to NIR values),
* ``lower_imperative`` — imperative domain (statements to NIR actions),
* ``lower_shape``      — shape domain (triplets/bounds to NIR shapes).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .. import nir
from ..frontend import ast_nodes as A
from ..frontend import intrinsics as intr
from ..sourceloc import SourceLoc, attach_loc, loc_of
from . import fold
from .analysis import Inference
from .environment import Environment, LoweringError, build_environment


@dataclass
class LoweredProgram:
    """A lowered unit: the NIR program plus its environments."""

    nir: nir.Program
    env: Environment

    @property
    def domains(self) -> dict[str, nir.Shape]:
        return self.env.domains

    def inner_body(self) -> nir.Imperative:
        """The executable action inside all WITH_DOMAIN/WITH_DECL scopes."""
        node: nir.Imperative = self.nir.body
        while isinstance(node, (nir.WithDomain, nir.WithDecl)):
            node = node.body
        return node


def lower_program(unit: A.ProgramUnit) -> LoweredProgram:
    """Lower a parsed PROGRAM unit to NIR (the front-end semantic phase)."""
    return Lowerer(unit).run()


_BINOPS = {
    "+": nir.BinOp.ADD,
    "-": nir.BinOp.SUB,
    "*": nir.BinOp.MUL,
    "/": nir.BinOp.DIV,
    "**": nir.BinOp.POW,
    "==": nir.BinOp.EQ,
    "/=": nir.BinOp.NE,
    "<": nir.BinOp.LT,
    "<=": nir.BinOp.LE,
    ">": nir.BinOp.GT,
    ">=": nir.BinOp.GE,
    ".and.": nir.BinOp.AND,
    ".or.": nir.BinOp.OR,
    ".eqv.": nir.BinOp.EQV,
    ".neqv.": nir.BinOp.NEQV,
}


class Lowerer:
    def __init__(self, unit: A.ProgramUnit,
                 env: Environment | None = None) -> None:
        self.unit = unit
        self.env = env if env is not None else build_environment(unit)
        self.infer = Inference(self.env)
        # Serial-context bindings: loop/FORALL index name -> NIR value.
        self.index_bindings: dict[str, nir.Value] = {}

    def run(self) -> LoweredProgram:
        body = self.lower_block(self.unit.body)
        scoped: nir.Imperative = nir.WithDecl(self.env.nir_declarations(),
                                              body)
        # Domains wrap outermost, later-registered innermost, so that
        # product domains may reference earlier ones (Figure 8).
        for name, shape in reversed(list(self.env.domains.items())):
            scoped = nir.WithDomain(name, shape, scoped)
        program = nir.Program(scoped, name=self.unit.name)
        return LoweredProgram(nir=program, env=self.env)

    # ------------------------------------------------------------------
    # Imperative-domain equation
    # ------------------------------------------------------------------

    def lower_block(self, stmts) -> nir.Imperative:
        return nir.seq(*[self.lower_imperative(s) for s in stmts])

    def lower_imperative(self, stmt: A.Stmt) -> nir.Imperative:
        """Location-aware wrapper around the per-statement equations.

        Any semantic error escaping statement translation is tagged with
        the statement's source line (innermost location wins, so a more
        precise expression position set deeper down is preserved).
        """
        try:
            return self._lower_imperative(stmt)
        except (LoweringError, nir.TypeError_, nir.ShapeError) as exc:
            attach_loc(exc, loc_of(stmt))
            raise

    def _lower_imperative(self, stmt: A.Stmt) -> nir.Imperative:
        if isinstance(stmt, A.Assignment):
            return self.lower_assignment(stmt)
        if isinstance(stmt, A.ForallStmt):
            return self.lower_forall(stmt)
        if isinstance(stmt, A.WhereConstruct):
            return self.lower_where(stmt)
        if isinstance(stmt, A.DoLoop):
            return self.lower_do(stmt)
        if isinstance(stmt, A.DoWhile):
            cond = self.lower_value(stmt.cond)
            self._require_scalar(cond, "DO WHILE condition", stmt.line)
            return nir.While(cond, self.lower_block(stmt.body))
        if isinstance(stmt, A.IfConstruct):
            return self.lower_if(stmt)
        if isinstance(stmt, A.PrintStmt):
            return nir.CallStmt(
                "print", tuple(self.lower_value(e) for e in stmt.items))
        if isinstance(stmt, A.CallStmt):
            return nir.CallStmt(
                stmt.name, tuple(self.lower_value(a) for a in stmt.args))
        if isinstance(stmt, A.ContinueStmt):
            return nir.Skip()
        if isinstance(stmt, A.StopStmt):
            return nir.CallStmt("stop")
        raise LoweringError(f"cannot lower statement {type(stmt).__name__}")

    def lower_assignment(self, stmt: A.Assignment,
                         mask: nir.Value = nir.TRUE) -> nir.Imperative:
        target = self.lower_target(stmt.target)
        src = self.lower_value(stmt.expr)
        # Shapecheck the interaction now (static shapechecking, §4.1).
        tinfo = self.infer.infer(target)
        sinfo = self.infer.infer(src)
        if sinfo.shape is not None and tinfo.shape is None:
            raise nir.ShapeError(
                f"line {stmt.line}: array value assigned to scalar "
                f"'{stmt.target}'")
        if sinfo.shape is not None and tinfo.shape is not None:
            if not nir.conformable(tinfo.shape, sinfo.shape,
                                   self.env.domains):
                raise nir.ShapeError(
                    f"line {stmt.line}: shape mismatch in assignment to "
                    f"'{stmt.target}': {nir.extents(tinfo.shape, self.env.domains)} "
                    f"vs {nir.extents(sinfo.shape, self.env.domains)}")
        loc = loc_of(stmt.target) or loc_of(stmt)
        return nir.move1(src, target, mask, loc=loc)

    def lower_target(self, target: A.Expr) -> nir.Value:
        if isinstance(target, A.VarRef):
            if target.name in self.index_bindings:
                raise LoweringError(
                    f"cannot assign to loop index '{target.name}'")
            sym = self.env.lookup(target.name)
            if sym.is_array:
                return nir.AVar(target.name, nir.Everywhere())
            if target.name in self.env.params:
                raise LoweringError(
                    f"cannot assign to PARAMETER '{target.name}'")
            return nir.SVar(target.name)
        if isinstance(target, A.ArrayRef):
            sym = self.env.lookup(target.name)
            if not sym.is_array:
                raise LoweringError(f"'{target.name}' is not an array")
            field = self.lower_subscripts(target.name, target.subscripts)
            return nir.AVar(target.name, field)
        raise LoweringError(f"invalid assignment target {target}")

    def lower_if(self, stmt: A.IfConstruct) -> nir.Imperative:
        node: nir.Imperative = (self.lower_block(stmt.else_body)
                                if stmt.else_body else nir.Skip())
        for cond_expr, body in reversed(stmt.arms):
            cond = self.lower_value(cond_expr)
            self._require_scalar(cond, "IF condition", stmt.line)
            node = nir.IfThenElse(cond, self.lower_block(body), node)
        return node

    def lower_do(self, stmt: A.DoLoop) -> nir.Imperative:
        lo = fold.try_fold_int(stmt.lo, self.env.params)
        hi = fold.try_fold_int(stmt.hi, self.env.params)
        step = (fold.try_fold_int(stmt.step, self.env.params)
                if stmt.step is not None else 1)
        sym = self.env.lookup(stmt.var)
        if sym.is_array or not sym.element.is_integer:
            raise LoweringError(
                f"DO index '{stmt.var}' must be an integer scalar")
        if lo is not None and hi is not None and step is not None:
            shape = self.lower_shape_serial(lo, hi, step)
            prev = self.index_bindings.get(stmt.var)
            self.index_bindings[stmt.var] = nir.SVar(stmt.var)
            try:
                body = self.lower_block(stmt.body)
            finally:
                if prev is None:
                    self.index_bindings.pop(stmt.var, None)
                else:
                    self.index_bindings[stmt.var] = prev
            return nir.Do(shape, body, index_names=(stmt.var,))
        # Non-constant bounds: fall back to an explicit WHILE loop.
        init = nir.move1(self.lower_value(stmt.lo), nir.SVar(stmt.var))
        step_v = (self.lower_value(stmt.step) if stmt.step is not None
                  else nir.int_const(1))
        cond = nir.Binary(nir.BinOp.LE, nir.SVar(stmt.var),
                          self.lower_value(stmt.hi))
        body = self.lower_block(stmt.body)
        bump = nir.move1(
            nir.Binary(nir.BinOp.ADD, nir.SVar(stmt.var), step_v),
            nir.SVar(stmt.var))
        return nir.seq(init, nir.While(cond, nir.seq(body, bump)))

    def lower_where(self, stmt: A.WhereConstruct) -> nir.Imperative:
        mask = self.lower_value(stmt.mask)
        minfo = self.infer.infer(mask)
        if minfo.shape is None or not minfo.elem.is_logical:
            raise nir.TypeError_(
                f"line {stmt.line}: WHERE mask must be a logical array")
        # Fortran evaluates the WHERE mask once.  If any body assignment
        # writes an array the mask reads, materialize the mask into a
        # logical temporary first; otherwise use it inline (the cleaner
        # Figure 10 form).
        prelude: list[nir.Imperative] = []
        mask_reads = nir.array_vars(mask)
        written = set()
        for a in list(stmt.body) + list(stmt.elsewhere):
            if isinstance(a.target, (A.VarRef, A.ArrayRef)):
                written.add(a.target.name)
        if mask_reads & written:
            tmp = self.env.fresh_temp(
                nir.extents(minfo.shape, self.env.domains), nir.LOGICAL_32)
            prelude.append(
                nir.move1(mask, nir.AVar(tmp.name, nir.Everywhere())))
            mask = nir.AVar(tmp.name, nir.Everywhere())
        moves = [self.lower_assignment(a, mask=mask) for a in stmt.body]
        neg = nir.Unary(nir.UnOp.NOT, mask)
        moves += [self.lower_assignment(a, mask=neg) for a in stmt.elsewhere]
        return nir.seq(*prelude, *moves)

    def lower_forall(self, stmt: A.ForallStmt) -> nir.Imperative:
        target = stmt.assignment.target
        if not isinstance(target, A.ArrayRef):
            raise LoweringError("FORALL target must be an array reference")
        sym = self.env.lookup(target.name)
        if len(target.subscripts) != len(sym.extents):
            raise LoweringError(
                f"FORALL target '{target.name}' rank mismatch")
        triplet_by_var = {t.var: t for t in stmt.triplets}
        # Region axis of each triplet variable in the target reference;
        # non-triplet subscripts (e.g. a surrounding serial DO index, as in
        # Figure 9's "do i / forall j" nest) pin their axis to a point and
        # contribute nothing to the parallel region.
        axis_of: dict[str, int] = {}
        region: list[nir.Shape] = []
        pinned: dict[int, nir.Value] = {}  # target axis -> scalar index value
        for axis, sub in enumerate(target.subscripts, start=1):
            if isinstance(sub, A.VarRef) and sub.name in triplet_by_var:
                if sub.name in axis_of:
                    raise LoweringError(
                        f"FORALL variable '{sub.name}' used twice in target")
                t = triplet_by_var[sub.name]
                lo = fold.fold_int(t.lo, self.env.params)
                hi = fold.fold_int(t.hi, self.env.params)
                stride = (fold.fold_int(t.stride, self.env.params)
                          if t.stride is not None else 1)
                axis_of[sub.name] = len(region) + 1
                region.append(nir.Interval(lo, hi, stride))
            else:
                value = self.lower_value(sub)
                info = self.infer.infer(value)
                if info.shape is not None or not info.elem.is_integer:
                    raise LoweringError(
                        "FORALL target subscripts must be triplet variables "
                        "or scalar integer expressions")
                pinned[axis] = value
        if set(axis_of) != set(triplet_by_var):
            raise LoweringError("unused FORALL triplet variable")
        if not region:
            raise LoweringError("FORALL region is empty")
        region_shape: nir.Shape = (region[0] if len(region) == 1
                                   else nir.ProdDom(tuple(region)))
        full = (not pinned
                and nir.extents(region_shape) == sym.extents
                and all(isinstance(d, nir.Interval)
                        and d.lo == 1 and d.stride == 1 for d in region))
        if full:
            # The region covers the array: use its declared domain so the
            # move is recognized as an everywhere-computation (Figure 7).
            region_shape = nir.DomainRef(sym.domain)
            field: nir.FieldAction = nir.Everywhere()
        else:
            indices: list[nir.Value] = []
            region_iter = iter(region)
            for axis in range(1, len(target.subscripts) + 1):
                if axis in pinned:
                    indices.append(pinned[axis])
                else:
                    d = next(region_iter)
                    indices.append(nir.IndexRange(
                        nir.int_const(d.lo), nir.int_const(d.hi),
                        nir.int_const(d.stride)))
            field = nir.Subscript(tuple(indices))
        bindings = {
            var: nir.LocalUnder(region_shape, axis)
            for var, axis in axis_of.items()
        }
        saved = dict(self.index_bindings)
        self.index_bindings.update(bindings)
        try:
            src = self.lower_value(stmt.assignment.expr)
            mask = (self.lower_value(stmt.mask)
                    if stmt.mask is not None else nir.TRUE)
        finally:
            self.index_bindings = saved
        return nir.move1(src, nir.AVar(target.name, field), mask,
                         loc=loc_of(target) or loc_of(stmt))

    # ------------------------------------------------------------------
    # Shape-domain equation
    # ------------------------------------------------------------------

    def lower_shape_serial(self, lo: int, hi: int, step: int) -> nir.Shape:
        return nir.SerialInterval(lo, hi, step)

    # ------------------------------------------------------------------
    # Value-domain equation
    # ------------------------------------------------------------------

    def lower_value(self, expr: A.Expr) -> nir.Value:
        """Location-aware wrapper around the value-domain equation.

        The produced NIR value is stamped with the expression's source
        position (when it does not already carry a more precise one),
        and any semantic error is tagged the same way.
        """
        loc = getattr(expr, "loc", None)
        try:
            out = self._lower_value(expr)
        except (LoweringError, nir.TypeError_, nir.ShapeError) as exc:
            attach_loc(exc, loc)
            raise
        if loc is not None and out.loc is None:
            out = dataclasses.replace(out, loc=loc)
        return out

    def _lower_value(self, expr: A.Expr) -> nir.Value:
        if isinstance(expr, A.IntLit):
            return nir.int_const(expr.value)
        if isinstance(expr, A.RealLit):
            return nir.Scalar(
                nir.FLOAT_64 if expr.double else nir.FLOAT_32, expr.value)
        if isinstance(expr, A.LogicalLit):
            return nir.Scalar(nir.LOGICAL_32, expr.value)
        if isinstance(expr, A.VarRef):
            return self.lower_var(expr.name)
        if isinstance(expr, A.BinExpr):
            op = _BINOPS.get(expr.op)
            if op is None:
                raise LoweringError(f"unknown operator {expr.op}")
            return nir.Binary(op, self.lower_value(expr.left),
                              self.lower_value(expr.right))
        if isinstance(expr, A.UnExpr):
            if expr.op == "-":
                return nir.Unary(nir.UnOp.NEG, self.lower_value(expr.operand))
            if expr.op == ".not.":
                return nir.Unary(nir.UnOp.NOT, self.lower_value(expr.operand))
            raise LoweringError(f"unknown unary operator {expr.op}")
        if isinstance(expr, A.ArrayRef):
            return self.lower_ref_or_call(expr)
        raise LoweringError(f"cannot lower expression {expr}")

    def lower_var(self, name: str) -> nir.Value:
        if name in self.index_bindings:
            return self.index_bindings[name]
        if name in self.env.params:
            sym = self.env.lookup(name)
            return nir.Scalar(sym.element, self.env.params[name])
        sym = self.env.lookup(name)
        if sym.is_array:
            return nir.AVar(name, nir.Everywhere())
        return nir.SVar(name)

    def lower_ref_or_call(self, expr: A.ArrayRef) -> nir.Value:
        name = expr.name.lower()
        if name in self.env.symbols and self.env.lookup(name).is_array:
            field = self.lower_subscripts(name, expr.subscripts)
            return nir.AVar(name, field)
        if intr.is_intrinsic(name):
            return self.lower_intrinsic(name, expr)
        raise LoweringError(f"unknown function or array '{name}'")

    def lower_subscripts(self, name: str, subscripts) -> nir.FieldAction:
        sym = self.env.lookup(name)
        if len(subscripts) != len(sym.extents):
            raise nir.ShapeError(
                f"'{name}' has rank {len(sym.extents)} but "
                f"{len(subscripts)} subscripts were given")
        indices: list[nir.Value] = []
        all_full = True
        for axis, sub in enumerate(subscripts):
            if isinstance(sub, A.SectionRange):
                rng = self.lower_range(sub)
                full = (rng.lo is None and rng.hi is None
                        and rng.stride is None)
                if not full:
                    all_full = False
                indices.append(rng)
            else:
                all_full = False
                indices.append(self.lower_value(sub))
        if all_full:
            return nir.Everywhere()
        return nir.Subscript(tuple(indices))

    def lower_range(self, rng: A.SectionRange) -> nir.IndexRange:
        def bound(e: A.Expr | None) -> nir.Value | None:
            if e is None:
                return None
            n = fold.try_fold_int(e, self.env.params)
            if n is None:
                raise LoweringError(
                    "section bounds must be constant expressions")
            return nir.int_const(n)

        return nir.IndexRange(bound(rng.lo), bound(rng.hi), bound(rng.stride))

    def lower_intrinsic(self, name: str, expr: A.ArrayRef) -> nir.Value:
        positional: list[A.Expr] = []
        keyword: dict[str, A.Expr] = {}
        for arg in expr.subscripts:
            if isinstance(arg, A.KeywordArg):
                keyword[arg.name] = arg.value
            else:
                positional.append(arg)

        if name in intr.UNARY_INTRINSICS:
            if len(positional) != 1 or keyword:
                raise LoweringError(f"{name}: expected one argument")
            return nir.Unary(intr.UNARY_INTRINSICS[name],
                             self.lower_value(positional[0]))
        if name in intr.BINARY_INTRINSICS:
            if len(positional) < 2 or keyword:
                raise LoweringError(f"{name}: expected two or more arguments")
            out = self.lower_value(positional[0])
            for nxt in positional[1:]:
                out = nir.Binary(intr.BINARY_INTRINSICS[name], out,
                                 self.lower_value(nxt))
            return out
        if name == "merge":
            if len(positional) + len(keyword) != 3:
                raise LoweringError("merge: expected three arguments")
            slots = intr.normalize_args(
                intr.Intrinsic("merge", "elemental", 3, 3,
                               ("tsource", "fsource", "mask")),
                positional, keyword)
            return nir.FcnCall(
                "merge", tuple(self.lower_value(a) for a in slots))
        if name in ("size", "shape", "lbound", "ubound"):
            return self.lower_inquiry(name, positional)
        if name in intr.COMMUNICATION:
            sig = intr.COMMUNICATION[name]
            slots = intr.normalize_args(sig, positional, keyword)
            return self.lower_comm(name, slots)
        if name in intr.REDUCTIONS:
            sig = intr.REDUCTIONS[name]
            slots = intr.normalize_args(sig, positional, keyword)
            args = [self.lower_value(slots[0])]
            if len(slots) > 1 and slots[1] is not None:
                args.append(self.lower_const_int(slots[1], f"{name} DIM"))
            return nir.FcnCall(name, tuple(args))
        raise LoweringError(f"unsupported intrinsic '{name}'")

    def lower_inquiry(self, name: str, positional) -> nir.Value:
        if not positional or not isinstance(positional[0], A.VarRef):
            raise LoweringError(f"{name}: expected an array argument")
        sym = self.env.lookup(positional[0].name)
        if not sym.is_array:
            raise LoweringError(f"{name}: '{sym.name}' is not an array")
        if name == "size":
            if len(positional) > 1:
                dim = fold.fold_int(positional[1], self.env.params)
                return nir.int_const(sym.extents[dim - 1])
            total = 1
            for e in sym.extents:
                total *= e
            return nir.int_const(total)
        if name in ("lbound", "ubound") and len(positional) > 1:
            dim = fold.fold_int(positional[1], self.env.params)
            return nir.int_const(1 if name == "lbound"
                                 else sym.extents[dim - 1])
        raise LoweringError(f"{name}: unsupported form")

    def lower_comm(self, name: str, slots) -> nir.Value:
        array = self.lower_value(slots[0])
        if name == "cshift":
            shift = self.lower_const_int(slots[1], "cshift SHIFT")
            dim = (self.lower_const_int(slots[2], "cshift DIM")
                   if slots[2] is not None else nir.int_const(1))
            return nir.FcnCall("cshift", (array, shift, dim))
        if name == "eoshift":
            shift = self.lower_const_int(slots[1], "eoshift SHIFT")
            boundary = (self.lower_value(slots[2])
                        if slots[2] is not None else nir.int_const(0))
            dim = (self.lower_const_int(slots[3], "eoshift DIM")
                   if slots[3] is not None else nir.int_const(1))
            return nir.FcnCall("eoshift", (array, shift, boundary, dim))
        if name == "transpose":
            return nir.FcnCall("transpose", (array,))
        if name == "spread":
            dim = self.lower_const_int(slots[1], "spread DIM")
            ncopies = self.lower_const_int(slots[2], "spread NCOPIES")
            return nir.FcnCall("spread", (array, dim, ncopies))
        raise LoweringError(f"unsupported communication intrinsic {name}")

    def lower_const_int(self, expr: A.Expr, what: str) -> nir.Scalar:
        n = fold.try_fold_int(expr, self.env.params)
        if n is None:
            raise LoweringError(f"{what} must be a constant expression")
        return nir.int_const(n)

    # ------------------------------------------------------------------

    def _require_scalar(self, value: nir.Value, what: str, line: int) -> None:
        info = self.infer.infer(value)
        if info.shape is not None:
            raise nir.ShapeError(f"line {line}: {what} must be scalar")
