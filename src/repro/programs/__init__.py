"""Benchmark workloads written in the supported Fortran 90 subset."""

from .kernels import (
    ALL_KERNELS,
    blocking_source,
    cg_source,
    deck_source,
    matmul_source,
    redblack_source,
    forall_source,
    heat_source,
    life_source,
    reduction_source,
    saxpy_source,
    where_source,
)
from .swe import FLOPS_PER_POINT_PER_STEP, swe_source

__all__ = [
    "ALL_KERNELS",
    "blocking_source",
    "cg_source",
    "deck_source",
    "matmul_source",
    "redblack_source",
    "forall_source",
    "heat_source",
    "life_source",
    "reduction_source",
    "saxpy_source",
    "where_source",
    "FLOPS_PER_POINT_PER_STEP",
    "swe_source",
]
