"""Additional benchmark workloads in the Fortran 90 subset.

These exercise the code paths the paper's motivation names: stencil
(fine-grain neighbourhood) computation, masked WHERE computation,
dusty-deck Fortran 77 loop nests, reductions, and mixed-domain programs
that stress the blocking scheduler.
"""

from __future__ import annotations


def heat_source(n: int = 64, steps: int = 4) -> str:
    """Five-point Jacobi heat diffusion with circular boundaries."""
    return f"""
program heat
integer, parameter :: n = {n}
integer, parameter :: steps = {steps}
double precision, array(n,n) :: t, tnew
double precision kappa
integer it
kappa = 0.1d0
forall (i=1:n, j=1:n) t(i,j) = mod(i*7 + j*3, 11) * 1.0d0
do it = 1, steps
   tnew = t + kappa * (cshift(t, shift=1, dim=1) + cshift(t, shift=-1, dim=1) &
          + cshift(t, shift=1, dim=2) + cshift(t, shift=-1, dim=2) - 4.0d0 * t)
   t = tnew
end do
end program heat
"""


def life_source(n: int = 32, steps: int = 2) -> str:
    """Conway's Game of Life: 8-neighbour stencil with merge masks."""
    return f"""
program life
integer, parameter :: n = {n}
integer, parameter :: steps = {steps}
integer, array(n,n) :: grid, neighbors
integer it
forall (i=1:n, j=1:n) grid(i,j) = mod(i*i + j*5 + i*j, 3) / 2
do it = 1, steps
   neighbors = cshift(grid, shift=1, dim=1) + cshift(grid, shift=-1, dim=1) &
             + cshift(grid, shift=1, dim=2) + cshift(grid, shift=-1, dim=2) &
             + cshift(cshift(grid, shift=1, dim=1), shift=1, dim=2) &
             + cshift(cshift(grid, shift=1, dim=1), shift=-1, dim=2) &
             + cshift(cshift(grid, shift=-1, dim=1), shift=1, dim=2) &
             + cshift(cshift(grid, shift=-1, dim=1), shift=-1, dim=2)
   grid = merge(1, 0, (neighbors == 3) .or. ((grid == 1) .and. (neighbors == 2)))
end do
end program life
"""


def deck_source(n: int = 128, m: int = 64) -> str:
    """The paper's section 2.1 dusty-deck example, verbatim F77 style."""
    return f"""
PROGRAM deck
INTEGER K({n},{m}), L({n})
INTEGER I, J
DO 10 I=1,{n}
   L(I) = 6
   DO 20 J=1,{m}
      K(I,J) = 2*K(I,J) + 5
20 CONTINUE
10 CONTINUE
DO 30 I={m // 2},{m}
   L(I) = L(I+{m})
   DO 40 J=1,{m}
      K(I,J) = K(I,J)**2
40 CONTINUE
30 CONTINUE
END
"""


def where_source(n: int = 32) -> str:
    """The paper's Figure 10 masked-assignment blocking workload."""
    return f"""
program fig10
integer, array({n},{n}) :: A, B
integer, array({n}) :: C
integer nval
nval = 7
A = nval
B(1:{n}:2,:) = A(1:{n}:2,:)
C = nval + 1
B(2:{n}:2,:) = 5*A(2:{n}:2,:)
end
"""


def blocking_source(n: int = 64) -> str:
    """The paper's Figure 9 domain-blocking workload."""
    return f"""
program fig9
integer, array({n},{n}) :: A, B
integer, array({n}) :: C
integer i
do 10 i=1,{n}
   forall (j=1:{n}) A(i,j) = B(i,j) + j
10 continue
do 20 i=1,{n}
   C(i) = A(i,i)
20 continue
B = A
end
"""


def forall_source(n: int = 32) -> str:
    """The paper's Figure 7 FORALL-to-parallel-MOVE workload."""
    return f"""
program fig7
integer, array({n},{n}) :: A
FORALL (i=1:{n}, j=1:{n}) A(i,j) = i+j
end
"""


def reduction_source(n: int = 64) -> str:
    """Reductions feeding front-end scalars and control flow."""
    return f"""
program reduce
integer, parameter :: n = {n}
double precision, array(n,n) :: a
double precision total, biggest
integer cnt
forall (i=1:n, j=1:n) a(i,j) = sin(i * 0.1d0) * cos(j * 0.1d0)
total = sum(a)
biggest = maxval(a)
cnt = count(a > 0.5d0)
if (biggest > 0.9d0) then
   a = a / biggest
end if
total = total + sum(a * a)
end program reduce
"""


def saxpy_source(n: int = 4096) -> str:
    """One-dimensional vector kernel: y = a*x + y (chained multiply-add)."""
    return f"""
program saxpy
integer, parameter :: n = {n}
double precision, array(n) :: x, y
double precision a
a = 2.5d0
forall (i=1:n) x(i) = i * 0.001d0
forall (i=1:n) y(i) = (n - i) * 0.002d0
y = a * x + y
end program saxpy
"""


def redblack_source(n: int = 32, sweeps: int = 2) -> str:
    """Red-black Gauss-Seidel relaxation: strided sections + masking.

    The checkerboard updates exercise the Figure 10 machinery on a
    real iteration: every half-sweep is a pair of disjoint strided
    section assignments the padder turns into one masked block.
    """
    return f"""
program redblack
integer, parameter :: n = {n}
double precision, array(n,n) :: u, f, work
integer sweep
forall (i=1:n, j=1:n) f(i,j) = sin(i * 0.2d0) * cos(j * 0.2d0)
u = 0.0d0
do sweep = 1, {sweeps}
   work = 0.25d0 * (cshift(u,1,1) + cshift(u,-1,1) &
          + cshift(u,1,2) + cshift(u,-1,2) + f)
   u(1:n:2,:) = work(1:n:2,:)
   work = 0.25d0 * (cshift(u,1,1) + cshift(u,-1,1) &
          + cshift(u,1,2) + cshift(u,-1,2) + f)
   u(2:n:2,:) = work(2:n:2,:)
end do
end program redblack
"""


def matmul_source(n: int = 16) -> str:
    """Matrix multiply via SPREAD and SUM(dim): transformational comm.

    ``c(i,j) = sum_k a(i,k) * b(k,j)`` written as whole-array code with
    a rank-3 intermediate — SPREAD replication plus a dimensional
    reduction, both CM runtime services.
    """
    return f"""
program matmul
integer, parameter :: n = {n}
double precision, array(n,n) :: a, b, c
double precision, array(n,n,n) :: work
forall (i=1:n, j=1:n) a(i,j) = mod(i*3 + j, 5) * 0.5d0
forall (i=1:n, j=1:n) b(i,j) = mod(i + j*2, 7) * 0.25d0
work = spread(a, 3, n) * spread(b, 1, n)
c = sum(work, 2)
b = transpose(c)
end program matmul
"""


def cg_source(n: int = 64, iters: int = 4) -> str:
    """Conjugate-gradient iterations on a 1-D Laplacian, with FUNCTIONs.

    Exercises the whole language surface at once: function units
    (inline-expanded), reductions feeding scalar recurrences, a serial
    iteration loop, and stencil communication inside the operator.
    """
    return f"""
program cg
integer, parameter :: n = {n}
double precision, array(n) :: x, r, p, ap
double precision rr, rrnew, alpha, beta, pap
integer it
forall (i=1:n) r(i) = sin(i * 0.3d0)
x = 0.0d0
p = r
rr = dot(r, r)
do it = 1, {iters}
   ap = amul(p)
   pap = dot(p, ap)
   alpha = rr / pap
   x = x + alpha * p
   r = r - alpha * ap
   rrnew = dot(r, r)
   beta = rrnew / rr
   p = r + beta * p
   rr = rrnew
end do
end program cg

double precision function dot(u, v)
double precision, array({n}) :: u, v
dot = sum(u * v)
end function dot

function amul(v)
double precision, array({n}) :: amul, v
! The operator: 2I - shift - shift^T (a periodic 1-D Laplacian, SPD-ish)
amul = 2.5d0 * v - cshift(v, 1) - cshift(v, -1)
end function amul
"""


ALL_KERNELS = {
    "heat": heat_source,
    "life": life_source,
    "deck": deck_source,
    "where": where_source,
    "blocking": blocking_source,
    "forall": forall_source,
    "reduction": reduction_source,
    "saxpy": saxpy_source,
    "redblack": redblack_source,
    "matmul": matmul_source,
    "cg": cg_source,
}
