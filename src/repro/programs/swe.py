"""The SWE benchmark: shallow-water equations in data-parallel Fortran 90.

"The initial benchmark was an updated Fortran-90 version of a dusty deck
code to implement a meteorological model, the 'shallow-water equations,'
or SWE.  It has good locality, consisting of a series of circular shifts
interspersed with blocks of local computation, and so represents an
ideal problem for a SIMD, data-parallel machine like the CM/2"
(section 6).

This is the classic Sadourny (1975) finite-difference scheme on a
doubly-periodic C-grid — the SWM77 "swm" benchmark — rewritten with
whole-array expressions and CSHIFT, exactly the modernization the paper
describes.  :func:`swe_source` renders it for any grid size and cycle
count.
"""

from __future__ import annotations

_TEMPLATE = """
program swe
integer, parameter :: n = {n}
integer, parameter :: itmax = {itmax}
double precision, array(n,n) :: u, v, p, unew, vnew, pnew
double precision, array(n,n) :: uold, vold, pold, cu, cv, z, h, psi
double precision dt, tdt, dx, dy, a, alpha, el, pi, tpi, di, dj, pcf
double precision fsdx, fsdy, tdts8, tdtsdx, tdtsdy
integer ncycle

dt = 90.0d0
tdt = dt
dx = 100000.0d0
dy = 100000.0d0
a = 1000000.0d0
alpha = 0.001d0
el = n * dx
pi = 3.14159265358979d0
tpi = pi + pi
di = tpi / n
dj = tpi / n
pcf = pi * pi * a * a / (el * el)
fsdx = 4.0d0 / dx
fsdy = 4.0d0 / dy

! Initial conditions: a doubly-periodic velocity streamfunction.
forall (i=1:n, j=1:n) psi(i,j) = a * sin((i - 0.5d0) * di) * sin((j - 0.5d0) * dj)
forall (i=1:n, j=1:n) p(i,j) = pcf * (cos(2.0d0 * (i - 1) * di) + cos(2.0d0 * (j - 1) * dj)) + 50000.0d0
u = -(cshift(psi, shift=1, dim=2) - psi) / dy
v = (cshift(psi, shift=1, dim=1) - psi) / dx

uold = u
vold = v
pold = p

do ncycle = 1, itmax
   ! Compute capital u, capital v, z and h.
   cu = 0.5d0 * (p + cshift(p, shift=-1, dim=1)) * u
   cv = 0.5d0 * (p + cshift(p, shift=-1, dim=2)) * v
   z = (fsdx * (v - cshift(v, shift=-1, dim=1)) - fsdy * (u - cshift(u, shift=-1, dim=2))) &
       / (cshift(cshift(p, shift=-1, dim=1), shift=-1, dim=2) + cshift(p, shift=-1, dim=2) + p + cshift(p, shift=-1, dim=1))
   h = p + 0.25d0 * (cshift(u, shift=1, dim=1) * cshift(u, shift=1, dim=1) + u * u &
       + cshift(v, shift=1, dim=2) * cshift(v, shift=1, dim=2) + v * v)

   tdts8 = tdt / 8.0d0
   tdtsdx = tdt / dx
   tdtsdy = tdt / dy

   ! Time tendencies.
   unew = uold + tdts8 * (cshift(z, shift=1, dim=2) + z) &
          * (cshift(cv, shift=1, dim=2) + cshift(cshift(cv, shift=-1, dim=1), shift=1, dim=2) &
             + cshift(cv, shift=-1, dim=1) + cv) &
          - tdtsdx * (h - cshift(h, shift=-1, dim=1))
   vnew = vold - tdts8 * (cshift(z, shift=1, dim=1) + z) &
          * (cshift(cu, shift=1, dim=1) + cshift(cshift(cu, shift=-1, dim=2), shift=1, dim=1) &
             + cshift(cu, shift=-1, dim=2) + cu) &
          - tdtsdy * (h - cshift(h, shift=-1, dim=2))
   pnew = pold - tdtsdx * (cshift(cu, shift=1, dim=1) - cu) - tdtsdy * (cshift(cv, shift=1, dim=2) - cv)

   if (ncycle > 1) then
      ! Robert-Asselin time smoothing.
      uold = u + alpha * (unew - 2.0d0 * u + uold)
      vold = v + alpha * (vnew - 2.0d0 * v + vold)
      pold = p + alpha * (pnew - 2.0d0 * p + pold)
   else
      tdt = tdt + tdt
      uold = u
      vold = v
      pold = p
   end if
   u = unew
   v = vnew
   p = pnew
end do
end program swe
"""


def swe_source(n: int = 64, itmax: int = 1) -> str:
    """The SWE benchmark source for an ``n``x``n`` grid, ``itmax`` steps."""
    if n < 4:
        raise ValueError("SWE needs at least a 4x4 grid")
    if itmax < 1:
        raise ValueError("itmax must be positive")
    return _TEMPLATE.format(n=n, itmax=itmax)


# Rough algorithmic flop count per grid point per time step (the SWE
# community convention), for cross-checking the simulator's counter.
FLOPS_PER_POINT_PER_STEP = 65
