"""The :class:`PassManager`: runs a pipeline, owns the cross-cutting
concerns.

The manager is the only place that knows about scope transitions
(program-scope passes see the WITH_DOMAIN/WITH_DECL scaffolding, body
passes see the bare statement tree), per-pass instrumentation (wall
time and IR node-count deltas into a
:class:`~repro.pipeline.trace.PipelineTrace`), inter-pass verification
(the NIR verifier runs on the input and after every executed pass,
naming the offending stage), and ``--dump-after`` snapshots.  Passes
themselves stay pure transformations.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Sequence

from .. import nir
from ..lowering.environment import Environment
from .passes import Pass, PassContext
from .registry import UnknownPassError
from .trace import PassTiming, PipelineTrace


def unwrap_body(program: nir.Program) -> nir.Imperative:
    """Strip the PROGRAM/WITH_DOMAIN/WITH_DECL scaffolding."""
    node: nir.Imperative = program.body
    while isinstance(node, (nir.WithDomain, nir.WithDecl)):
        node = node.body
    return node


def wrap_body(body: nir.Imperative, env: Environment,
              name: str) -> nir.Program:
    """Re-apply scoping: declarations innermost, domains around them."""
    scoped: nir.Imperative = nir.WithDecl(env.nir_declarations(), body)
    for dom_name, shape in reversed(list(env.domains.items())):
        scoped = nir.WithDomain(dom_name, shape, scoped)
    return nir.Program(scoped, name=name)


def ir_size(node: nir.Imperative) -> int:
    """IR weight: imperative node count (cheap, monotone under growth)."""
    return sum(1 for _ in nir.imperatives.walk(node))


class PassManager:
    """Drive a pass sequence over one lowered program.

    With a ``store`` (an :class:`~repro.service.store.ArtifactStore`),
    the manager consults it before running each pass: the pass's
    fingerprint is the hash of its *input state* chained from the
    upstream artifact, plus the pass's name and projected config, the
    compile ``context`` (resolved target, ``fuse_exec``), and the store
    schema version.  A hit applies the pass without running it — the
    chain advances on the artifact's recorded output hash, the report
    slot is restored from the artifact's meta, and the actual IR is
    only unpickled at the first miss (or at the end).  Store
    consultation is disabled under ``verify`` and ``dump_after``, whose
    whole point is observing the passes actually run.
    """

    def __init__(self, passes: Sequence[Pass], *, verify: bool = False,
                 dump_after: Iterable[str] = (),
                 store=None, context: dict | None = None,
                 input_hash: str | None = None) -> None:
        self.passes = list(passes)
        self.verify = verify
        self.dump_after = tuple(dump_after)
        self.store = None if (verify or self.dump_after) else store
        self.context = dict(context or {})
        self.input_hash = input_hash
        known = {p.name for p in self.passes}
        for name in self.dump_after:
            if name not in known:
                raise UnknownPassError(name, known)

    # ------------------------------------------------------------------

    def _checked(self, trace: PipelineTrace, stage: str, node, env) -> None:
        if not self.verify:
            return
        from ..analysis.nir_verifier import assert_valid

        t0 = time.perf_counter()
        assert_valid(node, env, stage)
        trace.verify_seconds += time.perf_counter() - t0

    def run(self, program: nir.Program, env: Environment, options: Any,
            report: Any, input_stage: str = "input"
            ) -> tuple[nir.Program, PipelineTrace]:
        """Run every enabled pass; return the program and its trace.

        ``input_stage`` names the producer of ``program`` for the
        verifier's initial well-formedness check (the driver passes
        ``"lower"``).
        """
        if self.store is not None:
            return self._run_store(program, env, options, report,
                                   input_stage)
        trace = PipelineTrace()
        t_run = time.perf_counter()
        self._checked(trace, input_stage, program, env)

        current: nir.Imperative = program
        in_body = False  # whether ``current`` is the unwrapped body
        name = program.name

        for p in self.passes:
            if not p.enabled(options):
                trace.passes.append(PassTiming(p.name, enabled=False))
                continue
            if p.scope == "body" and not in_body:
                current = unwrap_body(current)
                in_body = True
            elif p.scope == "program" and in_body:
                current = wrap_body(current, env, name)
                in_body = False
            before = ir_size(current)
            ctx = PassContext(node=current, env=env, options=options,
                              report=report, verify=self.verify)
            t0 = time.perf_counter()
            current = p.run(ctx)
            seconds = time.perf_counter() - t0
            trace.passes.append(PassTiming(
                p.name, seconds=seconds, ir_before=before,
                ir_after=ir_size(current)))
            self._checked(trace, p.name, current, env)
            if p.name in self.dump_after:
                trace.dumps[p.name] = nir.pretty(current)

        if in_body:
            current = wrap_body(current, env, name)
        trace.total_seconds = time.perf_counter() - t_run
        assert isinstance(current, nir.Program)
        return current, trace

    # -- the store-backed (incremental) path ---------------------------

    def _pass_key(self, p: Pass, in_hash: str, options: Any) -> str:
        return self.store.fingerprint("pass", {
            **self.context,
            "in": in_hash,
            "pass": p.identity(options),
        })

    def _materialize(self, key: str):
        """Load (program, env) from a pass artifact, or None if gone.

        Artifacts hold mutable IR, so every load unpickles fresh — a
        pickle round trip doubles as a deep copy, and no two compiles
        can alias each other's state.
        """
        artifact = self.store.get("pass", key)
        if artifact is None:
            return None
        try:
            program, env = artifact.obj
        except Exception:
            return None
        if not isinstance(program, nir.Program):
            return None
        return program, env

    def _run_store(self, program: nir.Program, env: Environment,
                   options: Any, report: Any, input_stage: str
                   ) -> tuple[nir.Program, PipelineTrace]:
        """Run the pipeline through the artifact store.

        The canonical artifact state is always **program scope** (the
        hash and the stored snapshot wrap body-scope IR back under its
        WITH_DOMAIN/WITH_DECL scaffolding), so chains that differ only
        in where they re-enter program scope converge to the same
        hashes and the backend artifact keyed on the final state hits
        across tail-pass config changes.

        Any materialization failure (an artifact evicted between its
        header read and its state read) falls back to a full cold run
        from the original inputs — hits never mutate ``env`` or the
        report beyond slots a cold run would overwrite, so the inputs
        are still pristine.
        """
        from ..service.store import state_hash

        trace = PipelineTrace()
        t_run = time.perf_counter()
        name = program.name
        original_env = env
        in_hash = self.input_hash or state_hash(program, env)
        hits = 0
        misses = 0

        current: nir.Imperative = program
        in_body = False
        fresh = True      # the in-memory state matches ``in_hash``
        resume: str | None = None  # artifact holding the live state

        for p in self.passes:
            if not p.enabled(options):
                trace.passes.append(PassTiming(p.name, enabled=False))
                continue
            key = self._pass_key(p, in_hash, options)
            head = self.store.head("pass", key)
            if head is not None:
                out_hash, meta = head
                if p.report_slot is not None and meta is not None:
                    setattr(report, p.report_slot, meta)
                trace.passes.append(PassTiming(p.name, cached=True))
                in_hash = out_hash
                fresh = False
                resume = key
                hits += 1
                continue
            misses += 1
            if not fresh:
                restored = self._materialize(resume)
                if restored is None:
                    return PassManager(
                        self.passes, verify=self.verify,
                        dump_after=self.dump_after,
                    ).run(program, original_env, options, report,
                          input_stage)
                current, env = restored
                in_body = False
                fresh = True
            if p.scope == "body" and not in_body:
                current = unwrap_body(current)
                in_body = True
            elif p.scope == "program" and in_body:
                current = wrap_body(current, env, name)
                in_body = False
            before = ir_size(current)
            ctx = PassContext(node=current, env=env, options=options,
                              report=report, verify=self.verify)
            t0 = time.perf_counter()
            current = p.run(ctx)
            seconds = time.perf_counter() - t0
            trace.passes.append(PassTiming(
                p.name, seconds=seconds, ir_before=before,
                ir_after=ir_size(current)))
            canonical = wrap_body(current, env, name) if in_body \
                else current
            out_hash = state_hash(canonical, env)
            meta = getattr(report, p.report_slot) \
                if p.report_slot is not None else None
            self.store.put("pass", key, (canonical, env), meta=meta,
                           out_hash=out_hash)
            in_hash = out_hash
            resume = key

        if not fresh:
            restored = self._materialize(resume)
            if restored is None:
                return PassManager(
                    self.passes, verify=self.verify,
                    dump_after=self.dump_after,
                ).run(program, original_env, options, report, input_stage)
            current, env = restored
            in_body = False
        if in_body:
            current = wrap_body(current, env, name)
        if env is not original_env:
            # Callers hold the original Environment (the lowered
            # program's); adopt the restored state in place so every
            # aliasing holder sees the post-pipeline environment.
            original_env.__dict__.clear()
            original_env.__dict__.update(env.__dict__)
        trace.total_seconds = time.perf_counter() - t_run
        trace.artifacts["passes"] = {"hits": hits, "misses": misses}
        trace.artifacts["state_hash"] = in_hash
        assert isinstance(current, nir.Program)
        return current, trace
