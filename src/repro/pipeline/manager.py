"""The :class:`PassManager`: runs a pipeline, owns the cross-cutting
concerns.

The manager is the only place that knows about scope transitions
(program-scope passes see the WITH_DOMAIN/WITH_DECL scaffolding, body
passes see the bare statement tree), per-pass instrumentation (wall
time and IR node-count deltas into a
:class:`~repro.pipeline.trace.PipelineTrace`), inter-pass verification
(the NIR verifier runs on the input and after every executed pass,
naming the offending stage), and ``--dump-after`` snapshots.  Passes
themselves stay pure transformations.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Sequence

from .. import nir
from ..lowering.environment import Environment
from .passes import Pass, PassContext
from .registry import UnknownPassError
from .trace import PassTiming, PipelineTrace


def unwrap_body(program: nir.Program) -> nir.Imperative:
    """Strip the PROGRAM/WITH_DOMAIN/WITH_DECL scaffolding."""
    node: nir.Imperative = program.body
    while isinstance(node, (nir.WithDomain, nir.WithDecl)):
        node = node.body
    return node


def wrap_body(body: nir.Imperative, env: Environment,
              name: str) -> nir.Program:
    """Re-apply scoping: declarations innermost, domains around them."""
    scoped: nir.Imperative = nir.WithDecl(env.nir_declarations(), body)
    for dom_name, shape in reversed(list(env.domains.items())):
        scoped = nir.WithDomain(dom_name, shape, scoped)
    return nir.Program(scoped, name=name)


def ir_size(node: nir.Imperative) -> int:
    """IR weight: imperative node count (cheap, monotone under growth)."""
    return sum(1 for _ in nir.imperatives.walk(node))


class PassManager:
    """Drive a pass sequence over one lowered program."""

    def __init__(self, passes: Sequence[Pass], *, verify: bool = False,
                 dump_after: Iterable[str] = ()) -> None:
        self.passes = list(passes)
        self.verify = verify
        self.dump_after = tuple(dump_after)
        known = {p.name for p in self.passes}
        for name in self.dump_after:
            if name not in known:
                raise UnknownPassError(name, known)

    # ------------------------------------------------------------------

    def _checked(self, trace: PipelineTrace, stage: str, node, env) -> None:
        if not self.verify:
            return
        from ..analysis.nir_verifier import assert_valid

        t0 = time.perf_counter()
        assert_valid(node, env, stage)
        trace.verify_seconds += time.perf_counter() - t0

    def run(self, program: nir.Program, env: Environment, options: Any,
            report: Any, input_stage: str = "input"
            ) -> tuple[nir.Program, PipelineTrace]:
        """Run every enabled pass; return the program and its trace.

        ``input_stage`` names the producer of ``program`` for the
        verifier's initial well-formedness check (the driver passes
        ``"lower"``).
        """
        trace = PipelineTrace()
        t_run = time.perf_counter()
        self._checked(trace, input_stage, program, env)

        current: nir.Imperative = program
        in_body = False  # whether ``current`` is the unwrapped body
        name = program.name

        for p in self.passes:
            if not p.enabled(options):
                trace.passes.append(PassTiming(p.name, enabled=False))
                continue
            if p.scope == "body" and not in_body:
                current = unwrap_body(current)
                in_body = True
            elif p.scope == "program" and in_body:
                current = wrap_body(current, env, name)
                in_body = False
            before = ir_size(current)
            ctx = PassContext(node=current, env=env, options=options,
                              report=report, verify=self.verify)
            t0 = time.perf_counter()
            current = p.run(ctx)
            seconds = time.perf_counter() - t0
            trace.passes.append(PassTiming(
                p.name, seconds=seconds, ir_before=before,
                ir_after=ir_size(current)))
            self._checked(trace, p.name, current, env)
            if p.name in self.dump_after:
                trace.dumps[p.name] = nir.pretty(current)

        if in_body:
            current = wrap_body(current, env, name)
        trace.total_seconds = time.perf_counter() - t_run
        assert isinstance(current, nir.Program)
        return current, trace
