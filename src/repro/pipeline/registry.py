"""The ordered pass registry: registration order is the pipeline.

One process-wide :class:`PassRegistry` instance
(:data:`repro.transform.passes.PASSES`) holds the NIR transform
pipeline; tests build private registries to exercise orderings.  A
registry is a tiny ordered mapping with two jobs: resolve names to
:class:`~repro.pipeline.passes.Pass` records (unknown names raise
:class:`UnknownPassError`, never fall back silently) and render the
pipeline identity used by the compile cache and ``--list-passes``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from .passes import Pass


class UnknownPassError(ValueError):
    """A pass name that is not registered (no silent fallback)."""

    def __init__(self, name: str, known: Iterable[str]) -> None:
        self.pass_name = name
        self.known = sorted(known)
        super().__init__(
            f"unknown pass {name!r}; registered passes: "
            f"{', '.join(self.known) or '(none)'}")


class PassRegistry:
    """An insertion-ordered collection of passes."""

    def __init__(self) -> None:
        self._passes: dict[str, Pass] = {}

    def register(self, p: Pass) -> Pass:
        if p.name in self._passes:
            raise ValueError(f"pass {p.name!r} registered twice")
        self._passes[p.name] = p
        return p

    def get(self, name: str) -> Pass:
        try:
            return self._passes[name]
        except KeyError:
            raise UnknownPassError(name, self._passes) from None

    def names(self) -> list[str]:
        return list(self._passes)

    def __iter__(self) -> Iterator[Pass]:
        return iter(self._passes.values())

    def __len__(self) -> int:
        return len(self._passes)

    def __contains__(self, name: str) -> bool:
        return name in self._passes

    def pipeline(self, names: Iterable[str] | None = None) -> list[Pass]:
        """The pass objects for ``names`` (default: registration order)."""
        if names is None:
            return list(self._passes.values())
        return [self.get(name) for name in names]

    def identity(self, options: Any,
                 names: Iterable[str] | None = None) -> list[dict]:
        """Ordered ``{name, config}`` records of the *enabled* passes.

        This is the pipeline's cache-key contribution: reordering,
        disabling, or reconfiguring any pass changes it, so stale
        artifacts compiled under a different pipeline never hit.
        """
        return [p.identity(options) for p in self.pipeline(names)
                if p.enabled(options)]
