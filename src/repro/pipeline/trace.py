"""Pipeline observability: per-pass wall time and IR-size deltas.

Every :meth:`PassManager.run <repro.pipeline.manager.PassManager.run>`
produces one :class:`PipelineTrace`.  It is plain picklable data — it
rides inside cached executables, flows into ``repro run --stats-json``
under ``"pipeline"``, and is folded per-pass into the service metrics
rollup — so any perf PR can see exactly where compile time goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PassTiming:
    """One pass's execution record (disabled passes are recorded too).

    ``cached`` marks a pass satisfied from the artifact store: its
    effect was applied (state chained, report slot restored) without
    running the pass, so its timings and IR sizes are zero.
    """

    name: str
    seconds: float = 0.0
    ir_before: int = 0
    ir_after: int = 0
    enabled: bool = True
    cached: bool = False

    @property
    def ir_delta(self) -> int:
        return self.ir_after - self.ir_before

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "enabled": self.enabled,
            "cached": self.cached,
            "seconds": self.seconds,
            "ir_before": self.ir_before,
            "ir_after": self.ir_after,
            "ir_delta": self.ir_delta,
        }


@dataclass
class PipelineTrace:
    """The full run: ordered timings, totals, and dump snapshots."""

    passes: list[PassTiming] = field(default_factory=list)
    total_seconds: float = 0.0
    verify_seconds: float = 0.0
    #: ``--dump-after`` snapshots: pass name -> pretty-printed IR.
    dumps: dict[str, str] = field(default_factory=dict)
    #: Incremental-compile accounting: per-stage artifact-store
    #: hit/miss records (``front``, ``passes``, ``backend``,
    #: ``phases``) plus the final transform ``state_hash``.  Empty on
    #: cold compiles, so legacy payload shapes are unchanged.
    artifacts: dict = field(default_factory=dict)

    def timing(self, name: str) -> PassTiming | None:
        for t in self.passes:
            if t.name == name:
                return t
        return None

    def executed(self) -> list[str]:
        """Names of the passes that actually ran, in order."""
        return [t.name for t in self.passes if t.enabled]

    def to_dict(self) -> dict:
        payload = {
            "total_seconds": self.total_seconds,
            "verify_seconds": self.verify_seconds,
            "passes": [t.to_dict() for t in self.passes],
        }
        if self.artifacts:
            payload["artifacts"] = dict(self.artifacts)
        return payload

    def summary_lines(self) -> list[str]:
        """The ``--stats`` rendering: one line per executed pass."""
        lines = []
        for t in self.passes:
            if not t.enabled:
                continue
            lines.append(f"  {t.name:<12} {t.seconds * 1e3:8.2f}ms  "
                         f"ir {t.ir_before:>5d} -> {t.ir_after:<5d} "
                         f"({t.ir_delta:+d})"
                         + ("  [cached]" if t.cached else ""))
        lines.append(f"  {'total':<12} {self.total_seconds * 1e3:8.2f}ms")
        return lines
