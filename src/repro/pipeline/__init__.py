"""The pass manager: a declarative spine for the NIR pipeline.

The paper's retargeting argument (§5.3.1) rests on the pipeline being a
*structure* — an ordered sequence of reusable transformations — rather
than a hand-wired function.  This package makes that structure explicit:

* :mod:`.passes`   — the :class:`Pass` record (name, scope, enabled
  predicate, config projection, report slot) and its run context;
* :mod:`.registry` — an ordered :class:`PassRegistry`; registration
  order *is* the default pipeline;
* :mod:`.manager`  — the :class:`PassManager` driver: runs enabled
  passes, times each one, measures IR-size deltas, invokes the NIR
  verifier between passes, and captures ``--dump-after`` snapshots;
* :mod:`.trace`    — :class:`PipelineTrace` / :class:`PassTiming`, the
  observability payload that flows into ``--stats-json`` and the
  service metrics op.

The package is deliberately transform-agnostic: it knows NIR and the
verifier hook, but the concrete passes live in
:mod:`repro.transform.passes` and register themselves here.  Adding a
pass is one ``register`` call; reordering or ablating the pipeline is a
list of names.
"""

from .manager import PassManager, unwrap_body, wrap_body
from .passes import Pass, PassContext
from .registry import PassRegistry, UnknownPassError
from .trace import PassTiming, PipelineTrace

__all__ = [
    "Pass",
    "PassContext",
    "PassManager",
    "PassRegistry",
    "PassTiming",
    "PipelineTrace",
    "UnknownPassError",
    "unwrap_body",
    "wrap_body",
]
