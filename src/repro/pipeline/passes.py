"""The :class:`Pass` record and its run-time context.

A pass is declarative data: the manager decides *whether* to run it
(``enabled`` over the transform options), *what to verify* afterwards
(the pass name doubles as the verifier stage), *what identifies it* for
artifact caching (``config`` — the option subset that changes its
output), and *where its report lands* (``report_slot`` on
:class:`~repro.transform.pipeline.TransformReport`).  The ``run``
callable itself is the only imperative part.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .. import nir
from ..lowering.environment import Environment

#: Pass scopes: ``program`` passes see the full WITH_DOMAIN/WITH_DECL
#: scaffolding; ``body`` passes see the bare statement tree and the
#: manager re-wraps afterwards (declarations may have grown).
SCOPES = ("program", "body")


@dataclass
class PassContext:
    """Everything a pass may read or write while running.

    ``node`` is the IR in the pass's declared scope; the ``run``
    callable returns its replacement.  ``report`` is the shared
    :class:`TransformReport`; each pass fills its own slot.
    """

    node: nir.Imperative
    env: Environment
    options: Any
    report: Any
    verify: bool = False


def _always(_options: Any) -> bool:
    return True


def _no_config(_options: Any) -> dict:
    return {}


@dataclass(frozen=True)
class Pass:
    """One declarative pipeline stage."""

    name: str
    scope: str
    run: Callable[[PassContext], nir.Imperative]
    enabled: Callable[[Any], bool] = field(default=_always)
    config: Callable[[Any], dict] = field(default=_no_config)
    report_slot: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.scope not in SCOPES:
            raise ValueError(
                f"pass {self.name!r}: scope must be one of {SCOPES}, "
                f"got {self.scope!r}")

    def identity(self, options: Any) -> dict:
        """The cache-key contribution of this pass under ``options``."""
        return {"name": self.name, "config": self.config(options)}
