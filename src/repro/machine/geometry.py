"""CM runtime geometries: block layout of shapes onto processing elements.

"On the Connection Machine, we currently leave the exact partitioning up
to the runtime system, and generate host and SIMD node code based on
purely local computation over the user's shapes, laid out blockwise to
the CM processing elements" (section 3.3).

A :class:`Geometry` factorizes the machine's PEs into a grid over the
array axes (powers of two, balanced so per-PE subgrids stay as square as
possible) and derives the per-PE subgrid extents and the virtual subgrid
length (``vlen``) that sizes every virtual subgrid loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np


@dataclass(frozen=True)
class Geometry:
    """Block layout of one array shape across the machine."""

    extents: tuple[int, ...]
    pe_grid: tuple[int, ...]       # PEs along each axis (powers of two)
    subgrid: tuple[int, ...]       # per-PE block extents (ceil division)

    @property
    def vlen(self) -> int:
        """Virtual subgrid length: elements each PE iterates locally."""
        return math.prod(self.subgrid)

    @property
    def pes_used(self) -> int:
        return math.prod(self.pe_grid)

    @property
    def total_elements(self) -> int:
        return math.prod(self.extents)

    def boundary_columns(self, axis: int, shift: int) -> int:
        """Subgrid columns along ``axis`` whose shifted source is off-PE."""
        if self.pe_grid[axis] == 1:
            return 0
        return min(abs(shift), self.subgrid[axis])

    def hops(self, axis: int, shift: int) -> int:
        """PE-grid distance a shift's data travels along ``axis``."""
        if self.pe_grid[axis] == 1:
            return 0
        return max(1, math.ceil(abs(shift) / self.subgrid[axis]))


def _balanced_factorization(extents: tuple[int, ...], n_pes: int,
                            axis_modes: tuple[str, ...] | None = None
                            ) -> tuple[int, ...]:
    """Assign power-of-two PE counts to axes, largest subgrids first.

    ``axis_modes`` (from ``!layout:`` directives) marks axes ``serial``
    — kept entirely in-processor, receiving no PE factor — or ``news``
    (the default spreading).
    """
    pe_grid = [1] * len(extents)
    factors = int(math.log2(n_pes)) if n_pes > 1 else 0
    for _ in range(factors):
        best = None
        best_len = -1.0
        for i, (e, p) in enumerate(zip(extents, pe_grid)):
            if axis_modes is not None and axis_modes[i] == "serial":
                continue
            if p * 2 > e:
                continue  # never more PEs than elements along an axis
            cur = e / p
            if cur > best_len:
                best_len = cur
                best = i
        if best is None:
            break
        pe_grid[best] *= 2
    return tuple(pe_grid)


@lru_cache(maxsize=4096)
def make_geometry(extents: tuple[int, ...], n_pes: int,
                  axis_modes: tuple[str, ...] | None = None) -> Geometry:
    """Build (and cache) the block geometry for a shape."""
    if not extents or any(e < 1 for e in extents):
        raise ValueError(f"invalid extents {extents}")
    if n_pes < 1 or (n_pes & (n_pes - 1)) != 0:
        raise ValueError("n_pes must be a positive power of two")
    if axis_modes is not None and len(axis_modes) != len(extents):
        raise ValueError(
            f"layout directive names {len(axis_modes)} axes but the "
            f"array has rank {len(extents)}")
    pe_grid = _balanced_factorization(extents, n_pes, axis_modes)
    subgrid = tuple(math.ceil(e / p) for e, p in zip(extents, pe_grid))
    return Geometry(extents=extents, pe_grid=pe_grid, subgrid=subgrid)


def coordinate_array(extents: tuple[int, ...], axis: int, lo: int = 1,
                     step: int = 1) -> np.ndarray:
    """The runtime's coordinate subgrid for ``local_under(shape, axis)``.

    Returns the coordinate value of every element along ``axis``: the
    points ``lo, lo+step, ...`` of the shape's axis (1-based full
    domains have ``lo=1, step=1``).
    """
    if not 1 <= axis <= len(extents):
        raise ValueError(f"axis {axis} out of range for {extents}")
    n = extents[axis - 1]
    coords = (np.arange(n, dtype=np.int64) * step + lo).astype(np.int32)
    shape = [1] * len(extents)
    shape[axis - 1] = n
    return np.broadcast_to(coords.reshape(shape), extents).copy()
