"""Plan-level cross-routine fusion: mega-kernels and persistent bindings.

The Figure 9/10 blocker fuses MOVEs that share a shape *inside* one
computation phase; every phase still becomes its own PEAC dispatch, and
on a blocked timestep loop the per-call overhead (sequencer dispatch,
IFIFO pushes, per-trip loop bookkeeping, store/reload of intermediate
streams) dominates what is left.  This module extends fusion into the
execution plan:

* the host executor (:mod:`repro.runtime.host`) batches adjacent node
  calls — independent runtime work is hoisted ahead of the batch — and
  dispatches each batch through :meth:`Machine.call_fused`;
* an :class:`ExecutionPlan` proves the batch safe to fuse with the same
  alias probing the per-routine kernels use (contiguous equal-length
  streams, stored classes overlap nothing distinct) and then charges the
  batch as **one** node call: one dispatch, deduplicated argument
  pushes, a single virtual-subgrid loop (one ``loop_overhead`` per trip
  instead of one per routine), and register-resident forwarding — an
  unpaired vector load of a stream some earlier constituent just stored
  is elided, because the value is still live in the fused routine's
  register file;
* the batch executes through a **mega-kernel**: the constituents'
  :class:`~repro.machine.plan.RoutinePlan` step lists are concatenated
  with registers renamed into per-constituent banks and memory operands
  renamed onto the fused slot table, then compiled by the existing
  blocked kernel builder (:mod:`repro.machine.kernel`).  Mega-kernels
  are cached process-wide, keyed by the full binding signature —
  constituent plan serials, alias classes, shapes and scalar types — so
  one compilation serves every later timestep and every later machine;
* bindings are **persistent**: the executor's per-site argument
  resolution, the fused slot table, and the accounting totals are all
  validated by pointer identity and reused across trips instead of
  being recomputed per dispatch.

Correctness never depends on the probe: a batch that fails it simply
runs (and is charged) call by call, and a fused batch whose mega-kernel
is not buildable executes each constituent plan in order — both paths
bit-identical to the unfused engines.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np

from ..peac.isa import Mem, NUM_SREGS, NUM_VREGS
from .ckernel import try_native
from .kernel import _NO_KERNEL, _build
from .plan import (
    _R_CONST,
    _R_MEM,
    _R_SREG,
    _R_VREG,
    _BranchStep,
    _ComputeStep,
    _LoadStep,
    _MoveStep,
    _StoreStep,
)


class Dispatch:
    """One prepared node call: resolved streams, scalars and accounting."""

    __slots__ = ("routine", "plan", "streams", "scalars", "pushes",
                 "scalar_pushes", "spill_bufs", "spill_pregs", "trips",
                 "elements")

    def __init__(self, routine, plan, streams, scalars, pushes,
                 scalar_pushes, spill_bufs, spill_pregs, trips,
                 elements) -> None:
        self.routine = routine
        self.plan = plan
        self.streams = streams
        self.scalars = scalars
        self.pushes = pushes
        self.scalar_pushes = scalar_pushes
        self.spill_bufs = spill_bufs
        self.spill_pregs = spill_pregs
        self.trips = trips
        self.elements = elements


class _MergedPlan:
    """Duck-typed plan over fused slots, consumed by the kernel builder."""

    def __init__(self, name, groups, used_pregs, num_vregs) -> None:
        self.name = name
        self.groups = groups
        self.used_pregs = used_pregs
        self.num_vregs = num_vregs


# -- process-wide mega-kernel cache -----------------------------------------

_MEGA_KERNELS: OrderedDict[tuple, object] = OrderedDict()
_MEGA_CAP = 128


def _remember(key: tuple, kern) -> None:
    if len(_MEGA_KERNELS) >= _MEGA_CAP:
        _MEGA_KERNELS.popitem(last=False)
    _MEGA_KERNELS[key] = kern


def evict_serial(serial: int) -> int:
    """Drop every cached mega-kernel built over the given plan serial.

    Called from :func:`repro.machine.plan.invalidate_plan`; returns the
    number of evicted entries (for tests and metrics).
    """
    dead = [key for key in _MEGA_KERNELS if serial in key[0]]
    for key in dead:
        del _MEGA_KERNELS[key]
    return len(dead)


def cache_size() -> int:
    return len(_MEGA_KERNELS)


# -- step remapping ---------------------------------------------------------


def _remap_reader(rd, smap, voff, soff, toff):
    tag = rd[0]
    if tag == _R_VREG:
        return (_R_VREG, rd[1] + voff)
    if tag == _R_SREG:
        return (_R_SREG, rd[1] + soff)
    if tag == _R_CONST:
        return rd
    # _R_MEM: slot-renamed; hazard sets are recomputed by the builder.
    return (_R_MEM, smap[rd[1]], rd[2] + toff, ())


def _remap_groups(plan, smap, voff, soff, toff):
    groups = []
    for steps in plan.groups:
        out = []
        for step in steps:
            if isinstance(step, _StoreStep):
                out.append(_StoreStep(
                    _remap_reader(step.reader, smap, voff, soff, toff),
                    smap[step.preg]))
            elif isinstance(step, _LoadStep):
                out.append(_LoadStep(
                    _remap_reader(step.reader, smap, voff, soff, toff),
                    step.dst + voff))
            elif isinstance(step, _MoveStep):
                out.append(_MoveStep(
                    _remap_reader(step.reader, smap, voff, soff, toff),
                    step.dst + voff))
            elif isinstance(step, _ComputeStep):
                readers = tuple(
                    _remap_reader(rd, smap, voff, soff, toff)
                    for rd in step.readers)
                out.append(_ComputeStep(step.op, readers, step.dst + voff,
                                        step.token + toff,
                                        step.aux + toff))
            else:
                out.append(_BranchStep())
        groups.append(tuple(out))
    return groups


# -- the fused execution plan -----------------------------------------------


class ExecutionPlan:
    """One fused dispatch site: slot table, accounting, mega-kernel.

    Built once per (site, binding pattern) and revalidated by pointer
    identity on every later trip; :func:`resolve` keeps the per-site
    instance alive on the machine so steady-state dispatch is a cheap
    rebind plus one kernel call.
    """

    KERNEL_CAP = 4  # signature specializations held per site

    def __init__(self, dispatches, trips, n, nslots, slot_maps, expects,
                 spill_lists, stream_slots) -> None:
        self.plans = tuple(d.plan for d in dispatches)
        self.serials = tuple(p.serial for p in self.plans)
        self.names = tuple(p.name for p in self.plans)
        self.k = len(dispatches)
        self.trips = trips
        self.n = n
        self.nslots = nslots
        self.slot_maps = slot_maps
        self.expects = expects
        self.spill_lists = spill_lists
        # One push per distinct stream slot, per scalar argument, plus
        # the shared vlen: duplicate pointer arguments collapse.
        self.pushes = (stream_slots
                       + sum(d.scalar_pushes for d in dispatches) + 1)
        self._slot_key = tuple(tuple(sorted(m.items())) for m in slot_maps)
        self._cycle_cache: dict = {}
        self._kernels: OrderedDict[tuple, object] = OrderedDict()
        self._merged = None

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, dispatches) -> "ExecutionPlan | None":
        """Probe a batch for fusability; None means dispatch call-by-call.

        The legality conditions mirror ``kernel._probe`` over the fused
        slot table: every stream contiguous with one common flat length,
        and no stored slot overlapping a *distinct* slot.  The verdict
        depends only on plans, shapes and alias classes — so fused cost
        accounting is deterministic run to run.
        """
        if len(dispatches) < 2:
            return None
        trips = dispatches[0].trips
        if any(d.trips != trips for d in dispatches):
            return None
        n = None
        ident: dict = {}
        arrays: list[np.ndarray] = []
        slot_maps, expects, spill_lists = [], [], []
        stored_slots: set[int] = set()
        for d in dispatches:
            plan = d.plan
            spills = frozenset(d.spill_pregs)
            smap: dict[int, int] = {}
            exp: list[tuple] = []
            spl: list[tuple] = []
            for p in plan.used_pregs:
                stream = d.streams[p]
                if stream is None:
                    return None
                view = stream.view
                if (not isinstance(view, np.ndarray)
                        or not view.flags["C_CONTIGUOUS"]):
                    return None
                flat = view.reshape(-1)
                if n is None:
                    n = flat.size
                elif flat.size != n:
                    return None
                if p in spills:
                    slot = len(arrays)
                    arrays.append(flat)
                    spl.append((p, slot))
                else:
                    key = (view.__array_interface__["data"][0],
                           view.dtype.str)
                    slot = ident.get(key)
                    if slot is None:
                        slot = len(arrays)
                        ident[key] = slot
                        arrays.append(flat)
                    exp.append((p, slot, key[0], key[1]))
                smap[p] = slot
                if p in plan.stored_pregs:
                    stored_slots.add(slot)
            slot_maps.append(smap)
            expects.append(tuple(exp))
            spill_lists.append(tuple(spl))
        if not n:
            return None
        for s in sorted(stored_slots):
            a = arrays[s]
            for t, b in enumerate(arrays):
                if t != s and np.may_share_memory(a, b):
                    return None
        return cls(dispatches, trips, n, len(arrays), tuple(slot_maps),
                   tuple(expects), tuple(spill_lists), len(ident))

    def rebind(self, dispatches) -> list | None:
        """The fused slot table for this trip, or None when stale.

        Validates plan identity (a recompiled routine fails here) and
        every non-spill stream's pointer, dtype and contiguity against
        the build-time bindings; spill slots take whatever scratch this
        trip drew from the pool.
        """
        if len(dispatches) != self.k:
            return None
        S: list = [None] * self.nslots
        for i, d in enumerate(dispatches):
            if d.plan is not self.plans[i] or d.trips != self.trips:
                return None
            for p, slot, ptr, dts in self.expects[i]:
                stream = d.streams[p]
                if stream is None:
                    return None
                view = stream.view
                if (not isinstance(view, np.ndarray)
                        or view.__array_interface__["data"][0] != ptr
                        or view.dtype.str != dts
                        or not view.flags["C_CONTIGUOUS"]
                        or view.size != self.n):
                    return None
                S[slot] = view.reshape(-1)
            for p, slot in self.spill_lists[i]:
                view = d.streams[p].view
                if not isinstance(view, np.ndarray) or view.size != self.n:
                    return None
                S[slot] = view.reshape(-1)
        return S

    # -- fused cost accounting ------------------------------------------

    def _cycles_for(self, model) -> tuple[int, tuple]:
        """(total node cycles, per-routine attribution) under ``model``.

        One ``loop_overhead`` per trip for the whole fused group, and an
        unpaired vector load of a slot stored by an *earlier* constituent
        is elided — the value is register-resident in the fused stream.
        """
        got = self._cycle_cache.get(model)
        if got is None:
            stored: set[int] = set()
            per: list[tuple[str, int]] = []
            for i, plan in enumerate(self.plans):
                cpt = plan.cycles_per_trip(model)
                if i > 0:
                    cpt -= model.instr.loop_overhead
                smap = self.slot_maps[i]
                stored_before = frozenset(stored)
                for instr in plan._instrs:
                    if instr.paired is None and instr.kind in ("load",
                                                               "move"):
                        src = instr.operands[0]
                        if (isinstance(src, Mem)
                                and smap.get(src.preg.n) in stored_before):
                            cpt -= model.instruction_cycles(instr)
                    pair = ((instr,) if instr.paired is None
                            else (instr, instr.paired))
                    for ins in pair:
                        if ins.kind == "store":
                            slot = smap.get(ins.operands[1].preg.n)
                            if slot is not None:
                                stored.add(slot)
                per.append((plan.name, self.trips * max(cpt, 1)))
            got = (sum(c for _, c in per), tuple(per))
            self._cycle_cache[model] = got
        return got

    # -- execution ------------------------------------------------------

    def run(self, machine, dispatches, S) -> None:
        """Account the batch as one fused call and execute it."""
        st = machine.stats
        model = machine.model
        node, per = self._cycles_for(model)
        st.node_cycles += node
        st.call_cycles += (model.call_dispatch
                           + self.pushes * model.ififo_push)
        st.node_calls += 1
        st.ififo_pushes += self.pushes
        st.fused_groups += 1
        st.fused_routines += self.k
        for name, cycles in per:
            st.per_routine[name] = st.per_routine.get(name, 0) + cycles
        for d in dispatches:
            st.flops += d.plan.flops_per_element * d.elements
            st.elements_computed += d.elements
        kern = self._kernel_for(machine, dispatches)
        if kern is not None:
            X: list = []
            for d in dispatches:
                X.extend(d.scalars)
            with np.errstate(all="ignore"):
                kern(S, X, self.n)
        else:
            machine.fusion_metrics["stepwise_groups"] += 1
            for d in dispatches:
                d.plan.execute(d.streams, d.scalars, machine.pool)

    def _kernel_for(self, machine, dispatches):
        """The mega-kernel for this trip's binding signature, if ready.

        None means "run the constituent plans in order" — either the
        signature still needs a recording pass, code generation is
        disabled, or the merged steps are not kernel-eligible.
        """
        if os.environ.get("REPRO_FAST_KERNEL") == "0":
            return None
        sigs = tuple(d.plan._signature(d.streams, d.scalars)
                     for d in dispatches)
        kern = self._kernels.get(sigs)
        if kern is None:
            specs = []
            for d, sig in zip(dispatches, sigs):
                spec = d.plan.specs.get(sig)
                if spec is None:
                    return None  # the recording pass runs stepwise first
                specs.append(spec)
            # Machines may retune native kernels (extra compiler flags
            # for the real CPU); the flavor keys the tuned build
            # separately so simulated targets keep the baseline one.
            tune = getattr(machine, "tune_kernel", None)
            key = (self.serials, self._slot_key, sigs, self.n,
                   getattr(machine, "kernel_flavor", None))
            kern = _MEGA_KERNELS.get(key)
            if kern is None:
                S = self.rebind(dispatches)
                merged = self._merged_plan()
                mspec = self._merged_spec(specs)
                identity = tuple(range(self.nslots))
                # Prefer a native per-element loop (intermediates stay
                # in registers); decline -> the Python blocked kernel.
                kern = try_native(merged, mspec, identity, self.n, S)
                if kern is None:
                    kern = _build(merged, mspec, identity, self.n, S)
                else:
                    if tune is not None:
                        kern = tune(kern)
                    machine.fusion_metrics["megakernel_native"] += 1
                _remember(key, kern)
                machine.fusion_metrics["megakernel_builds"] += 1
            else:
                _MEGA_KERNELS.move_to_end(key)
                if kern is not _NO_KERNEL:
                    machine.fusion_metrics["megakernel_hits"] += 1
            while len(self._kernels) >= self.KERNEL_CAP:
                self._kernels.popitem(last=False)
            self._kernels[sigs] = kern
        elif kern is not _NO_KERNEL:
            machine.fusion_metrics["megakernel_hits"] += 1
        return None if kern is _NO_KERNEL else kern

    def _merged_plan(self) -> _MergedPlan:
        merged = self._merged
        if merged is None:
            groups: list = []
            toff = 0
            for i, plan in enumerate(self.plans):
                groups.extend(_remap_groups(plan, self.slot_maps[i],
                                            i * NUM_VREGS, i * NUM_SREGS,
                                            toff))
                toff += plan._tokens
            merged = self._merged = _MergedPlan(
                name="+".join(self.names), groups=groups,
                used_pregs=tuple(range(self.nslots)),
                num_vregs=self.k * NUM_VREGS)
        return merged

    def _merged_spec(self, specs) -> dict:
        spec: dict = {}
        toff = 0
        for plan, sub in zip(self.plans, specs):
            for token, v in sub.items():
                spec[token + toff] = v
            toff += plan._tokens
        return spec


def resolve(machine, site, dispatches):
    """The (plan, slot table) for a batch at a dispatch site.

    Reuses the machine's cached per-site plan when the bindings still
    match (the persistent-binding fast path); otherwise probes afresh.
    ``(None, None)`` sends the batch down the call-by-call path.
    """
    cached = machine._exec_plans.get(site)
    if cached is not None:
        S = cached.rebind(dispatches)
        if S is not None:
            return cached, S
        del machine._exec_plans[site]
    plan = ExecutionPlan.build(dispatches)
    if plan is None:
        return None, None
    S = plan.rebind(dispatches)
    if S is None:  # pragma: no cover - build and rebind agree by design
        return None, None
    machine._exec_plans[site] = plan
    return plan, S
