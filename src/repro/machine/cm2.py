"""The Connection Machine model: storage, node dispatch, accounting.

A :class:`Machine` owns the global array storage (each array laid out
blockwise by a :class:`~repro.machine.geometry.Geometry`), the cost
model, and the run statistics.  The host executor drives it: allocating
arrays, pushing PEAC arguments over the IFIFO, dispatching virtual
subgrid loops to the (simulated) PEs, and invoking the CM runtime's
communication primitives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..peac.isa import PReg, Routine, SReg, VECTOR_WIDTH
from .costs import CostModel, slicewise_model
from .geometry import Geometry, coordinate_array, make_geometry
from .pe import (
    SubgridStream,
    VectorExecutor,
    cycles_per_trip,
    flops_per_element,
)
from .stats import RunStats


class MachineError(Exception):
    """Raised on storage or dispatch misuse."""


RegionSlices = tuple[slice, ...]


def region_slices(axes: tuple[tuple[int, int, int], ...]) -> RegionSlices:
    """Numpy basic-slicing form of a 1-based strided region."""
    return tuple(slice(lo - 1, hi, st) for lo, hi, st in axes)


@dataclass
class ArrayHome:
    """One allocated CM array: global data plus its layout."""

    name: str
    data: np.ndarray
    geometry: Geometry


class Machine:
    """A simulated CM/2 (or CM/5, by cost model)."""

    def __init__(self, model: CostModel | None = None) -> None:
        self.model = model or slicewise_model()
        self.stats = RunStats()
        self.arrays: dict[str, ArrayHome] = {}
        self._coords: dict[tuple[tuple[int, ...], int], np.ndarray] = {}

    # -- storage ---------------------------------------------------------

    def alloc(self, name: str, extents: tuple[int, ...],
              dtype: np.dtype,
              layout: tuple[str, ...] | None = None) -> ArrayHome:
        if name in self.arrays:
            raise MachineError(f"array '{name}' already allocated")
        geom = make_geometry(tuple(int(e) for e in extents),
                             self.model.n_pes, layout)
        home = ArrayHome(name=name, data=np.zeros(extents, dtype=dtype),
                         geometry=geom)
        self.arrays[name] = home
        self.stats.host_cycles += self.model.host_op
        return home

    def set_array(self, name: str, values: np.ndarray) -> None:
        home = self.home(name)
        if tuple(values.shape) != tuple(home.data.shape):
            raise MachineError(
                f"'{name}': shape {values.shape} does not match "
                f"{home.data.shape}")
        np.copyto(home.data, values, casting="unsafe")

    def home(self, name: str) -> ArrayHome:
        try:
            return self.arrays[name]
        except KeyError:
            raise MachineError(f"array '{name}' is not allocated") from None

    def view(self, name: str,
             region: tuple[tuple[int, int, int], ...] | None) -> np.ndarray:
        """A (strided) view of an array's region; the whole array if None."""
        data = self.home(name).data
        if region is None:
            return data
        return data[region_slices(region)]

    def coord_subgrid(self, extents: tuple[int, ...], axis: int,
                      region: tuple[tuple[int, int, int], ...] | None,
                      lo: int = 1, step: int = 1) -> np.ndarray:
        """The runtime's lazily-materialized coordinate array for an axis."""
        key = (extents, axis, lo, step)
        if key not in self._coords:
            self._coords[key] = coordinate_array(extents, axis, lo, step)
            # Materialization is one node pass over the shape.
            geom = make_geometry(extents, self.model.n_pes)
            self.stats.node_cycles += (
                math.ceil(geom.vlen / VECTOR_WIDTH) * self.model.instr.move)
        arr = self._coords[key]
        if region is None:
            return arr
        return arr[region_slices(region)]

    def halo_subgrid(self, name: str, shift: int, dim: int) -> "np.ndarray":
        """Ghost-augmented shifted view for a halo stream (§5.3.2).

        Performs the physical boundary exchange (charged to the
        communication meter) and returns the shifted snapshot the node
        program streams through; interior elements are local reads.
        """
        from .network import halo_exchange_cycles

        home = self.home(name)
        self.charge_comm(halo_exchange_cycles(self.model, home.geometry,
                                              dim, shift))
        return np.roll(home.data, -shift, axis=dim - 1)

    # -- node dispatch ----------------------------------------------------

    def call_routine(self, routine: Routine,
                     bindings: dict[str, object],
                     region_extents: tuple[int, ...],
                     real_elements: int | None = None,
                     layout: tuple[str, ...] | None = None) -> None:
        """Dispatch one PEAC routine over bound operand streams.

        ``bindings`` maps parameter names to numpy views (``subgrid`` and
        ``coord`` params) or scalars.  ``region_extents`` sizes the
        virtual subgrid loop; ``real_elements`` (default: the region
        size) scales useful-flop accounting when padding is in play.
        """
        if layout is not None and len(layout) != len(region_extents):
            layout = None  # section computes fall back to block layout
        geom = make_geometry(region_extents, self.model.n_pes, layout)
        executor = VectorExecutor()
        pushes = 0
        for param in routine.params:
            if param.kind == "vlen":
                pushes += 1
                continue
            try:
                value = bindings[param.name]
            except KeyError:
                raise MachineError(
                    f"{routine.name}: missing argument '{param.name}'"
                ) from None
            if param.kind in ("subgrid", "coord", "halo"):
                if not isinstance(param.reg, PReg):
                    raise MachineError(
                        f"{routine.name}: '{param.name}' needs a pointer reg")
                executor.bind_pointer(
                    param.reg, SubgridStream(value, name=param.name))
            elif param.kind == "scalar":
                if not isinstance(param.reg, SReg):
                    raise MachineError(
                        f"{routine.name}: '{param.name}' needs a scalar reg")
                executor.bind_scalar(param.reg, value)
            pushes += 1

        # Spill scratch: per-call PE memory, bound from the top pointer
        # registers down (not IFIFO arguments).
        from ..peac.isa import NUM_PREGS  # local import, no cycle
        import numpy as _np
        for slot in range(routine.spill_slots):
            scratch = _np.zeros(math.prod(region_extents))
            executor.bind_pointer(PReg(NUM_PREGS - 1 - slot),
                                  SubgridStream(scratch, name=f"spill{slot}"))

        executor.run(routine)

        trips = math.ceil(geom.vlen / VECTOR_WIDTH)
        node = trips * cycles_per_trip(routine, self.model)
        elements = (geom.total_elements if real_elements is None
                    else real_elements)
        self.stats.node_cycles += node
        self.stats.call_cycles += (self.model.call_dispatch
                                   + pushes * self.model.ififo_push)
        self.stats.node_calls += 1
        self.stats.ififo_pushes += pushes
        self.stats.flops += flops_per_element(routine) * elements
        self.stats.elements_computed += elements
        self.stats.per_routine[routine.name] = (
            self.stats.per_routine.get(routine.name, 0) + node)

    # -- accounting helpers -------------------------------------------------

    def charge_comm(self, cycles: int) -> None:
        self.stats.comm_cycles += cycles
        self.stats.comm_ops += 1

    def charge_host(self, cycles: int) -> None:
        self.stats.host_cycles += cycles

    def geometry_of(self, extents: tuple[int, ...]) -> Geometry:
        return make_geometry(extents, self.model.n_pes)

    def gflops(self) -> float:
        return self.stats.gflops(self.model.clock_hz)
