"""The Connection Machine model: storage, node dispatch, accounting.

A :class:`Machine` owns the global array storage (each array laid out
blockwise by a :class:`~repro.machine.geometry.Geometry`), the cost
model, and the run statistics.  The host executor drives it: allocating
arrays, pushing PEAC arguments over the IFIFO, dispatching virtual
subgrid loops to the (simulated) PEs, and invoking the CM runtime's
communication primitives.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..peac.isa import NUM_PREGS, NUM_SREGS, PReg, Routine, SReg, VECTOR_WIDTH
from .costs import CostModel, slicewise_model
from .execplan import Dispatch, resolve as resolve_fused
from .geometry import Geometry, coordinate_array, make_geometry
from .pe import SubgridStream, VectorExecutor
from .plan import _UNBOUND, GLOBAL_POOL, BufferPool, get_plan
from .stats import RunStats


class MachineError(Exception):
    """Raised on storage or dispatch misuse."""


RegionSlices = tuple[slice, ...]


def region_slices(axes: tuple[tuple[int, int, int], ...]) -> RegionSlices:
    """Numpy basic-slicing form of a 1-based strided region."""
    return tuple(slice(lo - 1, hi, st) for lo, hi, st in axes)


@dataclass
class ArrayHome:
    """One allocated CM array: global data plus its layout."""

    name: str
    data: np.ndarray
    geometry: Geometry


@lru_cache(maxsize=256)
def _shared_coordinate_array(extents: tuple[int, ...], axis: int,
                             lo: int, step: int) -> np.ndarray:
    """Coordinate subgrids, shared across all Machine instances.

    Identical coordinate arrays recur across benchmark reruns and
    baseline comparisons; materializing them once per process (like
    ``make_geometry``) keeps wall-clock flat.  The cached array is
    frozen read-only so no machine can contaminate another's view.
    """
    arr = coordinate_array(extents, axis, lo, step)
    arr.flags.writeable = False
    return arr


class Machine:
    """A simulated CM/2 (or CM/5, by cost model).

    ``exec_mode`` selects the node-dispatch engine: ``"fast"`` (the
    default, overridable via the ``REPRO_EXEC`` environment variable)
    executes compiled routine plans (:mod:`repro.machine.plan`);
    ``"interp"`` routes through the :class:`VectorExecutor` oracle.
    Both produce bit-identical arrays and identical :class:`RunStats`.
    ``"fused"`` additionally lets the host executor batch adjacent node
    calls through :meth:`call_fused` (:mod:`repro.machine.execplan`):
    arrays stay bit-identical to both other engines, and a fused batch
    is charged as one dispatch.
    """

    def __init__(self, model: CostModel | None = None,
                 exec_mode: str | None = None) -> None:
        self.model = model or slicewise_model()
        mode = exec_mode or os.environ.get("REPRO_EXEC", "fast")
        if mode not in ("fast", "interp", "fused"):
            raise MachineError(
                f"unknown exec mode {mode!r} "
                f"(want 'fast', 'interp' or 'fused')")
        self.exec_mode = mode
        self.pool: BufferPool = GLOBAL_POOL
        self.stats = RunStats()
        self.arrays: dict[str, ArrayHome] = {}
        # Coordinate-array *cycle* accounting stays per machine: each
        # simulated run pays for its own materialization even though
        # the host array comes from the shared process-wide cache.
        self._coords_charged: set[tuple] = set()
        # Fused-dispatch state: per-site execution plans (persistent
        # bindings) and mega-kernel cache telemetry.  The telemetry is
        # machine-local and wall-clock flavored — it never feeds
        # RunStats, which stay deterministic run to run.
        self._exec_plans: dict = {}
        self.fusion_metrics: dict[str, int] = {
            "megakernel_builds": 0,
            "megakernel_native": 0,
            "megakernel_hits": 0,
            "stepwise_groups": 0,
        }

    # -- storage ---------------------------------------------------------

    def alloc(self, name: str, extents: tuple[int, ...],
              dtype: np.dtype,
              layout: tuple[str, ...] | None = None) -> ArrayHome:
        if name in self.arrays:
            raise MachineError(f"array '{name}' already allocated")
        geom = make_geometry(tuple(int(e) for e in extents),
                             self.model.n_pes, layout)
        home = ArrayHome(name=name, data=np.zeros(extents, dtype=dtype),
                         geometry=geom)
        self.arrays[name] = home
        self.stats.host_cycles += self.model.host_op
        return home

    def set_array(self, name: str, values: np.ndarray) -> None:
        home = self.home(name)
        if tuple(values.shape) != tuple(home.data.shape):
            raise MachineError(
                f"'{name}': shape {values.shape} does not match "
                f"{home.data.shape}")
        np.copyto(home.data, values, casting="unsafe")

    def home(self, name: str) -> ArrayHome:
        try:
            return self.arrays[name]
        except KeyError:
            raise MachineError(f"array '{name}' is not allocated") from None

    def view(self, name: str,
             region: tuple[tuple[int, int, int], ...] | None) -> np.ndarray:
        """A (strided) view of an array's region; the whole array if None."""
        data = self.home(name).data
        if region is None:
            return data
        return data[region_slices(region)]

    def coord_subgrid(self, extents: tuple[int, ...], axis: int,
                      region: tuple[tuple[int, int, int], ...] | None,
                      lo: int = 1, step: int = 1) -> np.ndarray:
        """The runtime's lazily-materialized coordinate array for an axis."""
        key = (extents, axis, lo, step)
        if key not in self._coords_charged:
            self._coords_charged.add(key)
            # Materialization is one node pass over the shape.
            geom = make_geometry(extents, self.model.n_pes)
            self.stats.node_cycles += (
                math.ceil(geom.vlen / VECTOR_WIDTH) * self.model.instr.move)
        arr = _shared_coordinate_array(extents, axis, lo, step)
        if region is None:
            return arr
        return arr[region_slices(region)]

    def halo_subgrid(self, name: str, shift: int, dim: int) -> "np.ndarray":
        """Ghost-augmented shifted view for a halo stream (§5.3.2).

        Performs the physical boundary exchange (charged to the
        communication meter) and returns the shifted snapshot the node
        program streams through; interior elements are local reads.
        """
        from .network import halo_exchange_cycles

        home = self.home(name)
        self.charge_comm(halo_exchange_cycles(self.model, home.geometry,
                                              dim, shift))
        return np.roll(home.data, -shift, axis=dim - 1)

    # -- node dispatch ----------------------------------------------------

    def _verify_routine(self, routine: Routine) -> None:
        """Under ``REPRO_VERIFY=1``, check PEAC invariants at dispatch.

        The last line of defense: catches corrupted or hand-built
        routines that never went through the compile-time verifier.
        Each routine name is checked once per machine.
        """
        from ..analysis import verify_enabled

        if not verify_enabled():
            return
        seen = getattr(self, "_verified_routines", None)
        if seen is None:
            seen = self._verified_routines = set()
        if routine.name in seen:
            return
        from ..analysis.diagnostics import VerifyError
        from ..analysis.peac_verifier import verify_routine

        diagnostics = verify_routine(routine)
        if diagnostics:
            raise VerifyError("machine/dispatch", diagnostics)
        seen.add(routine.name)

    def call_routine(self, routine: Routine,
                     bindings: dict[str, object],
                     region_extents: tuple[int, ...],
                     real_elements: int | None = None,
                     layout: tuple[str, ...] | None = None) -> None:
        """Dispatch one PEAC routine over bound operand streams.

        ``bindings`` maps parameter names to numpy views (``subgrid`` and
        ``coord`` params) or scalars.  ``region_extents`` sizes the
        virtual subgrid loop; ``real_elements`` (default: the region
        size) scales useful-flop accounting when padding is in play.
        """
        d = self._prepare(routine, bindings, region_extents,
                          real_elements, layout)
        try:
            self._execute_dispatch(d)
        finally:
            self._release(d)
        self._account_call(d)

    def call_fused(self, calls, site=None) -> None:
        """Dispatch a batch of adjacent node calls, fused when legal.

        ``calls`` is a sequence of ``call_routine`` argument tuples
        ``(routine, bindings, region_extents, real_elements, layout)``.
        Under ``exec_mode="fused"`` the batch is probed by the
        :class:`~repro.machine.execplan.ExecutionPlan` layer: a legal
        batch is charged as **one** node call (deduplicated pushes, a
        single merged trip loop, forwarded intermediate loads) and runs
        through a cached mega-kernel.  An illegal batch — and every
        batch under the other engines — runs call by call with
        unchanged accounting.  ``site`` keys the per-machine persistent
        execution-plan cache.
        """
        if len(calls) == 1:
            self.call_routine(*calls[0])
            return
        dispatches = [self._prepare(*c) for c in calls]
        try:
            plan = S = None
            if self.exec_mode == "fused":
                plan, S = resolve_fused(self, site, dispatches)
            if plan is None:
                for d in dispatches:
                    self._execute_dispatch(d)
                    self._account_call(d)
            else:
                plan.run(self, dispatches, S)
        finally:
            for d in dispatches:
                self._release(d)

    def _prepare(self, routine: Routine, bindings: dict[str, object],
                 region_extents: tuple[int, ...],
                 real_elements: int | None = None,
                 layout: tuple[str, ...] | None = None) -> Dispatch:
        """Resolve one call's streams, scalars and spill scratch."""
        if layout is not None and len(layout) != len(region_extents):
            layout = None  # section computes fall back to block layout
        self._verify_routine(routine)
        geom = make_geometry(region_extents, self.model.n_pes, layout)
        plan = get_plan(routine)
        streams: list[SubgridStream | None] = [None] * NUM_PREGS
        scalars: list = [_UNBOUND] * NUM_SREGS
        pushes = 0
        scalar_pushes = 0
        for param in routine.params:
            if param.kind == "vlen":
                pushes += 1
                continue
            try:
                value = bindings[param.name]
            except KeyError:
                raise MachineError(
                    f"{routine.name}: missing argument '{param.name}'"
                ) from None
            if param.kind in ("subgrid", "coord", "halo"):
                if not isinstance(param.reg, PReg):
                    raise MachineError(
                        f"{routine.name}: '{param.name}' needs a pointer reg")
                streams[param.reg.n] = SubgridStream(value, name=param.name)
            elif param.kind == "scalar":
                if not isinstance(param.reg, SReg):
                    raise MachineError(
                        f"{routine.name}: '{param.name}' needs a scalar reg")
                scalars[param.reg.n] = value
                scalar_pushes += 1
            pushes += 1

        # Spill scratch: per-call PE memory, bound from the top pointer
        # registers down (not IFIFO arguments).  Scratch carries the
        # routine's element dtype (an integer spill must not round-trip
        # through float64) and is drawn zeroed from the buffer pool
        # instead of being reallocated on every dispatch.
        spill_bufs: list[np.ndarray] = []
        spill_pregs: list[int] = []
        spill_dtype = np.dtype(getattr(routine, "dtype", "float64"))
        for slot in range(routine.spill_slots):
            scratch = self.pool.acquire((math.prod(region_extents),),
                                        spill_dtype)
            scratch.fill(0)
            spill_bufs.append(scratch)
            preg = NUM_PREGS - 1 - slot
            spill_pregs.append(preg)
            streams[preg] = SubgridStream(scratch, name=f"spill{slot}")

        trips = math.ceil(geom.vlen / VECTOR_WIDTH)
        elements = (geom.total_elements if real_elements is None
                    else real_elements)
        return Dispatch(routine, plan, streams, scalars, pushes,
                        scalar_pushes, spill_bufs, tuple(spill_pregs),
                        trips, elements)

    def _execute_dispatch(self, d: Dispatch) -> None:
        if self.exec_mode == "interp":
            executor = VectorExecutor()
            for n, stream in enumerate(d.streams):
                if stream is not None:
                    executor.bind_pointer(PReg(n), stream)
            for n, value in enumerate(d.scalars):
                if value is not _UNBOUND:
                    executor.bind_scalar(SReg(n), value)
            executor.run(d.routine)
        else:
            d.plan.execute(d.streams, d.scalars, self.pool)

    def _release(self, d: Dispatch) -> None:
        for scratch in d.spill_bufs:
            self.pool.release(scratch)

    def _account_call(self, d: Dispatch) -> None:
        node = d.trips * d.plan.cycles_per_trip(self.model)
        self.stats.node_cycles += node
        self.stats.call_cycles += (self.model.call_dispatch
                                   + d.pushes * self.model.ififo_push)
        self.stats.node_calls += 1
        self.stats.ififo_pushes += d.pushes
        self.stats.flops += d.plan.flops_per_element * d.elements
        self.stats.elements_computed += d.elements
        self.stats.per_routine[d.routine.name] = (
            self.stats.per_routine.get(d.routine.name, 0) + node)

    def fusion_summary(self) -> dict:
        """Fusion counters for ``--stats-json`` and service responses."""
        return {
            "fused_groups": self.stats.fused_groups,
            "fused_routines": self.stats.fused_routines,
            "megakernel_builds": self.fusion_metrics["megakernel_builds"],
            "megakernel_native": self.fusion_metrics["megakernel_native"],
            "megakernel_hits": self.fusion_metrics["megakernel_hits"],
            "stepwise_groups": self.fusion_metrics["stepwise_groups"],
        }

    # -- accounting helpers -------------------------------------------------

    def charge_comm(self, cycles: int) -> None:
        self.stats.comm_cycles += cycles
        self.stats.comm_ops += 1

    def charge_host(self, cycles: int) -> None:
        self.stats.host_cycles += cycles

    def geometry_of(self, extents: tuple[int, ...]) -> Geometry:
        return make_geometry(extents, self.model.n_pes)

    def gflops(self) -> float:
        return self.stats.gflops(self.model.clock_hz)
