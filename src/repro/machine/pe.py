"""Slicewise processing-element executor for PEAC routines.

The CM is SIMD: every PE runs the same virtual subgrid loop over its
block of data.  The simulator therefore executes each PEAC instruction
once over the *concatenation of all subgrids* (a flat numpy array) —
semantically identical to per-element execution because subgrid loops
are restricted to pointwise-local, streaming references — and charges
cycles analytically: ``cycles_per_trip × ceil(vlen / 4)`` on the PE with
the largest subgrid (all PEs run in lockstep, so the fullest PE sets the
pace).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..peac.isa import (
    FLOP_KINDS,
    VECTOR_WIDTH,
    Imm,
    Instr,
    Mem,
    PReg,
    Routine,
    SReg,
    VReg,
)
from .costs import CostModel


class ExecutionError(Exception):
    """Raised when a routine misuses registers or streams."""


@dataclass
class SubgridStream:
    """A streaming memory operand: a (possibly strided) view of an array.

    Loads snapshot the current contents; stores write through to the
    underlying global array immediately, preserving the element-wise
    program order of the virtual subgrid loop.
    """

    view: np.ndarray
    name: str = "?"

    def read(self) -> np.ndarray:
        return np.ravel(self.view).copy()

    def write(self, values: np.ndarray) -> None:
        flat = np.asarray(values)
        if flat.size == 1 and self.view.size != 1:
            np.copyto(self.view, flat.reshape(()), casting="unsafe")
            return
        np.copyto(self.view, flat.reshape(self.view.shape), casting="unsafe")


class VectorExecutor:
    """Executes one PEAC routine over bound operand streams."""

    def __init__(self) -> None:
        self.vregs: dict[int, np.ndarray | None] = {}
        self.sregs: dict[int, float] = {}
        self.pregs: dict[int, SubgridStream] = {}

    # -- binding --------------------------------------------------------

    def bind_pointer(self, preg: PReg, stream: SubgridStream) -> None:
        self.pregs[preg.n] = stream

    def bind_scalar(self, sreg: SReg, value) -> None:
        self.sregs[sreg.n] = value

    # -- execution ------------------------------------------------------

    def run(self, routine: Routine) -> None:
        with np.errstate(all="ignore"):
            for instr in routine.body:
                self._exec(instr)

    def _exec(self, instr: Instr) -> None:
        # Dual-issue: both halves read pre-instruction state, then commit.
        if instr.paired is not None:
            main_commit = self._eval(instr)
            paired_commit = self._eval(instr.paired)
            main_commit()
            paired_commit()
        else:
            self._eval(instr)()

    def _read(self, op) -> np.ndarray | float:
        if isinstance(op, VReg):
            val = self.vregs.get(op.n)
            if val is None:
                raise ExecutionError(f"read of undefined register {op}")
            return val
        if isinstance(op, SReg):
            try:
                return self.sregs[op.n]
            except KeyError:
                raise ExecutionError(f"read of unbound scalar {op}") from None
        if isinstance(op, Mem):
            try:
                return self.pregs[op.preg.n].read()
            except KeyError:
                raise ExecutionError(
                    f"read through unbound pointer {op.preg}") from None
        if isinstance(op, Imm):
            # Integral immediates stay integers so that integer vector
            # arithmetic keeps Fortran INTEGER*4 wraparound semantics
            # (a float immediate would promote the whole stream to
            # float64).  numpy's weak-scalar promotion leaves float
            # streams unaffected by an int immediate.
            v = op.value
            if float(v).is_integer() and abs(v) <= 2**31 - 1:
                return int(v)
            return v
        raise ExecutionError(f"cannot read operand {op}")

    def _eval(self, instr: Instr):
        """Evaluate an instruction; returns a commit thunk."""
        op = instr.op
        kind = instr.kind

        if kind == "load":
            mem, dst = instr.operands
            value = self._read(mem)
            return self._commit_vreg(dst, value)
        if kind == "store":
            src, mem = instr.operands
            value = self._read(src)
            stream = self.pregs.get(mem.preg.n)
            if stream is None:
                raise ExecutionError(f"store through unbound {mem.preg}")
            return lambda: stream.write(np.asarray(value))
        if kind == "move":
            src, dst = instr.operands
            return self._commit_vreg(dst, self._read(src))
        if kind == "branch":
            return lambda: None

        args = [self._read(o) for o in instr.sources]
        result = _APPLY[op](*args)
        return self._commit_vreg(instr.operands[-1], result)

    def _commit_vreg(self, dst, value):
        if not isinstance(dst, VReg):
            raise ExecutionError(f"destination must be a vector register,"
                                 f" got {dst}")

        def commit():
            self.vregs[dst.n] = np.asarray(value)

        return commit


def _fortran_int(x) -> np.ndarray:
    """Fortran INT(): truncation toward zero, to 32-bit integers."""
    return np.trunc(np.asarray(x, dtype=np.float64)).astype(np.int32)


def _int_div(a, b):
    af = np.asarray(a, dtype=np.float64)
    bf = np.asarray(b, dtype=np.float64)
    return np.trunc(af / bf).astype(np.int32)


def _int_mod(a, b):
    return np.fmod(np.asarray(a, dtype=np.int64),
                   np.asarray(b, dtype=np.int64)).astype(np.int32)


def _as_bool(x) -> np.ndarray:
    return np.asarray(x, dtype=bool)


_APPLY = {
    "faddv": lambda a, b: np.add(a, b),
    "fsubv": lambda a, b: np.subtract(a, b),
    "fmulv": lambda a, b: np.multiply(a, b),
    "fdivv": lambda a, b: np.divide(a, b),
    "fminv": lambda a, b: np.minimum(a, b),
    "fmaxv": lambda a, b: np.maximum(a, b),
    "fmodv": lambda a, b: np.fmod(a, b),
    "fpowv": lambda a, b: np.power(a, b),
    "fmav": lambda a, b, c: np.add(np.multiply(a, b), c),
    "fmsv": lambda a, b, c: np.subtract(np.multiply(a, b), c),
    "fnegv": lambda a: np.negative(a),
    "fabsv": lambda a: np.abs(a),
    "fsqrtv": lambda a: np.sqrt(a),
    "finvv": lambda a: np.divide(1.0, a),
    "fsinv": lambda a: np.sin(a),
    "fcosv": lambda a: np.cos(a),
    "ftanv": lambda a: np.tan(a),
    "fasinv": lambda a: np.arcsin(a),
    "facosv": lambda a: np.arccos(a),
    "fatanv": lambda a: np.arctan(a),
    "fexpv": lambda a: np.exp(a),
    "flogv": lambda a: np.log(a),
    "flog10v": lambda a: np.log10(a),
    "ffloorv": lambda a: np.floor(a).astype(np.int32),
    "fceilv": lambda a: np.ceil(a).astype(np.int32),
    "fintv": _fortran_int,
    "ffltv": lambda a: np.asarray(a, dtype=np.float32),
    "fdblv": lambda a: np.asarray(a, dtype=np.float64),
    "fceqv": lambda a, b: np.equal(a, b),
    "fcnev": lambda a, b: np.not_equal(a, b),
    "fcltv": lambda a, b: np.less(a, b),
    "fclev": lambda a, b: np.less_equal(a, b),
    "fcgtv": lambda a, b: np.greater(a, b),
    "fcgev": lambda a, b: np.greater_equal(a, b),
    "candv": lambda a, b: np.logical_and(_as_bool(a), _as_bool(b)),
    "corv": lambda a, b: np.logical_or(_as_bool(a), _as_bool(b)),
    "cxorv": lambda a, b: np.logical_xor(_as_bool(a), _as_bool(b)),
    "cnotv": lambda a: np.logical_not(_as_bool(a)),
    "fselv": lambda m, t, f: np.where(_as_bool(m), t, f),
    "iaddv": lambda a, b: np.add(a, b),
    "isubv": lambda a, b: np.subtract(a, b),
    "imulv": lambda a, b: np.multiply(a, b),
    "idivv": _int_div,
    "imodv": _int_mod,
    "inegv": lambda a: np.negative(a),
}


def cycles_per_trip(routine: Routine, model: CostModel) -> int:
    """Issue cycles for one four-element trip of the subgrid loop."""
    total = model.instr.loop_overhead
    for instr in routine.body:
        total += model.instruction_cycles(instr)
    return total


def flops_per_element(routine: Routine) -> int:
    """Useful floating-point operations per element of the subgrid."""
    flops = 0
    for instr in routine.body:
        flops += FLOP_KINDS.get(instr.kind, 0)
        if instr.paired is not None:
            flops += FLOP_KINDS.get(instr.paired.kind, 0)
    return flops


def routine_cycles(routine: Routine, model: CostModel, vlen: int) -> int:
    """Node cycles for one invocation: trips × per-trip issue cost."""
    trips = math.ceil(vlen / VECTOR_WIDTH)
    return trips * cycles_per_trip(routine, model)
