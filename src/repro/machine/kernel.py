"""Blocked code generation for routine plans (the compiled fast path).

A :class:`~repro.machine.plan.RoutinePlan` executes pre-resolved steps,
but still makes one full-array pass per instruction — on large subgrids
every pass streams megabytes through memory.  This module compiles a
plan *specialization* (plan + binding signature + operand alias pattern)
down to a single generated Python function that runs the whole routine
**block by block**: all intermediate values live in small kernel-owned
buffers that stay cache-resident, and only the bound subgrid streams are
read or written at full size.

The generator performs a symbolic SSA walk over the plan's steps:

* loads and chained memory operands stay *lazy* — they turn into plain
  slice expressions ``s3[b:e]`` consumed directly by the ufunc call —
  unless a later store can overwrite them first, in which case a block
  copy materializes the pre-store value (the same hazard rule the step
  engine applies with ``np.may_share_memory``);
* a compute whose only consumer is a store gets *forwarded*: the ufunc
  writes ``out=dst[b:e]`` directly and the store disappears;
* values never consumed are dead code and emit nothing;
* dual-issue pairs keep their read-then-commit order: evals are emitted
  before the group's stores, so both halves observe pre-instruction
  state exactly like the interpreter.

Bit-identity with the interpreter is preserved because every emitted
operation is one of the interpreter's own elementwise numpy calls
applied to a contiguous sub-range: element ``i`` sees exactly the same
inputs, operations and rounding in either engine.  Anything the
generator cannot prove safe (overlapping-but-distinct operand views,
non-contiguous streams, mismatched stream lengths, scalar-shaped
intermediates, allocating ops like conversions) falls back to the plan's
step engine, which remains fully general.

``REPRO_FAST_BLOCK`` tunes the block length in elements (default
16384); ``REPRO_FAST_KERNEL=0`` disables code generation entirely so
the step engine can be exercised on its own.
"""

from __future__ import annotations

import os

import numpy as np

from .plan import (
    _FMA_FNS,
    _OUT_FNS,
    _R_CONST,
    _R_MEM,
    _R_SREG,
    _R_VREG,
    _UNBOUND,
    _ComputeStep,
    _LoadStep,
    _MoveStep,
    _StoreStep,
)

_NO_KERNEL = "ineligible"
_KERNEL_CAP = 8  # specializations cached per plan


def _block_elements() -> int:
    try:
        return max(1024, int(os.environ.get("REPRO_FAST_BLOCK", "16384")))
    except ValueError:
        return 16384


# ---------------------------------------------------------------------------
# SSA values
# ---------------------------------------------------------------------------


class _Val:
    """One SSA value flowing between steps during the symbolic walk."""

    __slots__ = ("kind", "cid", "sreg", "const", "dtype", "defg", "uses",
                 "mat", "store_sites", "nonstore_uses", "fwd_cid", "name",
                 "store_src_site")

    def __init__(self, kind: str, *, cid=None, sreg=None, const=None,
                 dtype=None, defg=0) -> None:
        self.kind = kind            # "src" | "buf" | "scal" | "const"
        self.cid = cid              # alias-class id (stream values)
        self.sreg = sreg
        self.const = const
        self.dtype = dtype
        self.defg = defg
        self.uses: list[int] = []   # groups where the value is read
        self.mat = False            # src: materialized by a block copy
        self.store_sites: list = []
        self.nonstore_uses = 0
        self.fwd_cid = None         # buf: forwarded to this class
        self.name = None            # assigned buffer variable
        self.store_src_site = None

    @property
    def is_array(self) -> bool:
        return self.kind in ("src", "buf")

    def last_use(self) -> int:
        last = self.defg
        if self.uses:
            last = max(last, max(self.uses))
        for site in self.store_sites:
            last = max(last, site["g"])
        return last


class _Bail(Exception):
    """Raised internally when a plan cannot be compiled to a kernel."""


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def try_kernel(plan, sig, spec, streams, scalars) -> bool:
    """Run the compiled kernel for this call if one applies.

    Returns True when the kernel executed (the call is done); False
    when the caller should fall back to the step engine.
    """
    probe = _probe(plan, streams)
    if probe is None:
        return False
    classes, n, S = probe
    key = (sig, classes, n)
    kern = plan._kernels.get(key)
    if kern is None:
        kern = _build(plan, spec, classes, n, S)
        if len(plan._kernels) >= _KERNEL_CAP:
            plan._kernels.pop(next(iter(plan._kernels)))
        plan._kernels[key] = kern
    if kern is _NO_KERNEL:
        return False
    with np.errstate(all="ignore"):
        kern(S, scalars, n)
    return True


def _probe(plan, streams):
    """Dynamic eligibility: contiguous equal-length streams, safe aliasing.

    Returns ``(classes, n, S)`` — the alias-class id per used pointer
    register, the common stream length, and the flat per-preg arrays —
    or None when this call's bindings need the step engine.
    """
    pregs = plan.used_pregs
    if not pregs:
        return None
    n = -1
    S: list = [None] * len(streams)
    ident: dict = {}
    cid_of: dict[int, int] = {}
    for p in pregs:
        stream = streams[p]
        if stream is None:
            return None
        view = stream.view
        if not isinstance(view, np.ndarray) or not view.flags["C_CONTIGUOUS"]:
            return None
        flat = view.reshape(-1)
        if n < 0:
            n = flat.size
        elif flat.size != n:
            return None
        S[p] = flat
        key = (view.__array_interface__["data"][0], view.dtype.str)
        cid_of[p] = ident.setdefault(key, p)
    if n <= 0:
        return None
    # Stored classes must not overlap any *distinct* operand view: two
    # identical views are one class (safe), anything else would let a
    # blocked store corrupt elements another block still has to read.
    for sp in plan.stored_pregs:
        scid = cid_of[sp]
        a = S[sp]
        for p in pregs:
            if cid_of[p] != scid and np.may_share_memory(a, S[p]):
                return None
    return tuple(cid_of[p] for p in pregs), n, S


# ---------------------------------------------------------------------------
# Kernel construction
# ---------------------------------------------------------------------------


def _build(plan, spec, classes, n, S):
    try:
        return _Builder(plan, spec, classes, n, S).build()
    except _Bail:
        return _NO_KERNEL


class _Builder:
    def __init__(self, plan, spec, classes, n, S) -> None:
        self.plan = plan
        self.spec = spec
        self.n = n
        self.cid_of = dict(zip(plan.used_pregs, classes))
        self.class_dtype = {cid: S[cid].dtype for cid in set(classes)}
        self.src_vals: list[_Val] = []
        self.buf_vals: list[_Val] = []
        self.aux_vals: list[_Val] = []
        self.store_sites: list[dict] = []
        self.slots: list[list] = []       # per group: ordered slot entries
        self.store_groups: dict[int, list[int]] = {}
        self.consts: dict = {}
        self.fns: dict[int, tuple[str, object]] = {}
        self.hoists: list[str] = []       # preamble lines (scalar masks)
        self.hoist_names: dict = {}

    # -- symbolic walk --------------------------------------------------

    def build(self):
        # A fused merged plan renames each constituent's vector registers
        # into its own bank (see machine/execplan.py), so the register
        # file is plan-sized rather than the architectural 8.
        vmap: list[_Val | None] = [None] * getattr(self.plan,
                                                   "num_vregs", 8)
        for g, steps in enumerate(self.plan.groups):
            slot: list = []
            self.slots.append(slot)
            pend: list[tuple[int, _Val]] = []
            for step in steps:
                if isinstance(step, (_LoadStep, _MoveStep)):
                    pend.append((step.dst, self._eval_move(step, vmap, g)))
                elif isinstance(step, _StoreStep):
                    self._eval_store(step, vmap, g)
                elif isinstance(step, _ComputeStep):
                    pend.append((step.dst, self._eval_compute(step, vmap, g)))
                # branches are loop bookkeeping: nothing to emit
            for dst, val in pend:          # commits after all evals
                vmap[dst] = val
        self._decide_materialization()
        self._decide_forwarding()
        self._assign_buffers()
        return self._emit()

    def _term(self, rd, vmap, g) -> _Val:
        tag = rd[0]
        if tag == _R_VREG:
            val = vmap[rd[1]]
            if val is None:
                raise _Bail
            return val
        if tag == _R_SREG:
            return _Val("scal", sreg=rd[1])
        if tag == _R_CONST:
            return _Val("const", const=rd[1])
        # _R_MEM: a chained operand read at this group
        val = _Val("src", cid=self.cid_of[rd[1]],
                   dtype=self.class_dtype[self.cid_of[rd[1]]], defg=g)
        self.src_vals.append(val)
        return val

    def _eval_move(self, step, vmap, g) -> _Val:
        rd = step.reader
        if rd[0] == _R_MEM:
            val = _Val("src", cid=self.cid_of[rd[1]],
                       dtype=self.class_dtype[self.cid_of[rd[1]]], defg=g)
            self.src_vals.append(val)
            self.slots[g].append(("load", val))
            return val
        return self._term(rd, vmap, g)

    def _eval_store(self, step, vmap, g) -> None:
        term = self._term(step.reader, vmap, g)
        cid = self.cid_of[step.preg]
        site = {"g": g, "cid": cid, "term": term, "elide": False}
        if term.is_array:
            term.uses.append(g)
            term.store_sites.append(site)
            if term.kind == "src" and term.defg == g:
                term.store_src_site = site
        self.store_sites.append(site)
        self.slots[g].append(("store", site))
        self.store_groups.setdefault(cid, []).append(g)

    def _eval_compute(self, step, vmap, g) -> _Val:
        if step.mode == "alloc":
            raise _Bail
        shape, dtype = self.spec[step.token]
        if shape != (self.n,):
            raise _Bail
        args = [self._term(rd, vmap, g) for rd in step.readers]
        for a in args:
            if a.is_array:
                a.uses.append(g)
                a.nonstore_uses += 1
        out = _Val("buf", dtype=np.dtype(dtype), defg=g)
        self.buf_vals.append(out)
        aux = None
        if step.mode == "fma":
            ashape, adtype = self.spec[step.aux]
            if ashape != (self.n,):
                raise _Bail
            aux = _Val("buf", dtype=np.dtype(adtype), defg=g)
            aux.uses.append(g)
            self.aux_vals.append(aux)
        elif step.mode == "select":
            mask = args[0]
            if mask.is_array and mask.dtype != np.dtype(bool):
                aux = _Val("buf", dtype=np.dtype(bool), defg=g)
                aux.uses.append(g)
                self.aux_vals.append(aux)
        self.slots[g].append(("compute", step, args, out, aux))
        return out

    # -- scheduling decisions -------------------------------------------

    def _decide_materialization(self) -> None:
        """A lazy stream value read after a store to its class must be
        snapshotted at definition time (pre-store), like the step
        engine's hazard copies."""
        for val in self.src_vals:
            if not val.uses:
                continue
            stores = self.store_groups.get(val.cid, ())
            val.mat = any(val.defg <= s < u
                          for s in stores for u in val.uses)
            if not val.mat and val.store_src_site is not None:
                # A store source read in a group where *another* store
                # hits the same class: commits run in step order, so
                # snapshot the eval-time value first.
                own = val.store_src_site
                val.mat = any(site["cid"] == val.cid and site["g"] == own["g"]
                              and site is not own
                              for site in self.store_sites)

    def _decide_forwarding(self) -> None:
        # Read positions per class: lazy reads happen at use time,
        # materialized reads at definition time.
        reads: dict[int, list[int]] = {}
        for val in self.src_vals:
            if not val.uses:
                continue
            pos = [val.defg] if val.mat else val.uses
            reads.setdefault(val.cid, []).extend(pos)
        for val in self.buf_vals:
            if val.nonstore_uses or len(val.store_sites) != 1:
                continue
            site = val.store_sites[0]
            d = site["cid"]
            if val.dtype != self.class_dtype[d]:
                continue
            g, j = val.defg, site["g"]
            if any(s["cid"] == d and g <= s["g"] <= j and s is not site
                   for s in self.store_sites):
                continue
            if any(g <= r <= j for r in reads.get(d, ())):
                continue
            val.fwd_cid = d
            site["elide"] = True

    def _assign_buffers(self) -> None:
        """Linear-scan allocation of physical block buffers.

        A buffer frees one group after its owner's last use — never
        within the same group, so dual-issue evals can't clobber a value
        a sibling step still reads.
        """
        need = [v for v in self.src_vals if v.mat and v.uses]
        need += [v for v in self.buf_vals
                 if v.fwd_cid is None and (v.uses or v.store_sites)]
        need += self.aux_vals
        need.sort(key=lambda v: v.defg)
        self.phys: list[np.dtype] = []
        free: dict[str, list[int]] = {}
        active: list[tuple[int, int, str]] = []  # (last use, idx, dtype)
        for val in need:
            live = []
            for last, idx, dts in active:
                if last < val.defg:
                    free.setdefault(dts, []).append(idx)
                else:
                    live.append((last, idx, dts))
            active = live
            bucket = free.get(val.dtype.str)
            if bucket:
                idx = bucket.pop()
            else:
                idx = len(self.phys)
                self.phys.append(val.dtype)
            val.name = f"v{idx}"
            active.append((val.last_use(), idx, val.dtype.str))

    # -- emission -------------------------------------------------------

    def _fn(self, fn) -> str:
        got = self.fns.get(id(fn))
        if got is None:
            got = (f"g{len(self.fns)}", fn)
            self.fns[id(fn)] = got
        return got[0]

    def _const(self, value) -> str:
        key = (type(value).__name__, repr(value))
        got = self.consts.get(key)
        if got is None:
            got = (f"c{len(self.consts)}", value)
            self.consts[key] = got
        return got[0]

    def _expr(self, val: _Val) -> str:
        if val.kind == "src":
            return val.name if val.mat else f"s{val.cid}[b:e]"
        if val.kind == "buf":
            return f"s{val.fwd_cid}[b:e]" if val.fwd_cid is not None \
                else val.name
        if val.kind == "scal":
            return f"x{val.sreg}"
        return self._const(val.const)

    def _emit(self):
        lines: list[str] = []
        used_cids: set[int] = set()
        used_sregs: set[int] = set()

        def note(val: _Val) -> None:
            if val.kind == "src" or (val.kind == "buf"
                                     and val.fwd_cid is not None):
                used_cids.add(val.cid if val.kind == "src" else val.fwd_cid)
            elif val.kind == "scal":
                used_sregs.add(val.sreg)

        for g, slot in enumerate(self.slots):
            evals: list[str] = []
            commits: list[str] = []
            for entry in slot:
                kind = entry[0]
                if kind == "load":
                    val = entry[1]
                    if val.mat and val.uses:
                        used_cids.add(val.cid)
                        evals.append(f"_cp({val.name}, s{val.cid}[b:e])")
                elif kind == "compute":
                    _, step, args, out, aux = entry
                    if not out.uses and not out.store_sites:
                        continue  # dead value
                    for a in args:
                        note(a)
                    if out.fwd_cid is not None:
                        used_cids.add(out.fwd_cid)
                    evals.extend(self._emit_compute(step, args, out, aux))
                elif kind == "store":
                    site = entry[1]
                    term = site["term"]
                    if (term.kind == "src" and term.mat
                            and term.store_src_site is site):
                        # Same-group store hazard: snapshot the source
                        # during the eval phase, before any commit.
                        used_cids.add(term.cid)
                        evals.append(f"_cp({term.name}, s{term.cid}[b:e])")
                    if site["elide"]:
                        continue
                    note(term)
                    used_cids.add(site["cid"])
                    commits.append(
                        f"_cp(s{site['cid']}[b:e], {self._expr(term)},"
                        f" casting='unsafe')")
            lines.extend(evals)
            lines.extend(commits)
        if not lines:
            raise _Bail

        bs = min(self.n, _block_elements())
        glb: dict = {"_cp": np.copyto}
        for name, fn in self.fns.values():
            glb[name] = fn
        for name, value in self.consts.values():
            glb[name] = value
        for i, dt in enumerate(self.phys):
            glb[f"B{i}"] = np.empty(bs, dtype=dt)

        pre = [f"s{cid} = S[{cid}]" for cid in sorted(used_cids)]
        pre += [f"x{k} = X[{k}]" for k in sorted(used_sregs)]
        pre += self.hoists
        body = [f"def _kernel(S, X, n):"]
        body += [f"    {p}" for p in pre]
        body += ["    b = 0",
                 "    while b < n:",
                 f"        e = b + {bs}",
                 "        if e > n: e = n",
                 "        m = e - b"]
        body += [f"        v{i} = B{i}[:m]" for i in range(len(self.phys))]
        body += [f"        {ln}" for ln in lines]
        body += ["        b = e"]
        src = "\n".join(body) + "\n"
        code = compile(src, f"<kernel:{self.plan.name}>", "exec")
        exec(code, glb)
        kernel = glb["_kernel"]
        kernel.source = src
        return kernel

    def _emit_compute(self, step, args, out, aux) -> list[str]:
        exprs = [self._expr(a) for a in args]
        target = self._expr(out)
        if step.mode == "ufunc":
            fn = self._fn(step.fn)
            return [f"{fn}({', '.join(exprs)}, out={target})"]
        if step.mode == "fma":
            f1 = self._fn(step.fn)
            f2 = self._fn(step.fn2)
            return [f"{f1}({exprs[0]}, {exprs[1]}, out={aux.name})",
                    f"{f2}({aux.name}, {exprs[2]}, out={target})"]
        # select: copy the false side, overwrite where the mask holds
        mask = args[0]
        if aux is not None:
            ne = self._fn(np.not_equal)
            conv = [f"{ne}({exprs[0]}, 0, out={aux.name})"]
            mexpr = aux.name
        elif mask.is_array:  # already boolean
            conv = []
            mexpr = exprs[0]
        else:               # scalar mask: hoist the bool conversion
            key = ("mask", exprs[0])
            name = self.hoist_names.get(key)
            if name is None:
                name = f"t{len(self.hoist_names)}"
                self.hoist_names[key] = name
                ab = self._fn(np.asarray)
                self.hoists.append(f"{name} = {ab}({exprs[0]}, dtype=bool)")
            conv = []
            mexpr = name
        return conv + [f"_cp({target}, {exprs[2]})",
                       f"_cp({target}, {exprs[1]}, where={mexpr})"]
