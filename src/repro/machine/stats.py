"""Execution statistics for simulated runs."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunStats:
    """Cycle and flop accounting for one program execution.

    Cycles are machine (sequencer) cycles.  The CM is modelled as
    globally synchronous: node, communication and host cycles add up to
    wall-clock time.
    """

    node_cycles: int = 0        # PEAC virtual subgrid loops
    call_cycles: int = 0        # dispatch + IFIFO argument pushes
    comm_cycles: int = 0        # grid/router/reduction traffic
    host_cycles: int = 0        # front-end (SPARC) work
    flops: int = 0              # useful floating-point operations
    node_calls: int = 0         # PEAC routine invocations
    ififo_pushes: int = 0
    comm_ops: int = 0
    reductions: int = 0
    elements_computed: int = 0
    fused_groups: int = 0       # cross-routine fused dispatches
    fused_routines: int = 0     # constituent routines inside fused groups
    per_routine: dict[str, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return (self.node_cycles + self.call_cycles + self.comm_cycles
                + self.host_cycles)

    def seconds(self, clock_hz: float) -> float:
        return self.total_cycles / clock_hz

    def gflops(self, clock_hz: float) -> float:
        secs = self.seconds(clock_hz)
        if secs == 0:
            return 0.0
        return self.flops / secs / 1.0e9

    def merge(self, other: "RunStats") -> None:
        self.node_cycles += other.node_cycles
        self.call_cycles += other.call_cycles
        self.comm_cycles += other.comm_cycles
        self.host_cycles += other.host_cycles
        self.flops += other.flops
        self.node_calls += other.node_calls
        self.ififo_pushes += other.ififo_pushes
        self.comm_ops += other.comm_ops
        self.reductions += other.reductions
        self.elements_computed += other.elements_computed
        self.fused_groups += other.fused_groups
        self.fused_routines += other.fused_routines
        for name, cycles in other.per_routine.items():
            self.per_routine[name] = self.per_routine.get(name, 0) + cycles

    def to_dict(self) -> dict:
        """JSON-ready snapshot (for ``--stats-json`` perf tracking)."""
        return {
            "node_cycles": self.node_cycles,
            "call_cycles": self.call_cycles,
            "comm_cycles": self.comm_cycles,
            "host_cycles": self.host_cycles,
            "total_cycles": self.total_cycles,
            "flops": self.flops,
            "node_calls": self.node_calls,
            "ififo_pushes": self.ififo_pushes,
            "comm_ops": self.comm_ops,
            "reductions": self.reductions,
            "elements_computed": self.elements_computed,
            "fused_groups": self.fused_groups,
            "fused_routines": self.fused_routines,
            "per_routine": dict(self.per_routine),
        }

    def breakdown(self) -> dict[str, float]:
        """Fractions of total time by category (for the effort profile)."""
        total = self.total_cycles or 1
        return {
            "node": self.node_cycles / total,
            "call": self.call_cycles / total,
            "comm": self.comm_cycles / total,
            "host": self.host_cycles / total,
        }
