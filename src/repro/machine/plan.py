"""Compiled fast-path execution engine for PEAC routines.

:class:`~repro.machine.pe.VectorExecutor` re-walks the instruction list
on every ``call_routine``: it re-dispatches on instruction-kind strings,
rebuilds commit thunks, snapshots every memory operand with
``np.ravel(view).copy()``, and lets every ufunc allocate a fresh output
array.  Long blocked codeblocks run the *same* handful of routines
thousands of times, so all of that is re-done work.

This module compiles each :class:`~repro.peac.isa.Routine` **once** into
a :class:`RoutinePlan` — a flat sequence of pre-resolved steps:

* operand slots are bound by index into flat register files instead of
  per-access dict lookups;
* ``Imm`` coercion (the integer-immediate rule) happens at plan time;
* dual-issue pairs are pre-split into read and commit phases so both
  halves observe pre-instruction state, exactly like the interpreter;
* arithmetic executes as direct numpy ufunc calls with ``out=`` into a
  per-call set of buffers drawn from a :class:`BufferPool`, so steady
  state runs allocation-free;
* memory operands alias the bound subgrid view (no copy) whenever no
  later store in the routine can overlap them — decided with a cheap
  ``np.may_share_memory`` check per call;
* the per-dispatch cost accounting (``cycles_per_trip``,
  ``flops_per_element``) is computed once and cached on the plan.

Because numpy result dtypes/shapes depend on the bound operands, a plan
*specializes* lazily: the first call with a given binding signature runs
in recording mode (semantically identical to the interpreter — it uses
the same ``_APPLY`` table) and captures every intermediate's shape and
dtype; later calls with the same signature run the compiled fast steps.

The interpreter stays as the slow-path oracle: ``REPRO_EXEC=interp``
(see :class:`~repro.machine.cm2.Machine`) routes dispatch back through
``VectorExecutor``, and the equivalence tests assert both paths produce
bit-identical arrays and identical :class:`~repro.machine.stats.RunStats`.
"""

from __future__ import annotations

import math
import os

import numpy as np

from ..peac.isa import (
    FLOP_KINDS,
    Imm,
    Instr,
    Mem,
    Routine,
    SReg,
    VReg,
    NUM_SREGS,
    NUM_VREGS,
)
from .costs import CostModel
from .pe import ExecutionError, SubgridStream, _APPLY


_UNBOUND = object()
"""Sentinel for an unbound scalar-register slot."""


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------


class BufferPool:
    """Reusable numpy scratch, keyed by element dtype and count.

    ``acquire`` hands out an array of exactly the requested shape and
    dtype, preferring a previously released buffer (warm pages, no
    allocation); ``release`` returns a buffer for reuse.  The pool is
    bounded: buckets cap their entry count and the pool drops buffers
    instead of growing past ``max_bytes``.
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024,
                 per_key: int = 16) -> None:
        self._free: dict[tuple[str, int], list[np.ndarray]] = {}
        self._pooled_bytes = 0
        self.max_bytes = max_bytes
        self.per_key = per_key
        self.hits = 0
        self.misses = 0

    def acquire(self, shape, dtype) -> np.ndarray:
        dt = np.dtype(dtype)
        size = int(math.prod(shape)) if shape else 1
        bucket = self._free.get((dt.str, size))
        if bucket:
            buf = bucket.pop()
            self._pooled_bytes -= buf.nbytes
            self.hits += 1
        else:
            buf = np.empty(size, dtype=dt)
            self.misses += 1
        return buf.reshape(shape)

    def release(self, arr: np.ndarray | None) -> None:
        if arr is None:
            return
        flat = arr.reshape(-1)
        key = (arr.dtype.str, flat.size)
        bucket = self._free.setdefault(key, [])
        if (len(bucket) >= self.per_key
                or self._pooled_bytes + flat.nbytes > self.max_bytes):
            return  # let the GC have it
        bucket.append(flat)
        self._pooled_bytes += flat.nbytes

    def clear(self) -> None:
        self._free.clear()
        self._pooled_bytes = 0


#: Shared module-level pool: machines, benchmark reruns and baseline
#: comparisons all reuse the same warm scratch.
GLOBAL_POOL = BufferPool()


# ---------------------------------------------------------------------------
# Operand readers
# ---------------------------------------------------------------------------

# Reader tuples, resolved at plan time:
#   (_R_VREG, n)                    — vector register file slot n
#   (_R_SREG, n)                    — scalar register file slot n
#   (_R_CONST, value)               — Imm, coerced at plan time
#   (_R_MEM, preg, token, hazard)   — streaming memory operand
_R_VREG, _R_SREG, _R_CONST, _R_MEM = 0, 1, 2, 3


def _coerce_imm(value):
    """Plan-time version of the interpreter's Imm coercion rule."""
    if float(value).is_integer() and abs(value) <= 2**31 - 1:
        return int(value)
    return value


class _Frame:
    """Per-call execution state for one plan run."""

    __slots__ = ("streams", "scalars", "v", "pool", "spec", "bufs",
                 "record")

    def __init__(self, streams, scalars, pool, spec) -> None:
        self.streams = streams          # list[SubgridStream | None]
        self.scalars = scalars          # list, _UNBOUND when unbound
        self.v: list = [None] * NUM_VREGS
        self.pool = pool
        self.spec = spec                # dict[token, (shape, dtype)]
        self.bufs: dict[int, np.ndarray] = {}
        self.record = spec is None

    def buf(self, token: int) -> np.ndarray:
        got = self.bufs.get(token)
        if got is None:
            shape, dtype = self.spec[token]
            got = self.pool.acquire(shape, dtype)
            self.bufs[token] = got
        return got


def _read(frame: _Frame, rd):
    tag = rd[0]
    if tag == _R_VREG:
        val = frame.v[rd[1]]
        if val is None:
            raise ExecutionError(f"read of undefined register aV{rd[1]}")
        return val
    if tag == _R_SREG:
        val = frame.scalars[rd[1]]
        if val is _UNBOUND:
            raise ExecutionError(f"read of unbound scalar aS{rd[1]}")
        return val
    if tag == _R_CONST:
        return rd[1]
    return _read_mem(frame, rd[1], rd[2], rd[3])


def _read_mem(frame: _Frame, preg: int, token: int, hazard) -> np.ndarray:
    """Snapshot (or alias) the current contents of a stream operand.

    The interpreter always copies.  Here the copy is skipped when no
    store at or after this step can overlap the view — checked with
    ``np.may_share_memory`` against the streams in ``hazard`` — and the
    view is contiguous (so the flattened alias is itself copy-free).
    """
    stream = frame.streams[preg]
    if stream is None:
        raise ExecutionError(f"read through unbound pointer aP{preg}")
    view = stream.view
    if not isinstance(view, np.ndarray):
        view = np.asarray(view)
    need_copy = False
    for q in hazard:
        other = frame.streams[q]
        if other is not None and np.may_share_memory(view, other.view):
            need_copy = True
            break
    if not need_copy and view.flags["C_CONTIGUOUS"]:
        return view.reshape(-1)
    if frame.record:
        return np.ravel(view).copy()
    buf = frame.pool.acquire((view.size,), view.dtype)
    np.copyto(buf.reshape(view.shape), view)
    frame.bufs[token] = buf
    return buf


# ---------------------------------------------------------------------------
# Plan steps
# ---------------------------------------------------------------------------


class _Step:
    """One pre-resolved step: an eval phase and a commit phase.

    For unpaired instructions the two phases run back to back; for a
    dual-issue pair the plan runs *both* evals before *either* commit,
    mirroring the interpreter's pre-instruction-state semantics.
    """

    __slots__ = ("pending",)

    def eval(self, frame: _Frame) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def commit(self, frame: _Frame) -> None:
        pass


class _BranchStep(_Step):
    __slots__ = ()

    def eval(self, frame: _Frame) -> None:
        pass


class _LoadStep(_Step):
    """``flodv <mem> <vreg>`` (also ``fmovv`` with a memory source)."""

    __slots__ = ("reader", "dst")

    def __init__(self, reader, dst: int) -> None:
        self.reader = reader
        self.dst = dst

    def eval(self, frame: _Frame) -> None:
        self.pending = _read(frame, self.reader)

    def commit(self, frame: _Frame) -> None:
        frame.v[self.dst] = np.asarray(self.pending)
        self.pending = None


class _MoveStep(_Step):
    """``fmovv <vreg|sreg|imm> <vreg>``."""

    __slots__ = ("reader", "dst")

    def __init__(self, reader, dst: int) -> None:
        self.reader = reader
        self.dst = dst

    def eval(self, frame: _Frame) -> None:
        self.pending = _read(frame, self.reader)

    def commit(self, frame: _Frame) -> None:
        frame.v[self.dst] = np.asarray(self.pending)
        self.pending = None


class _StoreStep(_Step):
    """``fstrv <src> <mem>``: read at eval, write through at commit."""

    __slots__ = ("reader", "preg")

    def __init__(self, reader, preg: int) -> None:
        self.reader = reader
        self.preg = preg

    def eval(self, frame: _Frame) -> None:
        self.pending = _read(frame, self.reader)
        if frame.streams[self.preg] is None:
            raise ExecutionError(f"store through unbound aP{self.preg}")

    def commit(self, frame: _Frame) -> None:
        frame.streams[self.preg].write(np.asarray(self.pending))
        self.pending = None


class _ComputeStep(_Step):
    """An arithmetic/comparison/logic/select step.

    ``mode`` selects the fast executor:

    * ``"ufunc"``  — one numpy ufunc with ``out=`` into a pooled buffer;
    * ``"fma"``    — chained multiply-add as two ufuncs via an aux buffer;
    * ``"select"`` — masked select as two ``np.copyto`` passes;
    * ``"alloc"``  — rare ops (conversions, integer division) fall back
      to the interpreter's allocating lambda.

    Recording mode always runs the interpreter's ``_APPLY`` lambda and
    captures the result (and intermediate) shapes/dtypes for the
    specialization.
    """

    __slots__ = ("op", "readers", "dst", "token", "aux", "mode",
                 "fn", "fn2", "apply")

    def __init__(self, op: str, readers, dst: int, token: int,
                 aux: int) -> None:
        self.op = op
        self.readers = readers
        self.dst = dst
        self.token = token
        self.aux = aux
        # finvv's readers carry the 1.0 numerator explicitly, so its
        # record-mode apply is the two-argument divide (same result).
        self.apply = np.divide if op == "finvv" else _APPLY[op]
        if op in _FMA_FNS:
            self.mode = "fma"
            self.fn, self.fn2 = _FMA_FNS[op]
        elif op == "fselv":
            self.mode = "select"
            self.fn = self.fn2 = None
        elif op in _OUT_FNS:
            self.mode = "ufunc"
            self.fn = _OUT_FNS[op]
            self.fn2 = None
        else:
            self.mode = "alloc"
            self.fn = self.fn2 = None

    def eval(self, frame: _Frame) -> None:
        args = [_read(frame, rd) for rd in self.readers]
        if frame.record:
            self._eval_record(frame, args)
        else:
            self._eval_fast(frame, args)

    def _eval_record(self, frame: _Frame, args) -> None:
        if self.mode == "fma":
            tmp = np.asarray(self.fn(args[0], args[1]))
            frame.spec[self.aux] = (tmp.shape, tmp.dtype)
            result = np.asarray(self.fn2(tmp, args[2]))
        elif self.mode == "select":
            mask = np.asarray(args[0], dtype=bool)
            frame.spec[self.aux] = (mask.shape, mask.dtype)
            result = np.asarray(np.where(mask, args[1], args[2]))
        else:
            result = np.asarray(self.apply(*args))
        if self.mode != "alloc":
            frame.spec[self.token] = (result.shape, result.dtype)
        self.pending = result

    def _eval_fast(self, frame: _Frame, args) -> None:
        mode = self.mode
        if mode == "ufunc":
            out = frame.buf(self.token)
            self.fn(*args, out=out)
            self.pending = out
        elif mode == "fma":
            tmp = frame.buf(self.aux)
            out = frame.buf(self.token)
            self.fn(args[0], args[1], out=tmp)
            self.fn2(tmp, args[2], out=out)
            self.pending = out
        elif mode == "select":
            mask, tval, fval = args
            if isinstance(mask, np.ndarray) and mask.dtype != bool \
                    and mask.size > 1:
                mbuf = frame.buf(self.aux)
                np.not_equal(mask, 0, out=mbuf)
                mask = mbuf
            elif not (isinstance(mask, np.ndarray)
                      and mask.dtype == bool):
                mask = np.asarray(mask, dtype=bool)
            out = frame.buf(self.token)
            np.copyto(out, fval)
            np.copyto(out, tval, where=mask)
            self.pending = out
        else:
            self.pending = np.asarray(self.apply(*args))

    def commit(self, frame: _Frame) -> None:
        frame.v[self.dst] = self.pending
        self.pending = None


def _rdiv(a, b, out=None):
    return np.divide(a, b, out=out)


# numpy ufuncs that compute each _APPLY entry bit-identically with out=.
_OUT_FNS = {
    "faddv": np.add, "fsubv": np.subtract, "fmulv": np.multiply,
    "fdivv": np.divide, "fminv": np.minimum, "fmaxv": np.maximum,
    "fmodv": np.fmod, "fpowv": np.power,
    "fnegv": np.negative, "fabsv": np.absolute, "fsqrtv": np.sqrt,
    "fsinv": np.sin, "fcosv": np.cos, "ftanv": np.tan,
    "fasinv": np.arcsin, "facosv": np.arccos, "fatanv": np.arctan,
    "fexpv": np.exp, "flogv": np.log, "flog10v": np.log10,
    "fceqv": np.equal, "fcnev": np.not_equal, "fcltv": np.less,
    "fclev": np.less_equal, "fcgtv": np.greater, "fcgev": np.greater_equal,
    "candv": np.logical_and, "corv": np.logical_or,
    "cxorv": np.logical_xor, "cnotv": np.logical_not,
    "iaddv": np.add, "isubv": np.subtract, "imulv": np.multiply,
    "inegv": np.negative,
}

_FMA_FNS = {
    "fmav": (np.multiply, np.add),
    "fmsv": (np.multiply, np.subtract),
}


# ---------------------------------------------------------------------------
# The routine plan
# ---------------------------------------------------------------------------


#: Monotonic plan identities.  Mega-kernel caches key on these rather
#: than ``id(plan)`` so a recycled object address can never resurrect a
#: stale fused compilation.
_SERIALS = iter(range(1, 1 << 62)).__next__


class RoutinePlan:
    """One routine, compiled once into directly executable steps."""

    SPEC_CAP = 8  # binding signatures cached per plan

    def __init__(self, routine: Routine) -> None:
        self.name = routine.name
        self.serial = _SERIALS()
        self.body_id = id(routine.body)
        self.body_len = len(routine.body)
        self._instrs = tuple(routine.body)
        self.flops_per_element = _plan_flops(routine)
        self._cycles: dict[CostModel, int] = {}
        self.specs: dict[tuple, dict[int, tuple]] = {}
        self._kernels: dict = {}
        self._compile(routine)

    # -- plan compilation ----------------------------------------------

    def _compile(self, routine: Routine) -> None:
        groups: list[tuple[Instr, ...]] = []
        for instr in routine.body:
            if instr.paired is not None:
                groups.append((instr, instr.paired))
            else:
                groups.append((instr,))

        # Suffix sets of stored pointer registers: a value *held* from
        # group i onward must be snapshotted if any store at >= i can
        # overlap it.
        suffix: list[frozenset[int]] = [frozenset()] * len(groups)
        stored: set[int] = set()
        for gi in range(len(groups) - 1, -1, -1):
            for instr in groups[gi]:
                if instr.kind == "store":
                    mem = instr.operands[1]
                    stored.add(mem.preg.n)
            suffix[gi] = frozenset(stored)

        self._tokens = 0
        self.groups: list[tuple[_Step, ...]] = []
        short_lived: list[list[int]] = []
        for gi, group in enumerate(groups):
            group_stores = frozenset(
                i.operands[1].preg.n for i in group if i.kind == "store")
            shorts: list[int] = []
            steps = tuple(
                self._compile_instr(instr, suffix[gi], group_stores, shorts)
                for instr in group)
            self.groups.append(steps)
            short_lived.append(shorts)

        self._analyze_lifetimes(short_lived)

        used: set[int] = set()
        stored: set[int] = set()
        reads: set[int] = set()
        for steps in self.groups:
            for step in steps:
                if isinstance(step, _StoreStep):
                    used.add(step.preg)
                    stored.add(step.preg)
                    readers = (step.reader,)
                elif isinstance(step, (_LoadStep, _MoveStep)):
                    readers = (step.reader,)
                elif isinstance(step, _ComputeStep):
                    readers = step.readers
                else:
                    continue
                for rd in readers:
                    if rd[0] == _R_MEM:
                        used.add(rd[1])
                        reads.add(rd[1])
        self.used_pregs = tuple(sorted(used))
        self.stored_pregs = tuple(sorted(stored))
        self.read_pregs = tuple(sorted(reads))

    def _new_token(self) -> int:
        self._tokens += 1
        return self._tokens - 1

    def _compile_instr(self, instr: Instr, held_hazard: frozenset[int],
                       group_stores: frozenset[int],
                       shorts: list[int]) -> _Step:
        kind = instr.kind

        def mem_reader(op: Mem, hazard) -> tuple:
            token = self._new_token()
            return (_R_MEM, op.preg.n, token, tuple(sorted(hazard)))

        def src_reader(op, *, held: bool) -> tuple:
            if isinstance(op, VReg):
                return (_R_VREG, op.n)
            if isinstance(op, SReg):
                return (_R_SREG, op.n)
            if isinstance(op, Imm):
                return (_R_CONST, _coerce_imm(op.value))
            if isinstance(op, Mem):
                # A value held across phases (a load, or a store source
                # read before this group's commits) must be protected
                # from the stores that can run before it is consumed;
                # an operand consumed inside its own eval needs none.
                hz = held_hazard if held else (
                    group_stores if kind == "store" else frozenset())
                rd = mem_reader(op, hz)
                if not held:
                    shorts.append(rd[2])
                return rd
            raise ExecutionError(f"cannot read operand {op}")

        if kind == "load":
            mem, dst = instr.operands
            rd = src_reader(mem, held=True)
            return _LoadStep(rd, dst.n)
        if kind == "store":
            src, mem = instr.operands
            rd = src_reader(src, held=False)
            return _StoreStep(rd, mem.preg.n)
        if kind == "move":
            src, dst = instr.operands
            if isinstance(src, Mem):
                return _LoadStep(src_reader(src, held=True), dst.n)
            return _MoveStep(src_reader(src, held=False), dst.n)
        if kind == "branch":
            return _BranchStep()

        readers = []
        if instr.op == "finvv":
            readers.append((_R_CONST, 1.0))
        for op in instr.sources:
            readers.append(src_reader(op, held=False))
        dst = instr.operands[-1]
        if not isinstance(dst, VReg):
            raise ExecutionError(
                f"destination must be a vector register, got {dst}")
        token = self._new_token()
        aux = self._new_token()
        shorts.append(aux)
        return _ComputeStep(instr.op, tuple(readers), dst.n, token, aux)

    def _analyze_lifetimes(self, short_lived: list[list[int]]) -> None:
        """Per-group release schedule for pooled buffers.

        A token (one step's output buffer) can be released as soon as
        no vector register holds it; moves share tokens, so holders are
        tracked as sets.  Short-lived tokens (chained operand snapshots,
        fma/select intermediates) release with their own group.
        """
        v_tok: list[int | None] = [None] * NUM_VREGS
        holders: dict[int, set[int]] = {}
        self.releases: list[tuple[int, ...]] = []
        for gi, steps in enumerate(self.groups):
            dying: list[int] = list(short_lived[gi])
            for step in steps:
                if isinstance(step, (_LoadStep, _ComputeStep)):
                    token = (step.reader[2]
                             if isinstance(step, _LoadStep)
                             else step.token)
                    dst = step.dst
                elif isinstance(step, _MoveStep):
                    rd = step.reader
                    token = v_tok[rd[1]] if rd[0] == _R_VREG else None
                    dst = step.dst
                else:
                    continue
                old = v_tok[dst]
                if old is not None:
                    held_by = holders.get(old)
                    if held_by is not None:
                        held_by.discard(dst)
                        if not held_by:
                            dying.append(old)
                            del holders[old]
                v_tok[dst] = token
                if token is not None:
                    holders.setdefault(token, set()).add(dst)
            self.releases.append(tuple(dying))

    # -- cached cost accounting ----------------------------------------

    def cycles_per_trip(self, model: CostModel) -> int:
        got = self._cycles.get(model)
        if got is None:
            got = model.instr.loop_overhead
            for instr in self._instrs:
                got += model.instruction_cycles(instr)
            self._cycles[model] = got
        return got

    # -- execution ------------------------------------------------------

    def _signature(self, streams, scalars) -> tuple:
        s_sig = []
        for st in streams:
            if st is None:
                s_sig.append(None)
            else:
                view = st.view
                if not isinstance(view, np.ndarray):
                    view = np.asarray(view)
                s_sig.append((view.shape, view.dtype.str))
        k_sig = []
        for val in scalars:
            if val is _UNBOUND:
                k_sig.append(None)
            elif isinstance(val, np.ndarray):
                k_sig.append(("a", val.shape, val.dtype.str))
            elif isinstance(val, np.generic):
                k_sig.append(("n", val.dtype.str))
            else:
                k_sig.append(("p", type(val).__name__))
        return (tuple(s_sig), tuple(k_sig))

    def execute(self, streams, scalars, pool: BufferPool | None = None
                ) -> None:
        """Run the plan over bound operand streams.

        ``streams`` is a list of ``NUM_PREGS`` :class:`SubgridStream`
        entries (or ``None``); ``scalars`` a list of ``NUM_SREGS``
        values with ``_UNBOUND`` holes.
        """
        pool = pool if pool is not None else GLOBAL_POOL
        sig = self._signature(streams, scalars)
        spec = self.specs.get(sig)
        if spec is not None and os.environ.get("REPRO_FAST_KERNEL") != "0":
            from .kernel import try_kernel

            if try_kernel(self, sig, spec, streams, scalars):
                return
        frame = _Frame(streams, scalars, pool, spec)
        try:
            with np.errstate(all="ignore"):
                self._run(frame)
        finally:
            for buf in frame.bufs.values():
                pool.release(buf)
            frame.bufs.clear()
        if spec is None:
            if len(self.specs) >= self.SPEC_CAP:
                self.specs.pop(next(iter(self.specs)))
            self.specs[sig] = frame.spec

    def _run(self, frame: _Frame) -> None:
        if frame.record:
            frame.spec = {}
        pool = frame.pool
        bufs = frame.bufs
        for steps, dying in zip(self.groups, self.releases):
            if len(steps) == 1:
                step = steps[0]
                step.eval(frame)
                step.commit(frame)
            else:
                main, paired = steps
                main.eval(frame)
                paired.eval(frame)
                main.commit(frame)
                paired.commit(frame)
            for token in dying:
                buf = bufs.pop(token, None)
                if buf is not None:
                    pool.release(buf)


def _plan_flops(routine: Routine) -> int:
    flops = 0
    for instr in routine.body:
        flops += FLOP_KINDS.get(instr.kind, 0)
        if instr.paired is not None:
            flops += FLOP_KINDS.get(instr.paired.kind, 0)
    return flops


def get_plan(routine: Routine) -> RoutinePlan:
    """The cached execution plan for a routine (compiled on first use).

    The plan is cached on the routine object itself, keyed by the
    identity and length of its body so in-place edits (tests build
    routines incrementally) recompile instead of running stale steps.
    """
    plan = getattr(routine, "_plan", None)
    if (plan is not None and plan.body_id == id(routine.body)
            and plan.body_len == len(routine.body)):
        return plan
    plan = RoutinePlan(routine)
    routine._plan = plan
    return plan


def invalidate_plan(routine: Routine) -> None:
    """Drop a routine's cached plan (after mutating its body in place).

    Also evicts every mega-kernel and fused execution plan built over
    the stale plan: a fused group compiled against the old instruction
    stream must never run again after the routine changed.
    """
    plan = getattr(routine, "_plan", None)
    if plan is not None:
        from .execplan import evict_serial

        evict_serial(plan.serial)
        del routine._plan
