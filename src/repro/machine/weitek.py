"""The Weitek WTL3164 floating-point datapath model.

Each slicewise PE couples 32 bit-serial processors with one Weitek
WTL3164 64-bit floating-point ALU (Figure 1).  PEAC programs the chip as
a four-wide vector processor over its 32-word register file, giving
eight four-wide vector registers; scalar broadcast values occupy words
allocated downward from the top of the file (hence Figure 12's ``aS28``,
``aS29``).

The numbers here document the datapath behind
:mod:`repro.machine.costs`; they are exposed for tests and for the
spill-cost experiment (a spill/restore pair = 18 cycles = 3 vector ops).
"""

from __future__ import annotations

from dataclasses import dataclass

REGISTER_FILE_WORDS = 32
VECTOR_WIDTH = 4
VECTOR_REGISTERS = REGISTER_FILE_WORDS // VECTOR_WIDTH  # = 8


@dataclass(frozen=True)
class WeitekTimings:
    """Anchor timings used to derive the instruction cost table."""

    vector_op_cycles: int = 6          # one 4-wide add/sub/mul
    spill_restore_pair_cycles: int = 18  # == 3 vector ops (paper, §5.2)
    chained_multiply_add_cycles: int = 6  # same slot as one vector op

    @property
    def vector_memory_cycles(self) -> int:
        """One vector load or store: half a spill/restore pair."""
        return self.spill_restore_pair_cycles // 2

    def flops_per_cycle_peak(self) -> float:
        """Peak per-PE flops/cycle with chained multiply-adds."""
        return 2 * VECTOR_WIDTH / self.chained_multiply_add_cycles


def peak_gflops(n_pes: int = 2048, clock_hz: float = 7.0e6) -> float:
    """Machine peak with every PE issuing chained multiply-adds."""
    t = WeitekTimings()
    return n_pes * t.flops_per_cycle_peak() * clock_hz / 1.0e9
