"""The simulated CM/2: PEs, Weitek datapath, network, geometry, costs."""

from .cm2 import ArrayHome, Machine, MachineError, region_slices
from .costs import (
    MODEL_FACTORIES,
    CostModel,
    InstructionCosts,
    cm5_model,
    fieldwise_model,
    host_model,
    model_names,
    slicewise_model,
)
from .geometry import Geometry, coordinate_array, make_geometry
from .pe import (
    ExecutionError,
    SubgridStream,
    VectorExecutor,
    cycles_per_trip,
    flops_per_element,
    routine_cycles,
)
from .plan import GLOBAL_POOL, BufferPool, RoutinePlan, get_plan, invalidate_plan
from .stats import RunStats
from .weitek import WeitekTimings, peak_gflops

__all__ = [name for name in dir() if not name.startswith("_")]
