"""Native code generation for fused mega-kernels.

The Python blocked kernel (:mod:`repro.machine.kernel`) executes a plan
as a sequence of whole-block numpy ufunc calls; every intermediate value
still makes a round trip through a block buffer.  For a *fused* plan —
several routines merged over one proven-safe slot table — the natural
compilation target is a single per-element loop: every intermediate
lives in a C local (a machine register), which is the literal form of
the register-resident forwarding the fusion layer models.

The emitter walks ``plan.groups`` exactly like the step engine: within
a group all reads evaluate before any store commits (dual-issue pairs
observe pre-instruction state), and register updates take effect when
the group retires.  Because every emitted operation is elementwise over
the common stream length, a per-element schedule is observationally
identical to the step engine's whole-array passes.

Bit-identity with numpy is preserved by construction, not hope: only
operations whose C semantics are IEEE-754-exact matches of the numpy
ufunc are emitted (+, -, *, /, negation, ``fabs``, ``sqrt``,
comparisons, and the two-instruction multiply-add sequence), the
compile runs with ``-ffp-contract=off`` and without ``-ffast-math`` so
no fused multiply-adds or reassociation can change rounding, and all
streams must be contiguous float64.  Anything outside that whitelist —
transcendentals (numpy's SIMD routines differ from libm), min/max (NaN
payload propagation), integer ops, allocating conversions — makes the
emitter decline, and the caller falls back to the Python blocked
kernel.

``REPRO_FUSED_CC=0`` disables native generation; it is also skipped
automatically when no C compiler is on PATH.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile

import numpy as np

from .plan import (
    _R_CONST,
    _R_MEM,
    _R_SREG,
    _R_VREG,
    _BranchStep,
    _ComputeStep,
    _LoadStep,
    _MoveStep,
    _StoreStep,
)

_CFLAGS = ["-O3", "-shared", "-fPIC", "-fno-math-errno",
           "-ffp-contract=off"]

#: op -> C infix operator (IEEE-exact matches of the numpy ufunc)
_BINOPS = {"faddv": "+", "fsubv": "-", "fmulv": "*", "fdivv": "/"}
_CMPOPS = {"fceqv": "==", "fcnev": "!=", "fcltv": "<",
           "fclev": "<=", "fcgtv": ">", "fcgev": ">="}
_FMAOPS = {"fmav": "+", "fmsv": "-"}


class _CBail(Exception):
    """The plan uses something outside the provable whitelist."""


def _compiler() -> str | None:
    if os.environ.get("REPRO_FUSED_CC") == "0":
        return None
    for cc in ("cc", "gcc", "clang"):
        path = shutil.which(cc)
        if path:
            return path
    return None


_SO_CACHE: dict[str, object] = {}
_WORKDIR: str | None = None


def _workdir() -> str:
    global _WORKDIR
    if _WORKDIR is None:
        _WORKDIR = tempfile.mkdtemp(prefix="repro-ckernel-")
    return _WORKDIR


def _literal(value) -> str:
    """An exact C literal for a plan-time constant."""
    if isinstance(value, (bool, np.bool_)):
        return "1.0" if value else "0.0"
    if isinstance(value, (int, np.integer)):
        iv = int(value)
        if abs(iv) > 2 ** 53:
            raise _CBail
        return f"{iv}.0"
    if isinstance(value, (float, np.floating)):
        fv = float(value)
        if fv != fv:
            return "NAN"
        if fv == float("inf"):
            return "INFINITY"
        if fv == float("-inf"):
            return "-INFINITY"
        return fv.hex()  # C99 hexfloat: exact round trip
    raise _CBail


class _CKernel:
    """Callable with the blocked-kernel interface over a native loop."""

    __slots__ = ("_fn", "_lib", "_nslots", "_sregs", "source", "native")

    def __init__(self, fn, lib, nslots, sregs, source) -> None:
        self._fn = fn
        self._lib = lib  # keeps the dlopen handle alive
        self._nslots = nslots
        self._sregs = sregs
        self.source = source
        self.native = True

    def __call__(self, S, X, n) -> None:
        ptrs = (ctypes.c_void_p * self._nslots)(
            *[a.ctypes.data for a in S])
        xs = (ctypes.c_double * max(1, len(self._sregs)))(
            *[float(X[k]) for k in self._sregs])
        self._fn(ptrs, xs, n)


class _CEmitter:
    def __init__(self, plan, spec, classes, n, S) -> None:
        self.plan = plan
        self.spec = spec
        self.n = n
        self.cid_of = dict(zip(plan.used_pregs, classes))
        for cid in set(classes):
            if S[cid].dtype != np.float64:
                raise _CBail
        self.lines: list[str] = []
        self.used_cids: set[int] = set()
        self.used_sregs: set[int] = set()
        self.ntemps = 0

    def _temp(self, ctype: str, expr: str) -> str:
        name = f"t{self.ntemps}"
        self.ntemps += 1
        self.lines.append(f"    const {ctype} {name} = {expr};")
        return name

    def _mem(self, preg: int) -> str:
        cid = self.cid_of[preg]
        self.used_cids.add(cid)
        return f"s{cid}[i]"

    def _read(self, rd, vmap) -> tuple[str, str]:
        """(C expression, kind) for a reader at the current position."""
        tag = rd[0]
        if tag == _R_VREG:
            val = vmap.get(rd[1])
            if val is None:
                raise _CBail
            return val
        if tag == _R_SREG:
            self.used_sregs.add(rd[1])
            return f"x{rd[1]}", "f64"
        if tag == _R_CONST:
            return _literal(rd[1]), "f64"
        if tag == _R_MEM:
            # Memory reads snapshot per element at this step position.
            return self._temp("double", self._mem(rd[1])), "f64"
        raise _CBail

    def _shape_ok(self, token: int) -> np.dtype:
        got = self.spec.get(token)
        if got is None or got[0] != (self.n,):
            raise _CBail
        return np.dtype(got[1])

    def _compute(self, step, vmap) -> tuple[str, str]:
        op = step.op
        dtype = self._shape_ok(step.token)
        args = [self._read(rd, vmap) for rd in step.readers]
        if op in _BINOPS:
            if dtype != np.float64:
                raise _CBail
            (a, _), (b, _) = args
            return self._temp("double",
                              f"({a}) {_BINOPS[op]} ({b})"), "f64"
        if op in _CMPOPS:
            if dtype != np.dtype(bool):
                raise _CBail
            (a, _), (b, _) = args
            return self._temp("int", f"({a}) {_CMPOPS[op]} ({b})"), "bool"
        if op in _FMAOPS:
            if dtype != np.float64:
                raise _CBail
            self._shape_ok(step.aux)
            (a, _), (b, _), (c, _) = args
            tmp = self._temp("double", f"({a}) * ({b})")
            return self._temp("double",
                              f"{tmp} {_FMAOPS[op]} ({c})"), "f64"
        if op == "fselv":
            if dtype != np.float64:
                raise _CBail
            (m, mk), (t, _), (f, _) = args
            cond = m if mk == "bool" else f"({m}) != 0.0"
            return self._temp("double",
                              f"({cond}) ? ({t}) : ({f})"), "f64"
        if op == "fnegv":
            if dtype != np.float64:
                raise _CBail
            return self._temp("double", f"-({args[0][0]})"), "f64"
        if op == "fabsv":
            if dtype != np.float64:
                raise _CBail
            return self._temp("double", f"fabs({args[0][0]})"), "f64"
        if op == "fsqrtv":
            if dtype != np.float64:
                raise _CBail
            return self._temp("double", f"sqrt({args[0][0]})"), "f64"
        raise _CBail

    def build(self):
        vmap: dict[int, tuple[str, str]] = {}
        for steps in self.plan.groups:
            pend: list[tuple[int, tuple[str, str]]] = []
            commits: list[str] = []
            for step in steps:
                if isinstance(step, (_LoadStep, _MoveStep)):
                    pend.append((step.dst, self._read(step.reader, vmap)))
                elif isinstance(step, _StoreStep):
                    expr, kind = self._read(step.reader, vmap)
                    if kind == "bool":
                        expr = f"(double)({expr})"
                    commits.append(f"    {self._mem(step.preg)} = {expr};")
                elif isinstance(step, _ComputeStep):
                    pend.append((step.dst, self._compute(step, vmap)))
                elif not isinstance(step, _BranchStep):
                    raise _CBail
            self.lines.extend(commits)  # stores commit after the evals
            for dst, val in pend:
                vmap[dst] = val
        if not self.lines:
            raise _CBail
        return self._emit()

    def _emit(self):
        sregs = sorted(self.used_sregs)
        pre = [f"  double *s{cid} = (double *)SP[{cid}];"
               for cid in sorted(self.used_cids)]
        pre += [f"  const double x{k} = X[{j}];"
                for j, k in enumerate(sregs)]
        src = "\n".join(
            ["#include <math.h>",
             "void kernel(void **SP, const double *X, long n) {"]
            + pre
            + ["  for (long i = 0; i < n; i++) {"]
            + self.lines
            + ["  }", "}", ""])
        nslots = max(self.cid_of.values(), default=-1) + 1
        return _load(src, nslots, tuple(sregs))


def _load(src: str, nslots: int, sregs: tuple,
          extra_flags: tuple = ()) -> _CKernel:
    key = (src, extra_flags)
    cached = _SO_CACHE.get(key)
    if cached is None:
        cc = _compiler()
        if cc is None:
            raise _CBail
        tag = f"k{len(_SO_CACHE)}"
        cfile = os.path.join(_workdir(), f"{tag}.c")
        sofile = os.path.join(_workdir(), f"{tag}.so")
        with open(cfile, "w") as f:
            f.write(src)
        proc = subprocess.run(
            [cc, *_CFLAGS, *extra_flags, "-o", sofile, cfile, "-lm"],
            capture_output=True)
        if proc.returncode != 0:
            raise _CBail
        lib = ctypes.CDLL(sofile)
        fn = lib.kernel
        fn.argtypes = [ctypes.POINTER(ctypes.c_void_p),
                       ctypes.POINTER(ctypes.c_double), ctypes.c_long]
        fn.restype = None
        cached = _SO_CACHE[key] = (lib, fn)
    lib, fn = cached
    return _CKernel(fn, lib, nslots, sregs, src)


def retune(kern, extra_flags: tuple) -> object:
    """The same kernel recompiled with extra compiler flags.

    Flags must preserve per-element IEEE semantics (``-ffp-contract=off``
    stays in force, so e.g. ``-march=native`` only widens the vector
    unit without reassociating or contracting).  Returns the original
    kernel untouched when it is not native or the recompile fails.
    """
    if not getattr(kern, "native", False) or not extra_flags:
        return kern
    try:
        return _load(kern.source, kern._nslots, kern._sregs,
                     tuple(extra_flags))
    except _CBail:
        return kern


def try_native(plan, spec, classes, n, S):
    """A compiled C kernel for the plan, or None to use the Python one."""
    if _compiler() is None:
        return None
    try:
        return _CEmitter(plan, spec, classes, n, S).build()
    except _CBail:
        return None
