"""Cycle-cost model for the simulated CM/2.

All performance claims in the reproduction reduce to the constants here.
The anchor points come from the paper and from CM/2 folklore:

* "a single vector spill-restore pair costs 18 cycles — roughly
  equivalent to three single-precision floating point vector operations"
  (section 5.2) ⇒ one vector load or store = 9 cycles, one vector
  arithmetic operation = 6 cycles;
* "PEAC's support for load chaining also allows one in-memory operand to
  be substituted for a register operand" ⇒ a chained operand adds no
  issue slot;
* dual-issued loads/stores overlap with arithmetic ("accesses to CM
  memory to be overlapped with arithmetic operations") ⇒ a paired memory
  op costs max(arith, mem) instead of their sum;
* the CM/2 sequencer runs at 7 MHz and drives 2,048 slicewise PEs.

The *fieldwise* table models the execution environment of the hand-coded
\\*Lisp baseline: the same Weitek datapath reached through the bit-serial
fieldwise transposer — higher memory and issue costs, no chaining, no
multiply-add, and interpreted per-operation dispatch from the front end.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from functools import lru_cache


@dataclass(frozen=True)
class InstructionCosts:
    """Cycles per vector instruction (one four-element trip)."""

    arith: int = 6
    move: int = 6
    cmp: int = 6
    logic: int = 6
    select: int = 6
    iarith: int = 6
    fma: int = 6
    div: int = 24
    idiv: int = 24
    sqrt: int = 30
    trans: int = 60
    load: int = 9
    store: int = 9
    loop_overhead: int = 2  # decrement + jnz per trip

    def for_kind(self, kind: str) -> int:
        table = {
            "arith": self.arith,
            "arith1": self.arith,
            "move": self.move,
            "cmp": self.cmp,
            "logic": self.logic,
            "logic1": self.logic,
            "select": self.select,
            "iarith": self.iarith,
            "iarith1": self.iarith,
            "fma": self.fma,
            "div": self.div,
            "idiv": self.idiv,
            "sqrt": self.sqrt,
            "trans": self.trans,
            "load": self.load,
            "store": self.store,
        }
        try:
            return table[kind]
        except KeyError:
            raise KeyError(f"no cost for instruction kind {kind!r}") from None


@dataclass(frozen=True)
class CostModel:
    """Full machine cost model: node, network and host constants."""

    name: str = "cm2-slicewise"
    clock_hz: float = 7.0e6
    n_pes: int = 2048

    instr: InstructionCosts = field(default_factory=InstructionCosts)
    chaining: bool = True       # in-memory operands cost no extra slot
    dual_issue: bool = True     # paired mem op overlaps with arithmetic
    fma_supported: bool = True

    # Per-PEAC-call front-end overhead: sequencer dispatch plus one IFIFO
    # push per argument (pointers, scalars, vlen).
    call_dispatch: int = 450
    ififo_push: int = 30

    # Grid (NEWS) communication: per off-node element per PE, plus wire
    # latency per hop of PE-grid distance.
    grid_per_element: int = 40
    grid_latency: int = 300
    # General router: gathers, transposes, irregular copies.
    router_per_element: int = 260
    router_latency: int = 1200
    # Hypercube combine step for reductions/broadcast.
    hop_cycles: int = 120

    # Front-end (SPARC) costs, in node-clock cycles for a common budget.
    host_op: int = 6
    host_element_op: int = 60   # per element of serial array work

    def instruction_cycles(self, instr) -> int:
        """Issue cost of one instruction (with pairing and chaining)."""
        base = self.instr.for_kind(instr.kind)
        if not self.chaining and instr.has_chained_mem:
            # Without chaining the streamed operand needs its own load.
            base += self.instr.load
        if instr.paired is not None:
            mem = self.instr.for_kind(instr.paired.kind)
            if self.dual_issue:
                base = max(base, mem)
            else:
                base += mem
        return base

    def with_(self, **kwargs) -> "CostModel":
        return replace(self, **kwargs)


#: The canonical cost-model name → factory table.  The target registry
#: (:mod:`repro.targets`) resolves CLI/service ``model`` names through
#: this — an unknown name is an error there, never a silent fallback.
MODEL_FACTORIES: dict = {}


def _model(factory):
    MODEL_FACTORIES[factory.__name__.removesuffix("_model")] = factory
    return factory


def model_names() -> list[str]:
    """The registered cost-model names, in registration order."""
    return list(MODEL_FACTORIES)


@_model
def slicewise_model(n_pes: int = 2048) -> CostModel:
    """The CM/2 slicewise PE model (CM Fortran and Fortran-90-Y target)."""
    return CostModel(name="cm2-slicewise", n_pes=n_pes)


@_model
def fieldwise_model(n_pes: int = 2048) -> CostModel:
    """The fieldwise execution model of the hand-coded \\*Lisp baseline.

    Memory traffic moves through the bit-serial transposer (slower loads
    and stores), there is no load chaining, no overlap and no chained
    multiply-add, and every elemental operation is dispatched separately
    by the interpreting front end.
    """
    return CostModel(
        name="cm2-fieldwise",
        n_pes=n_pes,
        instr=InstructionCosts(
            # Arithmetic goes through the same Weitek datapath as
            # slicewise mode (same per-op cost); memory, however, moves
            # through all 32 bit-serial processors' memories at once, so
            # fieldwise loads/stores are *cheaper* per element than the
            # slicewise word-serial path.  The structural losses are that
            # every elemental operation is its own load-op-store sweep,
            # with no chaining, no overlap and no chained multiply-add.
            arith=6,
            move=6,
            cmp=6,
            logic=6,
            select=6,
            iarith=6,
            fma=12,          # synthesized from mul + add
            div=24,
            idiv=24,
            sqrt=30,
            trans=60,
            load=4,
            store=4,
            loop_overhead=1,
        ),
        chaining=False,
        dual_issue=False,
        fma_supported=False,
        # Fieldwise elemental operations are direct microcoded sequencer
        # broadcasts, not IFIFO-marshalled PEAC subroutine calls, so the
        # per-operation dispatch is far cheaper than a compiled call.
        call_dispatch=120,
        ififo_push=8,
        grid_per_element=40,
        grid_latency=300,
    )


@_model
def cm5_model(n_nodes: int = 256) -> CostModel:
    """A first-order CM/5 model: SPARC nodes with four vector datapaths.

    The CM/5 runs at 32 MHz with fat-tree connectivity; vector units give
    each node roughly the throughput of several CM/2 PEs.  Only relative
    behaviour matters here (the retargeting experiment, section 5.3.1).
    """
    return CostModel(
        name="cm5",
        clock_hz=32.0e6,
        n_pes=n_nodes,
        instr=InstructionCosts(
            arith=8, move=8, cmp=8, logic=8, select=8, iarith=8,
            fma=8, div=26, idiv=26, sqrt=30, trans=56,
            load=10, store=10, loop_overhead=2,
        ),
        call_dispatch=700,    # message-dispatched node program start
        ififo_push=24,
        grid_per_element=30,  # fat-tree nearest-neighbour
        grid_latency=500,
        router_per_element=160,
        router_latency=1600,
        hop_cycles=150,
    )


# -- the host model: measured, not simulated --------------------------------

#: Fallback constants (nanoseconds) when calibration is disabled via
#: ``REPRO_HOST_CALIBRATE=0`` or the timer resolves to zero.  They match
#: a commodity x86 core running memory-bound float64 ufuncs.
_HOST_CANNED = {
    "arith": 1.0, "div": 4.0, "sqrt": 5.0, "trans": 20.0,
    "cmp": 1.0, "copy": 0.8, "roll": 1.5, "call": 1200.0,
}


def _best_ns(fn, reps: int = 3) -> float:
    """Minimum wall-clock nanoseconds over ``reps`` invocations."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e9


@lru_cache(maxsize=1)
def _host_calibration() -> dict:
    """Per-operation nanosecond costs of the CPU actually running us.

    Measured once per process (the cache makes every host machine in a
    process share one deterministic table, so :class:`RunStats` stay
    identical across reruns and exec engines).  ``REPRO_HOST_CALIBRATE=0``
    skips measurement and uses the canned constants — useful when a test
    needs cross-process stability.
    """
    if os.environ.get("REPRO_HOST_CALIBRATE") == "0":
        return dict(_HOST_CANNED)
    import numpy as np

    n = 1 << 16
    a = np.linspace(0.1, 1.9, n)
    b = np.linspace(1.1, 2.9, n)
    out = np.empty(n)
    small = np.ones(16)
    sout = np.empty(16)
    probes = {
        "arith": lambda: np.add(a, b, out=out),
        "div": lambda: np.divide(a, b, out=out),
        "sqrt": lambda: np.sqrt(a, out=out),
        "trans": lambda: np.sin(a, out=out),
        "cmp": lambda: np.less(a, b, out=np.empty(n, dtype=bool)),
        "copy": lambda: np.copyto(out, a),
        "roll": lambda: np.copyto(out, np.roll(a, 1)),
    }
    table = {}
    for key, fn in probes.items():
        fn()  # warm the code path before timing
        ns = _best_ns(fn) / n
        table[key] = ns if ns > 0 else _HOST_CANNED[key]
    # Per-call dispatch overhead: a ufunc on a tiny array is almost
    # entirely numpy/Python call machinery.
    np.add(small, small, out=sout)
    call = _best_ns(lambda: np.add(small, small, out=sout), reps=5)
    table["call"] = call if call > 0 else _HOST_CANNED["call"]
    return table


def _trip(ns_per_element: float) -> int:
    """ns/element → whole cycles per four-element trip at 1 GHz."""
    return max(1, round(ns_per_element * 4))


@_model
def host_model(n_pes: int = 1) -> CostModel:
    """The native-host model: one cycle is one measured nanosecond.

    Unlike the CM models there are no simulated Weitek cycles — the
    instruction table is calibrated from a micro-benchmark of the CPU
    the process is running on (:func:`_host_calibration`), the clock is
    1 GHz so reported cycles read directly as nanoseconds, and the
    default geometry is a single "PE" (the whole array is one virtual
    subgrid streamed through cache-blocked kernels).
    """
    cal = _host_calibration()
    arith = _trip(cal["arith"])
    mem = _trip(cal["copy"])
    return CostModel(
        name="host",
        clock_hz=1.0e9,
        n_pes=n_pes,
        instr=InstructionCosts(
            arith=arith, move=mem, cmp=_trip(cal["cmp"]),
            logic=_trip(cal["cmp"]), select=3 * mem,
            iarith=arith, fma=2 * arith,
            div=_trip(cal["div"]), idiv=_trip(cal["div"]),
            sqrt=_trip(cal["sqrt"]), trans=_trip(cal["trans"]),
            load=mem, store=mem, loop_overhead=1,
        ),
        chaining=True,       # a memory operand is just another ufunc arg
        dual_issue=False,    # numpy passes do not overlap
        fma_supported=True,
        call_dispatch=max(1, round(cal["call"])),
        ififo_push=max(1, round(cal["call"] / 40)),
        grid_per_element=_trip(cal["roll"]),
        grid_latency=max(1, round(cal["call"])),
        router_per_element=4 * _trip(cal["roll"]),
        router_latency=2 * max(1, round(cal["call"])),
        hop_cycles=max(1, round(cal["call"] / 4)),
        host_op=10,
        host_element_op=max(1, round(cal["arith"] * 20)),
    )
