"""Hypercube network cost models: NEWS grid, general router, combine trees.

The CM/2's PEs sit on a 12-dimensional boolean hypercube with two wires
per dimension; grid (NEWS) communication embeds a Cartesian grid in the
cube, and the general router handles arbitrary patterns at much higher
cost.  "Many special-purpose communications routines have been
efficiently implemented in microcode, however, and can be substantially
faster than the worst-case router alternative" (section 2.2) — hence
the separate grid and router tariffs.
"""

from __future__ import annotations

import math

from .costs import CostModel
from .geometry import Geometry


def cshift_cycles(model: CostModel, geom: Geometry, axis: int,
                  shift: int) -> int:
    """Cycles for a circular shift along one axis of a block-laid array.

    Only the boundary columns of each PE's subgrid cross the wire; the
    interior of the block moves locally (a subgrid copy).
    """
    if geom.total_elements == 0:
        return 0
    axis0 = axis - 1
    local_copy = math.ceil(geom.vlen / 4) * model.instr.move
    crossing_cols = geom.boundary_columns(axis0, shift)
    if crossing_cols == 0:
        return local_copy
    crossing_elems = (geom.vlen // max(1, geom.subgrid[axis0])) \
        * crossing_cols
    hops = geom.hops(axis0, shift)
    return (model.grid_latency
            + local_copy
            + crossing_elems * model.grid_per_element * hops)


def halo_exchange_cycles(model: CostModel, geom: Geometry, axis: int,
                         shift: int) -> int:
    """Boundary exchange for a halo stream (§5.3.2 neighborhood model).

    Unlike a full CSHIFT, no local block copy is made: only the boundary
    columns cross the wire; interior elements are read in place.
    """
    axis0 = axis - 1
    crossing_cols = geom.boundary_columns(axis0, shift)
    if crossing_cols == 0:
        return 0
    crossing_elems = (geom.vlen // max(1, geom.subgrid[axis0])) \
        * crossing_cols
    hops = geom.hops(axis0, shift)
    return (model.grid_latency
            + crossing_elems * model.grid_per_element * hops)


def router_cycles(model: CostModel, geom: Geometry,
                  elements_per_pe: int | None = None) -> int:
    """Cycles for a general router operation (gather, irregular copy)."""
    per_pe = geom.vlen if elements_per_pe is None else elements_per_pe
    return model.router_latency + per_pe * model.router_per_element


def transpose_cycles(model: CostModel, geom: Geometry) -> int:
    """Transpose is a (microcoded) all-to-all: router tariff."""
    return router_cycles(model, geom)


def section_copy_cycles(model: CostModel, geom: Geometry,
                        region_elements: int,
                        regular: bool) -> int:
    """Copy of a (possibly misaligned) array section.

    Regular offsets use grid communication (a shifted block copy);
    irregular ones fall back to the router.
    """
    per_pe = math.ceil(region_elements / max(1, geom.pes_used))
    if regular:
        return model.grid_latency + per_pe * model.grid_per_element
    return model.router_latency + per_pe * model.router_per_element


def reduction_cycles(model: CostModel, geom: Geometry) -> int:
    """Full reduction: local subgrid pass plus a hypercube combine tree."""
    local = math.ceil(geom.vlen / 4) * model.instr.arith
    tree = int(math.log2(max(2, geom.pes_used))) * model.hop_cycles
    return local + tree + model.grid_latency


def broadcast_cycles(model: CostModel, n_pes: int) -> int:
    """Front-end scalar broadcast to all PEs (sequencer immediate)."""
    return model.hop_cycles + int(math.log2(max(2, n_pes)))


def spread_cycles(model: CostModel, geom: Geometry) -> int:
    """SPREAD replicates along a new axis: grid-style block broadcast."""
    return model.grid_latency + geom.vlen * model.grid_per_element
