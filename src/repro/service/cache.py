"""Content-addressed, persistent compile cache.

Compiled :class:`~repro.driver.compiler.Executable` objects are keyed by
the SHA-256 of everything that determines them — the source text, every
:class:`~repro.driver.compiler.CompilerOptions` switch, an optional
machine-configuration tag, and the cache schema / package versions — and
pickled under ``~/.cache/repro`` (or ``$REPRO_CACHE_DIR``).  A key is a
pure function of its inputs, so a hit is safe to use without any
staleness check, and any change to the pipeline that should invalidate
old entries is expressed by bumping :data:`SCHEMA_VERSION`.

Entries also carry the executable's **warmed PEAC plan state**: the
per-routine binding-signature specializations recorded by
:class:`~repro.machine.plan.RoutinePlan` during execution.  Plans
themselves hold ``exec``-compiled kernels and are not picklable, so the
cache strips ``Routine._plan`` before pickling and persists only the
``specs`` tables; on load they are re-attached, so a cached executable
skips the plans' recording mode on its first run.

The store is a flat directory of ``<key>.pkl`` files.  Reads touch the
entry's mtime; writes go through a temp file + ``os.replace`` so
concurrent workers never observe a partial pickle; an LRU sweep after
each write keeps the total size under ``max_bytes`` by deleting the
oldest-read entries first.  Corrupt or version-skewed entries are
deleted and reported as misses — the cache is always allowed to forget.

The cache is two-tier: over the disk store sits a small in-process
**memo** of recently loaded executables, so a long-running server pays
the unpickle cost once per source, not once per request.  A memo entry
is only trusted while the disk file's ``stat`` signature (mtime, size)
is unchanged — eviction, corruption, or replacement by another process
all invalidate it — and a memo hit returns the *same* ``Executable``
object as the previous call (plan warmth accumulates across requests;
executables are immutable apart from their plan caches).  A fresh
``CompileCache`` instance always starts with an empty memo, so
cross-process reads exercise the pickle path.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile

#: Bump to invalidate every existing cache entry (pipeline or pickle
#: layout changes).  The package version participates in the key too,
#: so releases never read each other's artifacts.
#: 2: keys carry the resolved pass-pipeline identity; executables carry
#:    a PipelineTrace.
SCHEMA_VERSION = 3

_DEFAULT_MAX_BYTES = 512 * 1024 * 1024


def _options_payload(options) -> dict:
    """A stable, JSON-serializable rendering of CompilerOptions."""
    return {
        "target": options.target,
        "transform": dataclasses.asdict(options.transform),
        "backend": dataclasses.asdict(options.backend),
    }


def cache_key(source: str, options=None, machine: dict | None = None,
              pipeline: list | None = None) -> str:
    """Content address of a compilation: source + options + pipeline +
    versions.

    ``machine`` is an optional JSON-serializable machine-configuration
    tag for callers whose artifacts depend on more than the pipeline
    (the core pipeline is machine-independent: geometries are built at
    run time).

    ``pipeline`` is the resolved pass-pipeline identity — the ordered
    ``{name, config}`` records of the enabled passes.  It defaults to
    the registry's resolution for ``options``, so registering,
    reordering, disabling, or reconfiguring a pass invalidates stale
    artifacts without a schema bump.
    """
    from .. import __version__
    from ..driver.compiler import CompilerOptions
    from ..transform import pipeline_identity

    options = options or CompilerOptions()
    if pipeline is None:
        pipeline = pipeline_identity(options.transform)
    payload = {
        "schema": SCHEMA_VERSION,
        "repro": __version__,
        "source": source,
        "options": _options_payload(options),
        "pipeline": pipeline,
    }
    if machine:
        payload["machine"] = machine
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _extract_plan_state(exe) -> dict[str, dict]:
    """Pop every routine's plan; return {name: specs} for the warm ones."""
    state: dict[str, dict] = {}
    for name, routine in exe.routines.items():
        plan = routine.__dict__.pop("_plan", None)
        if plan is not None and plan.specs:
            state[name] = dict(plan.specs)
    return state


def _restore_plan_state(exe, state: dict[str, dict]) -> None:
    """Re-attach persisted specializations to freshly built plans.

    Spec tokens are assigned deterministically from the routine body,
    so a rebuilt plan accepts the recorded tables as-is.
    """
    from ..machine.plan import get_plan

    for name, specs in state.items():
        routine = exe.routines.get(name)
        if routine is not None:
            get_plan(routine).specs.update(specs)


class CompileCache:
    """A persistent store of compiled executables, LRU-capped by size."""

    def __init__(self, root: str | None = None,
                 max_bytes: int | None = None,
                 memo_entries: int = 16) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
                os.path.expanduser("~"), ".cache", "repro")
        if max_bytes is None:
            max_bytes = int(os.environ.get("REPRO_CACHE_MAX_BYTES",
                                           _DEFAULT_MAX_BYTES))
        self.root = root
        self.objects = os.path.join(root, "objects")
        self.max_bytes = max_bytes
        self.memo_entries = memo_entries
        self._memo: collections.OrderedDict = collections.OrderedDict()
        self.hits = 0
        self.misses = 0
        self.memo_hits = 0
        self.evictions = 0
        self.errors = 0
        os.makedirs(self.objects, exist_ok=True)
        self._check_version()

    # -- versioned invalidation ----------------------------------------

    def _version_tag(self) -> str:
        from .. import __version__

        return f"{SCHEMA_VERSION}:{__version__}"

    def _check_version(self) -> None:
        """Purge the store wholesale when the schema/version changes."""
        marker = os.path.join(self.root, "VERSION")
        tag = self._version_tag()
        try:
            with open(marker) as f:
                if f.read().strip() == tag:
                    return
        except OSError:
            pass
        self.clear()
        with open(marker, "w") as f:
            f.write(tag + "\n")

    # -- the store ------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.objects, f"{key}.pkl")

    # -- the in-process memo tier --------------------------------------

    def _memo_get(self, key: str, path: str):
        """The memoized Executable, iff the disk entry is unchanged."""
        entry = self._memo.get(key)
        if entry is None:
            return None
        exe, sig = entry
        try:
            st = os.stat(path)
        except OSError:
            self._memo.pop(key, None)
            return None  # evicted or cleared behind our back
        if (st.st_mtime_ns, st.st_size) != sig:
            self._memo.pop(key, None)
            return None  # rewritten, touched, or corrupted: reload
        self._memo.move_to_end(key)
        return exe

    def _memo_put(self, key: str, exe, path: str) -> None:
        if not self.memo_entries:
            return
        try:
            st = os.stat(path)
        except OSError:
            return
        self._memo[key] = (exe, (st.st_mtime_ns, st.st_size))
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_entries:
            self._memo.popitem(last=False)

    def get(self, key: str):
        """The cached Executable for ``key``, or None (a miss)."""
        path = self._path(key)
        exe = self._memo_get(key, path)
        if exe is not None:
            self.hits += 1
            self.memo_hits += 1
            try:
                os.utime(path)  # LRU touch
            except OSError:
                pass
            self._memo_put(key, exe, path)  # refresh sig after touch
            return exe
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
            if entry.get("tag") != self._version_tag():
                raise ValueError(f"version skew in {path}")
            exe = entry["exe"]
            _restore_plan_state(exe, entry.get("plans", {}))
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt, truncated, or version-skewed: forget it.
            self.errors += 1
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self._memo_put(key, exe, path)
        return exe

    def put(self, key: str, exe) -> None:
        """Persist an Executable (plus its warmed plan state) under ``key``.

        Plans are stripped for pickling and re-attached before
        returning, so the caller's executable keeps its compiled fast
        paths.  The write is atomic; a failed pickle leaves no entry.
        """
        plans = _extract_plan_state(exe)
        try:
            blob = pickle.dumps(
                {"tag": self._version_tag(), "exe": exe, "plans": plans},
                protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            _restore_plan_state(exe, plans)
        fd, tmp = tempfile.mkstemp(dir=self.objects, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, self._path(key))
        except OSError:
            self.errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self._memo_put(key, exe, self._path(key))
        self._evict(keep=key)

    def _evict(self, keep: str | None = None) -> None:
        """Delete least-recently-used entries until under ``max_bytes``."""
        entries = []
        total = 0
        try:
            names = os.listdir(self.objects)
        except OSError:
            return
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.objects, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path, name))
            total += st.st_size
        protected = f"{keep}.pkl" if keep else None
        for mtime, size, path, name in sorted(entries):
            if total <= self.max_bytes:
                break
            if name == protected:
                continue  # never evict the entry just written
            try:
                os.unlink(path)
                total -= size
                self.evictions += 1
            except OSError:
                pass

    def clear(self) -> None:
        """Drop every entry (used on version skew and by tests)."""
        self._memo.clear()
        try:
            names = os.listdir(self.objects)
        except OSError:
            return
        for name in names:
            try:
                os.unlink(os.path.join(self.objects, name))
            except OSError:
                pass

    # -- the compile front door ----------------------------------------

    def compile(self, source: str, options=None):
        """Compile through the cache; returns ``(executable, hit)``."""
        from ..driver.compiler import compile_source

        key = cache_key(source, options)
        exe = self.get(key)
        if exe is not None:
            return exe, True
        exe = compile_source(source, options, cache=False)
        self.put(key, exe)
        return exe, False

    def stats(self) -> dict:
        """Counters plus the store's current footprint."""
        count = 0
        total = 0
        try:
            for name in os.listdir(self.objects):
                if name.endswith(".pkl"):
                    count += 1
                    try:
                        total += os.stat(
                            os.path.join(self.objects, name)).st_size
                    except OSError:
                        pass
        except OSError:
            pass
        return {
            "root": self.root,
            "entries": count,
            "bytes": total,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "memo_hits": self.memo_hits,
            "memo_entries": len(self._memo),
            "evictions": self.evictions,
            "errors": self.errors,
        }


_DEFAULT: CompileCache | None = None


def default_cache() -> CompileCache:
    """The process-wide cache at ``$REPRO_CACHE_DIR``/``~/.cache/repro``."""
    global _DEFAULT
    root = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro")
    if _DEFAULT is None or _DEFAULT.root != root:
        _DEFAULT = CompileCache(root)
    return _DEFAULT
