"""Content-addressed, persistent compile cache — a façade over the
unified artifact store.

Compiled :class:`~repro.driver.compiler.Executable` objects are keyed by
the SHA-256 of everything that determines them — the source text, every
:class:`~repro.driver.compiler.CompilerOptions` switch (including the
*resolved* target name and the ``fuse_exec`` knob), an optional
machine-configuration tag, and the cache schema / package versions — and
stored as ``exe``-kind artifacts in the
:class:`~repro.service.store.ArtifactStore` at ``~/.cache/repro`` (or
``$REPRO_CACHE_DIR``).  A key is a pure function of its inputs, so a hit
is safe to use without any staleness check, and any change to the
pipeline that should invalidate old entries is expressed by bumping
:data:`SCHEMA_VERSION`.

The store is shared with incremental compilation's ``front``/``pass``/
``backend``/``phase`` artifacts (see :mod:`repro.service.store`): one
store, one LRU eviction policy over every kind together, one version
marker, one purge path — there is no second cache to keep coherent.

Entries also carry the executable's **warmed PEAC plan state**: the
per-routine binding-signature specializations recorded by
:class:`~repro.machine.plan.RoutinePlan` during execution.  Plans
themselves hold ``exec``-compiled kernels and are not picklable, so the
cache strips ``Routine._plan`` before pickling and persists only the
``specs`` tables; on load they are re-attached, so a cached executable
skips the plans' recording mode on its first run.

Writes are atomic (temp file + ``os.replace``), reads touch the entry's
mtime for the LRU sweep, and corrupt or version-skewed entries are
deleted and reported as misses — the cache is always allowed to forget.

The cache is two-tier: over the disk store sits a small in-process
**memo** of recently loaded executables, so a long-running server pays
the unpickle cost once per source, not once per request.  A memo entry
is only trusted while the disk file's ``stat`` signature (mtime, size)
is unchanged — eviction, corruption, or replacement by another process
all invalidate it — and a memo hit returns the *same* ``Executable``
object as the previous call (plan warmth accumulates across requests;
executables are immutable apart from their plan caches).  A fresh
``CompileCache`` instance always starts with an empty memo, so
cross-process reads exercise the pickle path.  The memo holds only
``exe`` artifacts: pipeline-stage artifacts carry mutable IR that must
unpickle fresh on every use.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import json
import os

from .store import ArtifactStore

#: Bump to invalidate every existing cache entry (pipeline or pickle
#: layout changes).  The package version participates in the key too,
#: so releases never read each other's artifacts.
#: 2: keys carry the resolved pass-pipeline identity; executables carry
#:    a PipelineTrace.
#: 3: asyncio service front door.
#: 4: the unified artifact store (keys carry the resolved target and
#:    fuse_exec; entries use the headered store layout).
SCHEMA_VERSION = 4


def _options_payload(options) -> dict:
    """A stable, JSON-serializable rendering of CompilerOptions.

    The ``target`` is *resolved* through the registry (so an alias and
    its canonical name share artifacts, and two targets never do) and
    ``fuse_exec`` is lifted out explicitly: it changes runtime fusion
    behavior even when the transform pipeline's structure is otherwise
    identical, so it must never be absorbed into a stale key.
    """
    from ..targets import get_target

    return {
        "target": get_target(options.target).name,
        "fuse_exec": bool(getattr(options.transform, "fuse_exec", True)),
        "transform": dataclasses.asdict(options.transform),
        "backend": dataclasses.asdict(options.backend),
    }


def cache_key(source: str, options=None, machine: dict | None = None,
              pipeline: list | None = None) -> str:
    """Content address of a compilation: source + options + pipeline +
    versions.

    ``machine`` is an optional JSON-serializable machine-configuration
    tag for callers whose artifacts depend on more than the pipeline
    (the core pipeline is machine-independent: geometries are built at
    run time).

    ``pipeline`` is the resolved pass-pipeline identity — the ordered
    ``{name, config}`` records of the enabled passes.  It defaults to
    the registry's resolution for ``options``, so registering,
    reordering, disabling, or reconfiguring a pass invalidates stale
    artifacts without a schema bump.
    """
    from .. import __version__
    from ..driver.compiler import CompilerOptions
    from ..transform import pipeline_identity

    options = options or CompilerOptions()
    if pipeline is None:
        pipeline = pipeline_identity(options.transform)
    payload = {
        "schema": SCHEMA_VERSION,
        "repro": __version__,
        "source": source,
        "options": _options_payload(options),
        "pipeline": pipeline,
    }
    if machine:
        payload["machine"] = machine
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _extract_plan_state(exe) -> dict[str, dict]:
    """Pop every routine's plan; return {name: specs} for the warm ones."""
    state: dict[str, dict] = {}
    for name, routine in exe.routines.items():
        plan = routine.__dict__.pop("_plan", None)
        if plan is not None and plan.specs:
            state[name] = dict(plan.specs)
    return state


def _restore_plan_state(exe, state: dict[str, dict]) -> None:
    """Re-attach persisted specializations to freshly built plans.

    Spec tokens are assigned deterministically from the routine body,
    so a rebuilt plan accepts the recorded tables as-is.
    """
    from ..machine.plan import get_plan

    for name, specs in state.items():
        routine = exe.routines.get(name)
        if routine is not None:
            get_plan(routine).specs.update(specs)


class CompileCache:
    """The whole-source compile cache: ``exe`` artifacts plus a memo."""

    def __init__(self, root: str | None = None,
                 max_bytes: int | None = None,
                 memo_entries: int = 16,
                 store: ArtifactStore | None = None) -> None:
        self.store = store if store is not None \
            else ArtifactStore(root, max_bytes)
        self.root = self.store.root
        self.objects = self.store.objects
        self.memo_entries = memo_entries
        self._memo: collections.OrderedDict = collections.OrderedDict()
        self.memo_hits = 0

    # -- counters (delegated to the store's exe-kind ledger) -----------

    @property
    def hits(self) -> int:
        return self.store.counters["exe"]["hits"] + self.memo_hits

    @property
    def misses(self) -> int:
        return self.store.counters["exe"]["misses"]

    @property
    def errors(self) -> int:
        return self.store.counters["exe"]["errors"]

    @property
    def evictions(self) -> int:
        return self.store.evictions

    @property
    def max_bytes(self) -> int:
        return self.store.max_bytes

    @max_bytes.setter
    def max_bytes(self, value: int) -> None:
        self.store.max_bytes = value

    # -- the store ------------------------------------------------------

    def _path(self, key: str) -> str:
        return self.store._path("exe", key)

    # -- the in-process memo tier --------------------------------------

    def _memo_get(self, key: str, path: str):
        """The memoized Executable, iff the disk entry is unchanged."""
        entry = self._memo.get(key)
        if entry is None:
            return None
        exe, sig = entry
        try:
            st = os.stat(path)
        except OSError:
            self._memo.pop(key, None)
            return None  # evicted or cleared behind our back
        if (st.st_mtime_ns, st.st_size) != sig:
            self._memo.pop(key, None)
            return None  # rewritten, touched, or corrupted: reload
        self._memo.move_to_end(key)
        return exe

    def _memo_put(self, key: str, exe, path: str) -> None:
        if not self.memo_entries:
            return
        try:
            st = os.stat(path)
        except OSError:
            return
        self._memo[key] = (exe, (st.st_mtime_ns, st.st_size))
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_entries:
            self._memo.popitem(last=False)

    def get(self, key: str):
        """The cached Executable for ``key``, or None (a miss)."""
        path = self._path(key)
        exe = self._memo_get(key, path)
        if exe is not None:
            self.memo_hits += 1
            try:
                os.utime(path)  # LRU touch
            except OSError:
                pass
            self._memo_put(key, exe, path)  # refresh sig after touch
            return exe
        artifact = self.store.get("exe", key)
        if artifact is None:
            return None
        try:
            exe = artifact.obj["exe"]
            _restore_plan_state(exe, artifact.obj.get("plans", {}))
        except Exception:
            # A well-formed artifact with the wrong payload shape:
            # forget it like any other corruption.
            self.store._forget("exe", key, path)
            self.store.counters["exe"]["hits"] -= 1
            return None
        self._memo_put(key, exe, path)
        return exe

    def put(self, key: str, exe) -> None:
        """Persist an Executable (plus its warmed plan state) under ``key``.

        Plans are stripped for pickling and re-attached before
        returning, so the caller's executable keeps its compiled fast
        paths.  The write is atomic; a failed pickle leaves no entry.
        """
        plans = _extract_plan_state(exe)
        try:
            stored = self.store.put("exe", key,
                                    {"exe": exe, "plans": plans})
        finally:
            _restore_plan_state(exe, plans)
        if stored:
            self._memo_put(key, exe, self._path(key))

    def clear(self) -> None:
        """Drop every entry (used on version skew and by tests)."""
        self._memo.clear()
        self.store.purge()

    # -- the compile front door ----------------------------------------

    def compile(self, source: str, options=None, incremental=None):
        """Compile through the cache; returns ``(executable, hit)``.

        On a whole-source miss, ``incremental`` (default: the
        ``$REPRO_INCREMENTAL`` switch) compiles through the store's
        pipeline-stage artifacts, so an edit that only perturbs the
        pipeline tail reuses every prefix artifact.
        """
        from ..driver.compiler import compile_source

        key = cache_key(source, options)
        exe = self.get(key)
        if exe is not None:
            return exe, True
        exe = compile_source(source, options, cache=False,
                             incremental=incremental, store=self.store)
        self.put(key, exe)
        return exe, False

    def stats(self) -> dict:
        """Counters plus the executable store's current footprint.

        ``entries``/``bytes`` cover the ``exe`` kind (this façade's
        artifacts); the full per-kind breakdown is
        ``self.store.stats()`` — the ``repro cache stats`` payload.
        """
        count = 0
        total = 0
        try:
            for name in os.listdir(self.objects):
                if name.endswith(".exe.pkl"):
                    count += 1
                    try:
                        total += os.stat(
                            os.path.join(self.objects, name)).st_size
                    except OSError:
                        pass
        except OSError:
            pass
        return {
            "root": self.root,
            "entries": count,
            "bytes": total,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "memo_hits": self.memo_hits,
            "memo_entries": len(self._memo),
            "evictions": self.evictions,
            "errors": self.errors,
        }


def cache_admin(cache: CompileCache, action: str = "stats",
                kind: str | None = None) -> dict:
    """The shared ``repro cache`` / ``{"op": "cache"}`` surface.

    ``stats`` returns the façade's executable-level counters plus the
    unified store's per-kind breakdown; ``ls`` lists entries (newest
    first, optionally one ``kind``); ``purge`` deletes entries (all, or
    one ``kind``) through the store's single purge path and invalidates
    the memo.  Counters are process-local; the entry listing and byte
    footprint are the on-disk truth shared by every worker.
    """
    store = cache.store
    if action == "stats":
        return {"cache": cache.stats(), "store": store.stats()}
    if action == "ls":
        return {"entries": store.ls(kind=kind)}
    if action == "purge":
        removed = store.purge(kind=kind)
        cache._memo.clear()
        return {"purged": removed}
    raise ValueError(f"unknown cache action {action!r} "
                     "(expected stats, ls, or purge)")


_DEFAULT: CompileCache | None = None


def default_cache() -> CompileCache:
    """The process-wide cache at ``$REPRO_CACHE_DIR``/``~/.cache/repro``."""
    global _DEFAULT
    root = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro")
    if _DEFAULT is None or _DEFAULT.root != root:
        from .store import default_store
        store = default_store()
        _DEFAULT = CompileCache(store=store) if store.root == root \
            else CompileCache(root)
    return _DEFAULT
