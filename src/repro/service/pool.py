"""Multi-process worker pool for compile/run jobs.

The pool fans requests out over ``multiprocessing`` workers.  The
parent owns all scheduling state: each worker has its *own* pair of
pipes (one for tasks, one for results) and the parent assigns one job
at a time to an idle worker, so it always knows exactly which job a
worker holds — even if that worker dies without managing to send
anything back (a shared task queue would lose that attribution, and
with it the job).  Private pipes also mean *no shared locks*: a
``multiprocessing.Queue`` guards its pipe with a cross-process
semaphore, and a worker that dies inside that critical section (its
feeder thread mid-``put`` when the process is killed) leaves the
semaphore acquired forever, wedging every other worker's sends.  With
one single-writer pipe per worker, a dying worker can corrupt only its
own channel, which the parent drains and replaces at respawn.

Scheduling runs on one persistent **dispatcher thread** with a
submission inbox, so any number of caller threads (and the asyncio
server's event loop) can :meth:`WorkerPool.submit` jobs concurrently
and all of them fan out across the workers together — the old design
serialized whole ``map()`` calls behind a lock, so two connections
could never use two workers at once.  The dispatcher:

* enforces a **per-job timeout** — the worker is terminated and
  replaced, the job answered with a ``JobTimeout`` error, everything
  else unaffected;
* **retries once on crash** — a worker that dies mid-job (OOM, hard
  fault, ``os._exit``) is respawned and the job reassigned; a second
  crash returns a ``WorkerCrash`` error instead of looping;
* prefers **cache-warm workers** — a job submitted with an affinity
  key is routed to an idle worker that recently ran the same key, so
  its in-process memo tier (not just the shared disk store) is warm;
* falls back **gracefully to threads** — with ``workers <= 1``, under
  ``REPRO_SERVICE_INPROC=1``, or when process creation fails, jobs run
  on an in-process thread executor through the exact same request path
  (timeouts are then advisory only).

``workers=0`` (or ``None``) sizes the pool from ``os.cpu_count()``,
and workers warm-start: they import the whole compiler pipeline before
accepting their first job, so a cold pool doesn't pay import latency
inside the first request's measured window.

Workers coordinate through the on-disk compile cache, not through
memory: each opens a :class:`~repro.service.cache.CompileCache` on the
same root, so a source compiled by one worker is a pickle-load for
every other — and for every later serving run.
"""

from __future__ import annotations

import collections
import concurrent.futures
import itertools
import multiprocessing
import multiprocessing.connection
import os
import socket
import threading
import time

from .cache import CompileCache, default_cache
from .jobs import execute_request
from .metrics import ServiceMetrics

#: Idle wait between dispatcher sweeps when nothing is due sooner.
#: Results, submissions, and worker deaths all wake the dispatcher
#: immediately (pipe readability / the wake socket), so this only
#: bounds how late a stale ``is_alive`` sweep can run.
_MAX_WAIT = 0.5

#: Per-worker affinity memory: how many recent job keys each worker is
#: considered "warm" for when routing new submissions.
_AFFINITY_ENTRIES = 32


def _worker_main(worker_id: int, task_r, result_w,
                 cache_root: str | None) -> None:
    """One worker process: pull jobs until the ``None`` sentinel."""
    try:
        # Warm start: pay the compiler-pipeline imports before the
        # first job is assigned (a no-op under the fork start method,
        # the whole point under spawn).
        from ..driver import compiler as _compiler  # noqa: F401
    except Exception:
        pass
    cache = CompileCache(cache_root) if cache_root else None
    while True:
        try:
            item = task_r.recv()
        except (EOFError, OSError):
            return  # parent closed the pipe (or died): shut down
        if item is None:
            return
        serial, request = item
        response = execute_request(request, cache)
        try:
            result_w.send(("done", serial, worker_id, response))
        except (EOFError, OSError):
            return


class _Job:
    __slots__ = ("serial", "request", "affinity", "future",
                 "first_submit", "start", "worker", "attempts")

    def __init__(self, serial: int, request: dict, affinity: str | None,
                 now: float) -> None:
        self.serial = serial
        self.request = request
        self.affinity = affinity
        self.future: concurrent.futures.Future = concurrent.futures.Future()
        self.first_submit = now
        self.start: float | None = None   # last assignment time
        self.worker: int | None = None
        self.attempts = 0


def _resolve(future: concurrent.futures.Future, response: dict) -> None:
    """Complete a job future; tolerate abandoned (cancelled) waiters."""
    try:
        future.set_result(response)
    except concurrent.futures.InvalidStateError:
        pass


class WorkerPool:
    """Schedules service requests over worker processes (or threads)."""

    def __init__(self, workers: int | None = None, *,
                 timeout: float | None = None,
                 retries: int = 1,
                 cache: CompileCache | str | bool | None = None,
                 metrics: ServiceMetrics | None = None) -> None:
        self.timeout = timeout
        self.retries = retries
        self.metrics = metrics or ServiceMetrics()
        if cache is True:
            self.cache: CompileCache | None = default_cache()
        elif isinstance(cache, str):
            self.cache = CompileCache(cache)
        elif isinstance(cache, CompileCache):
            self.cache = cache
        else:
            self.cache = None
        self._cache_root = self.cache.root if self.cache else None
        if workers is None or int(workers) <= 0:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        self.jobs_dispatched = 0
        self.affinity_hits = 0
        self._serial = itertools.count()
        self._inbox: collections.deque[_Job] = collections.deque()
        self._inbox_lock = threading.Lock()
        self._closing = False
        self._inline_executor: concurrent.futures.ThreadPoolExecutor | \
            None = None
        self._procs: list = []
        self.mode = "inline"
        if (self.workers > 1
                and os.environ.get("REPRO_SERVICE_INPROC") != "1"):
            self._start_pool()

    # -- lifecycle ------------------------------------------------------

    def _start_pool(self) -> None:
        try:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:
                self._ctx = multiprocessing.get_context("spawn")
            self._task_ws: list = [None] * self.workers
            self._result_rs: list = [None] * self.workers
            self._procs = [None] * self.workers
            for i in range(self.workers):
                self._procs[i] = self._spawn(i)
            self._wake_r, self._wake_w = socket.socketpair()
            self._wake_r.setblocking(False)
            self._wake_w.setblocking(False)
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, daemon=True,
                name="repro-pool-dispatcher")
            self._dispatcher.start()
            self.mode = "pool"
        except Exception:
            # No fork/spawn available (restricted sandbox): run inline.
            self._procs = []
            self.mode = "inline"

    def _spawn(self, worker_id: int):
        """Start worker ``worker_id`` on a fresh pair of private pipes."""
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_r, result_w, self._cache_root),
            daemon=True)
        proc.start()
        # Drop the parent's copies of the worker-side ends so a dead
        # worker reads as EOF instead of a silent hang.
        task_r.close()
        result_w.close()
        self._task_ws[worker_id] = task_w
        self._result_rs[worker_id] = result_r
        return proc

    def _respawn(self, worker_id: int) -> None:
        proc = self._procs[worker_id]
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=2.0)
        for conn in (self._task_ws[worker_id], self._result_rs[worker_id]):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self._procs[worker_id] = self._spawn(worker_id)

    def _drain_results(self, worker_id: int) -> list:
        """Salvage complete responses a dead worker left in its pipe."""
        conn = self._result_rs[worker_id]
        messages = []
        while True:
            try:
                if conn is None or not conn.poll(0):
                    break
                messages.append(conn.recv())
            except (EOFError, OSError):
                break  # truncated by the crash: discard the rest
        return messages

    def close(self) -> None:
        """Stop every worker; the pool cannot be used afterwards."""
        if self.mode != "pool":
            if self._inline_executor is not None:
                self._inline_executor.shutdown(wait=True)
                self._inline_executor = None
            self.mode = "closed"
            return
        with self._inbox_lock:
            self._closing = True
        self._wake()
        self._dispatcher.join(timeout=5.0)
        for task_w, proc in zip(self._task_ws, self._procs):
            if proc.is_alive():
                try:
                    task_w.send(None)
                except (EOFError, OSError):
                    pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in (*self._task_ws, *self._result_rs):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass
        self.mode = "closed"

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission -----------------------------------------------------

    def submit(self, request: dict, *,
               affinity: str | None = None) -> concurrent.futures.Future:
        """Enqueue one request; the future resolves to its response.

        Thread-safe and non-blocking: submissions from any number of
        threads interleave across the workers.  ``affinity`` is an
        opaque key — identical keys are routed to the same worker when
        one is idle, so its in-process cache-memo tier stays warm.
        """
        if self.mode == "closed":
            raise RuntimeError("pool is closed")
        if self.mode == "inline":
            return self._inline_submit(request)
        job = _Job(next(self._serial), request, affinity, time.monotonic())
        with self._inbox_lock:
            if self._closing:
                raise RuntimeError("pool is closed")
            self._inbox.append(job)
        self._wake()
        return job.future

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # wake already pending (or pool torn down)

    def _inline_submit(self, request: dict) -> concurrent.futures.Future:
        with self._inbox_lock:
            if self._inline_executor is None:
                self._inline_executor = \
                    concurrent.futures.ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-pool-inline")
            executor = self._inline_executor
        return executor.submit(self._run_inline, request)

    def execute(self, request: dict) -> dict:
        return self.map([request])[0]

    def map(self, requests: list[dict]) -> list[dict]:
        """Run every request; responses in request order.

        Thread-safe; jobs from concurrent ``map`` calls (and ``submit``
        callers) all fan out across the workers together.
        """
        if self.mode == "closed":
            raise RuntimeError("pool is closed")
        if self.mode == "inline":
            return [self._run_inline(r) for r in requests]
        futures = [self.submit(r, affinity=self._affinity_of(r))
                   for r in requests]
        return [f.result() for f in futures]

    def _affinity_of(self, request: dict) -> str | None:
        if self.cache is None:
            return None
        from .jobs import request_fingerprint

        return request_fingerprint(request)

    def _run_inline(self, request: dict) -> dict:
        t0 = time.monotonic()
        response = execute_request(request, self.cache)
        total = time.monotonic() - t0
        self.jobs_dispatched += 1
        response["pool"] = {"mode": "inline", "attempts": 1,
                            "queue_wait_seconds": 0.0,
                            "total_seconds": total}
        self.metrics.observe(response, queue_wait=0.0, total=total)
        return response

    def info(self) -> dict:
        """The pool block of the ``stats`` response."""
        return {"mode": self.mode, "workers": self.workers,
                "timeout": self.timeout,
                "jobs_dispatched": self.jobs_dispatched,
                "affinity_hits": self.affinity_hits}

    # -- the dispatcher thread -----------------------------------------

    def _dispatch_loop(self) -> None:
        pending: collections.deque[_Job] = collections.deque()
        assigned: dict[int, _Job] = {}     # worker id -> job
        idle = set(range(self.workers))
        recent: list[collections.OrderedDict] = [
            collections.OrderedDict() for _ in range(self.workers)]

        def finish(job: _Job, response: dict) -> None:
            total = time.monotonic() - job.first_submit
            wait = ((job.start - job.first_submit)
                    if job.start is not None else total)
            response["pool"] = {
                "mode": "pool", "worker": job.worker,
                "attempts": job.attempts + 1,
                "queue_wait_seconds": wait, "total_seconds": total,
            }
            self.metrics.observe(response, queue_wait=wait, total=total)
            _resolve(job.future, response)

        def deliver(msg) -> None:
            _kind, serial, worker_id, response = msg
            job = assigned.get(worker_id)
            # A stale answer (job already timed out, worker already
            # replaced) no longer matches the assignment: drop it.
            if job is not None and job.serial == serial:
                del assigned[worker_id]
                idle.add(worker_id)
                finish(job, response)

        def pick_worker(job: _Job) -> int:
            if job.affinity is not None:
                for worker_id in idle:
                    if job.affinity in recent[worker_id]:
                        self.affinity_hits += 1
                        idle.discard(worker_id)
                        return worker_id
            return idle.pop()

        while True:
            with self._inbox_lock:
                while self._inbox:
                    pending.append(self._inbox.popleft())
                closing = self._closing
            if closing:
                for job in pending:
                    job.future.set_exception(RuntimeError("pool is closed"))
                for job in assigned.values():
                    job.future.set_exception(RuntimeError("pool is closed"))
                return
            while pending and idle:
                job = pending.popleft()
                if job.future.cancelled():
                    continue  # the waiter gave up while queued
                worker_id = pick_worker(job)
                job.start = time.monotonic()
                job.worker = worker_id
                try:
                    self._task_ws[worker_id].send((job.serial, job.request))
                except (EOFError, OSError):
                    # Worker died while idle: requeue (no attempt
                    # burnt); the crash sweep respawns the worker.
                    pending.appendleft(job)
                    job.start = None
                    job.worker = None
                    continue
                assigned[worker_id] = job
                self.jobs_dispatched += 1
                if job.affinity is not None:
                    memory = recent[worker_id]
                    memory[job.affinity] = True
                    memory.move_to_end(job.affinity)
                    while len(memory) > _AFFINITY_ENTRIES:
                        memory.popitem(last=False)
            conns = [c for c in self._result_rs if c is not None]
            conns.append(self._wake_r)
            try:
                ready = multiprocessing.connection.wait(
                    conns, timeout=self._wait_timeout(assigned))
            except OSError:
                ready = []
            for conn in ready:
                if conn is self._wake_r:
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                    continue
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    continue  # dead worker: the crash sweep handles it
                deliver(msg)
            self._reap_timeouts(assigned, idle, finish)
            self._reap_crashes(pending, assigned, idle, deliver, finish)

    def _wait_timeout(self, assigned: dict[int, _Job]) -> float:
        if not self.timeout or not assigned:
            return _MAX_WAIT
        now = time.monotonic()
        deadline = min(job.start + self.timeout
                       for job in assigned.values())
        return max(0.0, min(_MAX_WAIT, deadline - now))

    def _reap_timeouts(self, assigned, idle, finish) -> None:
        if not self.timeout:
            return
        now = time.monotonic()
        for worker_id, job in list(assigned.items()):
            if now - job.start <= self.timeout:
                continue
            # The job gets a timeout answer, not a retry (it would just
            # time out again); its worker is replaced immediately so
            # the crash sweep never sees the deliberate kill.
            self._respawn(worker_id)
            del assigned[worker_id]
            idle.add(worker_id)
            finish(job, {
                "op": job.request.get("op"), "ok": False,
                "error": {"type": "JobTimeout",
                          "message": f"job exceeded {self.timeout:.1f}s "
                                     f"(attempt {job.attempts + 1})"}})

    def _reap_crashes(self, pending, assigned, idle, deliver,
                      finish) -> None:
        for worker_id, proc in enumerate(self._procs):
            if proc.is_alive():
                continue
            # A worker that finished its job and then died left the
            # response in its pipe: deliver it rather than re-running.
            for msg in self._drain_results(worker_id):
                deliver(msg)
            job = assigned.pop(worker_id, None)
            self._respawn(worker_id)
            idle.add(worker_id)
            if job is None:
                continue  # died idle: just replace it
            job.attempts += 1
            if job.attempts <= self.retries:
                self.metrics.count_retry()
                job.start = None
                job.worker = None
                pending.append(job)
            else:
                finish(job, {
                    "op": job.request.get("op"), "ok": False,
                    "error": {"type": "WorkerCrash",
                              "message": f"worker died {job.attempts} "
                                         f"times running this job (exit "
                                         f"{proc.exitcode})"}})
