"""Multi-process worker pool for compile/run jobs.

The pool fans requests out over ``multiprocessing`` workers.  The
parent owns all scheduling state: each worker has its *own* pair of
pipes (one for tasks, one for results) and the parent assigns one job
at a time to an idle worker, so it always knows exactly which job a
worker holds — even if that worker dies without managing to send
anything back (a shared task queue would lose that attribution, and
with it the job).  Private pipes also mean *no shared locks*: a
``multiprocessing.Queue`` guards its pipe with a cross-process
semaphore, and a worker that dies inside that critical section (its
feeder thread mid-``put`` when the process is killed) leaves the
semaphore acquired forever, wedging every other worker's sends.  With
one single-writer pipe per worker, a dying worker can corrupt only its
own channel, which the parent drains and replaces at respawn.  This
lets the parent:

* enforce a **per-job timeout** — the worker is terminated and replaced,
  the job answered with a ``JobTimeout`` error, the rest of the batch
  unaffected;
* **retry once on crash** — a worker that dies mid-job (OOM, hard
  fault, ``os._exit``) is respawned and the job reassigned; a second
  crash returns a ``WorkerCrash`` error instead of looping;
* fall back **gracefully to a single process** — with ``workers <= 1``,
  under ``REPRO_SERVICE_INPROC=1``, or when process creation fails,
  jobs run inline through the exact same request path (timeouts are
  then advisory only).

Workers coordinate through the on-disk compile cache, not through
memory: each opens a :class:`~repro.service.cache.CompileCache` on the
same root, so a source compiled by one worker is a pickle-load for
every other — and for every later serving run.
"""

from __future__ import annotations

import collections
import multiprocessing
import multiprocessing.connection
import os
import threading
import time

from .cache import CompileCache, default_cache
from .jobs import execute_request
from .metrics import ServiceMetrics

_POLL_SECONDS = 0.05


def _worker_main(worker_id: int, task_r, result_w,
                 cache_root: str | None) -> None:
    """One worker process: pull jobs until the ``None`` sentinel."""
    cache = CompileCache(cache_root) if cache_root else None
    while True:
        try:
            item = task_r.recv()
        except (EOFError, OSError):
            return  # parent closed the pipe (or died): shut down
        if item is None:
            return
        job_id, request = item
        response = execute_request(request, cache)
        try:
            result_w.send(("done", job_id, worker_id, response))
        except (EOFError, OSError):
            return


class _Job:
    __slots__ = ("request", "first_submit", "start", "worker", "attempts",
                 "response")

    def __init__(self, request: dict, now: float) -> None:
        self.request = request
        self.first_submit = now
        self.start: float | None = None   # last assignment time
        self.worker: int | None = None
        self.attempts = 0
        self.response: dict | None = None


class WorkerPool:
    """Schedules service requests over worker processes (or inline)."""

    def __init__(self, workers: int = 1, *, timeout: float | None = None,
                 retries: int = 1,
                 cache: CompileCache | str | bool | None = None,
                 metrics: ServiceMetrics | None = None) -> None:
        self.timeout = timeout
        self.retries = retries
        self.metrics = metrics or ServiceMetrics()
        if cache is True:
            self.cache: CompileCache | None = default_cache()
        elif isinstance(cache, str):
            self.cache = CompileCache(cache)
        elif isinstance(cache, CompileCache):
            self.cache = cache
        else:
            self.cache = None
        self._cache_root = self.cache.root if self.cache else None
        self._lock = threading.Lock()
        self.workers = max(1, int(workers))
        self._procs: list = []
        self.mode = "inline"
        if (self.workers > 1
                and os.environ.get("REPRO_SERVICE_INPROC") != "1"):
            self._start_pool()

    # -- lifecycle ------------------------------------------------------

    def _start_pool(self) -> None:
        try:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:
                self._ctx = multiprocessing.get_context("spawn")
            self._task_ws: list = [None] * self.workers
            self._result_rs: list = [None] * self.workers
            self._procs = [None] * self.workers
            for i in range(self.workers):
                self._procs[i] = self._spawn(i)
            self.mode = "pool"
        except Exception:
            # No fork/spawn available (restricted sandbox): run inline.
            self._procs = []
            self.mode = "inline"

    def _spawn(self, worker_id: int):
        """Start worker ``worker_id`` on a fresh pair of private pipes."""
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_r, result_w, self._cache_root),
            daemon=True)
        proc.start()
        # Drop the parent's copies of the worker-side ends so a dead
        # worker reads as EOF instead of a silent hang.
        task_r.close()
        result_w.close()
        self._task_ws[worker_id] = task_w
        self._result_rs[worker_id] = result_r
        return proc

    def _respawn(self, worker_id: int) -> None:
        proc = self._procs[worker_id]
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=2.0)
        for conn in (self._task_ws[worker_id], self._result_rs[worker_id]):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self._procs[worker_id] = self._spawn(worker_id)

    def _drain(self, worker_id: int) -> list:
        """Salvage complete responses a dead worker left in its pipe."""
        conn = self._result_rs[worker_id]
        messages = []
        while True:
            try:
                if conn is None or not conn.poll(0):
                    break
                messages.append(conn.recv())
            except (EOFError, OSError):
                break  # truncated by the crash: discard the rest
        return messages

    def close(self) -> None:
        """Stop every worker; the pool cannot be used afterwards."""
        if self.mode != "pool":
            self.mode = "closed"
            return
        for task_w, proc in zip(self._task_ws, self._procs):
            if proc.is_alive():
                try:
                    task_w.send(None)
                except (EOFError, OSError):
                    pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in (*self._task_ws, *self._result_rs):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self.mode = "closed"

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ------------------------------------------------------

    def execute(self, request: dict) -> dict:
        return self.map([request])[0]

    def map(self, requests: list[dict]) -> list[dict]:
        """Run every request; responses in request order.

        Thread-safe (the server calls this from handler threads); calls
        serialize at the pool, jobs within a call run concurrently.
        """
        with self._lock:
            if self.mode == "closed":
                raise RuntimeError("pool is closed")
            if self.mode == "inline":
                return [self._run_inline(r) for r in requests]
            return self._run_pool(requests)

    def _run_inline(self, request: dict) -> dict:
        t0 = time.monotonic()
        response = execute_request(request, self.cache)
        total = time.monotonic() - t0
        response["pool"] = {"mode": "inline", "attempts": 1,
                            "queue_wait_seconds": 0.0,
                            "total_seconds": total}
        self.metrics.observe(response, queue_wait=0.0, total=total)
        return response

    # -- the multi-process scheduler -----------------------------------

    def _run_pool(self, requests: list[dict]) -> list[dict]:
        now = time.monotonic()
        jobs = {i: _Job(r, now) for i, r in enumerate(requests)}
        unfinished = set(jobs)
        pending = collections.deque(range(len(requests)))
        assigned: dict[int, int] = {}          # worker id -> job id
        idle = set(range(self.workers))

        def finish(job_id: int, response: dict) -> None:
            job = jobs[job_id]
            job.response = response
            unfinished.discard(job_id)
            total = time.monotonic() - job.first_submit
            wait = ((job.start - job.first_submit)
                    if job.start is not None else total)
            response["pool"] = {
                "mode": "pool", "worker": job.worker,
                "attempts": job.attempts + 1,
                "queue_wait_seconds": wait, "total_seconds": total,
            }
            self.metrics.observe(response, queue_wait=wait, total=total)

        def deliver(msg) -> None:
            _kind, job_id, worker_id, response = msg
            # A stale answer (job already timed out, worker already
            # replaced) no longer matches the assignment: drop it.
            if assigned.get(worker_id) == job_id:
                del assigned[worker_id]
                idle.add(worker_id)
                if job_id in unfinished:
                    finish(job_id, response)

        while unfinished:
            while pending and idle:
                worker_id = idle.pop()
                job_id = pending.popleft()
                job = jobs[job_id]
                job.start = time.monotonic()
                job.worker = worker_id
                try:
                    self._task_ws[worker_id].send((job_id, job.request))
                except (EOFError, OSError):
                    # Worker died while idle: requeue (no attempt burnt),
                    # leave it out of the idle set for the crash sweep.
                    pending.appendleft(job_id)
                    job.start = None
                    job.worker = None
                    continue
                assigned[worker_id] = job_id
            try:
                ready = multiprocessing.connection.wait(
                    [c for c in self._result_rs if c is not None],
                    timeout=_POLL_SECONDS)
            except OSError:
                ready = []
            for conn in ready:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    continue  # dead worker: the crash sweep handles it
                deliver(msg)
            self._reap_timeouts(jobs, assigned, idle, finish)
            self._reap_crashes(jobs, pending, assigned, idle, deliver,
                               finish)
        return [jobs[i].response for i in range(len(requests))]

    def _reap_timeouts(self, jobs, assigned, idle, finish) -> None:
        if not self.timeout:
            return
        now = time.monotonic()
        for worker_id, job_id in list(assigned.items()):
            job = jobs[job_id]
            if now - job.start <= self.timeout:
                continue
            # The job gets a timeout answer, not a retry (it would just
            # time out again); its worker is replaced immediately so
            # the crash sweep never sees the deliberate kill.
            self._respawn(worker_id)
            del assigned[worker_id]
            idle.add(worker_id)
            finish(job_id, {
                "op": job.request.get("op"), "ok": False,
                "error": {"type": "JobTimeout",
                          "message": f"job exceeded {self.timeout:.1f}s "
                                     f"(attempt {job.attempts + 1})"}})

    def _reap_crashes(self, jobs, pending, assigned, idle, deliver,
                      finish) -> None:
        for worker_id, proc in enumerate(self._procs):
            if proc.is_alive():
                continue
            # A worker that finished its job and then died left the
            # response in its pipe: deliver it rather than re-running.
            for msg in self._drain(worker_id):
                deliver(msg)
            job_id = assigned.pop(worker_id, None)
            self._respawn(worker_id)
            idle.add(worker_id)
            if job_id is None:
                continue  # died idle: just replace it
            job = jobs[job_id]
            job.attempts += 1
            if job.attempts <= self.retries:
                self.metrics.count_retry()
                job.start = None
                job.worker = None
                pending.append(job_id)
            else:
                finish(job_id, {
                    "op": job.request.get("op"), "ok": False,
                    "error": {"type": "WorkerCrash",
                              "message": f"worker died "
                                         f"{job.attempts + 1} times "
                                         f"running this job (exit "
                                         f"{proc.exitcode})"}})
