"""The service request vocabulary, shared by every entry point.

A request is one JSON-serializable dict; :func:`execute_request` turns
it into one JSON-serializable response.  The same function runs inside
pool worker processes, in the single-process fallback, and under the
JSON-lines server, so a job file, a socket client, and the CLI all
speak the same protocol.

Request shapes (``id`` is optional and echoed back verbatim; the
async server additionally honors an optional ``tenant`` field for fair
scheduling and an optional ``coalesce_key`` for explicit singleflight
grouping — see :mod:`repro.service.server`)::

    {"op": "ping"}
    {"op": "compile", "source": "...", "options": {...}, "verify": true}
    {"op": "run", "source": "...", "options": {...},
     "pes": 2048, "model": "slicewise", "exec": "fast"}
    {"op": "compare", "source": "...", "options": {...},
     "pes": 2048, "model": "slicewise", "exec": "fast"}
    {"op": "compare", "source": "...", "targets": ["cm2", "host"]}
    {"op": "lint", "source": "...", "strict": false}
    {"op": "analyze", "source": "...", "strict": false,
     "target": "cm2", "model": null, "pes": null}
    {"op": "cache", "action": "stats" | "ls" | "purge", "kind": null}

A ``compare`` with a ``"targets"`` key (a list of registered target
names, or ``"all"``) runs the cross-target comparison instead of the
§6 baselines: per-target wallclock plus max-abs-diff against the
first target's arrays.

``options`` mirrors the CLI pipeline flags: ``{"naive": bool,
"neighborhood": bool, "target": "cm2"|"cm5", "verify": bool}``.
Targets and cost models resolve through :mod:`repro.targets`: an
unknown ``target`` or ``model`` (or a model the target cannot run
under) is a structured error response, and an omitted ``model``
defaults to the target's own cost model.  ``compile`` and ``run``
responses carry the transform pipeline's per-pass trace under
``"pipeline"``.
``"verify": true`` (request- or options-level) runs the verifier suite
during compilation; a failure comes back as a structured error naming
the offending pass plus a ``diagnostics`` list, not a bare message.
``run`` responses carry
the same payload as ``repro run --stats-json`` plus the program output;
every response reports ``cache`` (``"hit"``/``"miss"``/``None``) and
compile/run wall-clock seconds so the pool can aggregate metrics.

``compile``/``run`` requests additionally honor ``"incremental":
true`` — a whole-source cache miss then compiles through the unified
artifact store (front/pass/backend/phase artifacts; see
:mod:`repro.service.store`), and the response's ``pipeline`` block
carries per-stage ``artifacts`` hit/miss records.  ``cache`` is the
store-administration op (counters are process-local; the entry listing
is on-disk truth), and ``_compile_phase`` is the internal op the
parallel phase fan-out submits to pool workers.
"""

from __future__ import annotations

import dataclasses
import os
import time

from .cache import CompileCache, cache_key


def build_options(spec: dict | None):
    """CompilerOptions from a request's ``options`` dict.

    The ``target`` name resolves through the target registry — an
    unknown target raises
    :class:`~repro.targets.UnknownTargetError`, which
    :func:`execute_request` turns into a structured error response.
    """
    from ..driver.compiler import CompilerOptions
    from ..targets import get_target

    spec = spec or {}
    if spec.get("naive"):
        base = CompilerOptions.naive()
    elif spec.get("neighborhood"):
        base = CompilerOptions.neighborhood()
    else:
        base = CompilerOptions()
    target = get_target(spec.get("target", "cm2")).name
    if target != base.target:
        base = dataclasses.replace(base, target=target)
    if spec.get("verify"):
        base = dataclasses.replace(base, verify=True)
    return base


def build_machine(request: dict, target: str = "cm2"):
    """A fresh simulated machine from a request's execution fields.

    Resolution goes through the target registry: an omitted ``model``
    defaults to the target's own cost model, and an unknown or
    target-incompatible model is an error response, never a silent
    slicewise fallback.
    """
    from ..targets import build_machine as registry_build_machine

    pes = request.get("pes")
    return registry_build_machine(
        target,
        model=request.get("model"),
        pes=int(pes) if pes is not None else None,
        exec_mode=request.get("exec"))


def _source_of(request: dict) -> str:
    if "source" in request:
        return request["source"]
    if "file" in request:
        with open(request["file"]) as f:
            return f.read()
    raise ValueError("request needs 'source' or 'file'")


def _compile(request: dict, cache: CompileCache | None):
    """Compile a request's source; returns (exe, key, cache_state, secs)."""
    from ..driver.compiler import compile_source

    source = _source_of(request)
    options = build_options(request.get("options"))
    if request.get("verify") and not options.verify:
        options = dataclasses.replace(options, verify=True)
    incremental = bool(request.get("incremental"))
    t0 = time.perf_counter()
    if cache is not None:
        key = cache_key(source, options)
        exe, hit = cache.compile(source, options,
                                 incremental=incremental or None)
        state = "hit" if hit else "miss"
    else:
        key = None
        exe = compile_source(source, options, cache=False,
                             incremental=incremental or None)
        state = None
    return exe, key, state, time.perf_counter() - t0


def request_fingerprint(request: dict) -> str | None:
    """The singleflight/affinity key of a request, or None.

    Identical fingerprints promise identical responses, so concurrent
    requests with the same key can share one unit of work and repeated
    keys can be routed to the same cache-warm worker.  An explicit
    ``coalesce_key`` wins (the caller asserts equivalence — the load
    generator and tests use this); otherwise ``compile``/``run``
    requests with inline ``source`` are keyed by the compile cache's
    content address (plus the machine-shaping fields for ``run``).
    Anything else — file-based requests (the file could change between
    reads), ``lint``/``compare``/admin ops — is never coalesced.
    """
    explicit = request.get("coalesce_key")
    if explicit is not None:
        return f"explicit:{explicit}"
    op = request.get("op")
    if op not in ("compile", "run") or "source" not in request:
        return None
    try:
        options = build_options(request.get("options"))
        if request.get("verify") and not options.verify:
            options = dataclasses.replace(options, verify=True)
        key = cache_key(request["source"], options)
    except Exception:
        return None  # malformed request: let execution report the error
    # `verify` and `incremental` are deliberately outside cache_key (a
    # verified, unverified, incremental, or cold compile all produce
    # the same artifact) but their *responses* differ (diagnostics /
    # artifact accounting), so they must split the fingerprint.
    inc = ":inc" if request.get("incremental") else ""
    if op == "compile":
        return f"compile:{key}:v{int(options.verify)}{inc}"
    return (f"run:{key}:v{int(options.verify)}{inc}:{request.get('pes')}"
            f":{request.get('model')}:{request.get('exec')}")


def speedup_str(cycles: int, base: int) -> str:
    """Cycle-ratio rendering, guarded against zero-work base programs."""
    if base == 0:
        return "n/a (zero-cycle base)"
    return f"{cycles / base:.2f}x"


def run_target_compare(source: str, targets=None, pes: int | None = None,
                       exec_mode: str | None = None, options=None) -> dict:
    """Cross-target comparison: one program through every backend.

    ``targets`` is a list of registered target names (default: all of
    them, in registry order).  Each target compiles the source through
    its own backend and runs on its own machine; the first target is
    the reference and every later row reports the max absolute
    difference of its arrays against it — 0.0 is the retargeting claim
    made measurable.  Unknown targets raise
    :class:`~repro.targets.UnknownTargetError` (a structured error
    through the service).
    """
    import numpy as np

    from ..driver.compiler import CompilerOptions, compile_source
    from ..targets import (
        build_machine as registry_build_machine,
        get_target,
        target_names,
    )

    names = [get_target(t).name for t in targets] if targets \
        else target_names()
    base = options or CompilerOptions()
    rows = []
    ref_arrays = None
    for name in names:
        opts = base if base.target == name \
            else dataclasses.replace(base, target=name)
        exe = compile_source(source, opts, cache=False)
        machine = registry_build_machine(name, pes=pes,
                                         exec_mode=exec_mode)
        t0 = time.perf_counter()
        result = exe.run(machine)
        wall = time.perf_counter() - t0
        if ref_arrays is None:
            ref_arrays = result.arrays
            diff = 0.0
        else:
            diff = max((float(np.max(np.abs(
                np.asarray(result.arrays[k], dtype=np.float64)
                - np.asarray(ref_arrays[k], dtype=np.float64))))
                for k in ref_arrays if ref_arrays[k].size), default=0.0)
        rows.append({
            "target": name,
            "model": machine.model.name,
            "wall_seconds": wall,
            "gflops": result.gflops(),
            "total_cycles": result.stats.total_cycles,
            "max_abs_diff": diff,
        })
    return {"reference": names[0], "rows": rows}


def run_compare(source: str, pes: int = 2048,
                exec_mode: str | None = None, options=None) -> dict:
    """The §6 three-compiler comparison as a structured payload."""
    from ..baselines import compile_cmfortran, compile_starlisp
    from ..driver.compiler import CompilerOptions, compile_source
    from ..machine import Machine, fieldwise_model, slicewise_model

    rows = []
    for label, exe, model in (
            ("*Lisp (fieldwise)", compile_starlisp(source),
             fieldwise_model(pes)),
            ("CM Fortran v1.1", compile_cmfortran(source),
             slicewise_model(pes)),
            ("Fortran-90-Y",
             compile_source(source, options or CompilerOptions(),
                            cache=False),
             slicewise_model(pes))):
        result = exe.run(Machine(model, exec_mode=exec_mode))
        rows.append({
            "label": label,
            "gflops": result.gflops(),
            "total_cycles": result.stats.total_cycles,
            "node_calls": result.stats.node_calls,
        })
    base = rows[-1]["total_cycles"]
    speedups = [{"over": row["label"],
                 "speedup": speedup_str(row["total_cycles"], base)}
                for row in rows[:-1]]
    return {"rows": rows, "speedups": speedups}


def execute_request(request: dict,
                    cache: CompileCache | None = None) -> dict:
    """Execute one request dict, never raising: errors become responses."""
    base = {"op": request.get("op"), "ok": True}
    if "id" in request:
        base["id"] = request["id"]
    try:
        base.update(_dispatch(request, cache))
    except Exception as exc:
        base["ok"] = False
        base["error"] = {"type": type(exc).__name__, "message": str(exc)}
        from ..analysis.diagnostics import VerifyError

        if isinstance(exc, VerifyError):
            # Verifier failures are structured: name the offending pass
            # and surface each violation rather than a bare message.
            base["error"]["stage"] = exc.stage
            base["diagnostics"] = [d.to_dict() for d in exc.diagnostics]
        if os.environ.get("REPRO_DEBUG") == "1":
            import traceback

            base["error"]["traceback"] = traceback.format_exc()
    return base


def _dispatch(request: dict, cache: CompileCache | None) -> dict:
    op = request.get("op")
    if op == "ping":
        return {"pid": os.getpid()}
    if op == "compile":
        exe, _key, state, secs = _compile(request, cache)
        return {
            "cache": state,
            "timings": {"compile_seconds": secs},
            "pipeline": exe.transformed.trace.to_dict(),
            "partition": {
                "compute_blocks": exe.partition.compute_blocks,
                "comm_phases": exe.partition.comm_phases,
                "reductions": exe.partition.reductions,
                "serial_moves": exe.partition.serial_moves,
            },
            "routines": sorted(exe.routines),
        }
    if op == "run":
        exe, key, state, compile_s = _compile(request, cache)
        machine = build_machine(request, target=exe.options.target)
        t0 = time.perf_counter()
        result = exe.run(machine)
        run_s = time.perf_counter() - t0
        if cache is not None and state == "miss":
            # Re-persist so the entry carries the now-warm plan
            # specializations: the next load skips recording mode.
            cache.put(key, exe)
        return {
            "cache": state,
            "timings": {"compile_seconds": compile_s,
                        "run_seconds": run_s},
            "pipeline": exe.transformed.trace.to_dict(),
            "target": exe.options.target,
            "model": machine.model.name,
            "exec_mode": machine.exec_mode,
            "compile_seconds": compile_s,
            "run_seconds": run_s,
            "gflops": result.gflops(),
            "stats": result.stats.to_dict(),
            "fusion": machine.fusion_summary(),
            "output": list(result.output),
        }
    if op == "compare":
        source = _source_of(request)
        t0 = time.perf_counter()
        if "targets" in request:
            # Cross-target mode: {"targets": [...]} or "all".
            spec = request["targets"]
            targets = None if spec in ("all", None) else list(spec)
            pes = request.get("pes")
            payload = run_target_compare(
                source, targets=targets,
                pes=int(pes) if pes is not None else None,
                exec_mode=request.get("exec"),
                options=build_options(request.get("options")))
        else:
            payload = run_compare(
                source, pes=int(request.get("pes", 2048)),
                exec_mode=request.get("exec"),
                options=build_options(request.get("options")))
        payload["timings"] = {"run_seconds": time.perf_counter() - t0}
        return payload
    if op == "lint":
        from ..analysis.lint import lint_source

        result = lint_source(_source_of(request), request.get("file"))
        payload = result.to_dict()
        payload["exit_code"] = result.exit_code(
            strict=bool(request.get("strict")))
        return payload
    if op == "analyze":
        from ..analysis.analyze import analyze_source

        result = analyze_source(
            _source_of(request), request.get("file"),
            target=request.get("target", "cm2"),
            model=request.get("model"),
            pes=request.get("pes"))
        payload = result.to_dict()
        payload["exit_code"] = result.exit_code(
            strict=bool(request.get("strict")))
        return payload
    if op == "cache":
        from .cache import cache_admin

        if cache is None:
            raise ValueError("no compile cache configured")
        return cache_admin(cache, request.get("action", "stats"),
                           kind=request.get("kind"))
    if op == "_compile_phase":
        # Internal: warm one phase artifact for the parallel fan-out
        # (see repro.driver.compiler._warm_phases).  The payload rides
        # the worker pipe as live objects; the result lands in the
        # shared store, not the response.
        from ..backend.cm2.pe_compiler import TooManyStreams, compile_block
        from .store import ArtifactStore

        payload = request["payload"]
        root = request.get("store_root")
        store = cache.store if cache is not None \
            and (root is None or cache.root == root) \
            else ArtifactStore(root)
        try:
            block = compile_block(payload["move"], payload["env"],
                                  payload["domains"], payload["options"],
                                  name=payload["name"])
        except TooManyStreams:
            return {"warmed": False}
        stored = store.put("phase", request["key"], block)
        return {"warmed": bool(stored)}
    if op == "_sleep":  # test/ops hook: a slow (optionally failing) job
        time.sleep(float(request.get("seconds", 1.0)))
        if request.get("fail"):
            raise RuntimeError("_sleep failed as requested")
        return {"slept": float(request.get("seconds", 1.0))}
    if op == "_crash":  # test/ops hook: a worker that dies mid-job
        marker = request.get("once")
        if marker and os.path.exists(marker):
            return {"survived": True}
        if marker:
            with open(marker, "w") as f:
                f.write("crashed\n")
        os._exit(13)
    raise ValueError(f"unknown op {op!r}")
