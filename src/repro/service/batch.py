"""Job-file batch runner: ``repro batch jobs.jsonl``.

A job file is JSON lines — the same request dicts the server accepts,
one per line, blank lines and ``#`` comments ignored::

    {"op": "run", "file": "examples/swe.f90", "pes": 2048}
    {"op": "compile", "source": "program p\\n...\\nend program p"}

The whole file is fanned through a :class:`~repro.service.pool.WorkerPool`
(so N workers pipeline compiles and runs), results are written as JSON
lines in job order, and the metrics summary lands on stderr.
"""

from __future__ import annotations

import json
import sys

from .pool import WorkerPool


def read_jobs(path: str) -> list[dict]:
    """Parse a JSON-lines job file (``-`` reads stdin)."""
    stream = sys.stdin if path == "-" else open(path)
    jobs = []
    try:
        for lineno, raw in enumerate(stream, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                request = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON: {exc}") \
                    from exc
            if not isinstance(request, dict):
                raise ValueError(f"{path}:{lineno}: request must be a "
                                 f"JSON object")
            jobs.append(request)
    finally:
        if stream is not sys.stdin:
            stream.close()
    return jobs


def run_batch(jobs: list[dict], pool: WorkerPool,
              out=None) -> list[dict]:
    """Run every job through the pool; write JSON-lines responses."""
    results = pool.map(jobs)
    stream = sys.stdout if out is None else out
    for response in results:
        stream.write(json.dumps(response, sort_keys=True) + "\n")
    stream.flush()
    return results


def batch_main(path: str, pool: WorkerPool, out_path: str | None = None,
               err=None) -> int:
    """The ``repro batch`` entry: run a job file, print the summary."""
    err = sys.stderr if err is None else err
    jobs = read_jobs(path)
    if not jobs:
        print("repro batch: no jobs in file", file=err)
        return 2
    mode = pool.mode
    if out_path:
        with open(out_path, "w") as f:
            results = run_batch(jobs, pool, out=f)
    else:
        results = run_batch(jobs, pool)
    pool.close()
    failed = sum(1 for r in results if not r.get("ok"))
    print(f"repro batch: {len(jobs)} job(s), {failed} failed "
          f"({mode} mode, {pool.workers} worker(s))", file=err)
    print(pool.metrics.summary(), file=err)
    return 0 if failed == 0 else 1
