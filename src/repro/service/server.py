"""Asynchronous JSON-lines front door: ``repro serve``.

The wire protocol is unchanged from the original threaded server — one
JSON object per line, one response line per request, trivially
scriptable (``nc``, a four-line Python client, a CI smoke job) and
identical to the batch-runner job file format — but the loop is now
**asyncio**, built to keep a multi-process worker pool saturated under
thousands of concurrent connections:

* **non-blocking accept loop** — one reader/writer task per
  connection; a slow client costs one coroutine, not one thread;
* **bounded admission with backpressure** — past ``high_water`` queued
  requests, new work is answered immediately with a structured
  ``Overloaded`` error carrying ``retry_after_seconds`` (estimated
  from the observed mean latency) instead of buffering without bound;
* **per-tenant fair scheduling** — requests carry an optional
  ``"tenant"`` field; a weighted round-robin queue feeds the pool, so
  one hot client cannot starve everyone else (weights via the
  ``tenant_weights`` option, default 1 per tenant);
* **singleflight coalescing** — concurrent requests with the same
  fingerprint (the compile cache's content address; see
  :func:`~repro.service.jobs.request_fingerprint`) share one in-flight
  pool job: one leader pays, every waiter receives a copy of the same
  response marked ``"coalesced": true``.  The in-flight entry is
  dropped on completion, so a *failed* leader is never cached — every
  waiter sees the error, and the next same-key request retries;
* **hardened protocol** — request lines past ``max_line_bytes`` get a
  structured ``RequestTooLarge`` error (the overlong bytes are skimmed
  through the terminating newline, so later pipelined requests on the
  same connection survive), malformed JSON gets ``BadRequest``, and a
  connection silent for ``idle_timeout`` seconds is answered with
  ``IdleTimeout`` and closed;
* **graceful drain** — shutdown (the ``{"op": "shutdown"}`` request,
  or :meth:`ReproServer.stop`) stops accepting, refuses new work with
  ``ShuttingDown``, waits for queued and in-flight jobs to answer
  their clients (bounded by ``drain_timeout``), then exits.

Besides the job ops (:mod:`repro.service.jobs`), the server answers:

* ``{"op": "stats"}`` (alias ``"metrics"``) — metrics snapshot
  (coalescing, per-tenant counts, admission queue peak, per-pass wall
  time) + cache stats + pool + live server state;
* ``{"op": "cache", "action": "stats"|"ls"|"purge"}`` — administer
  the unified artifact store the workers share (purge replaces the
  old ad-hoc version-marker wipe as the operational path);
* ``{"op": "batch", "requests": [...]}`` — fan a list through
  admission/coalescing/pool in one round trip (responses in order,
  under ``"results"``; an envelope-level ``tenant`` applies to every
  sub-request that doesn't name its own);
* ``{"op": "shutdown"}`` — acknowledge, drain, then stop the server.

Jobs reach the multi-process pool through awaitable
:meth:`~repro.service.pool.WorkerPool.submit` handles, so the pool's
crash-isolation, per-job timeout, and retry semantics apply unchanged
under the async front door.
"""

from __future__ import annotations

import asyncio
import collections
import json
import socket
import sys
import threading
import time

from .jobs import request_fingerprint
from .metrics import ServiceMetrics
from .pool import WorkerPool

_MAX_LINE_BYTES = 8 * 1024 * 1024
_IDLE_TIMEOUT = 300.0
_HIGH_WATER = 512
_DRAIN_TIMEOUT = 30.0
_READ_CHUNK = 1 << 16


class _Singleflight:
    """Coalesce concurrent equal-key work onto one in-flight task."""

    def __init__(self) -> None:
        self.inflight: dict[str, asyncio.Task] = {}

    async def run(self, key: str | None, supplier):
        """``(response, coalesced)`` — coalesced marks a waiter share.

        ``supplier()`` returns an awaitable producing the response.
        The in-flight entry lives exactly as long as the task runs:
        a completed task (success *or* failure) is never joined, so
        failures are retried by the next request, not replayed.
        """
        if key is None:
            return await supplier(), False
        task = self.inflight.get(key)
        if task is not None and not task.done():
            # Shield: a waiter whose client disconnects must not
            # cancel the shared work out from under the other waiters.
            return await asyncio.shield(task), True
        task = asyncio.ensure_future(supplier())
        self.inflight[key] = task
        task.add_done_callback(
            lambda t: self.inflight.pop(key, None)
            if self.inflight.get(key) is t else None)
        return await asyncio.shield(task), False


class _TenantScheduler:
    """Weighted round-robin admission queue feeding the worker pool.

    Each tenant owns a FIFO; the dispatcher serves up to ``weight``
    requests per tenant per rotation and keeps at most ``max_inflight``
    jobs in the pool at once — the rest wait *here*, where fairness
    applies, instead of in the pool's own first-come queue where a hot
    tenant's backlog would bury everyone else.
    """

    def __init__(self, pool: WorkerPool, metrics: ServiceMetrics,
                 weights: dict[str, int] | None = None,
                 max_inflight: int | None = None) -> None:
        self.pool = pool
        self.metrics = metrics
        self.weights = dict(weights or {})
        self.max_inflight = max_inflight or max(2, pool.workers * 2)
        self._queues: dict[str, collections.deque] = {}
        self._ring: collections.deque[str] = collections.deque()
        self._served: dict[str, int] = {}
        self._inflight = 0
        self._work = asyncio.Event()
        self._slots = asyncio.Semaphore(self.max_inflight)
        self._idle = asyncio.Event()
        self._idle.set()

    @property
    def depth(self) -> int:
        """Requests queued (excludes jobs already in the pool)."""
        return sum(len(q) for q in self._queues.values())

    @property
    def inflight(self) -> int:
        return self._inflight

    def submit(self, tenant: str, request: dict,
               affinity: str | None = None) -> asyncio.Future:
        """Enqueue under ``tenant``; resolves to the response dict."""
        future = asyncio.get_running_loop().create_future()
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = collections.deque()
            self._ring.append(tenant)
        queue.append((request, affinity, future))
        self.metrics.note_queue_depth(self.depth)
        self._idle.clear()
        self._work.set()
        return future

    def _weight(self, tenant: str) -> int:
        try:
            return max(1, int(self.weights.get(tenant, 1)))
        except (TypeError, ValueError):
            return 1

    def _pop_next(self):
        while self._ring:
            tenant = self._ring[0]
            queue = self._queues[tenant]
            if not queue:
                # Tenant drained: drop it from the rotation entirely
                # (a returning tenant re-registers with fresh credit).
                self._ring.popleft()
                del self._queues[tenant]
                self._served.pop(tenant, None)
                continue
            served = self._served.get(tenant, 0)
            if served >= self._weight(tenant):
                self._served[tenant] = 0
                self._ring.rotate(-1)
                continue
            self._served[tenant] = served + 1
            request, affinity, future = queue.popleft()
            return tenant, request, affinity, future
        return None

    async def dispatch_forever(self) -> None:
        while True:
            item = self._pop_next()
            if item is None:
                self._work.clear()
                if self._inflight == 0:
                    self._idle.set()
                await self._work.wait()
                continue
            _tenant, request, affinity, future = item
            if future.cancelled():
                continue  # the client gave up while queued
            await self._slots.acquire()
            self._inflight += 1
            asyncio.ensure_future(self._run_one(request, affinity, future))

    async def _run_one(self, request: dict, affinity: str | None,
                       future: asyncio.Future) -> None:
        try:
            response = await asyncio.wrap_future(
                self.pool.submit(request, affinity=affinity))
        except asyncio.CancelledError:
            response = None  # abandoned waiter cancelled the job
        except Exception as exc:
            response = {"op": request.get("op"), "ok": False,
                        "error": {"type": type(exc).__name__,
                                  "message": str(exc)}}
        finally:
            self._inflight -= 1
            self._slots.release()
            if self._inflight == 0 and self.depth == 0:
                self._idle.set()
        if response is not None and not future.done():
            future.set_result(response)

    async def drain(self, timeout: float) -> bool:
        """Wait for queue + in-flight to empty; False if timed out."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False


class ReproServer:
    """An asyncio JSON-lines compile-and-run service on one socket.

    The public surface matches the old threaded server — construct,
    ``start()`` (background thread) or ``serve_forever()`` (current
    thread), ``address``, ``stop()`` — so embedders and tests are
    unaffected by the asyncio rebuild.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 pool: WorkerPool | None = None, *,
                 max_line_bytes: int = _MAX_LINE_BYTES,
                 idle_timeout: float | None = _IDLE_TIMEOUT,
                 high_water: int = _HIGH_WATER,
                 tenant_weights: dict[str, int] | None = None,
                 max_inflight: int | None = None,
                 drain_timeout: float = _DRAIN_TIMEOUT) -> None:
        self.pool = pool or WorkerPool(0, cache=True)
        self.metrics: ServiceMetrics = self.pool.metrics
        self.max_line_bytes = int(max_line_bytes)
        self.idle_timeout = idle_timeout
        self.high_water = int(high_water)
        self.tenant_weights = tenant_weights
        self.max_inflight = max_inflight
        self.drain_timeout = drain_timeout
        self.singleflight = _Singleflight()
        self._sock = socket.create_server((host, port), backlog=256)
        self._address = self._sock.getsockname()[:2]
        self._loop: asyncio.AbstractEventLoop | None = None
        self._scheduler: _TenantScheduler | None = None
        self._shutdown: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._busy = 0
        self._quiet: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._done = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is concrete even when 0 was
        requested."""
        return self._address

    # -- the event loop -------------------------------------------------

    async def serve_async(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._shutdown = asyncio.Event()
        self._quiet = asyncio.Event()
        self._quiet.set()
        self._scheduler = _TenantScheduler(
            self.pool, self.metrics, weights=self.tenant_weights,
            max_inflight=self.max_inflight)
        server = await asyncio.start_server(self._client_connected,
                                            sock=self._sock)
        dispatcher = asyncio.ensure_future(
            self._scheduler.dispatch_forever())
        self._ready.set()
        try:
            await self._shutdown.wait()
            server.close()          # stop accepting; drain what's in
            await server.wait_closed()
            await self._drain()
        finally:
            dispatcher.cancel()
            for task in list(self._conn_tasks):
                task.cancel()
            await asyncio.gather(dispatcher, *list(self._conn_tasks),
                                 return_exceptions=True)

    async def _drain(self) -> None:
        """Graceful drain: queued and in-flight work answers its
        clients before the loop exits (bounded by ``drain_timeout``)."""
        deadline = time.monotonic() + self.drain_timeout
        await self._scheduler.drain(self.drain_timeout)
        # The scheduler going idle resolves the futures; wait for the
        # connection tasks to finish *writing* those responses too.
        while self._busy > 0:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            self._quiet.clear()
            if self._busy == 0:
                return
            try:
                await asyncio.wait_for(self._quiet.wait(), remaining)
            except asyncio.TimeoutError:
                return

    # -- connections ----------------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._serve_client(reader, writer)
        except asyncio.CancelledError:
            pass
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away mid-write: nothing to answer
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _serve_client(self, reader, writer) -> None:
        buffer = bytearray()
        while True:
            try:
                line, truncated = await asyncio.wait_for(
                    self._next_line(reader, buffer), self.idle_timeout)
            except asyncio.TimeoutError:
                await self._send(writer, {
                    "ok": False, "op": None,
                    "error": {"type": "IdleTimeout",
                              "message": f"no request in "
                                         f"{self.idle_timeout:.0f}s; "
                                         f"closing connection"}})
                return
            if line is None:
                return  # client EOF
            if truncated:
                await self._send(writer, {
                    "ok": False, "op": None,
                    "error": {"type": "RequestTooLarge",
                              "message": f"request line exceeds "
                                         f"{self.max_line_bytes} bytes"}})
                continue
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            self._busy += 1
            try:
                response = await self.handle_request(text)
                await self._send(writer, response)
            finally:
                self._busy -= 1
                if self._busy == 0:
                    self._quiet.set()
            if response.get("op") == "shutdown" and response.get("ok"):
                self._shutdown.set()
                return

    async def _next_line(self, reader, buffer: bytearray):
        """One newline-terminated request line, size-capped.

        Returns ``(line, truncated)``; ``line`` is None at EOF.  An
        overlong line is discarded through its terminating newline and
        reported as ``truncated`` — pipelined requests after it on the
        same connection are preserved intact.
        """
        dropped = False
        while True:
            newline = buffer.find(b"\n")
            if newline >= 0:
                line = bytes(buffer[:newline])
                del buffer[:newline + 1]
                if dropped or len(line) > self.max_line_bytes:
                    return b"", True
                return line, False
            if len(buffer) > self.max_line_bytes:
                dropped = True
                buffer.clear()
            chunk = await reader.read(_READ_CHUNK)
            if not chunk:  # EOF; honor a trailing unterminated line
                line = bytes(buffer)
                buffer.clear()
                if dropped:
                    return b"", True
                if line:
                    return line, False
                return None, False
            buffer.extend(chunk)

    async def _send(self, writer, response: dict) -> None:
        writer.write((json.dumps(response, sort_keys=True)
                      + "\n").encode())
        await writer.drain()

    # -- request handling ------------------------------------------------

    async def handle_request(self, line: str) -> dict:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return {"ok": False, "op": None,
                    "error": {"type": "BadRequest", "message": str(exc)}}
        op = request.get("op")
        if op in ("stats", "metrics"):
            return {
                "ok": True, "op": op,
                "metrics": self.metrics.snapshot(),
                "cache": (self.pool.cache.stats()
                          if self.pool.cache else None),
                "pool": self.pool.info(),
                "server": {
                    "queue_depth": self._scheduler.depth,
                    "inflight": self._scheduler.inflight,
                    "high_water": self.high_water,
                    "singleflight_inflight":
                        len(self.singleflight.inflight),
                },
            }
        if op == "cache":
            # Store administration runs in the parent against the
            # pool's cache: the entry listing and purge act on the
            # on-disk store every worker shares; counters are this
            # process's view.
            if self.pool.cache is None:
                return {"ok": False, "op": "cache",
                        "error": {"type": "NoCache",
                                  "message": "server has no compile "
                                             "cache configured"}}
            from .cache import cache_admin
            try:
                payload = cache_admin(self.pool.cache,
                                      request.get("action", "stats"),
                                      kind=request.get("kind"))
            except ValueError as exc:
                return {"ok": False, "op": "cache",
                        "error": {"type": "BadRequest",
                                  "message": str(exc)}}
            return {"ok": True, "op": "cache", **payload}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        if op == "batch":
            requests = request.get("requests")
            if not isinstance(requests, list):
                return {"ok": False, "op": "batch",
                        "error": {"type": "BadRequest",
                                  "message": "'requests' must be a list"}}
            tenant = request.get("tenant")
            subs = [r if tenant is None or not isinstance(r, dict)
                    or "tenant" in r else {**r, "tenant": tenant}
                    for r in requests]
            results = await asyncio.gather(
                *(self._admit(r) if isinstance(r, dict) else
                  self._bad_sub(r) for r in subs))
            return {"ok": True, "op": "batch", "results": list(results)}
        return await self._admit(request)

    async def _bad_sub(self, req) -> dict:
        return {"ok": False, "op": None,
                "error": {"type": "BadRequest",
                          "message": "batch entries must be JSON objects"}}

    async def _admit(self, request: dict) -> dict:
        tenant = str(request.get("tenant") or "default")
        self.metrics.count_tenant(tenant)
        if self._shutdown.is_set():
            return self._refusal(request, "ShuttingDown",
                                 "server is draining for shutdown")
        if self._scheduler.depth >= self.high_water:
            self.metrics.count_rejected()
            retry = self._retry_after()
            response = self._refusal(
                request, "Overloaded",
                f"admission queue at high-water mark "
                f"({self.high_water}); retry in {retry:.1f}s")
            response["error"]["retry_after_seconds"] = retry
            return response
        key = request_fingerprint(request)

        def work():
            return self._scheduler.submit(tenant, request, affinity=key)

        response, coalesced = await self.singleflight.run(key, work)
        if key is not None:
            self.metrics.count_coalesced(hit=coalesced)
        if coalesced:
            # Waiters share the leader's payload but not its envelope:
            # each gets its own id echo and a coalesced marker.
            response = dict(response)
            response.pop("id", None)
            if "id" in request:
                response["id"] = request["id"]
            response["coalesced"] = True
        return response

    def _refusal(self, request: dict, kind: str, message: str) -> dict:
        response = {"op": request.get("op"), "ok": False,
                    "error": {"type": kind, "message": message}}
        if "id" in request:
            response["id"] = request["id"]
        return response

    def _retry_after(self) -> float:
        """Backpressure hint: roughly one queue-drain's worth of time."""
        mean = self.metrics.mean_latency("total") or 0.05
        estimate = self._scheduler.depth * mean / max(1, self.pool.workers)
        return max(0.1, min(30.0, estimate))

    # -- embedding helpers (threads, tests, the CLI) ---------------------

    def serve_forever(self) -> None:
        """Run the event loop in the current thread until shutdown."""
        try:
            asyncio.run(self.serve_async())
        finally:
            self._done.set()

    def start(self) -> threading.Thread:
        """Run the server on a background thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread = thread
        thread.start()
        self._ready.wait(timeout=10.0)
        return thread

    def stop(self) -> None:
        """Request shutdown (with drain) and wait for the loop to exit."""
        loop = self._loop
        if loop is not None and not self._done.is_set():
            try:
                loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=self.drain_timeout + 10.0)
        self.server_close()

    def server_close(self) -> None:
        """Close the listening socket (idempotent; compat shim)."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc) -> None:
        self.server_close()


def send_request(address: tuple[str, int], request: dict,
                 timeout: float = 30.0) -> dict:
    """One-shot client: connect, send one request line, read the reply."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall((json.dumps(request) + "\n").encode())
        reader = sock.makefile("rb")
        line = reader.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    return json.loads(line)


def serve(host: str, port: int, pool: WorkerPool,
          out=sys.stderr, **server_options) -> int:
    """Run the server until shutdown; print the metrics summary."""
    with ReproServer(host, port, pool=pool, **server_options) as server:
        bound_host, bound_port = server.address
        print(f"repro serve: listening on {bound_host}:{bound_port} "
              f"({pool.mode} mode, {pool.workers} worker(s), "
              f"asyncio front door)",
              file=out, flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
    pool.close()
    print("repro serve: shutdown summary", file=out)
    print(server.metrics.summary(), file=out)
    return 0
