"""JSON-lines request server: ``repro serve``.

The wire protocol is one JSON object per line, one response line per
request — trivially scriptable (``nc``, a four-line Python client, a CI
smoke job) and identical to the batch-runner job file format, so the
same request dicts flow through either front door.

Besides the job ops (:mod:`repro.service.jobs`), the server answers:

* ``{"op": "stats"}`` (alias ``"metrics"``) — metrics snapshot
  (including per-compiler-pass wall time) + cache stats + pool info;
* ``{"op": "batch", "requests": [...]}`` — fan a list through the pool
  in one round trip (responses in order, under ``"results"``);
* ``{"op": "shutdown"}``  — acknowledge, then stop the server.

Connections are handled on threads; jobs serialize at the pool's
scheduler but still fan out across its workers.  A shutdown (or
Ctrl-C) prints the metrics summary.
"""

from __future__ import annotations

import json
import socket
import socketserver
import sys
import threading

from .metrics import ServiceMetrics
from .pool import WorkerPool


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: ReproServer = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            response = server.handle_request_line(line)
            self.wfile.write((json.dumps(response, sort_keys=True)
                              + "\n").encode())
            self.wfile.flush()
            if response.get("op") == "shutdown" and response.get("ok"):
                threading.Thread(target=server.shutdown,
                                 daemon=True).start()
                return


class ReproServer(socketserver.ThreadingTCPServer):
    """A JSON-lines compile-and-run service over one listening socket."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 pool: WorkerPool | None = None) -> None:
        self.pool = pool or WorkerPool(workers=1, cache=True)
        self.metrics: ServiceMetrics = self.pool.metrics
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is concrete even when 0 was
        requested."""
        return self.socket.getsockname()[:2]

    # ------------------------------------------------------------------

    def handle_request_line(self, line: str) -> dict:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return {"ok": False, "op": None,
                    "error": {"type": "BadRequest", "message": str(exc)}}
        op = request.get("op")
        if op in ("stats", "metrics"):
            return {
                "ok": True, "op": op,
                "metrics": self.metrics.snapshot(),
                "cache": (self.pool.cache.stats()
                          if self.pool.cache else None),
                "pool": {"mode": self.pool.mode,
                         "workers": self.pool.workers,
                         "timeout": self.pool.timeout},
            }
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        if op == "batch":
            requests = request.get("requests")
            if not isinstance(requests, list):
                return {"ok": False, "op": "batch",
                        "error": {"type": "BadRequest",
                                  "message": "'requests' must be a list"}}
            return {"ok": True, "op": "batch",
                    "results": self.pool.map(requests)}
        return self.pool.execute(request)

    # -- background-thread helpers (tests, embedding) -------------------

    def start(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def stop(self) -> None:
        self.shutdown()
        self.server_close()


def send_request(address: tuple[str, int], request: dict,
                 timeout: float = 30.0) -> dict:
    """One-shot client: connect, send one request line, read the reply."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall((json.dumps(request) + "\n").encode())
        reader = sock.makefile("rb")
        line = reader.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    return json.loads(line)


def serve(host: str, port: int, pool: WorkerPool,
          out=sys.stderr) -> int:
    """Run the server until shutdown; print the metrics summary."""
    with ReproServer(host, port, pool=pool) as server:
        bound_host, bound_port = server.address
        print(f"repro serve: listening on {bound_host}:{bound_port} "
              f"({pool.mode} mode, {pool.workers} worker(s))",
              file=out, flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
    pool.close()
    print("repro serve: shutdown summary", file=out)
    print(server.metrics.summary(), file=out)
    return 0
