"""The serving stack: persistent compile cache, worker pool, server.

The paper's whole point is cheap recompilation — NIR programs are
re-lowered and re-targeted over and over during compiler prototyping —
so the driver should never redo work it has already done.  This package
turns the one-shot CLI into a serving stack:

* :mod:`repro.service.cache`   -- content-addressed on-disk compile
  cache (pickled :class:`~repro.driver.compiler.Executable`\\ s plus
  warmed PEAC plan specializations) with versioned invalidation and an
  LRU size cap;
* :mod:`repro.service.jobs`    -- the request vocabulary
  (``compile``/``run``/``compare``) shared by every entry point;
* :mod:`repro.service.pool`    -- a multi-process worker pool (sized
  from ``os.cpu_count()`` by default) with a persistent dispatcher,
  awaitable ``submit()`` handles, cache-warm worker affinity, per-job
  timeouts, retry-once-on-crash, and a graceful single-process
  fallback;
* :mod:`repro.service.metrics` -- per-request counters and latency
  percentiles (cache hit/miss, queue wait, coalescing, per-tenant,
  compile vs execute time);
* :mod:`repro.service.server`  -- the asyncio JSON-lines request
  server (``repro serve``): bounded admission with backpressure,
  weighted round-robin tenant fairness, singleflight coalescing of
  identical in-flight requests, and graceful drain on shutdown;
* :mod:`repro.service.loadgen` -- the concurrent-client load
  benchmark (``repro loadgen``);
* :mod:`repro.service.batch`   -- the job-file batch runner
  (``repro batch``).
"""

from .cache import CompileCache, cache_key, default_cache
from .jobs import execute_request
from .metrics import ServiceMetrics
from .pool import WorkerPool

__all__ = [
    "CompileCache",
    "ServiceMetrics",
    "WorkerPool",
    "cache_key",
    "default_cache",
    "execute_request",
]
