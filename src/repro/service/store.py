"""The content-addressed artifact store: one store for every stage.

Incremental compilation keys every stage of the pipeline — front end,
transform passes, backend, per-phase node routines, and whole
executables — into a single on-disk store of fingerprinted artifacts.
A fingerprint is a pure function of everything that determines the
artifact: the upstream artifact's state hash, the stage's name and
projected config, the resolved target and ``fuse_exec`` knob, and the
cache schema/package versions.  A hit is therefore safe to reuse with
no staleness check, and *content chaining* (each artifact records the
hash of the state it produced) lets a warm compile walk the whole pass
chain by reading only small artifact headers.

Artifact kinds:

``front``
    parse + lower + check of one source text (the AST, the lowered
    program, and the layout directives).
``pass``
    one transform pass's output: the canonical program-scope NIR state
    plus the pass's report slot (the ``meta`` side channel).
``backend``
    one whole backend compilation (host program + partition report),
    keyed by the final transform state.
``phase``
    one blocked computation phase's :class:`CompiledBlock` — the unit
    the worker pool fans out.
``exe``
    a whole :class:`~repro.driver.compiler.Executable` — the legacy
    whole-source cache, now a façade over this store (see
    :mod:`repro.service.cache`).

On-disk layout: one file per artifact at ``objects/<key>.<kind>.pkl``.
The file starts with a three-line ASCII header — version tag, the
artifact's output state hash (or ``-``), and the byte length of the
``meta`` pickle — followed by the meta pickle and then the state
pickle.  :meth:`ArtifactStore.head` reads only the header + meta (a
few hundred bytes), which is what makes chain traversal cheap;
:meth:`ArtifactStore.get` reads everything.

Crash safety: writes go through a temp file + ``os.replace`` (readers
never observe a partial artifact; concurrent writers of the same key
last-write-win a complete file), and any truncated, corrupt, or
version-skewed entry is deleted and reported as a miss — the store is
always allowed to forget, and a forgotten artifact degrades to a
recompute, never an exception.

One eviction policy: an LRU sweep (by mtime; reads touch) keeps the
whole store — every kind together — under ``max_bytes``.  One purge
path: the ``VERSION`` marker check wipes everything on a schema or
package version change, and :meth:`purge` is the ``repro cache purge``
surface.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass

#: Every artifact kind the store accepts, in pipeline order.
KINDS = ("front", "pass", "backend", "phase", "exe")

_DEFAULT_MAX_BYTES = 512 * 1024 * 1024

_HEADER_MAX = 4096  # tag + hash + meta-length always fit well inside


def _version_tag() -> str:
    """Schema + package version (read lazily: tests patch the schema)."""
    from .. import __version__
    from . import cache

    return f"{cache.SCHEMA_VERSION}:{__version__}"


def state_hash(*objs) -> str:
    """Content hash of a pickled object graph (the chaining currency)."""
    return hashlib.sha256(
        pickle.dumps(objs, protocol=pickle.HIGHEST_PROTOCOL)).hexdigest()


def fingerprint(kind: str, payload: dict) -> str:
    """The store key for ``payload`` — a pure function of its inputs.

    ``payload`` must be JSON-serializable (hash object graphs into it
    with :func:`state_hash` first); the kind and the schema/package
    version tag participate, so no two kinds and no two releases can
    collide.
    """
    blob = json.dumps({"kind": kind, "tag": _version_tag(),
                       "payload": payload}, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class Artifact:
    """One fully loaded store entry."""

    obj: object
    meta: object
    out_hash: str


class ArtifactStore:
    """The content-addressed artifact store, LRU-capped by total size."""

    def __init__(self, root: str | None = None,
                 max_bytes: int | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
                os.path.expanduser("~"), ".cache", "repro")
        if max_bytes is None:
            max_bytes = int(os.environ.get("REPRO_CACHE_MAX_BYTES",
                                           _DEFAULT_MAX_BYTES))
        self.root = root
        self.objects = os.path.join(root, "objects")
        self.max_bytes = max_bytes
        self.counters = {kind: {"hits": 0, "misses": 0, "errors": 0}
                         for kind in KINDS}
        self.evictions = 0
        os.makedirs(self.objects, exist_ok=True)
        self._check_version()

    # -- versioned invalidation ----------------------------------------

    def _check_version(self) -> None:
        """Purge the store wholesale when the schema/version changes."""
        marker = os.path.join(self.root, "VERSION")
        tag = _version_tag()
        try:
            with open(marker) as f:
                if f.read().strip() == tag:
                    return
        except OSError:
            pass
        self.purge()
        with open(marker, "w") as f:
            f.write(tag + "\n")

    # -- paths ----------------------------------------------------------

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.objects, f"{key}.{kind}.pkl")

    def fingerprint(self, kind: str, payload: dict) -> str:
        return fingerprint(kind, payload)

    # -- reads ----------------------------------------------------------

    def _open(self, kind: str, key: str):
        """Validated header read: (file, out_hash, meta_len) or None.

        Any malformed entry — truncated header, bad tag, unparsable
        lengths — is deleted and counted as an error + miss.
        """
        path = self._path(kind, key)
        try:
            f = open(path, "rb")
        except OSError:
            self.counters[kind]["misses"] += 1
            return None
        try:
            header = f.readline(_HEADER_MAX)
            if header.rstrip(b"\n").decode("ascii") != _version_tag():
                raise ValueError("version skew")
            out_hash = f.readline(_HEADER_MAX).rstrip(b"\n").decode("ascii")
            meta_len = int(f.readline(_HEADER_MAX).rstrip(b"\n"))
            if meta_len < 0:
                raise ValueError("negative meta length")
        except Exception:
            f.close()
            self._forget(kind, key, path)
            return None
        return f, ("" if out_hash == "-" else out_hash), meta_len

    def _forget(self, kind: str, key: str, path: str) -> None:
        self.counters[kind]["errors"] += 1
        self.counters[kind]["misses"] += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def _touch(self, kind: str, key: str) -> None:
        try:
            os.utime(self._path(kind, key))  # LRU touch
        except OSError:
            pass

    def head(self, kind: str, key: str):
        """``(out_hash, meta)`` without loading the state, or None.

        This is the chain-traversal read: a few hundred bytes per
        artifact, so a fully warm pipeline costs header reads, not
        unpickles.
        """
        opened = self._open(kind, key)
        if opened is None:
            return None
        f, out_hash, meta_len = opened
        try:
            with f:
                blob = f.read(meta_len)
                if len(blob) != meta_len:
                    raise ValueError("truncated meta")
                meta = pickle.loads(blob) if meta_len else None
        except Exception:
            self._forget(kind, key, self._path(kind, key))
            return None
        self.counters[kind]["hits"] += 1
        self._touch(kind, key)
        return out_hash, meta

    def get(self, kind: str, key: str) -> Artifact | None:
        """The full artifact under ``key``, or None (a miss)."""
        opened = self._open(kind, key)
        if opened is None:
            return None
        f, out_hash, meta_len = opened
        try:
            with f:
                blob = f.read(meta_len)
                if len(blob) != meta_len:
                    raise ValueError("truncated meta")
                meta = pickle.loads(blob) if meta_len else None
                obj = pickle.load(f)
        except Exception:
            # Corrupt, truncated, or version-skewed: forget it.
            self._forget(kind, key, self._path(kind, key))
            return None
        self.counters[kind]["hits"] += 1
        self._touch(kind, key)
        return Artifact(obj=obj, meta=meta, out_hash=out_hash)

    # -- writes ---------------------------------------------------------

    def put(self, kind: str, key: str, obj, *, meta=None,
            out_hash: str = "") -> bool:
        """Persist one artifact atomically; returns success.

        A failed pickle or write counts an error and leaves no entry —
        storing is always best-effort, the caller already holds the
        live objects.
        """
        try:
            meta_blob = (pickle.dumps(meta, pickle.HIGHEST_PROTOCOL)
                         if meta is not None else b"")
            state_blob = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.counters[kind]["errors"] += 1
            return False
        header = (f"{_version_tag()}\n{out_hash or '-'}\n"
                  f"{len(meta_blob)}\n").encode("ascii")
        try:
            fd, tmp = tempfile.mkstemp(dir=self.objects, suffix=".tmp")
        except OSError:
            self.counters[kind]["errors"] += 1
            return False
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(header)
                f.write(meta_blob)
                f.write(state_blob)
            os.replace(tmp, self._path(kind, key))
        except OSError:
            self.counters[kind]["errors"] += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self._evict(keep=(kind, key))
        return True

    # -- maintenance -----------------------------------------------------

    def _entries(self):
        """(mtime, size, path, filename) of every artifact file."""
        out = []
        try:
            names = os.listdir(self.objects)
        except OSError:
            return out
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.objects, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, path, name))
        return out

    def _evict(self, keep: tuple[str, str] | None = None) -> None:
        """Delete least-recently-used entries until under ``max_bytes``."""
        entries = self._entries()
        total = sum(size for _, size, _, _ in entries)
        protected = f"{keep[1]}.{keep[0]}.pkl" if keep else None
        for mtime, size, path, name in sorted(entries):
            if total <= self.max_bytes:
                break
            if name == protected:
                continue  # never evict the entry just written
            try:
                os.unlink(path)
                total -= size
                self.evictions += 1
            except OSError:
                pass

    @staticmethod
    def _split(name: str) -> tuple[str, str]:
        """``<key>.<kind>.pkl`` -> (kind, key); unknowns get kind ''."""
        stem = name[:-len(".pkl")]
        key, _, kind = stem.rpartition(".")
        if kind in KINDS and key:
            return kind, key
        return "", stem

    def purge(self, kind: str | None = None) -> int:
        """Delete every entry (of one kind, if named); returns count."""
        removed = 0
        for _mtime, _size, path, name in self._entries():
            if kind is not None and self._split(name)[0] != kind:
                continue
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def ls(self, kind: str | None = None) -> list[dict]:
        """Per-entry records, newest first (the ``repro cache ls`` view)."""
        now = time.time()
        rows = []
        for mtime, size, _path, name in sorted(self._entries(),
                                               reverse=True):
            entry_kind, key = self._split(name)
            if kind is not None and entry_kind != kind:
                continue
            rows.append({"key": key, "kind": entry_kind, "bytes": size,
                         "age_seconds": max(0.0, now - mtime)})
        return rows

    def stats(self) -> dict:
        """Per-kind counters plus the store's current footprint."""
        kinds = {kind: {"entries": 0, "bytes": 0, **counts}
                 for kind, counts in self.counters.items()}
        total_entries = 0
        total_bytes = 0
        for _mtime, size, _path, name in self._entries():
            entry_kind, _key = self._split(name)
            if entry_kind in kinds:
                kinds[entry_kind]["entries"] += 1
                kinds[entry_kind]["bytes"] += size
            total_entries += 1
            total_bytes += size
        return {
            "root": self.root,
            "entries": total_entries,
            "bytes": total_bytes,
            "max_bytes": self.max_bytes,
            "evictions": self.evictions,
            "kinds": kinds,
        }


_DEFAULT: ArtifactStore | None = None


def default_store() -> ArtifactStore:
    """The process-wide store at ``$REPRO_CACHE_DIR``/``~/.cache/repro``."""
    global _DEFAULT
    root = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro")
    if _DEFAULT is None or _DEFAULT.root != root:
        _DEFAULT = ArtifactStore(root)
    return _DEFAULT
