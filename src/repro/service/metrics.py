"""Per-request service metrics: counters and latency percentiles.

Workers run in separate processes, so metrics live in the *parent*:
every response carries its own compile/run wall-clock timings (see
:mod:`repro.service.jobs`), the pool stamps queue-wait and total
latency, and :meth:`ServiceMetrics.observe` folds each response in.
``snapshot()`` is the ``stats`` request payload; ``summary()`` is the
shutdown report.
"""

from __future__ import annotations

import threading


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


class LatencyStat:
    """A bounded reservoir of latency samples (seconds).

    Past ``cap`` samples, new observations overwrite the reservoir
    round-robin — deterministic, allocation-free, and good enough for
    p50/p95 over a serving window.  Totals keep exact count/sum.
    """

    def __init__(self, cap: int = 4096) -> None:
        self.cap = cap
        self.samples: list[float] = []
        self.count = 0
        self.total = 0.0
        self.peak = 0.0

    def add(self, seconds: float) -> None:
        if len(self.samples) < self.cap:
            self.samples.append(seconds)
        else:
            self.samples[self.count % self.cap] = seconds
        self.count += 1
        self.total += seconds
        self.peak = max(self.peak, seconds)

    def snapshot(self) -> dict:
        if not self.samples:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "p50": percentile(self.samples, 50),
            "p95": percentile(self.samples, 95),
            "p99": percentile(self.samples, 99),
            "max": self.peak,
        }


class ServiceMetrics:
    """Thread-safe rollup of everything a serving run did."""

    STATS = ("queue_wait", "compile", "run", "total")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        self.timeouts = 0
        self.verify_failures = 0
        self.retries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: Singleflight coalescing: a *hit* is a request served as a
        #: waiter on another request's in-flight work; a *leader* paid
        #: for the work itself (only coalescable requests are counted).
        self.coalesced_hits = 0
        self.coalesced_leaders = 0
        #: Admission control: requests bounced with an ``Overloaded``
        #: error, and the deepest the admission queue ever got.
        self.rejected = 0
        self.queue_peak = 0
        self.per_op: dict[str, int] = {}
        self.per_tenant: dict[str, int] = {}
        self.latency = {name: LatencyStat() for name in self.STATS}
        #: Per-compiler-pass wall time, folded from each response's
        #: ``pipeline`` trace (cache hits replay the original compile's
        #: trace and are skipped, so these measure real pass work;
        #: artifact-store hits are skipped too — a cached pass ran
        #: nothing).
        self.pass_latency: dict[str, LatencyStat] = {}
        #: Artifact-store reuse, folded from incremental compiles'
        #: ``pipeline.artifacts`` blocks (whole-source cache hits are
        #: skipped: they replay the original compile's accounting).
        #: ``prefix_hits`` totals every reused prefix artifact — the CI
        #: incremental gate reads it from the ``metrics`` snapshot.
        self.artifacts = {
            "front_hits": 0, "front_misses": 0,
            "pass_hits": 0, "pass_misses": 0,
            "backend_hits": 0, "backend_misses": 0,
            "phase_hits": 0, "phase_misses": 0,
        }

    # ------------------------------------------------------------------

    def observe(self, response: dict, queue_wait: float | None = None,
                total: float | None = None) -> None:
        """Fold one response (plus pool-side timings) into the rollup."""
        with self._lock:
            self.requests += 1
            op = str(response.get("op"))
            self.per_op[op] = self.per_op.get(op, 0) + 1
            if not response.get("ok", False):
                self.errors += 1
                error = response.get("error") or {}
                if error.get("type") == "JobTimeout":
                    self.timeouts += 1
                if error.get("type") == "VerifyError":
                    self.verify_failures += 1
            cache = response.get("cache")
            if cache == "hit":
                self.cache_hits += 1
            elif cache == "miss":
                self.cache_misses += 1
            timings = response.get("timings") or {}
            if "compile_seconds" in timings:
                self.latency["compile"].add(timings["compile_seconds"])
            if "run_seconds" in timings:
                self.latency["run"].add(timings["run_seconds"])
            if queue_wait is not None:
                self.latency["queue_wait"].add(queue_wait)
            if total is not None:
                self.latency["total"].add(total)
            pipeline = response.get("pipeline") or {}
            if cache != "hit":
                for entry in pipeline.get("passes", ()):
                    if not entry.get("enabled", True) \
                            or entry.get("cached"):
                        continue
                    stat = self.pass_latency.setdefault(
                        entry["name"], LatencyStat())
                    stat.add(entry.get("seconds", 0.0))
                self._fold_artifacts(pipeline.get("artifacts") or {})

    def _fold_artifacts(self, artifacts: dict) -> None:
        """Fold one incremental compile's store accounting (lock held)."""
        if not artifacts:
            return
        for stage in ("front", "backend"):
            state = artifacts.get(stage)
            if state in ("hit", "miss"):
                self.artifacts[f"{stage}_{state}es"
                               if state == "miss"
                               else f"{stage}_hits"] += 1
        for stage in ("pass", "phase"):
            block = artifacts.get(f"{stage}es") or {}
            self.artifacts[f"{stage}_hits"] += int(block.get("hits", 0))
            self.artifacts[f"{stage}_misses"] += \
                int(block.get("misses", 0))

    def count_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def count_coalesced(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.coalesced_hits += 1
            else:
                self.coalesced_leaders += 1

    def count_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def count_tenant(self, tenant: str) -> None:
        with self._lock:
            self.per_tenant[tenant] = self.per_tenant.get(tenant, 0) + 1

    def note_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self.queue_peak:
                self.queue_peak = depth

    def mean_latency(self, name: str = "total") -> float | None:
        """O(1) mean of a latency series (retry-after estimation)."""
        with self._lock:
            stat = self.latency[name]
            return (stat.total / stat.count) if stat.count else None

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            lookups = self.cache_hits + self.cache_misses
            flights = self.coalesced_hits + self.coalesced_leaders
            return {
                "requests": self.requests,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "verify_failures": self.verify_failures,
                "retries": self.retries,
                "per_op": dict(self.per_op),
                "per_tenant": dict(self.per_tenant),
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "hit_rate": (self.cache_hits / lookups) if lookups
                                else None,
                },
                "singleflight": {
                    "hits": self.coalesced_hits,
                    "leaders": self.coalesced_leaders,
                    "hit_rate": (self.coalesced_hits / flights) if flights
                                else None,
                },
                "admission": {
                    "rejected": self.rejected,
                    "queue_peak": self.queue_peak,
                },
                "latency_seconds": {name: stat.snapshot()
                                    for name, stat in self.latency.items()},
                "passes": {name: stat.snapshot()
                           for name, stat in self.pass_latency.items()},
                "artifacts": {
                    **self.artifacts,
                    # Prefix artifacts reused across incremental
                    # compiles (the CI tail-edit gate's counter).
                    "prefix_hits": (self.artifacts["front_hits"]
                                    + self.artifacts["pass_hits"]),
                },
            }

    def summary(self) -> str:
        """The human shutdown report."""
        snap = self.snapshot()
        cache = snap["cache"]
        rate = (f"{cache['hit_rate']:.1%}"
                if cache["hit_rate"] is not None else "n/a")
        lines = [
            f"requests {snap['requests']}  errors {snap['errors']}  "
            f"timeouts {snap['timeouts']}  "
            f"verify failures {snap['verify_failures']}  "
            f"retries {snap['retries']}",
            f"cache    {cache['hits']} hits / {cache['misses']} misses "
            f"(hit rate {rate})",
        ]
        flight = snap["singleflight"]
        if flight["hits"] or flight["leaders"]:
            lines.append(
                f"coalesce {flight['hits']} hits / "
                f"{flight['leaders']} leaders "
                f"(hit rate {flight['hit_rate']:.1%})")
        arts = snap["artifacts"]
        if arts["prefix_hits"] or arts["pass_misses"] \
                or arts["backend_hits"] or arts["phase_hits"]:
            lines.append(
                f"store    front {arts['front_hits']}/"
                f"{arts['front_hits'] + arts['front_misses']}  "
                f"passes {arts['pass_hits']}/"
                f"{arts['pass_hits'] + arts['pass_misses']}  "
                f"backend {arts['backend_hits']}/"
                f"{arts['backend_hits'] + arts['backend_misses']}  "
                f"phases {arts['phase_hits']}/"
                f"{arts['phase_hits'] + arts['phase_misses']} "
                f"(artifact hits/lookups)")
        admission = snap["admission"]
        if admission["rejected"] or admission["queue_peak"]:
            lines.append(
                f"admission {admission['rejected']} rejected, "
                f"queue peak {admission['queue_peak']}")
        if snap["per_tenant"]:
            tenants = "  ".join(f"{name}={count}" for name, count
                                in sorted(snap["per_tenant"].items()))
            lines.append(f"tenants  {tenants}")
        for name in self.STATS:
            stat = snap["latency_seconds"][name]
            if stat["count"]:
                lines.append(
                    f"{name:<10} p50 {stat['p50'] * 1e3:8.1f}ms  "
                    f"p95 {stat['p95'] * 1e3:8.1f}ms  "
                    f"max {stat['max'] * 1e3:8.1f}ms  "
                    f"({stat['count']} samples)")
        for name, stat in snap["passes"].items():
            lines.append(
                f"pass {name:<12} p50 {stat['p50'] * 1e3:6.1f}ms  "
                f"mean {stat['mean'] * 1e3:6.1f}ms  "
                f"({stat['count']} compiles)")
        return "\n".join(lines)
