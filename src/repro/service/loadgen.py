"""Async load generator for the serving stack: ``repro loadgen``.

Drives a running :class:`~repro.service.server.ReproServer` (or spins
one up in-process) with N concurrent asyncio clients issuing a mixed,
multi-tenant compile/run workload, and reports the numbers that matter
for capacity planning:

* client-observed latency percentiles (p50/p95/p99/max) and jobs/sec;
* the server's queue-wait distribution over the same window;
* singleflight coalescing hits/leaders (the generator opens with a
  *coalesce wave* — every client fires the same fresh compile at the
  same instant — so the exactly-one-pool-job property is exercised on
  every run, not just under accidental contention);
* admission-control rejections and the queue high-water mark;
* per-tenant request counts (clients are spread round-robin over
  ``tenants`` tenant names, so fairness shows up in the rollup).

The same dict that :func:`run_loadgen` returns is what
``benchmarks/test_bench_load.py`` writes to ``BENCH_load.json``.
"""

from __future__ import annotations

import asyncio
import json
import time

from .metrics import percentile
from .pool import WorkerPool
from .server import ReproServer

#: StreamReader line limit for responses (compile payloads can be
#: hundreds of KB once pipeline traces are attached).
_CLIENT_LIMIT = 16 * 1024 * 1024


def _program(index: int, nonce: str) -> str:
    """A small distinct Fortran-90 program per workload slot.

    The nonce comment makes every loadgen run's sources fresh, so the
    first compile of each slot is a real pool job (not a warm disk
    cache hit from the previous run) and coalescing has work to share.
    """
    n = 6 + 2 * (index % 4)
    return (f"program load{index}\n"
            f"! loadgen nonce {nonce}\n"
            f"integer, parameter :: n = {n}\n"
            f"double precision, array(n,n) :: a, b\n"
            f"a = {1 + index % 3}.5d0\n"
            f"b = cshift(a, 1, 1) + a * 2.0d0\n"
            f"print *, sum(b)\n"
            f"end program load{index}\n")


def build_workload(client: int, count: int, *, tenants: int,
                   distinct: int, nonce: str) -> list[dict]:
    """The request sequence for one client: mixed ops, shared sources.

    Slots repeat across clients (``distinct`` programs total), so
    concurrent clients naturally contend on the same cache keys —
    first as singleflight waiters, later as cache hits.
    """
    tenant = f"tenant-{client % max(1, tenants)}"
    requests = []
    for i in range(count):
        slot = (client + i) % max(1, distinct)
        source = _program(slot, nonce)
        if (client + i) % 3 == 0:
            request = {"op": "compile", "source": source}
        else:
            request = {"op": "run", "source": source, "pes": 64}
        request["tenant"] = tenant
        request["id"] = f"c{client}-{i}"
        requests.append(request)
    return requests


async def _client_session(address, requests: list[dict],
                          start: asyncio.Event,
                          latencies: list[float],
                          failures: list[dict]) -> int:
    reader, writer = await asyncio.open_connection(
        address[0], address[1], limit=_CLIENT_LIMIT)
    try:
        await start.wait()
        done = 0
        for request in requests:
            t0 = time.perf_counter()
            writer.write((json.dumps(request) + "\n").encode())
            await writer.drain()
            line = await reader.readline()
            if not line:
                failures.append({"id": request.get("id"),
                                 "error": "connection closed"})
                break
            latencies.append(time.perf_counter() - t0)
            response = json.loads(line)
            if not response.get("ok"):
                failures.append({"id": request.get("id"),
                                 "error": response.get("error")})
            done += 1
        return done
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass


async def _drive(address, workloads: list[list[dict]], nonce: str):
    """Connect every client, fire the coalesce wave, run the mix."""
    start = asyncio.Event()
    latencies: list[float] = []
    failures: list[dict] = []
    # The coalesce wave: one identical fresh compile from every client,
    # released simultaneously — N requests, exactly one pool job.
    wave = {"op": "compile", "source": _program(9000, nonce),
            "coalesce_key": f"wave-{nonce}"}
    sessions = [
        _client_session(address, [dict(wave, id=f"wave-{i}")] + workload,
                        start, latencies, failures)
        for i, workload in enumerate(workloads)]
    tasks = [asyncio.ensure_future(s) for s in sessions]
    await asyncio.sleep(0.05)  # let every client connect and park
    t0 = time.perf_counter()
    start.set()
    completed = sum(await asyncio.gather(*tasks))
    wall = time.perf_counter() - t0
    return completed, wall, latencies, failures


def _latency_block(samples: list[float]) -> dict:
    if not samples:
        return {"count": 0}
    return {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
        "max": max(samples),
    }


def _metrics_delta(before: dict, after: dict) -> dict:
    """Server-side counters over the loadgen window."""
    def diff(*path):
        b, a = before, after
        for key in path:
            b = (b or {}).get(key)
            a = (a or {}).get(key)
        return (a or 0) - (b or 0)

    hits = diff("singleflight", "hits")
    leaders = diff("singleflight", "leaders")
    flights = hits + leaders
    return {
        "pool_jobs": diff("requests"),
        "errors": diff("errors"),
        "singleflight": {
            "hits": hits,
            "leaders": leaders,
            "hit_rate": (hits / flights) if flights else None,
        },
        "admission": {
            "rejected": diff("admission", "rejected"),
            "queue_peak": (after.get("admission") or {})
            .get("queue_peak", 0),
        },
        "per_tenant": (after.get("per_tenant") or {}),
    }


def run_loadgen(address=None, *, clients: int = 16, requests: int = 96,
                tenants: int = 2, distinct: int = 8,
                workers: int = 0, nonce: str | None = None) -> dict:
    """Run the load benchmark; returns the BENCH_load payload dict.

    With ``address=None`` an in-process server (and pool sized by
    ``workers``; 0 = one per CPU) is started for the duration.  With an
    address, an already-running ``repro serve`` is driven instead and
    server-side counters come from its ``metrics`` op.
    """
    nonce = nonce or f"{time.time_ns():x}"
    per_client = max(1, requests // max(1, clients))
    workloads = [build_workload(c, per_client, tenants=tenants,
                                distinct=distinct, nonce=nonce)
                 for c in range(clients)]

    own_server = None
    own_pool = None
    if address is None:
        own_pool = WorkerPool(workers, cache=True)
        own_server = ReproServer(port=0, pool=own_pool)
        own_server.start()
        address = own_server.address

    from .server import send_request

    try:
        before = send_request(address, {"op": "metrics"})["metrics"]
        completed, wall, latencies, failures = asyncio.run(
            _drive(address, workloads, nonce))
        stats = send_request(address, {"op": "stats"})
        after = stats["metrics"]
    finally:
        if own_server is not None:
            own_server.stop()
        if own_pool is not None:
            own_pool.close()

    total_sent = clients + sum(len(w) for w in workloads)  # + wave
    result = {
        "clients": clients,
        "requests_sent": total_sent,
        "requests_completed": completed,
        "tenants": tenants,
        "distinct_programs": distinct,
        "wall_seconds": wall,
        "jobs_per_second": (completed / wall) if wall > 0 else 0.0,
        "latency_seconds": _latency_block(latencies),
        "queue_wait_seconds": (after.get("latency_seconds") or {})
        .get("queue_wait", {"count": 0}),
        "server": _metrics_delta(before, after),
        "pool": stats.get("pool"),
        "failures": failures[:10],
        "failure_count": len(failures),
    }
    return result


def loadgen_main(address, *, clients: int, requests: int, tenants: int,
                 workers: int, json_path: str | None, out) -> int:
    """CLI driver: run, print the human summary, optionally dump JSON."""
    result = run_loadgen(address, clients=clients, requests=requests,
                         tenants=tenants, workers=workers)
    latency = result["latency_seconds"]
    flight = result["server"]["singleflight"]
    print(f"repro loadgen: {result['requests_completed']} responses "
          f"from {result['clients']} client(s) in "
          f"{result['wall_seconds']:.2f}s "
          f"({result['jobs_per_second']:.1f} jobs/sec)", file=out)
    if latency.get("count"):
        print(f"latency   p50 {latency['p50'] * 1e3:.1f}ms  "
              f"p95 {latency['p95'] * 1e3:.1f}ms  "
              f"p99 {latency['p99'] * 1e3:.1f}ms  "
              f"max {latency['max'] * 1e3:.1f}ms", file=out)
    print(f"coalesce  {flight['hits']} hits / {flight['leaders']} "
          f"leaders  pool jobs {result['server']['pool_jobs']}",
          file=out)
    if result["failure_count"]:
        print(f"failures  {result['failure_count']} "
              f"(first: {result['failures'][:1]})", file=out)
    if json_path:
        with open(json_path, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)
        print(f"wrote {json_path}", file=out)
    return 1 if result["failure_count"] else 0
