"""PEAC assembler: text <-> instruction objects, Figure 12 syntax.

``format_routine`` renders a :class:`~repro.peac.isa.Routine` in the
paper's concrete syntax; ``parse_routine`` reads it back.  Round-tripping
is exact (tests rely on it).
"""

from __future__ import annotations

import re

from .isa import (
    OPCODES,
    CReg,
    Imm,
    Instr,
    LabelRef,
    Mem,
    Operand,
    PeacError,
    PReg,
    Routine,
    SReg,
    VReg,
)

_MEM_RE = re.compile(r"^\[aP(\d+)\+(-?\d+)\](-?\d+)\+\+$")
_REG_RE = re.compile(r"^a([VSP])(\d+)$")
_CREG_RE = re.compile(r"^ac(\d+)$")
_IMM_RE = re.compile(r"^#(-?[\d.eE+-]+)$")


def format_instr(instr: Instr) -> str:
    return str(instr)


def format_routine(routine: Routine) -> str:
    """Render a routine exactly as in Figure 12."""
    lines = [routine.label]
    for instr in routine.body:
        lines.append("    " + format_instr(instr))
    lines.append(f"    jnz ac2 {routine.label}")
    return "\n".join(lines)


def parse_operand(text: str) -> Operand:
    text = text.strip()
    m = _MEM_RE.match(text)
    if m:
        return Mem(PReg(int(m.group(1))), int(m.group(2)), int(m.group(3)))
    m = _REG_RE.match(text)
    if m:
        cls = {"V": VReg, "S": SReg, "P": PReg}[m.group(1)]
        return cls(int(m.group(2)))
    m = _CREG_RE.match(text)
    if m:
        return CReg(int(m.group(1)))
    m = _IMM_RE.match(text)
    if m:
        return Imm(float(m.group(1)))
    if re.match(r"^[A-Za-z_][\w]*_?$", text):
        return LabelRef(text)
    raise PeacError(f"cannot parse operand {text!r}")


def parse_instr(text: str) -> Instr:
    """Parse one instruction line, handling dual-issue commas."""
    text = text.split(";")[0].strip()
    if "," in text:
        main_text, paired_text = text.split(",", 1)
        main = parse_instr(main_text)
        paired = parse_instr(paired_text)
        return Instr(main.op, main.operands, paired=paired)
    parts = text.split()
    if not parts:
        raise PeacError("empty instruction")
    op = parts[0]
    if op not in OPCODES:
        raise PeacError(f"unknown opcode {op!r}")
    operands = tuple(parse_operand(p) for p in parts[1:])
    return Instr(op, operands)


def parse_routine(text: str) -> Routine:
    """Parse a routine in Figure 12 syntax (label, body, jnz back edge)."""
    lines = [ln for ln in (raw.split(";")[0].rstrip()
                           for raw in text.splitlines()) if ln.strip()]
    if not lines:
        raise PeacError("empty routine text")
    label = lines[0].strip()
    if not label.endswith("_"):
        raise PeacError(f"expected a routine label, got {label!r}")
    name = label[:-1]
    body: list[Instr] = []
    for ln in lines[1:]:
        stripped = ln.strip()
        if stripped.startswith("jnz"):
            instr = parse_instr(stripped)
            target = instr.operands[1]
            if not (isinstance(target, LabelRef) and target.name == label):
                raise PeacError("jnz target does not match routine label")
            break
        body.append(parse_instr(stripped))
    routine = Routine(name=name)
    routine.body = body
    return routine
