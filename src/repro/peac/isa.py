"""PEAC — Processing Element Assembly Code — instruction set.

PEAC is "the programming language designed by the CM Fortran group for
this PE abstraction ... PEAC allows the Weitek chip to be programmed as
a four-wide vector processor; it also allows accesses to CM memory to be
overlapped with arithmetic operations, and supports the Weitek chained
multiply-add instruction" (section 2.2).

The concrete syntax follows Figure 12::

    Pk51vs1_
        flodv [aP7+0]1++ aV3
        fsubv aV3 [aP4+0]1++ aV1      ; chained in-memory operand
        fmulv aS28 aV1 aV3, flodv [aP8+0]1++ aV4   ; dual issue
        ...
        jnz ac2 Pk51vs1_

Register classes: ``aV`` four-wide vector registers (the scarce
resource), ``aS`` scalar broadcast registers, ``aP`` subgrid pointer
registers with post-increment addressing, ``ac`` loop counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

NUM_VREGS = 8     # Weitek WTL3164: 32 words = 8 four-wide vector registers
NUM_SREGS = 32    # scalar broadcast registers (allocated from the top down)
NUM_PREGS = 16    # subgrid pointer registers
NUM_CREGS = 4     # loop counters; ac2 is the virtual-subgrid trip counter

VECTOR_WIDTH = 4  # elements processed per vector instruction


class PeacError(Exception):
    """Raised on malformed PEAC instructions or operand misuse."""


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Operand:
    """Base class for PEAC operands."""


@dataclass(frozen=True)
class VReg(Operand):
    n: int

    def __post_init__(self) -> None:
        if not 0 <= self.n < NUM_VREGS:
            raise PeacError(f"vector register aV{self.n} out of range")

    def __str__(self) -> str:
        return f"aV{self.n}"


@dataclass(frozen=True)
class SReg(Operand):
    n: int

    def __post_init__(self) -> None:
        if not 0 <= self.n < NUM_SREGS:
            raise PeacError(f"scalar register aS{self.n} out of range")

    def __str__(self) -> str:
        return f"aS{self.n}"


@dataclass(frozen=True)
class PReg(Operand):
    n: int

    def __post_init__(self) -> None:
        if not 0 <= self.n < NUM_PREGS:
            raise PeacError(f"pointer register aP{self.n} out of range")

    def __str__(self) -> str:
        return f"aP{self.n}"


@dataclass(frozen=True)
class CReg(Operand):
    n: int

    def __post_init__(self) -> None:
        if not 0 <= self.n < NUM_CREGS:
            raise PeacError(f"counter register ac{self.n} out of range")

    def __str__(self) -> str:
        return f"ac{self.n}"


@dataclass(frozen=True)
class Mem(Operand):
    """A streaming memory operand ``[aPn+off]1++`` (post-increment)."""

    preg: PReg
    offset: int = 0
    incr: int = 1

    def __str__(self) -> str:
        return f"[{self.preg}+{self.offset}]{self.incr}++"


@dataclass(frozen=True)
class Imm(Operand):
    """An immediate constant (sequencer-broadcast literal)."""

    value: float

    def __str__(self) -> str:
        if float(self.value).is_integer():
            return f"#{int(self.value)}"
        return f"#{self.value!r}"


@dataclass(frozen=True)
class LabelRef(Operand):
    name: str

    def __str__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# Opcodes
# ---------------------------------------------------------------------------

# opcode -> (n_operands, kind)
# Vector arithmetic writes its last operand; loads/stores stream memory.
OPCODES: dict[str, tuple[int, str]] = {
    # memory
    "flodv": (2, "load"),      # flodv <mem> <vreg>
    "fstrv": (2, "store"),     # fstrv <vreg> <mem>
    # moves
    "fmovv": (2, "move"),      # fmovv <src> <vreg>
    # arithmetic: <a> <b> <dst>
    "faddv": (3, "arith"),
    "fsubv": (3, "arith"),
    "fmulv": (3, "arith"),
    "fdivv": (3, "div"),
    "fminv": (3, "arith"),
    "fmaxv": (3, "arith"),
    "fmodv": (3, "div"),
    "fpowv": (3, "trans"),
    # chained multiply-add: dst = a*b + c
    "fmav": (4, "fma"),
    "fmsv": (4, "fma"),        # dst = a*b - c
    # unary: <a> <dst>
    "fnegv": (2, "arith1"),
    "fabsv": (2, "arith1"),
    "fsqrtv": (2, "sqrt"),
    "finvv": (2, "div"),
    "fsinv": (2, "trans"),
    "fcosv": (2, "trans"),
    "ftanv": (2, "trans"),
    "fasinv": (2, "trans"),
    "facosv": (2, "trans"),
    "fatanv": (2, "trans"),
    "fexpv": (2, "trans"),
    "flogv": (2, "trans"),
    "flog10v": (2, "trans"),
    "ffloorv": (2, "arith1"),
    "fceilv": (2, "arith1"),
    # conversions
    "fintv": (2, "arith1"),    # float -> integer
    "ffltv": (2, "arith1"),    # integer -> float (single)
    "fdblv": (2, "arith1"),    # integer/single -> double
    # comparisons (produce an all-ones/zero mask): <a> <b> <dst>
    "fceqv": (3, "cmp"),
    "fcnev": (3, "cmp"),
    "fcltv": (3, "cmp"),
    "fclev": (3, "cmp"),
    "fcgtv": (3, "cmp"),
    "fcgev": (3, "cmp"),
    # logical / mask ops
    "candv": (3, "logic"),
    "corv": (3, "logic"),
    "cxorv": (3, "logic"),
    "cnotv": (2, "logic1"),
    # masked select: fselv <mask> <true_val> <false_val> <dst>
    "fselv": (4, "select"),
    # integer vector arithmetic
    "iaddv": (3, "iarith"),
    "isubv": (3, "iarith"),
    "imulv": (3, "iarith"),
    "idivv": (3, "idiv"),
    "imodv": (3, "idiv"),
    "inegv": (2, "iarith1"),
    # control
    "jnz": (2, "branch"),      # jnz <creg> <label>
}

FLOP_KINDS = {
    "arith": 1, "arith1": 1, "div": 1, "sqrt": 1, "trans": 1, "fma": 2,
}
"""Floating-point operations per *element* for each instruction kind.
Counts follow the SWE convention: adds, subtracts, multiplies, divides
and library functions each count one flop per element; the chained
multiply-add counts two."""


@dataclass(frozen=True)
class Instr:
    """One PEAC instruction, optionally dual-issued with a memory op.

    ``paired`` holds a load/store issued in the same cycle slot (the
    "overlapped" memory access of Figure 12's optimized encoding).
    """

    op: str
    operands: tuple[Operand, ...]
    paired: "Instr | None" = None

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise PeacError(f"unknown opcode {self.op!r}")
        want, kind = OPCODES[self.op]
        if len(self.operands) != want:
            raise PeacError(
                f"{self.op} expects {want} operands, got {len(self.operands)}")
        mem_ops = sum(isinstance(o, Mem) for o in self.operands)
        if kind in ("arith", "div", "cmp", "logic", "fma", "select",
                    "iarith", "idiv") and mem_ops > 1:
            raise PeacError(
                f"{self.op}: at most one chained in-memory operand")
        if self.paired is not None:
            if OPCODES[self.paired.op][1] not in ("load", "store"):
                raise PeacError("only loads/stores may be dual-issued")
            if self.paired.paired is not None:
                raise PeacError("dual-issue pairs cannot nest")

    @property
    def kind(self) -> str:
        return OPCODES[self.op][1]

    @property
    def dest(self) -> Operand | None:
        """The operand written by this instruction, if any."""
        if self.kind in ("store", "branch"):
            return None
        return self.operands[-1]

    @property
    def sources(self) -> tuple[Operand, ...]:
        if self.kind == "store":
            return (self.operands[0],)
        if self.kind == "branch":
            return (self.operands[0],)
        return self.operands[:-1]

    @property
    def has_chained_mem(self) -> bool:
        """True when an arithmetic source streams directly from memory."""
        if self.kind in ("load", "store"):
            return False
        return any(isinstance(o, Mem) for o in self.sources)

    def __str__(self) -> str:
        text = f"{self.op} " + " ".join(str(o) for o in self.operands)
        if self.paired is not None:
            text += ", " + str(self.paired)
        return text


@dataclass(frozen=True)
class ParamSpec:
    """A formal parameter of a PEAC routine, filled over the IFIFO.

    kinds:

    * ``subgrid``  — pointer to the PE's local subgrid of an array
      (binds a pointer register),
    * ``coord``    — pointer to a runtime-materialized coordinate subgrid
      ``(shape_key, axis)``,
    * ``halo``     — pointer to a neighbour-shifted ghost view of an
      array's subgrid (the §5.3.2 neighborhood model); binding it
      performs the boundary exchange,
    * ``scalar``   — a front-end scalar broadcast into a scalar register,
    * ``vlen``     — the virtual subgrid length (binds the trip counter).
    """

    kind: str
    name: str
    reg: Operand
    meta: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("subgrid", "coord", "halo", "scalar",
                             "vlen"):
            raise PeacError(f"unknown parameter kind {self.kind!r}")


@dataclass
class Routine:
    """A complete PEAC routine: one virtual subgrid loop.

    ``body`` is the loop body (executed once per four-element trip);
    the closing ``jnz ac2 <label>`` back edge is implicit in ``label``.
    """

    name: str
    params: list[ParamSpec] = field(default_factory=list)
    body: list[Instr] = field(default_factory=list)
    spill_slots: int = 0  # per-call PE scratch streams, bound from aP15 down
    dtype: str = "float64"  # element dtype of the routine's spill scratch

    @property
    def label(self) -> str:
        return f"{self.name}_"

    def instruction_count(self) -> int:
        """Issue slots in the loop body (a dual-issue pair is one slot)."""
        return len(self.body)

    def memory_refs(self) -> int:
        """Total loads/stores per trip, however issued."""
        refs = 0
        for instr in self.body:
            refs += sum(isinstance(o, Mem) for o in instr.operands)
            if instr.paired is not None:
                refs += sum(isinstance(o, Mem)
                            for o in instr.paired.operands)
        return refs
