"""PEAC (Processing Element Assembly Code): ISA, assembler, routines."""

from .assembler import format_instr, format_routine, parse_instr, parse_routine
from .isa import (
    NUM_CREGS,
    NUM_PREGS,
    NUM_SREGS,
    NUM_VREGS,
    OPCODES,
    VECTOR_WIDTH,
    CReg,
    Imm,
    Instr,
    LabelRef,
    Mem,
    Operand,
    ParamSpec,
    PeacError,
    PReg,
    Routine,
    SReg,
    VReg,
)

__all__ = [name for name in dir() if not name.startswith("_")]
