"""The NIR declaration domain (Figure 5).

Declarative operators bind identifiers to types and, optionally, initial
values.  They do not by themselves define scoping; scoping is achieved
with the imperative bridge operator ``WITH_DECL(d, I)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import types as ty
from . import values as v


@dataclass(frozen=True)
class Declaration:
    """Base class for declaration-domain constructors."""


@dataclass(frozen=True)
class Decl(Declaration):
    """``DECL(id, T)`` — a simple declaration binding ``name`` to ``type``."""

    name: str
    type: ty.NirType

    def __str__(self) -> str:
        return f"DECL('{self.name}', {self.type})"


@dataclass(frozen=True)
class DeclSet(Declaration):
    """``DECLSET(d list)`` — multiple declarations introduced together."""

    decls: tuple[Declaration, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(d) for d in self.decls)
        return f"DECLSET[{inner}]"


@dataclass(frozen=True)
class Initialized(Declaration):
    """``INITIALIZED(id, T, V)`` — a declaration plus an initial value."""

    name: str
    type: ty.NirType
    value: v.Value

    def __str__(self) -> str:
        return f"INITIALIZED('{self.name}', {self.type}, {self.value})"


def bindings(d: Declaration) -> list[tuple[str, ty.NirType]]:
    """Flatten a declaration into ``(name, type)`` pairs in source order."""
    if isinstance(d, Decl):
        return [(d.name, d.type)]
    if isinstance(d, Initialized):
        return [(d.name, d.type)]
    if isinstance(d, DeclSet):
        out: list[tuple[str, ty.NirType]] = []
        for sub in d.decls:
            out.extend(bindings(sub))
        return out
    raise TypeError(f"not a declaration: {d!r}")


def initial_values(d: Declaration) -> dict[str, v.Value]:
    """Map of initialized names to their initializer value trees."""
    out: dict[str, v.Value] = {}
    if isinstance(d, Initialized):
        out[d.name] = d.value
    elif isinstance(d, DeclSet):
        for sub in d.decls:
            out.update(initial_values(sub))
    return out
