"""The NIR value domain (Figure 5) and field restrictors (Figure 6).

Value-producing operators represent program actions which compute values:
references to the store (``SVAR``/``AVAR``), constants (``SCALAR``),
function calls (``FCNCALL``) and computations parameterized by other
value-producers (``BINARY``/``UNARY``).

The shape facet adds:

* ``AVar(i, F)`` — references storage bound to identifier ``i`` through a
  field action ``F``;
* the field-restrictor domain ``F``: ``Subscript`` (shapewise
  subscripting), ``Everywhere`` (universal selection), and
  ``LocalUnder(S, d)`` (construction of a local coordinate matrix), which
  also appears directly in value position when a computation uses grid
  coordinates (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sourceloc import SourceLoc
from . import types as ty
from .ops import BinOp, UnOp


@dataclass(frozen=True)
class Value:
    """Base class for all value-domain constructors.

    ``loc`` is the source position of the Fortran expression this value
    was lowered from (None for synthesized values).  It is excluded from
    equality and hashing, so transforms that rely on structural equality
    (CSE memo tables, mask comparisons) are unaffected by stamping.
    """

    loc: SourceLoc | None = field(default=None, compare=False, repr=False,
                                  kw_only=True)


# ---------------------------------------------------------------------------
# Field restrictor domain (F)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldAction:
    """Base class for field restrictors, "an overrestricted form of shapes"."""


@dataclass(frozen=True)
class Everywhere(FieldAction):
    """Universal selection: reference every point of the declared shape.

    ``everywhere`` decouples parallel data movement from the specific shape
    associated with the array variable; the shape is specified by context.
    """

    def __str__(self) -> str:
        return "everywhere"


@dataclass(frozen=True)
class Subscript(FieldAction):
    """Shapewise subscripting: one index value per axis.

    An index may be any scalar-producing :class:`Value` (including
    :class:`LocalUnder` coordinates, as in Figure 9's diagonal access
    ``a(i, i)``) or an :class:`IndexRange` describing a Fortran section
    triplet.
    """

    indices: tuple["Value", ...]

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.indices)
        return f"subscript[{inner}]"


@dataclass(frozen=True)
class LocalUnder(Value, FieldAction):
    """``local_under(S, d)``: the coordinate matrix of axis ``d`` of ``S``.

    Doubles as a value (Figure 7: ``i + j`` becomes the sum of two
    coordinate fields) and as a field restrictor component.  Axes are
    numbered from 1, following the paper.
    """

    shape: object  # sh.Shape; typed loosely to avoid an import cycle
    dim: int

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError("local_under axes are numbered from 1")

    def __str__(self) -> str:
        return f"local_under({self.shape},{self.dim})"


# ---------------------------------------------------------------------------
# Value domain (V)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scalar(Value):
    """``SCALAR(T, s_rep)`` — a typed scalar constant."""

    type: ty.ScalarType
    rep: object  # int | float | bool

    def __str__(self) -> str:
        return f"SCALAR({self.type},'{self.rep}')"

    @property
    def pyvalue(self):
        if self.type.is_logical:
            return bool(self.rep)
        if self.type.is_integer:
            return int(self.rep)
        return float(self.rep)


TRUE = Scalar(ty.LOGICAL_32, True)
FALSE = Scalar(ty.LOGICAL_32, False)


def int_const(v: int) -> Scalar:
    return Scalar(ty.INTEGER_32, int(v))


def float_const(v: float, double: bool = True) -> Scalar:
    return Scalar(ty.FLOAT_64 if double else ty.FLOAT_32, float(v))


@dataclass(frozen=True)
class SVar(Value):
    """``SVAR(id)`` — a scalar variable reference."""

    name: str

    def __str__(self) -> str:
        return f"SVAR '{self.name}'"


@dataclass(frozen=True)
class AVar(Value):
    """``AVAR(id, F)`` — an array variable referenced through field action F."""

    name: str
    field: FieldAction = field(default_factory=Everywhere)

    def __str__(self) -> str:
        return f"AVAR('{self.name}', {self.field})"


@dataclass(frozen=True)
class Binary(Value):
    """``BINARY(binop, V, V)`` — a binary computation."""

    op: BinOp
    left: Value
    right: Value

    def __str__(self) -> str:
        return f"BINARY({self.op.name.title()}, {self.left}, {self.right})"


@dataclass(frozen=True)
class Unary(Value):
    """``UNARY(monop, V)`` — a unary computation."""

    op: UnOp
    operand: Value

    def __str__(self) -> str:
        return f"UNARY({self.op.name.title()}, {self.operand})"


@dataclass(frozen=True)
class FcnCall(Value):
    """``FCNCALL(id, args)`` — a (possibly intrinsic) function call.

    Communication intrinsics such as ``cshift`` survive lowering as
    ``FcnCall`` nodes; the FE/NIR compiler replaces them with CM runtime
    library calls (section 5.2).
    """

    name: str
    args: tuple[Value, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"FCNCALL('{self.name}', [{inner}])"


@dataclass(frozen=True)
class IndexRange(Value):
    """A Fortran section triplet ``lo:hi:stride`` inside a ``Subscript``.

    ``None`` bounds mean "the declared bound along this axis"; the
    shapechecker resolves them.  Only valid as a ``Subscript`` index.
    """

    lo: Value | None = None
    hi: Value | None = None
    stride: Value | None = None

    def __str__(self) -> str:
        def part(v):
            return "" if v is None else str(v)

        s = f"{part(self.lo)}:{part(self.hi)}"
        if self.stride is not None:
            s += f":{self.stride}"
        return s


@dataclass(frozen=True)
class RefIn(Value):
    """``REF_IN`` — receives a call-by-reference parameter."""

    name: str

    def __str__(self) -> str:
        return f"REF_IN '{self.name}'"


@dataclass(frozen=True)
class CopyIn(Value):
    """``COPY_IN`` — receives a call-by-value parameter."""

    name: str

    def __str__(self) -> str:
        return f"COPY_IN '{self.name}'"


# ---------------------------------------------------------------------------
# Value-tree utilities
# ---------------------------------------------------------------------------


def children(v: Value) -> tuple[Value, ...]:
    """Immediate value-domain children of a value node."""
    if isinstance(v, Binary):
        return (v.left, v.right)
    if isinstance(v, Unary):
        return (v.operand,)
    if isinstance(v, FcnCall):
        return v.args
    if isinstance(v, AVar) and isinstance(v.field, Subscript):
        return v.field.indices
    if isinstance(v, IndexRange):
        return tuple(x for x in (v.lo, v.hi, v.stride) if x is not None)
    return ()


def walk(v: Value):
    """Pre-order traversal of a value tree."""
    yield v
    for c in children(v):
        yield from walk(c)


def scalar_vars(v: Value) -> set[str]:
    """Names of all scalar variables referenced in a value tree."""
    return {n.name for n in walk(v) if isinstance(n, SVar)}


def array_vars(v: Value) -> set[str]:
    """Names of all array variables referenced in a value tree."""
    return {n.name for n in walk(v) if isinstance(n, AVar)}


def fcn_calls(v: Value) -> list[FcnCall]:
    """All function-call nodes in a value tree, in pre-order."""
    return [n for n in walk(v) if isinstance(n, FcnCall)]


def is_constant(v: Value) -> bool:
    """True when the value tree contains no store references or calls."""
    return all(
        isinstance(n, (Scalar, Binary, Unary, IndexRange)) for n in walk(v)
    )
