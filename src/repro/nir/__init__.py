"""Native Intermediate Language (NIR): the compiler's semantic algebra.

NIR is the "common source notation for each component of the prototype
compiler after the initial semantic lowering phase" (section 3).  It
comprises five semantic domains — types, declarations, values,
imperatives and shapes — plus the field-restrictor domain bridging
values and shapes.  Each domain lives in its own module; this package
re-exports the full operator vocabulary of Figures 5 and 6.
"""

from .ops import BinOp, UnOp
from .shapes import (
    DomainRef,
    Interval,
    Point,
    ProdDom,
    SerialInterval,
    Shape,
    ShapeError,
    axis_extent,
    conformable,
    dims_of,
    extents,
    interval_of_extent,
    is_parallel,
    is_serial,
    parallelized,
    points,
    rank,
    resolve,
    same_domain,
    serialized,
    shape_of_extents,
    size,
)
from .types import (
    FLOAT_32,
    FLOAT_64,
    INTEGER_32,
    LOGICAL_32,
    DField,
    NirType,
    ScalarType,
    TypeError_,
    base_element,
    flop_weight,
    full_shape,
    is_field,
    join_arith,
)
from .values import (
    FALSE,
    TRUE,
    AVar,
    Binary,
    CopyIn,
    Everywhere,
    FcnCall,
    FieldAction,
    IndexRange,
    LocalUnder,
    RefIn,
    Scalar,
    Subscript,
    SVar,
    Unary,
    Value,
    array_vars,
    float_const,
    int_const,
    is_constant,
    scalar_vars,
)
from .decls import Decl, Declaration, DeclSet, Initialized, bindings, initial_values
from .imperatives import (
    CallStmt,
    Concurrently,
    CopyOut,
    Do,
    IfThenElse,
    Imperative,
    Move,
    MoveClause,
    Program,
    RefOut,
    Sequentially,
    Skip,
    While,
    WithDecl,
    WithDomain,
    move1,
    seq,
)
from .interp import InterpError, NirInterpreter, NirResult, run_nir
from .pretty import pretty
from .visitor import (
    collect,
    count_nodes,
    node_children,
    rebuild,
    rename_domains,
    substitute_svars,
    transform_bottom_up,
    transform_top_down,
    walk_all,
)

__all__ = [name for name in dir() if not name.startswith("_")]
