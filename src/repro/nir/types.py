"""The NIR type domain (Figure 5), extended with ``dfield`` (Figure 6).

The core types model the "machine-level" types of the semantic algebra:
32-bit integers and logicals and single/double precision floats.  The
shape facet adds the bridging type operator ``dfield : S * T -> T``, a
field of elements of a given type laid out over a shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import shapes as sh


class TypeError_(Exception):
    """Raised by the static typechecker (named to avoid builtins clash)."""


@dataclass(frozen=True)
class NirType:
    """Base class for all NIR type-domain constructors."""


@dataclass(frozen=True)
class ScalarType(NirType):
    """One of the four core machine-level scalar types."""

    kind: str  # 'integer_32' | 'logical_32' | 'float_32' | 'float_64'

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise TypeError_(f"unknown scalar type kind: {self.kind!r}")

    def __str__(self) -> str:
        return self.kind

    @property
    def dtype(self) -> np.dtype:
        """The numpy dtype this scalar type simulates with."""
        return _KINDS[self.kind]

    @property
    def is_float(self) -> bool:
        return self.kind in ("float_32", "float_64")

    @property
    def is_integer(self) -> bool:
        return self.kind == "integer_32"

    @property
    def is_logical(self) -> bool:
        return self.kind == "logical_32"

    @property
    def bits(self) -> int:
        return 64 if self.kind == "float_64" else 32


_KINDS = {
    "integer_32": np.dtype(np.int32),
    "logical_32": np.dtype(np.int32),  # CM logicals are 32-bit words
    "float_32": np.dtype(np.float32),
    "float_64": np.dtype(np.float64),
}

INTEGER_32 = ScalarType("integer_32")
LOGICAL_32 = ScalarType("logical_32")
FLOAT_32 = ScalarType("float_32")
FLOAT_64 = ScalarType("float_64")


@dataclass(frozen=True)
class DField(NirType):
    """``dfield : S * T -> T`` — a field of ``element`` values over ``shape``.

    ``element`` may itself be a ``DField``, which is one interpretation of
    the shape cross-product (the paper, section 3.2).
    """

    shape: sh.Shape
    element: NirType

    def __post_init__(self) -> None:
        if not isinstance(self.shape, sh.Shape):
            raise TypeError_("dfield shape must be a Shape")
        if not isinstance(self.element, NirType):
            raise TypeError_("dfield element must be a NirType")

    def __str__(self) -> str:
        return f"dfield({{shape={self.shape},element={self.element}}})"


def base_element(ty: NirType) -> ScalarType:
    """The innermost scalar element type of a possibly-nested dfield."""
    while isinstance(ty, DField):
        ty = ty.element
    if not isinstance(ty, ScalarType):
        raise TypeError_(f"no scalar element in {ty}")
    return ty


def full_shape(ty: NirType, env: sh.DomainEnv | None = None) -> sh.Shape | None:
    """The combined shape of a possibly-nested dfield, ``None`` for scalars.

    Nested dfields flatten by shape cross-product, mirroring the paper's
    reading of ``dfield(S, dfield(S', T))``.
    """
    dims: list[sh.Shape] = []
    while isinstance(ty, DField):
        dims.extend(sh.dims_of(ty.shape, env))
        ty = ty.element
    if not dims:
        return None
    if len(dims) == 1:
        return dims[0]
    return sh.ProdDom(tuple(dims))


def is_field(ty: NirType) -> bool:
    return isinstance(ty, DField)


def join_arith(a: ScalarType, b: ScalarType) -> ScalarType:
    """Usual arithmetic conversions for mixed-type binary operations."""
    order = {"logical_32": 0, "integer_32": 1, "float_32": 2, "float_64": 3}
    pick = a if order[a.kind] >= order[b.kind] else b
    if pick.is_logical:
        # logical op logical stays logical; arithmetic promotes to integer
        return pick
    return pick


def flop_weight(ty: ScalarType) -> int:
    """Floating-point operations counted per elemental arithmetic op.

    Integer and logical operations count zero flops; both float widths
    count one (the CM community counted 64-bit flops for SWE).
    """
    return 1 if ty.is_float else 0
