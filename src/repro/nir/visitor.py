"""Generic traversal and rewriting over NIR trees.

NIR nodes are frozen dataclasses, so rewriting is done by rebuilding.
These helpers implement the paper's notion of transformations that
"propagate through the program by way of NIR's bridging operators, where
domains meet": a single rewriter visits imperative, value, declaration
and shape nodes uniformly.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from . import decls as d
from . import imperatives as imp
from . import shapes as sh
from . import types as ty
from . import values as v

NirNode = object  # any node of any domain


def _is_node(x: object) -> bool:
    return isinstance(
        x,
        (imp.Imperative, imp.MoveClause, v.Value, v.FieldAction,
         d.Declaration, sh.Shape, ty.NirType),
    )


def node_children(node: NirNode) -> list[NirNode]:
    """All NIR-node children of a node, across every semantic domain."""
    out: list[NirNode] = []
    for f in dataclasses.fields(node):
        val = getattr(node, f.name)
        if _is_node(val):
            out.append(val)
        elif isinstance(val, tuple):
            out.extend(x for x in val if _is_node(x))
    return out


def walk_all(node: NirNode):
    """Pre-order traversal across all semantic domains."""
    yield node
    for c in node_children(node):
        yield from walk_all(c)


def rebuild(node: NirNode, mapper: Callable[[NirNode], NirNode]) -> NirNode:
    """Rebuild ``node`` with each NIR-node field replaced by ``mapper(field)``.

    Non-node fields (names, ints, enums) are preserved.  Tuples of nodes
    are mapped elementwise.  Returns the original object when nothing
    changed, so rewrites share unmodified subtrees.
    """
    changes = {}
    for f in dataclasses.fields(node):
        val = getattr(node, f.name)
        if _is_node(val):
            new = mapper(val)
            if new is not val:
                changes[f.name] = new
        elif isinstance(val, tuple) and any(_is_node(x) for x in val):
            new_tuple = tuple(mapper(x) if _is_node(x) else x for x in val)
            if any(a is not b for a, b in zip(new_tuple, val)):
                changes[f.name] = new_tuple
    if not changes:
        return node
    return dataclasses.replace(node, **changes)


def transform_bottom_up(
    node: NirNode, fn: Callable[[NirNode], NirNode]
) -> NirNode:
    """Apply ``fn`` to every node, children first.

    ``fn`` receives each (already-rebuilt) node and returns a replacement
    or the node itself.
    """

    def rec(n: NirNode) -> NirNode:
        rebuilt = rebuild(n, rec)
        return fn(rebuilt)

    return rec(node)


def transform_top_down(
    node: NirNode, fn: Callable[[NirNode], NirNode]
) -> NirNode:
    """Apply ``fn`` to every node, parents first."""

    def rec(n: NirNode) -> NirNode:
        replaced = fn(n)
        return rebuild(replaced, rec)

    return rec(node)


def substitute_svars(node: NirNode, bindings: dict[str, v.Value]) -> NirNode:
    """Replace scalar variable references by values throughout a tree."""

    def fn(n: NirNode) -> NirNode:
        if isinstance(n, v.SVar) and n.name in bindings:
            return bindings[n.name]
        return n

    return transform_bottom_up(node, fn)


def rename_domains(node: NirNode, renames: dict[str, str]) -> NirNode:
    """Consistently rename domain bindings and references."""

    def fn(n: NirNode) -> NirNode:
        if isinstance(n, sh.DomainRef) and n.name in renames:
            return sh.DomainRef(renames[n.name])
        if isinstance(n, imp.WithDomain) and n.name in renames:
            return dataclasses.replace(n, name=renames[n.name])
        return n

    return transform_bottom_up(node, fn)


def count_nodes(node: NirNode, kind: type | tuple[type, ...]) -> int:
    """Number of nodes of the given class(es) in the tree."""
    return sum(1 for n in walk_all(node) if isinstance(n, kind))


def collect(node: NirNode, kind: type | tuple[type, ...]) -> list[NirNode]:
    """All nodes of the given class(es), in pre-order."""
    return [n for n in walk_all(node) if isinstance(n, kind)]
