"""The NIR shape domain (Figure 6 of the paper).

Shapes are "a class of primitive semantic operators which model iteration"
over abstract Cartesian product spaces.  A shape may be *parallel* (its
points carry no dependencies and may be executed concurrently, as on the
CM's processing elements) or *serial* (its points must be visited in
order, as in a Fortran DO loop).

The constructors mirror the paper's shape domain:

* ``Point(i)``                — a single point,
* ``Interval(lo, hi)``        — a parallel vector shape,
* ``SerialInterval(lo, hi)``  — a serial vector shape,
* ``ProdDom([s1, s2, ...])``  — the shape cross-product,
* ``DomainRef(name)``         — a reference to a domain bound by the
  imperative bridge operator ``WITH_DOMAIN`` (Figures 8-10).

Intervals carry an optional stride so that Fortran array sections such as
``A(1:32:2)`` have a direct shape representation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class ShapeError(Exception):
    """Raised for malformed shapes or shape-algebra misuse."""


@dataclass(frozen=True)
class Shape:
    """Base class for all shape-domain constructors."""

    def __post_init__(self) -> None:  # pragma: no cover - abstract guard
        if type(self) is Shape:
            raise ShapeError("Shape is abstract; use a concrete constructor")


@dataclass(frozen=True)
class Point(Shape):
    """A single point of an iteration space."""

    value: int

    def __str__(self) -> str:
        return f"point {self.value}"


@dataclass(frozen=True)
class Interval(Shape):
    """A parallel vector shape covering ``lo..hi`` (inclusive) by ``stride``.

    All points of a parallel interval may be computed concurrently; on the
    CM/2 they are laid out across processing elements.
    """

    lo: int
    hi: int
    stride: int = 1

    def __post_init__(self) -> None:
        if self.stride == 0:
            raise ShapeError("interval stride must be non-zero")

    def __str__(self) -> str:
        if self.stride != 1:
            return f"interval(point {self.lo}..point {self.hi} by {self.stride})"
        return f"interval(point {self.lo}..point {self.hi})"


@dataclass(frozen=True)
class SerialInterval(Shape):
    """A serial vector shape: points must be visited in order."""

    lo: int
    hi: int
    stride: int = 1

    def __post_init__(self) -> None:
        if self.stride == 0:
            raise ShapeError("serial interval stride must be non-zero")

    def __str__(self) -> str:
        if self.stride != 1:
            return (f"serial_interval(point {self.lo}..point {self.hi} "
                    f"by {self.stride})")
        return f"serial_interval(point {self.lo}..point {self.hi})"


@dataclass(frozen=True)
class ProdDom(Shape):
    """The shape cross-product of one or more component shapes."""

    dims: tuple[Shape, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise ShapeError("prod_dom requires at least one dimension")
        if not all(isinstance(d, Shape) for d in self.dims):
            raise ShapeError("prod_dom dimensions must be shapes")

    def __str__(self) -> str:
        inner = ", ".join(str(d) for d in self.dims)
        return f"prod_dom[{inner}]"


@dataclass(frozen=True)
class DomainRef(Shape):
    """A reference to a named domain introduced by ``WITH_DOMAIN``."""

    name: str

    def __str__(self) -> str:
        return f"domain '{self.name}'"


# ---------------------------------------------------------------------------
# Shape algebra
# ---------------------------------------------------------------------------

DomainEnv = dict[str, Shape]
"""Environment mapping domain names to their defining shapes."""


def resolve(shape: Shape, env: DomainEnv | None = None) -> Shape:
    """Chase ``DomainRef`` indirections until a structural shape remains.

    ``ProdDom`` components are resolved recursively, so the result contains
    no ``DomainRef`` nodes at any depth.
    """
    env = env or {}
    seen: set[str] = set()
    while isinstance(shape, DomainRef):
        if shape.name in seen:
            raise ShapeError(f"cyclic domain definition: '{shape.name}'")
        seen.add(shape.name)
        try:
            shape = env[shape.name]
        except KeyError:
            raise ShapeError(f"unbound domain: '{shape.name}'") from None
    if isinstance(shape, ProdDom):
        return ProdDom(tuple(resolve(d, env) for d in shape.dims))
    return shape


def dims_of(shape: Shape, env: DomainEnv | None = None) -> tuple[Shape, ...]:
    """Flatten a shape into its one-dimensional components.

    A ``Point`` or interval is a single component; a ``ProdDom`` flattens
    to the concatenation of its (recursively flattened) components, which
    is the interpretation of nested ``dfield`` types the paper mentions.
    """
    shape = resolve(shape, env)
    if isinstance(shape, ProdDom):
        out: list[Shape] = []
        for d in shape.dims:
            out.extend(dims_of(d, env))
        return tuple(out)
    return (shape,)


def rank(shape: Shape, env: DomainEnv | None = None) -> int:
    """Number of one-dimensional components of the shape."""
    return len(dims_of(shape, env))


def _axis_points(dim: Shape) -> list[int]:
    if isinstance(dim, Point):
        return [dim.value]
    if isinstance(dim, (Interval, SerialInterval)):
        if dim.stride > 0:
            return list(range(dim.lo, dim.hi + 1, dim.stride))
        return list(range(dim.lo, dim.hi - 1, dim.stride))
    raise ShapeError(f"not a one-dimensional shape: {dim}")


def axis_extent(dim: Shape) -> int:
    """Number of points along a one-dimensional shape component."""
    if isinstance(dim, Point):
        return 1
    if isinstance(dim, (Interval, SerialInterval)):
        if dim.stride > 0:
            span = dim.hi - dim.lo
        else:
            span = dim.lo - dim.hi
        if span < 0:
            return 0
        return span // abs(dim.stride) + 1
    raise ShapeError(f"not a one-dimensional shape: {dim}")


def extents(shape: Shape, env: DomainEnv | None = None) -> tuple[int, ...]:
    """Per-axis point counts of a shape."""
    return tuple(axis_extent(d) for d in dims_of(shape, env))


def size(shape: Shape, env: DomainEnv | None = None) -> int:
    """Total number of points in the shape."""
    return math.prod(extents(shape, env))


def points(shape: Shape, env: DomainEnv | None = None):
    """Iterate the points of a shape in row-major order.

    Each point is a tuple of axis coordinates.  Used by the serial-loop
    unrolling rules of Figure 4 and by the reference semantics of ``DO``.
    """
    axes = [_axis_points(d) for d in dims_of(shape, env)]

    def rec(prefix: tuple[int, ...], remaining: list[list[int]]):
        if not remaining:
            yield prefix
            return
        for coord in remaining[0]:
            yield from rec(prefix + (coord,), remaining[1:])

    return rec((), axes)


def is_serial(shape: Shape, env: DomainEnv | None = None) -> bool:
    """True if *any* component of the shape demands serial iteration.

    A shape containing a ``SerialInterval`` component cannot be handed to
    the processing elements as a single data-parallel block; the serial
    axis must be iterated by the host (or unrolled, Figure 4).
    """
    return any(isinstance(d, SerialInterval) for d in dims_of(shape, env))


def is_parallel(shape: Shape, env: DomainEnv | None = None) -> bool:
    """True if every component of the shape permits concurrent execution."""
    return not is_serial(shape, env)


def conformable(a: Shape, b: Shape, env: DomainEnv | None = None) -> bool:
    """Shape conformance test used by static shapechecking.

    Two shapes conform when their per-axis extents agree, which is the
    Fortran 90 rule for operands of whole-array operations.  A scalar
    (rank-0) operand conforms with anything by broadcast, but scalars are
    not represented as shapes here, so this test is only for field-field
    interactions.
    """
    return extents(a, env) == extents(b, env)


def same_domain(a: Shape, b: Shape, env: DomainEnv | None = None) -> bool:
    """Stronger test than :func:`conformable`: identical resolved structure.

    The domain-blocking transformation (Figure 9) groups computations
    whose shapes are *identical and identically aligned*, not merely
    conformable, so it relies on this predicate.
    """
    return resolve(a, env) == resolve(b, env)


def serialized(shape: Shape, env: DomainEnv | None = None) -> Shape:
    """Return the shape with every parallel interval made serial."""
    shape = resolve(shape, env)
    if isinstance(shape, ProdDom):
        return ProdDom(tuple(serialized(d, env) for d in shape.dims))
    if isinstance(shape, Interval):
        return SerialInterval(shape.lo, shape.hi, shape.stride)
    return shape


def parallelized(shape: Shape, env: DomainEnv | None = None) -> Shape:
    """Return the shape with every serial interval made parallel."""
    shape = resolve(shape, env)
    if isinstance(shape, ProdDom):
        return ProdDom(tuple(parallelized(d, env) for d in shape.dims))
    if isinstance(shape, SerialInterval):
        return Interval(shape.lo, shape.hi, shape.stride)
    return shape


def interval_of_extent(n: int, *, serial: bool = False) -> Shape:
    """Convenience constructor: the 1-based interval with ``n`` points."""
    if n < 1:
        raise ShapeError("extent must be positive")
    if serial:
        return SerialInterval(1, n)
    return Interval(1, n)


def shape_of_extents(exts: tuple[int, ...] | list[int]) -> Shape:
    """Convenience constructor: a 1-based parallel shape with given extents."""
    dims = tuple(interval_of_extent(int(n)) for n in exts)
    if len(dims) == 1:
        return dims[0]
    return ProdDom(dims)
