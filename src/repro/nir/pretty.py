"""Pretty-printer producing the paper's S-expression-like NIR concrete syntax.

The output format follows Figures 7-10: nested constructors with
identifiers quoted, MOVEs printed one clause per line, and WITH_DOMAIN /
WITH_DECL scopes indented.  The printer is purely presentational; tests
assert on structural properties of the output rather than byte equality.
"""

from __future__ import annotations

from . import decls as d
from . import imperatives as imp
from . import shapes as sh
from . import types as ty
from . import values as v

_INDENT = "  "


def pretty(node: object, indent: int = 0) -> str:
    """Render any NIR node (any semantic domain) as indented text."""
    pad = _INDENT * indent
    if isinstance(node, imp.Imperative):
        return _imp(node, indent)
    if isinstance(node, imp.MoveClause):
        return pad + _clause(node)
    if isinstance(node, (v.Value, v.FieldAction)):
        return pad + _val(node)
    if isinstance(node, d.Declaration):
        return pad + str(node)
    if isinstance(node, (sh.Shape, ty.NirType)):
        return pad + str(node)
    raise TypeError(f"not an NIR node: {node!r}")


def _val(node: v.Value | v.FieldAction) -> str:
    return str(node)


def _clause(c: imp.MoveClause) -> str:
    mask = "True" if c.is_unconditional else str(c.mask)
    return f"({mask}, ({c.src}, {c.tgt}))"


def _imp(node: imp.Imperative, indent: int) -> str:
    pad = _INDENT * indent

    if isinstance(node, imp.Program):
        return pad + "PROGRAM(\n" + _imp(node.body, indent + 1) + ")"

    if isinstance(node, imp.WithDomain):
        head = f"{pad}WITH_DOMAIN(('{node.name}', {node.shape}),\n"
        return head + _imp(node.body, indent + 1) + ")"

    if isinstance(node, imp.WithDecl):
        head = f"{pad}WITH_DECL({node.decl},\n"
        return head + _imp(node.body, indent + 1) + ")"

    if isinstance(node, imp.Sequentially):
        inner = ",\n".join(_imp(a, indent + 1) for a in node.actions)
        return f"{pad}SEQUENTIALLY\n{pad}[\n{inner}\n{pad}]"

    if isinstance(node, imp.Concurrently):
        inner = ",\n".join(_imp(a, indent + 1) for a in node.actions)
        return f"{pad}CONCURRENTLY\n{pad}[\n{inner}\n{pad}]"

    if isinstance(node, imp.Move):
        body = (",\n" + pad + "      ").join(_clause(c) for c in node.clauses)
        return f"{pad}MOVE[{body}]"

    if isinstance(node, imp.Do):
        head = f"{pad}DO({node.shape},\n"
        return head + _imp(node.body, indent + 1) + ")"

    if isinstance(node, imp.IfThenElse):
        return (f"{pad}IFTHENELSE({node.cond},\n"
                + _imp(node.then, indent + 1) + ",\n"
                + _imp(node.els, indent + 1) + ")")

    if isinstance(node, imp.While):
        return f"{pad}WHILE({node.cond},\n" + _imp(node.body, indent + 1) + ")"

    return pad + str(node)
