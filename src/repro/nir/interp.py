"""A direct interpreter for NIR programs (the abstract machine).

"Together, the domains cover all dynamic program behaviors, and
productions of the algebra are equivalent to programs for this abstract
machine" (section 3.1).  This module makes that equivalence executable:
it runs any valid NIR program — lowered or transformed — directly, with
numpy as the store.  It is the mid-level oracle of the test suite,
sitting between the AST reference interpreter and the compiled machine
simulation: all three must agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lowering.environment import Environment
from ..runtime.nir_eval import NirEvaluator
from . import decls as d
from . import imperatives as imp
from . import shapes as sh
from . import types as ty
from . import values as v


class InterpError(Exception):
    """Raised on invalid NIR programs or unsupported constructs."""


@dataclass
class NirResult:
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    scalars: dict[str, object] = field(default_factory=dict)
    output: list[str] = field(default_factory=list)


class _Stop(Exception):
    pass


def run_nir(program: imp.Program, env: Environment,
            inputs: dict[str, np.ndarray] | None = None) -> NirResult:
    """Execute an NIR program against the given environment."""
    interp = NirInterpreter(env)
    if inputs:
        for name, values in inputs.items():
            np.copyto(interp.arrays[name], values, casting="unsafe")
    interp.run(program)
    return NirResult(arrays=interp.arrays, scalars=interp.scalars,
                     output=interp.output)


class NirInterpreter:
    def __init__(self, env: Environment) -> None:
        self.env = env
        self.domains: dict[str, sh.Shape] = dict(env.domains)
        self.arrays: dict[str, np.ndarray] = {}
        self.scalars: dict[str, object] = {}
        self.output: list[str] = []
        self.evaluator = NirEvaluator(
            read_array=lambda name: self.arrays[name],
            scalars=self.scalars, domains=self.domains)
        for sym in env.symbols.values():
            if sym.is_array:
                self.arrays[sym.name] = np.zeros(sym.extents,
                                                 dtype=sym.element.dtype)
            elif sym.init is not None:
                self.scalars[sym.name] = sym.init

    # ------------------------------------------------------------------

    def run(self, program: imp.Program) -> None:
        try:
            self.exec(program)
        except _Stop:
            pass

    def exec(self, node: imp.Imperative) -> None:
        if isinstance(node, imp.Program):
            self.exec(node.body)
        elif isinstance(node, imp.WithDomain):
            prior = self.domains.get(node.name)
            self.domains[node.name] = node.shape
            try:
                self.exec(node.body)
            finally:
                if prior is None:
                    self.domains.pop(node.name, None)
                else:
                    self.domains[node.name] = prior
        elif isinstance(node, imp.WithDecl):
            self._bind_decl(node.decl)
            self.exec(node.body)
        elif isinstance(node, imp.Sequentially):
            for action in node.actions:
                self.exec(action)
        elif isinstance(node, imp.Concurrently):
            # CONCURRENTLY composes independent actions; sequential
            # execution realizes any of its legal interleavings.
            for action in node.actions:
                self.exec(action)
        elif isinstance(node, imp.Move):
            for clause in node.clauses:
                self._move(clause)
        elif isinstance(node, imp.IfThenElse):
            if bool(self.evaluator.eval_scalar(node.cond)):
                self.exec(node.then)
            else:
                self.exec(node.els)
        elif isinstance(node, imp.While):
            while bool(self.evaluator.eval_scalar(node.cond)):
                self.exec(node.body)
        elif isinstance(node, imp.Do):
            self._do(node)
        elif isinstance(node, imp.CallStmt):
            self._call(node)
        elif isinstance(node, (imp.Skip, imp.RefOut, imp.CopyOut)):
            pass
        else:
            raise InterpError(
                f"cannot interpret {type(node).__name__}")

    # ------------------------------------------------------------------

    def _bind_decl(self, decl: d.Declaration) -> None:
        for name, nir_type in d.bindings(decl):
            if isinstance(nir_type, ty.DField):
                if name not in self.arrays:
                    shape = ty.full_shape(nir_type, self.domains)
                    self.arrays[name] = np.zeros(
                        sh.extents(shape, self.domains),
                        dtype=ty.base_element(nir_type).dtype)
        for name, value in d.initial_values(decl).items():
            self.scalars[name] = self.evaluator.eval_scalar(value)

    def _do(self, node: imp.Do) -> None:
        shape = sh.resolve(node.shape, self.domains)
        names = node.index_names
        saved = {n: self.scalars.get(n) for n in names}
        try:
            for point in sh.points(shape):
                for name, coord in zip(names, point):
                    self.scalars[name] = coord
                self.exec(node.body)
        finally:
            # DO over a shape leaves the last+1 value in Fortran, but the
            # shape algebra has no notion of "one past"; expose the last
            # coordinate visited plus stride for serial intervals.
            for name, prior in saved.items():
                if isinstance(shape, sh.SerialInterval):
                    count = sh.axis_extent(shape)
                    self.scalars[name] = shape.lo + count * shape.stride
                elif prior is not None:
                    self.scalars[name] = prior

    def _move(self, clause: imp.MoveClause) -> None:
        tgt = clause.tgt
        if isinstance(tgt, v.SVar):
            if bool(np.all(self.evaluator.eval_scalar(clause.mask))):
                self.scalars[tgt.name] = self.evaluator.eval_scalar(
                    clause.src)
            return
        if not isinstance(tgt, v.AVar):
            raise InterpError(f"invalid MOVE target {tgt}")
        data = self.arrays[tgt.name]
        index = self._target_index(data, tgt)
        current = data[index] if index is not None else data
        value = self.evaluator.eval(clause.src)
        mask = self.evaluator.eval(clause.mask)
        val = np.broadcast_to(np.asarray(value), np.shape(current))
        if np.ndim(mask) == 0:
            if not bool(mask):
                return
        else:
            m = np.broadcast_to(np.asarray(mask, bool), np.shape(current))
            val = np.where(m, val, current)
        if index is None:
            np.copyto(data, val, casting="unsafe")
        else:
            # Indexed assignment covers both strided views and scatter
            # through coordinate (fancy) indices.
            data[index] = np.asarray(val).astype(data.dtype, copy=False) \
                if val.dtype != data.dtype else val

    def _target_index(self, data: np.ndarray, tgt: v.AVar):
        """Index tuple of a target, or None for a whole-array store."""
        if isinstance(tgt.field, v.Everywhere):
            return None
        if isinstance(tgt.field, v.Subscript):
            indices = []
            has_gather = False
            has_slice = False
            for axis, idx in enumerate(tgt.field.indices):
                n = data.shape[axis]
                if isinstance(idx, v.IndexRange):
                    lo = self._idx(idx.lo, 1)
                    hi = self._idx(idx.hi, n)
                    st = self._idx(idx.stride, 1)
                    indices.append(slice(lo - 1, hi, st))
                    has_slice = True
                else:
                    out = self.evaluator.eval(idx)
                    if isinstance(out, np.ndarray) and out.ndim > 0:
                        has_gather = True
                        indices.append(np.asarray(out, np.int64) - 1)
                    else:
                        indices.append(int(out) - 1)
            if has_gather and has_slice:
                raise InterpError(
                    "scatter targets cannot mix ranges and coordinates")
            return tuple(indices)
        raise InterpError(f"cannot store through {tgt.field}")

    def _idx(self, value, default: int) -> int:
        if value is None:
            return default
        return int(self.evaluator.eval_scalar(value))

    def _call(self, node: imp.CallStmt) -> None:
        if node.name == "print":
            parts = []
            for arg in node.args:
                out = self.evaluator.eval(arg)
                if isinstance(out, np.ndarray) and out.ndim > 0:
                    parts.append(str(out))
                else:
                    parts.append(str(out if not isinstance(out, np.generic)
                                     else out.item()))
            self.output.append(" ".join(parts))
            return
        if node.name == "stop":
            raise _Stop()
        raise InterpError(f"unknown runtime call '{node.name}'")
