"""Operator vocabularies for the NIR value domain.

The paper's value domain builds computations with ``BINARY(binop, V, V)``
and ``UNARY(monop, V)`` (Figure 5).  This module enumerates the ``binop``
and ``monop`` vocabularies used by the Fortran-90-Y prototype: Fortran's
arithmetic, relational and logical operators plus the elemental intrinsic
functions that compile to single node instructions.
"""

from __future__ import annotations

import enum


class BinOp(enum.Enum):
    """Binary operator vocabulary for ``BINARY`` value nodes."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    POW = "**"
    MOD = "mod"
    MIN = "min"
    MAX = "max"
    EQ = "=="
    NE = "/="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = ".and."
    OR = ".or."
    EQV = ".eqv."
    NEQV = ".neqv."

    @property
    def is_arithmetic(self) -> bool:
        return self in _ARITHMETIC

    @property
    def is_relational(self) -> bool:
        return self in _RELATIONAL

    @property
    def is_logical(self) -> bool:
        return self in _LOGICAL

    @property
    def is_commutative(self) -> bool:
        return self in _COMMUTATIVE


_ARITHMETIC = frozenset(
    {BinOp.ADD, BinOp.SUB, BinOp.MUL, BinOp.DIV, BinOp.POW, BinOp.MOD,
     BinOp.MIN, BinOp.MAX}
)
_RELATIONAL = frozenset(
    {BinOp.EQ, BinOp.NE, BinOp.LT, BinOp.LE, BinOp.GT, BinOp.GE}
)
_LOGICAL = frozenset({BinOp.AND, BinOp.OR, BinOp.EQV, BinOp.NEQV})
_COMMUTATIVE = frozenset(
    {BinOp.ADD, BinOp.MUL, BinOp.MIN, BinOp.MAX, BinOp.EQ, BinOp.NE,
     BinOp.AND, BinOp.OR, BinOp.EQV, BinOp.NEQV}
)


class UnOp(enum.Enum):
    """Unary operator vocabulary for ``UNARY`` value nodes."""

    NEG = "-"
    NOT = ".not."
    ABS = "abs"
    SQRT = "sqrt"
    SIN = "sin"
    COS = "cos"
    TAN = "tan"
    ASIN = "asin"
    ACOS = "acos"
    ATAN = "atan"
    EXP = "exp"
    LOG = "log"
    LOG10 = "log10"
    FLOOR = "floor"
    CEILING = "ceiling"
    # Type conversions (Fortran REAL()/INT()/DBLE() intrinsics).
    TO_INT = "int"
    TO_FLOAT32 = "real"
    TO_FLOAT64 = "dble"

    @property
    def is_transcendental(self) -> bool:
        return self in _TRANSCENDENTAL

    @property
    def is_conversion(self) -> bool:
        return self in _CONVERSION


_TRANSCENDENTAL = frozenset(
    {UnOp.SIN, UnOp.COS, UnOp.TAN, UnOp.ASIN, UnOp.ACOS, UnOp.ATAN,
     UnOp.EXP, UnOp.LOG, UnOp.LOG10, UnOp.SQRT}
)
_CONVERSION = frozenset({UnOp.TO_INT, UnOp.TO_FLOAT32, UnOp.TO_FLOAT64})
