"""The NIR imperative domain (Figure 5) with the shape bridge ``DO``.

Imperative operators model dynamic program behaviours: sequential and
concurrent composition, the store (``MOVE``), control flow, scope
(``WITH_DECL``) and — from the shape facet — iteration over shapes
(``DO(S, I)``) and domain binding (``WITH_DOMAIN``, Figures 8-10).

``MOVE`` is the paper's masked multi-move:
``MOVE [(mask1, (src1, tgt1)), (mask2, (src2, tgt2)), ...]`` moves each
source to its target wherever the corresponding mask holds.  A blocked
``MOVE`` with several clauses compiles to a single PEAC computation burst
(Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sourceloc import SourceLoc
from . import decls as d
from . import shapes as sh
from . import values as v


@dataclass(frozen=True)
class Imperative:
    """Base class for imperative-domain constructors."""


@dataclass(frozen=True)
class MoveClause:
    """One ``(mask, (src, tgt))`` element of a ``MOVE``.

    A mask of :data:`~repro.nir.values.TRUE` means the move is
    unconditional, matching the paper's ``(True, (src, tgt))`` notation.
    """

    mask: v.Value
    src: v.Value
    tgt: v.Value
    # Source position of the originating assignment; non-comparing so
    # clause equality stays structural across transform rewrites.
    loc: SourceLoc | None = field(default=None, compare=False, repr=False,
                                  kw_only=True)

    def __str__(self) -> str:
        return f"({self.mask}, ({self.src}, {self.tgt}))"

    @property
    def is_unconditional(self) -> bool:
        return self.mask == v.TRUE


@dataclass(frozen=True)
class Move(Imperative):
    """``MOVE((V*(V*V)) list)`` — move multiple values under masks."""

    clauses: tuple[MoveClause, ...]

    def __str__(self) -> str:
        inner = ",\n      ".join(str(c) for c in self.clauses)
        return f"MOVE[{inner}]"


def move1(src: v.Value, tgt: v.Value, mask: v.Value = v.TRUE,
          loc: SourceLoc | None = None) -> Move:
    """Convenience constructor for a single-clause MOVE."""
    return Move((MoveClause(mask, src, tgt, loc=loc),))


@dataclass(frozen=True)
class Sequentially(Imperative):
    """``SEQUENTIALLY(I list)`` — sequential composition."""

    actions: tuple[Imperative, ...]

    def __str__(self) -> str:
        inner = "; ".join(str(a) for a in self.actions)
        return f"SEQUENTIALLY[{inner}]"


@dataclass(frozen=True)
class Concurrently(Imperative):
    """``CONCURRENTLY(I list)`` — concurrent composition."""

    actions: tuple[Imperative, ...]

    def __str__(self) -> str:
        inner = "; ".join(str(a) for a in self.actions)
        return f"CONCURRENTLY[{inner}]"


@dataclass(frozen=True)
class Skip(Imperative):
    """``SKIP`` — the empty action, defined as ``SEQUENTIALLY nil``."""

    def __str__(self) -> str:
        return "SKIP"


@dataclass(frozen=True)
class IfThenElse(Imperative):
    """``IFTHENELSE(V, I, I)`` — classical scalar-condition branch."""

    cond: v.Value
    then: Imperative
    els: Imperative = field(default_factory=Skip)

    def __str__(self) -> str:
        return f"IFTHENELSE({self.cond}, {self.then}, {self.els})"


@dataclass(frozen=True)
class While(Imperative):
    """``WHILE(V, I)`` — classical while-construct."""

    cond: v.Value
    body: Imperative

    def __str__(self) -> str:
        return f"WHILE({self.cond}, {self.body})"


@dataclass(frozen=True)
class Do(Imperative):
    """``DO(S, I)`` — carry out ``body`` at each point of shape ``shape``.

    Whether the modelled loop executes serially or in parallel depends
    entirely on the shape (section 3.2).  ``index_names`` optionally binds
    loop-index scalar names to the axes of the shape, so serial Fortran DO
    loops keep their induction variables through lowering.
    """

    shape: sh.Shape
    body: Imperative
    index_names: tuple[str, ...] = ()

    def __str__(self) -> str:
        return f"DO({self.shape}, {self.body})"


@dataclass(frozen=True)
class WithDecl(Imperative):
    """``WITH_DECL(D, I)`` — execute ``body`` with ``decl`` visible."""

    decl: d.Declaration
    body: Imperative

    def __str__(self) -> str:
        return f"WITH_DECL({self.decl}, {self.body})"


@dataclass(frozen=True)
class WithDomain(Imperative):
    """``WITH_DOMAIN((name, S), I)`` — bind a named shape domain over body."""

    name: str
    shape: sh.Shape
    body: Imperative

    def __str__(self) -> str:
        return f"WITH_DOMAIN(('{self.name}', {self.shape}), {self.body})"


@dataclass(frozen=True)
class Program(Imperative):
    """``PROGRAM(I)`` — the top-level program action."""

    body: Imperative
    name: str = "main"

    def __str__(self) -> str:
        return f"PROGRAM({self.body})"


@dataclass(frozen=True)
class RefOut(Imperative):
    """``REF_OUT(V)`` — passes a call-by-reference parameter."""

    value: v.Value

    def __str__(self) -> str:
        return f"REF_OUT({self.value})"


@dataclass(frozen=True)
class CopyOut(Imperative):
    """``COPY_OUT(V)`` — passes a call-by-value parameter."""

    value: v.Value

    def __str__(self) -> str:
        return f"COPY_OUT({self.value})"


@dataclass(frozen=True)
class CallStmt(Imperative):
    """A procedure call statement (used for I/O and runtime services)."""

    name: str
    args: tuple[v.Value, ...] = ()

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"CALL('{self.name}', [{inner}])"


def seq(*actions: Imperative) -> Imperative:
    """Smart sequential composition: flattens and drops SKIPs."""
    flat: list[Imperative] = []
    for a in actions:
        if isinstance(a, Skip):
            continue
        if isinstance(a, Sequentially):
            flat.extend(x for x in a.actions if not isinstance(x, Skip))
        else:
            flat.append(a)
    if not flat:
        return Skip()
    if len(flat) == 1:
        return flat[0]
    return Sequentially(tuple(flat))


def child_imperatives(node: Imperative) -> tuple[Imperative, ...]:
    """Immediate imperative-domain children of an imperative node."""
    if isinstance(node, (Sequentially, Concurrently)):
        return node.actions
    if isinstance(node, IfThenElse):
        return (node.then, node.els)
    if isinstance(node, While):
        return (node.body,)
    if isinstance(node, Do):
        return (node.body,)
    if isinstance(node, (WithDecl, WithDomain, Program)):
        return (node.body,)
    return ()


def values_of(node: Imperative) -> tuple[v.Value, ...]:
    """Immediate value-domain children of an imperative node."""
    if isinstance(node, Move):
        out: list[v.Value] = []
        for c in node.clauses:
            out.extend((c.mask, c.src, c.tgt))
        return tuple(out)
    if isinstance(node, (IfThenElse, While)):
        return (node.cond,)
    if isinstance(node, (RefOut, CopyOut)):
        return (node.value,)
    if isinstance(node, CallStmt):
        return node.args
    return ()


def walk(node: Imperative):
    """Pre-order traversal of an imperative tree."""
    yield node
    for c in child_imperatives(node):
        yield from walk(c)
