"""Command-line interface: ``python -m repro <command> file.f90``.

Commands:

* ``compile`` — run the pipeline and print intermediate representations
  (``--emit nir|nir-opt|peac|host``, repeatable);
* ``run`` — execute on the simulated machine, print program output and
  the performance summary;
* ``compare`` — the paper's §6 experiment on any program: Fortran-90-Y
  vs the CM Fortran and \\*Lisp models;
* ``lint`` — frontend + semantic analysis only, with source-located
  diagnostics (exit 0 clean, 1 warnings, 2 errors; ``--format=json``);
* ``analyze`` — lint plus the dataflow analyses: parallel-semantics
  race detection (R6xx) and a static communication-cost report priced
  under the target's network model (C7xx; same exit-code contract);
* ``serve`` — the asyncio JSON-lines compile-and-run service
  (persistent compile cache + worker pool + tenant-fair admission;
  see :mod:`repro.service`);
* ``batch`` — run a JSON-lines job file through the worker pool;
* ``loadgen`` — drive a server (or an in-process one) with concurrent
  clients and report latency percentiles, jobs/sec, and coalescing;
* ``cache`` — inspect (``stats``/``ls``) or purge the on-disk artifact
  store that backs the compile cache and incremental compilation.

``REPRO_DEBUG=1`` re-raises errors with full tracebacks instead of the
one-line diagnostics; ``REPRO_CACHE=1`` makes every compile consult the
persistent cache (``--cache`` does it per invocation);
``REPRO_INCREMENTAL=1`` compiles through the per-pass artifact store
(``--incremental`` does it per invocation).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from .. import nir
from ..baselines import compile_cmfortran, compile_starlisp
from ..machine import Machine, fieldwise_model, model_names, slicewise_model
from ..peac import format_routine
from ..runtime.host import format_host_program
from ..runtime.sparc import render_sparc
from ..targets import build_machine, target_names
from .compiler import CompilerOptions, compile_source
from .metrics import summarize


def _options(args) -> CompilerOptions:
    import dataclasses

    if getattr(args, "naive", False):
        base = CompilerOptions.naive()
    elif getattr(args, "neighborhood", False):
        base = CompilerOptions.neighborhood()
    else:
        base = CompilerOptions()
    if getattr(args, "target", "cm2") != "cm2":
        base = dataclasses.replace(base, target=args.target)
    if getattr(args, "verify", False):
        base = dataclasses.replace(base, verify=True)
    return base


def _machine(args) -> Machine:
    """The run machine, resolved through the target registry.

    ``--model`` defaults to the target's own cost model (``--target
    cm5`` runs under the cm5 model without extra flags); an explicit
    model that the target cannot run under is an error, never a silent
    slicewise fallback.
    """
    exec_mode = getattr(args, "exec_mode", None)
    if exec_mode is None and getattr(args, "fuse_exec", False):
        exec_mode = "fused"
    return build_machine(getattr(args, "target", "cm2"),
                         model=getattr(args, "model", None),
                         pes=getattr(args, "pes", None),
                         exec_mode=exec_mode)


def _compile(args, source: str):
    """Compile honoring --cache/--incremental (None defers to env)."""
    cache = True if getattr(args, "cache", False) else None
    incremental = True if getattr(args, "incremental", False) else None
    pool = None
    workers = getattr(args, "phase_workers", None)
    if workers and incremental and not cache:
        from ..service.pool import WorkerPool
        from ..service.store import default_store

        pool = WorkerPool(workers, cache=default_store().root)
    try:
        return compile_source(source, _options(args), cache=cache,
                              incremental=incremental, phase_pool=pool,
                              dump_after=tuple(
                                  getattr(args, "dump_after", None) or ()))
    finally:
        if pool is not None:
            pool.close()


def _read_source(path: str | None) -> str:
    if path is None:
        raise FileNotFoundError("no input file (pass a path, or - for "
                                "stdin)")
    if path == "-":
        return sys.stdin.read()
    with open(path) as f:
        return f.read()


def _list_passes() -> int:
    """``--list-passes``: the registered pipeline, in run order."""
    from ..transform import PASSES, Options

    defaults = Options()
    naive = Options.naive()
    print(f"{'#':<3} {'pass':<12} {'scope':<8} {'default':<8} "
          f"{'naive':<8} description")
    for i, p in enumerate(PASSES, 1):
        print(f"{i:<3} {p.name:<12} {p.scope:<8} "
              f"{'on' if p.enabled(defaults) else 'off':<8} "
              f"{'on' if p.enabled(naive) else 'off':<8} {p.description}")
    return 0


def _print_dumps(exe, dump_after, out) -> None:
    for name in dump_after or ():
        print(f"=== NIR after pass {name!r} ===", file=out)
        print(exe.transformed.trace.dumps.get(name, "(pass did not run)"),
              file=out)


# -- shared argument groups -------------------------------------------------


def _add_pipeline_args(p: argparse.ArgumentParser) -> None:
    """The pipeline switches shared by compile/run/compare."""
    g = p.add_argument_group("pipeline")
    g.add_argument("--naive", action="store_true",
                   help="per-statement compilation, naive node encoding")
    g.add_argument("--neighborhood", action="store_true",
                   help="§5.3.2 neighborhood model (CSHIFT halo streams)")
    g.add_argument("--target", choices=target_names(), default="cm2")
    g.add_argument("--cache", action="store_true",
                   help="consult the persistent compile cache "
                        "(~/.cache/repro; also $REPRO_CACHE=1)")
    g.add_argument("--incremental", action="store_true",
                   help="compile through the content-addressed artifact "
                        "store: reuse front-end, per-pass, backend, and "
                        "per-phase artifacts from previous compiles "
                        "(also $REPRO_INCREMENTAL=1)")
    g.add_argument("--phase-workers", type=int, default=0, metavar="N",
                   help="with --incremental, fan independent blocked-"
                        "phase compilations out across N worker "
                        "processes before assembly")
    g.add_argument("--verify", action="store_true",
                   help="run the verifier suite between passes "
                        "(also $REPRO_VERIFY=1)")
    g.add_argument("--list-passes", action="store_true",
                   help="print the registered pass pipeline and exit")
    g.add_argument("--dump-after", action="append", metavar="PASS",
                   default=None,
                   help="print the NIR after the named pass (repeatable; "
                        "see --list-passes)")


def _add_exec_args(p: argparse.ArgumentParser) -> None:
    """The execution switches shared by run/compare."""
    g = p.add_argument_group("execution")
    g.add_argument("--pes", type=int, default=None,
                   help="number of processing elements (power of two; "
                        "default: the target's own PE count)")
    g.add_argument("--model", choices=model_names(), default=None,
                   help="cost model (default: the target's own model)")
    g.add_argument("--exec", dest="exec_mode",
                   choices=["fast", "interp", "fused"],
                   default=None,
                   help="node execution engine (default: $REPRO_EXEC "
                        "or fast)")
    g.add_argument("--fuse-exec", action="store_true",
                   help="shorthand for --exec fused: batch adjacent node "
                        "calls into cross-routine mega-kernels")


# -- commands ---------------------------------------------------------------


def cmd_compile(args) -> int:
    if args.list_passes:
        return _list_passes()
    source = _read_source(args.file)
    exe = _compile(args, source)
    _print_dumps(exe, args.dump_after, sys.stdout)
    emits = args.emit or ["peac"]
    out = []
    if "nir" in emits:
        out.append("=== NIR (after semantic lowering) ===")
        out.append(nir.pretty(exe.lowered.nir))
    if "nir-opt" in emits:
        out.append("=== NIR (after target-independent optimization) ===")
        out.append(nir.pretty(exe.transformed.nir))
    if "peac" in emits:
        out.append("=== PEAC node code ===")
        for routine in exe.routines.values():
            out.append(format_routine(routine))
            out.append("")
    if "host" in emits:
        out.append("=== host (front-end) program ===")
        out.append(format_host_program(exe.host_program))
    if "sparc" in emits:
        out.append("=== host program as SPARC assembly ===")
        out.append(render_sparc(exe.host_program))
    out.append("")
    out.append(f"; {exe.partition.compute_blocks} computation blocks, "
               f"{exe.partition.comm_phases} communications, "
               f"{exe.partition.reductions} reductions, "
               f"{exe.partition.serial_moves} serial moves")
    print("\n".join(out))
    return 0


def cmd_run(args) -> int:
    if args.list_passes:
        return _list_passes()
    source = _read_source(args.file)
    t0 = time.perf_counter()
    exe = _compile(args, source)
    compile_s = time.perf_counter() - t0
    _print_dumps(exe, args.dump_after, sys.stderr)
    machine = _machine(args)
    t0 = time.perf_counter()
    result = exe.run(machine)
    run_s = time.perf_counter() - t0
    for line in result.output:
        print(line)
    if args.time:
        print(f"compile {compile_s:.3f}s  run {run_s:.3f}s  "
              f"(exec engine: {machine.exec_mode})", file=sys.stderr)
    if args.stats_json:
        payload = {
            "model": machine.model.name,
            "target": exe.options.target,
            "exec_mode": machine.exec_mode,
            "compile_seconds": compile_s,
            "run_seconds": run_s,
            "gflops": result.gflops(),
            "stats": result.stats.to_dict(),
            "fusion": machine.fusion_summary(),
            "pipeline": exe.transformed.trace.to_dict(),
        }
        with open(args.stats_json, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
    if args.stats:
        clock = machine.model.clock_hz
        print(file=sys.stderr)
        print(summarize(machine.model.name, result.stats, clock).row(),
              file=sys.stderr)
        b = result.stats.breakdown()
        print(f"breakdown: node {b['node']:.1%}  call {b['call']:.1%}  "
              f"comm {b['comm']:.1%}  host {b['host']:.1%}",
              file=sys.stderr)
        if machine.exec_mode == "fused":
            fs = machine.fusion_summary()
            print(f"fusion: {fs['fused_groups']} groups covering "
                  f"{fs['fused_routines']} calls; mega-kernels "
                  f"{fs['megakernel_builds']} built / "
                  f"{fs['megakernel_hits']} hits / "
                  f"{fs['stepwise_groups']} stepwise", file=sys.stderr)
        for name, cycles in sorted(result.stats.per_routine.items()):
            print(f"  {name:<12} {cycles:>12,d} node cycles",
                  file=sys.stderr)
        print("pipeline passes:", file=sys.stderr)
        for line in exe.transformed.trace.summary_lines():
            print(line, file=sys.stderr)
    return 0


def cmd_compare(args) -> int:
    from ..service.jobs import speedup_str

    if args.list_passes:
        return _list_passes()
    source = _read_source(args.file)
    mode = args.exec_mode
    if args.targets is not None:
        # Cross-target mode: same program through every backend.
        from ..service.jobs import run_target_compare

        payload = run_target_compare(
            source, targets=args.targets or None, pes=args.pes,
            exec_mode=mode, options=_options(args))
        print(f"{'target':<8} {'model':<16} {'GFLOPS':>8} "
              f"{'wall(s)':>9} {'max|diff|':>10}")
        for i, row in enumerate(payload["rows"]):
            diff = "ref" if i == 0 else f"{row['max_abs_diff']:.3g}"
            print(f"{row['target']:<8} {row['model']:<16} "
                  f"{row['gflops']:>8.3f} {row['wall_seconds']:>9.4f} "
                  f"{diff:>10}")
        return 0
    pes = args.pes if args.pes is not None else 2048
    rows = []
    exe = compile_starlisp(source)
    rows.append(("*Lisp (fieldwise)",
                 exe.run(Machine(fieldwise_model(pes),
                                 exec_mode=mode))))
    exe = compile_cmfortran(source)
    rows.append(("CM Fortran v1.1",
                 exe.run(Machine(slicewise_model(pes),
                                 exec_mode=mode))))
    exe = compile_source(source, _options(args),
                         cache=(True if args.cache else None))
    rows.append(("Fortran-90-Y", exe.run(_machine(args))))
    print(f"{'model':<20} {'GFLOPS':>8} {'cycles':>14} {'calls':>7}")
    for label, result in rows:
        print(f"{label:<20} {result.gflops():>8.3f} "
              f"{result.stats.total_cycles:>14,d} "
              f"{result.stats.node_calls:>7d}")
    base = rows[-1][1].stats.total_cycles
    for label, result in rows[:-1]:
        print(f"Fortran-90-Y speedup over {label}: "
              f"{speedup_str(result.stats.total_cycles, base)}")
    return 0


def cmd_lint(args) -> int:
    """Frontend + semantic analysis only; exit 0 clean / 1 warn / 2 err."""
    if getattr(args, "analyze", False):
        return cmd_analyze(args)
    from ..analysis.lint import format_text, lint_file, lint_source

    results = []
    for path in args.files:
        if path == "-":
            results.append(lint_source(sys.stdin.read(), "<stdin>"))
        else:
            results.append(lint_file(path))
    if args.format == "json":
        payload = [dict(r.to_dict(),
                        exit_code=r.exit_code(strict=args.strict))
                   for r in results]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2, sort_keys=True))
    else:
        for r in results:
            print(format_text(r))
    return max(r.exit_code(strict=args.strict) for r in results)


def cmd_analyze(args) -> int:
    """Lint + dataflow analyses + static comm report; lint exit codes."""
    from ..analysis.analyze import (analyze_file, analyze_source,
                                    format_analyze_text)

    target = getattr(args, "target", "cm2")
    model = getattr(args, "model", None)
    pes = getattr(args, "pes", None)
    results = []
    for path in args.files:
        if path == "-":
            results.append(analyze_source(sys.stdin.read(), "<stdin>",
                                          target=target, model=model,
                                          pes=pes))
        else:
            results.append(analyze_file(path, target=target, model=model,
                                        pes=pes))
    if args.format == "json":
        payload = [dict(r.to_dict(),
                        exit_code=r.exit_code(strict=args.strict))
                   for r in results]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2, sort_keys=True))
    else:
        for r in results:
            print(format_analyze_text(r))
    return max(r.exit_code(strict=args.strict) for r in results)


def cmd_serve(args) -> int:
    from ..service.pool import WorkerPool
    from ..service.server import serve

    pool = WorkerPool(args.workers, timeout=args.timeout,
                      cache=_service_cache(args))
    return serve(args.host, args.port, pool,
                 high_water=args.high_water,
                 idle_timeout=args.idle_timeout)


def cmd_loadgen(args) -> int:
    from ..service.loadgen import loadgen_main

    address = (args.host, args.port) if args.port else None
    return loadgen_main(address, clients=args.clients,
                        requests=args.requests, tenants=args.tenants,
                        workers=args.workers, json_path=args.json,
                        out=sys.stderr)


def cmd_batch(args) -> int:
    from ..service.batch import batch_main
    from ..service.pool import WorkerPool

    pool = WorkerPool(args.workers, timeout=args.timeout,
                      cache=_service_cache(args))
    return batch_main(args.file, pool, out_path=args.out)


def cmd_cache(args) -> int:
    """Inspect or purge the unified on-disk artifact store."""
    from ..service.cache import CompileCache, cache_admin

    cache = CompileCache(root=args.cache_dir)
    payload = cache_admin(cache, args.action, kind=args.kind)
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.action == "stats":
        store = payload["store"]
        kinds = store.get("kinds", {})
        print(f"store root: {store['root']}")
        print(f"{'kind':<9} {'entries':>8} {'bytes':>12}")
        for kind in sorted(kinds):
            row = kinds[kind]
            print(f"{kind:<9} {row['entries']:>8} {row['bytes']:>12,d}")
        print(f"{'total':<9} {store['entries']:>8} "
              f"{store['bytes']:>12,d}  "
              f"(cap {store['max_bytes']:,d} bytes, "
              f"{store['evictions']} evictions)")
    elif args.action == "ls":
        for entry in payload["entries"]:
            print(f"{entry['kind']:<9} {entry['key']}  "
                  f"{entry['bytes']:>10,d} bytes  "
                  f"{entry['age_seconds']:.0f}s old")
        if not payload["entries"]:
            print("(store is empty)", file=sys.stderr)
    else:  # purge
        what = f"{args.kind} artifacts" if args.kind else "artifacts"
        print(f"purged {payload['purged']} {what} from {cache.root}")
    return 0


def _service_cache(args):
    if args.no_cache:
        return None
    return args.cache_dir if args.cache_dir else True


def _add_service_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("service")
    g.add_argument("--workers", type=int, default=0,
                   help="worker processes (0 = one per CPU, "
                        "1 = in-process fallback)")
    g.add_argument("--timeout", type=float, default=None,
                   help="per-job timeout in seconds (pool mode)")
    g.add_argument("--cache-dir", default=None,
                   help="compile cache root (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro)")
    g.add_argument("--no-cache", action="store_true",
                   help="compile from scratch on every request")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fortran-90-Y: a data-parallel Fortran 90 compiler "
                    "for a simulated Connection Machine CM/2")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile and print IRs")
    p.add_argument("file", nargs="?",
                   help="Fortran source file, or - for stdin")
    p.add_argument("--emit", action="append",
                   choices=["nir", "nir-opt", "peac", "host", "sparc"],
                   help="IR(s) to print (default: peac)")
    _add_pipeline_args(p)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile and execute on the simulator")
    p.add_argument("file", nargs="?",
                   help="Fortran source file, or - for stdin")
    _add_pipeline_args(p)
    _add_exec_args(p)
    p.add_argument("--stats", action="store_true",
                   help="print the performance summary to stderr")
    p.add_argument("--time", action="store_true",
                   help="print compile/run wall-clock times to stderr")
    p.add_argument("--stats-json", metavar="PATH", default=None,
                   help="write run statistics (cycles, flops, timings) "
                        "as JSON to PATH")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare",
                       help="the §6 three-compiler comparison, or "
                            "(with --targets) a cross-target one")
    p.add_argument("file", nargs="?",
                   help="Fortran source file, or - for stdin")
    p.add_argument("--targets", nargs="*", metavar="TARGET", default=None,
                   help="compare registered targets instead of the §6 "
                        "baselines: per-target wallclock and max "
                        "abs-diff vs the first target (no names: all "
                        "registered targets)")
    _add_pipeline_args(p)
    _add_exec_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("lint",
                       help="check sources without compiling; exit 0 "
                            "clean, 1 warnings, 2 errors")
    p.add_argument("files", nargs="+", metavar="file",
                   help="Fortran source file(s), or - for stdin")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="diagnostic output format (default: text)")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as errors (exit 2)")
    p.add_argument("--analyze", action="store_true",
                   help="also run the dataflow analyses (R6xx races, "
                        "C7xx communication audit)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("analyze",
                       help="lint + dataflow analyses + static "
                            "communication-cost report; exit 0 clean, "
                            "1 findings, 2 errors")
    p.add_argument("files", nargs="+", metavar="file",
                   help="Fortran source file(s), or - for stdin")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report output format (default: text)")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as errors (exit 2)")
    p.add_argument("--target", default="cm2",
                   help="target whose cost model prices the static "
                        "communication table (default: cm2)")
    p.add_argument("--model", default=None,
                   help="cost model override (must be compatible with "
                        "the target)")
    p.add_argument("--pes", type=int, default=None,
                   help="processing elements (default: the target's)")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("serve",
                       help="JSON-lines compile-and-run service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9290,
                   help="TCP port (0 = pick a free port)")
    p.add_argument("--high-water", type=int, default=512,
                   help="admission queue depth past which new requests "
                        "get a structured Overloaded error")
    p.add_argument("--idle-timeout", type=float, default=300.0,
                   help="close connections silent for this many seconds")
    _add_service_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("loadgen",
                       help="concurrent-client load benchmark against "
                            "the service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="target a running server (0 = spin one up "
                        "in-process for the run)")
    p.add_argument("--clients", type=int, default=16,
                   help="concurrent client connections")
    p.add_argument("--requests", type=int, default=96,
                   help="total requests across all clients (plus one "
                        "coalesce-wave compile per client)")
    p.add_argument("--tenants", type=int, default=2,
                   help="tenant names to spread the clients over")
    p.add_argument("--workers", type=int, default=0,
                   help="pool size for the in-process server "
                        "(0 = one per CPU)")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the full result payload to PATH")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("cache",
                       help="inspect or purge the on-disk artifact store "
                            "(compile cache + incremental artifacts)")
    p.add_argument("action", nargs="?", default="stats",
                   choices=["stats", "ls", "purge"],
                   help="stats: per-kind footprint; ls: entries, newest "
                        "first; purge: delete entries (default: stats)")
    p.add_argument("--kind", default=None,
                   choices=["front", "pass", "backend", "phase", "exe"],
                   help="restrict ls/purge to one artifact kind")
    p.add_argument("--cache-dir", default=None,
                   help="store root (default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="output format (default: text)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("batch",
                       help="run a JSON-lines job file through the pool")
    p.add_argument("file", help="job file (JSON lines), or - for stdin")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write JSON-lines results to PATH (default: "
                        "stdout)")
    _add_service_args(p)
    p.set_defaults(func=cmd_batch)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    debug = os.environ.get("REPRO_DEBUG") == "1"
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        if debug:
            raise
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # compile/runtime diagnostics
        if debug:  # full tracebacks for service/worker debugging
            raise
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
