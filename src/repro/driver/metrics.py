"""Performance metrics helpers shared by benchmarks and examples."""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.stats import RunStats


@dataclass(frozen=True)
class PerfSummary:
    """One run's headline numbers, as the paper reports them."""

    label: str
    gflops: float
    total_cycles: int
    flops: int
    node_calls: int
    comm_fraction: float
    call_fraction: float
    host_fraction: float

    def row(self) -> str:
        return (f"{self.label:<24} {self.gflops:7.2f} GF  "
                f"{self.total_cycles:>14,d} cyc  "
                f"{self.node_calls:>6d} calls  "
                f"comm {self.comm_fraction:5.1%}  "
                f"host {self.host_fraction:5.1%}")


def summarize(label: str, stats: RunStats, clock_hz: float) -> PerfSummary:
    breakdown = stats.breakdown()
    return PerfSummary(
        label=label,
        gflops=stats.gflops(clock_hz),
        total_cycles=stats.total_cycles,
        flops=stats.flops,
        node_calls=stats.node_calls,
        comm_fraction=breakdown["comm"],
        call_fraction=breakdown["call"],
        host_fraction=breakdown["host"],
    )


def speedup(base: PerfSummary, other: PerfSummary) -> float:
    """How much faster ``other`` is than ``base`` (wall-clock ratio)."""
    if other.total_cycles == 0:
        return float("inf")
    return base.total_cycles / other.total_cycles
