"""End-to-end compilation driver: Fortran 90 source to executables.

``compile_source`` runs the full Fortran-90-Y pipeline — syntactic
analysis, semantic lowering (with type/shape checking), target-
independent NIR optimization, and the target-specific CM2/NIR (or
CM5/NIR) compilation — producing an :class:`Executable` that runs on a
simulated machine.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..backend.cm2.partition import PartitionReport
from ..backend.cm2.pe_compiler import BackendOptions
from ..frontend import ast_nodes as A
from ..frontend.directives import parse_layout_directives
from ..frontend.parser import parse_program
from ..lowering import LoweredProgram, check_program, lower_program
from ..lowering.environment import Environment
from ..machine import CostModel, Machine, RunStats
from ..runtime.host import HostExecutor, HostProgram
from ..targets import get_target
from ..transform import Options as TransformOptions
from ..transform import TransformedProgram, optimize


@dataclass(frozen=True)
class CompilerOptions:
    """Every switch of the pipeline, for the ablation experiments."""

    transform: TransformOptions = field(default_factory=TransformOptions)
    backend: BackendOptions = field(default_factory=BackendOptions)
    target: str = "cm2"
    # Run the verifier suite: NIR well-formedness between transform
    # passes, dependence audits around blocking, and PEAC routine checks
    # on the backend output.  REPRO_VERIFY=1 enables it globally.
    verify: bool = False

    @classmethod
    def optimized(cls) -> "CompilerOptions":
        return cls()

    @classmethod
    def naive(cls) -> "CompilerOptions":
        """Per-statement compilation with a naive node encoding."""
        return cls(transform=TransformOptions.naive(),
                   backend=BackendOptions.naive())

    @classmethod
    def neighborhood(cls) -> "CompilerOptions":
        """The §5.3.2 neighborhood model: CSHIFTs become halo streams."""
        return cls(transform=TransformOptions(neighborhood=True),
                   backend=BackendOptions(neighborhood=True))


@dataclass
class Executable:
    """A compiled program: host code plus node routines plus reports."""

    host_program: HostProgram
    env: Environment
    unit: A.ProgramUnit
    lowered: LoweredProgram
    transformed: TransformedProgram
    partition: PartitionReport
    options: CompilerOptions

    @property
    def routines(self) -> dict:
        return self.host_program.routines

    def run(self, machine: Machine | None = None,
            inputs: dict[str, np.ndarray] | None = None,
            model: CostModel | None = None,
            exec_mode: str | None = None) -> "RunResult":
        """Execute on a (fresh, unless given) simulated machine.

        ``exec_mode`` picks the node execution engine (``"fast"`` plans
        or the ``"interp"`` oracle) when no machine is supplied.  The
        default machine comes from the target registry — a cm5
        executable runs under the cm5 cost model without any extra
        plumbing.
        """
        if machine is None:
            if model is not None:
                machine = Machine(model, exec_mode=exec_mode)
            else:
                from ..targets import build_machine
                machine = build_machine(self.options.target,
                                        exec_mode=exec_mode)
        fuse = False
        if machine.exec_mode == "fused":
            from ..targets import get_target
            fuse = (get_target(self.options.target).fuse_exec
                    and getattr(self.options.transform, "fuse_exec", True))
        executor = HostExecutor(machine, fuse_exec=fuse)
        if inputs:
            # Inputs override initial contents after allocation, so run
            # the allocation prologue first by pre-allocating here.
            for name, values in inputs.items():
                sym = self.env.lookup(name)
                machine.alloc(name, sym.extents, sym.element.dtype)
                machine.set_array(name, np.asarray(values))
        executor.run(self.host_program)
        arrays = {name: home.data for name, home in machine.arrays.items()}
        return RunResult(arrays=arrays, scalars=dict(executor.scalars),
                         output=list(executor.output), stats=machine.stats,
                         machine=machine)


@dataclass
class RunResult:
    arrays: dict[str, np.ndarray]
    scalars: dict[str, object]
    output: list[str]
    stats: RunStats
    machine: Machine

    def gflops(self) -> float:
        return self.stats.gflops(self.machine.model.clock_hz)


def compile_unit(unit: A.ProgramUnit,
                 options: CompilerOptions | None = None,
                 layouts: dict[str, tuple[str, ...]] | None = None,
                 dump_after: tuple[str, ...] = ()) -> Executable:
    """Compile a parsed program unit through the full pipeline.

    The target-specific phase is resolved through the target registry
    (:mod:`repro.targets`): the options' ``target`` names a
    :class:`~repro.targets.Target` record that supplies the backend
    compiler class and whether PEAC routine verification applies.
    """
    options = options or CompilerOptions()
    target = get_target(options.target)
    from ..analysis import verify_enabled
    verify = options.verify or verify_enabled()
    lowered = lower_program(unit)
    check_program(lowered.nir, lowered.env)
    transformed = optimize(lowered, options.transform, verify=verify,
                           dump_after=dump_after)
    backend = target.compiler()(transformed.env, options=options.backend,
                                layouts=layouts)
    host_program = backend.compile_program(transformed.nir)
    if verify and target.verify_peac:
        from ..analysis.peac_verifier import verify_routines
        verify_routines(host_program.routines, stage="backend/peac")
    return Executable(host_program=host_program, env=transformed.env,
                      unit=unit, lowered=lowered, transformed=transformed,
                      partition=backend.report, options=options)


def compile_source(source: str,
                   options: CompilerOptions | None = None,
                   cache=None,
                   dump_after: tuple[str, ...] = ()) -> Executable:
    """Compile Fortran 90 source text through the full pipeline.

    ``!layout:`` comment directives in the source select explicit data
    layouts (see :mod:`repro.frontend.directives`).

    ``cache`` consults the persistent compile cache
    (:mod:`repro.service.cache`) before doing any work: pass a
    :class:`~repro.service.cache.CompileCache`, ``True`` for the default
    on-disk cache, or ``False`` to force a fresh compile.  The default
    (``None``) follows ``$REPRO_CACHE`` — set ``REPRO_CACHE=1`` to make
    every compile in the process cache-backed.

    ``dump_after`` (pass names) captures pretty-printed NIR snapshots
    into the transform trace; it forces a fresh compile, since a cache
    hit would skip the passes being observed.
    """
    if dump_after:
        cache = False
    if cache is None:
        cache = os.environ.get("REPRO_CACHE") in ("1", "true", "yes")
    if cache:
        from ..service.cache import CompileCache, default_cache

        store = cache if isinstance(cache, CompileCache) else default_cache()
        exe, _hit = store.compile(source, options)
        return exe
    layouts = parse_layout_directives(source)
    return compile_unit(parse_program(source), options, layouts=layouts,
                        dump_after=dump_after)
