"""End-to-end compilation driver: Fortran 90 source to executables.

``compile_source`` runs the full Fortran-90-Y pipeline — syntactic
analysis, semantic lowering (with type/shape checking), target-
independent NIR optimization, and the target-specific CM2/NIR (or
CM5/NIR) compilation — producing an :class:`Executable` that runs on a
simulated machine.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

import numpy as np

from ..backend.cm2.partition import PartitionReport
from ..backend.cm2.pe_compiler import BackendOptions
from ..frontend import ast_nodes as A
from ..frontend.directives import parse_layout_directives
from ..frontend.parser import parse_program
from ..lowering import LoweredProgram, check_program, lower_program
from ..lowering.environment import Environment
from ..machine import CostModel, Machine, RunStats
from ..runtime.host import HostExecutor, HostProgram
from ..targets import get_target
from ..transform import Options as TransformOptions
from ..transform import TransformedProgram, optimize


@dataclass(frozen=True)
class CompilerOptions:
    """Every switch of the pipeline, for the ablation experiments."""

    transform: TransformOptions = field(default_factory=TransformOptions)
    backend: BackendOptions = field(default_factory=BackendOptions)
    target: str = "cm2"
    # Run the verifier suite: NIR well-formedness between transform
    # passes, dependence audits around blocking, and PEAC routine checks
    # on the backend output.  REPRO_VERIFY=1 enables it globally.
    verify: bool = False

    @classmethod
    def optimized(cls) -> "CompilerOptions":
        return cls()

    @classmethod
    def naive(cls) -> "CompilerOptions":
        """Per-statement compilation with a naive node encoding."""
        return cls(transform=TransformOptions.naive(),
                   backend=BackendOptions.naive())

    @classmethod
    def neighborhood(cls) -> "CompilerOptions":
        """The §5.3.2 neighborhood model: CSHIFTs become halo streams."""
        return cls(transform=TransformOptions(neighborhood=True),
                   backend=BackendOptions(neighborhood=True))


@dataclass
class Executable:
    """A compiled program: host code plus node routines plus reports."""

    host_program: HostProgram
    env: Environment
    unit: A.ProgramUnit
    lowered: LoweredProgram
    transformed: TransformedProgram
    partition: PartitionReport
    options: CompilerOptions

    @property
    def routines(self) -> dict:
        return self.host_program.routines

    def run(self, machine: Machine | None = None,
            inputs: dict[str, np.ndarray] | None = None,
            model: CostModel | None = None,
            exec_mode: str | None = None) -> "RunResult":
        """Execute on a (fresh, unless given) simulated machine.

        ``exec_mode`` picks the node execution engine (``"fast"`` plans
        or the ``"interp"`` oracle) when no machine is supplied.  The
        default machine comes from the target registry — a cm5
        executable runs under the cm5 cost model without any extra
        plumbing.
        """
        if machine is None:
            if model is not None:
                machine = Machine(model, exec_mode=exec_mode)
            else:
                from ..targets import build_machine
                machine = build_machine(self.options.target,
                                        exec_mode=exec_mode)
        fuse = False
        if machine.exec_mode == "fused":
            from ..targets import get_target
            fuse = (get_target(self.options.target).fuse_exec
                    and getattr(self.options.transform, "fuse_exec", True))
        executor = HostExecutor(machine, fuse_exec=fuse)
        if inputs:
            # Inputs override initial contents after allocation, so run
            # the allocation prologue first by pre-allocating here.
            for name, values in inputs.items():
                sym = self.env.lookup(name)
                machine.alloc(name, sym.extents, sym.element.dtype)
                machine.set_array(name, np.asarray(values))
        executor.run(self.host_program)
        arrays = {name: home.data for name, home in machine.arrays.items()}
        return RunResult(arrays=arrays, scalars=dict(executor.scalars),
                         output=list(executor.output), stats=machine.stats,
                         machine=machine)


@dataclass
class RunResult:
    arrays: dict[str, np.ndarray]
    scalars: dict[str, object]
    output: list[str]
    stats: RunStats
    machine: Machine

    def gflops(self) -> float:
        return self.stats.gflops(self.machine.model.clock_hz)


def compile_unit(unit: A.ProgramUnit,
                 options: CompilerOptions | None = None,
                 layouts: dict[str, tuple[str, ...]] | None = None,
                 dump_after: tuple[str, ...] = ()) -> Executable:
    """Compile a parsed program unit through the full pipeline.

    The target-specific phase is resolved through the target registry
    (:mod:`repro.targets`): the options' ``target`` names a
    :class:`~repro.targets.Target` record that supplies the backend
    compiler class and whether PEAC routine verification applies.
    """
    options = options or CompilerOptions()
    target = get_target(options.target)
    from ..analysis import verify_enabled
    verify = options.verify or verify_enabled()
    lowered = lower_program(unit)
    check_program(lowered.nir, lowered.env)
    transformed = optimize(lowered, options.transform, verify=verify,
                           dump_after=dump_after)
    backend = target.compiler()(transformed.env, options=options.backend,
                                layouts=layouts)
    host_program = backend.compile_program(transformed.nir)
    if verify and target.verify_peac:
        from ..analysis.peac_verifier import verify_routines
        verify_routines(host_program.routines, stage="backend/peac")
    return Executable(host_program=host_program, env=transformed.env,
                      unit=unit, lowered=lowered, transformed=transformed,
                      partition=backend.report, options=options)


def compile_source(source: str,
                   options: CompilerOptions | None = None,
                   cache=None,
                   dump_after: tuple[str, ...] = (),
                   incremental: bool | None = None,
                   store=None,
                   phase_pool=None) -> Executable:
    """Compile Fortran 90 source text through the full pipeline.

    ``!layout:`` comment directives in the source select explicit data
    layouts (see :mod:`repro.frontend.directives`).

    ``cache`` consults the persistent compile cache
    (:mod:`repro.service.cache`) before doing any work: pass a
    :class:`~repro.service.cache.CompileCache`, ``True`` for the default
    on-disk cache, or ``False`` to force a fresh compile.  The default
    (``None``) follows ``$REPRO_CACHE`` — set ``REPRO_CACHE=1`` to make
    every compile in the process cache-backed.

    ``incremental`` compiles through the content-addressed artifact
    store (:mod:`repro.service.store`): the front end, every transform
    pass, the backend, and each blocked computation phase are keyed and
    reused individually, so an edit that only perturbs the pipeline
    tail recompiles only the tail.  The default (``None``) follows
    ``$REPRO_INCREMENTAL``.  ``store`` names the
    :class:`~repro.service.store.ArtifactStore` to use (default: the
    process-wide one) and ``phase_pool`` (a
    :class:`~repro.service.pool.WorkerPool`) fans independent phase
    compilations out across worker processes before assembly.

    ``dump_after`` (pass names) captures pretty-printed NIR snapshots
    into the transform trace; it forces a fresh, non-incremental
    compile, since a cache hit would skip the passes being observed.
    """
    if dump_after:
        cache = False
        incremental = False
    if cache is None:
        cache = os.environ.get("REPRO_CACHE") in ("1", "true", "yes")
    if cache:
        from ..service.cache import CompileCache, default_cache

        cc = cache if isinstance(cache, CompileCache) else default_cache()
        exe, _hit = cc.compile(source, options, incremental=incremental)
        return exe
    if incremental is None:
        incremental = os.environ.get("REPRO_INCREMENTAL") in \
            ("1", "true", "yes")
    if incremental:
        return _compile_incremental(source, options, store=store,
                                    phase_pool=phase_pool)
    layouts = parse_layout_directives(source)
    return compile_unit(parse_program(source), options, layouts=layouts,
                        dump_after=dump_after)


def _warm_phases(phase_pool, backend, transformed, store) -> None:
    """Fan independent phase compilations out across the worker pool.

    A pre-scan (:meth:`Cm2Compiler.compute_moves`) predicts the compute
    blocks and their deterministic routine names; each not-yet-stored
    phase becomes one ``_compile_phase`` job that compiles the block in
    a worker and writes it into the shared store.  Warming is strictly
    best-effort — a prediction the assembly walk diverges from (a
    ``TooManyStreams`` split), a crashed worker, or a timed-out job
    just means that phase misses and compiles inline.
    """
    jobs = []
    counter = 0
    for move in backend.compute_moves(transformed.inner_body()):
        counter += 1
        name = f"Pk{counter}vs1"
        key = backend.phase_key(move, name)
        if store.head("phase", key) is not None:
            continue  # already warm (this run or a previous one)
        jobs.append({
            "op": "_compile_phase",
            "key": key,
            "store_root": store.root,
            "payload": {"move": move, "env": backend.env,
                        "domains": backend.domains,
                        "options": backend.options, "name": name},
        })
    if not jobs:
        return
    futures = [phase_pool.submit(job) for job in jobs]
    for future in futures:
        try:
            future.result(timeout=60.0)
        except Exception:
            pass  # best-effort: assembly recompiles any cold phase


def _compile_incremental(source: str,
                         options: CompilerOptions | None,
                         store=None,
                         phase_pool=None) -> Executable:
    """Compile through the artifact store, stage by stage.

    Four artifact granularities chain into each other: the ``front``
    artifact (parse + lower + check) is keyed by the source text and
    records the lowered state's hash; each transform ``pass`` artifact
    is keyed by its input hash (see
    :class:`~repro.pipeline.manager.PassManager`); the ``backend``
    artifact (whole host program + partition report) is keyed by the
    final transform state; and each blocked computation ``phase`` is
    keyed by its own content, so even a backend miss reuses every
    untouched phase.  Verification forces a cold compile — its whole
    point is running the real pipeline.
    """
    from ..service.store import default_store, state_hash

    options = options or CompilerOptions()
    from ..analysis import verify_enabled
    if options.verify or verify_enabled():
        layouts = parse_layout_directives(source)
        return compile_unit(parse_program(source), options,
                            layouts=layouts)
    store = store if store is not None else default_store()
    target = get_target(options.target)
    context = {
        "target": target.name,
        "fuse_exec": bool(getattr(options.transform, "fuse_exec", True)),
    }
    artifacts: dict = {}

    front_key = store.fingerprint("front", {**context, "source": source})
    artifact = store.get("front", front_key)
    if artifact is not None:
        unit, lowered, layouts = artifact.obj
        front_hash = artifact.out_hash
        artifacts["front"] = "hit"
    else:
        layouts = parse_layout_directives(source)
        unit = parse_program(source)
        lowered = lower_program(unit)
        check_program(lowered.nir, lowered.env)
        front_hash = state_hash(lowered.nir, lowered.env)
        store.put("front", front_key, (unit, lowered, layouts),
                  out_hash=front_hash)
        artifacts["front"] = "miss"

    transformed = optimize(lowered, options.transform, verify=False,
                           store=store, context=context,
                           input_hash=front_hash)

    final_hash = transformed.trace.artifacts.get("state_hash")
    backend_key = store.fingerprint("backend", {
        **context,
        "in": final_hash,
        "backend": dataclasses.asdict(options.backend),
        "layouts": sorted((name, list(axes))
                          for name, axes in (layouts or {}).items()),
    })
    artifact = store.get("backend", backend_key)
    if artifact is not None:
        host_program, partition = artifact.obj
        artifacts["backend"] = "hit"
        artifacts["phases"] = {"hits": 0, "misses": 0}
    else:
        backend = target.compiler()(transformed.env,
                                    options=options.backend,
                                    layouts=layouts, store=store,
                                    context=context)
        if phase_pool is not None:
            _warm_phases(phase_pool, backend, transformed, store)
        host_program = backend.compile_program(transformed.nir)
        partition = backend.report
        store.put("backend", backend_key, (host_program, partition))
        artifacts["backend"] = "miss"
        artifacts["phases"] = {"hits": backend.phase_hits,
                               "misses": backend.phase_misses}

    transformed.trace.artifacts.update(artifacts)
    return Executable(host_program=host_program, env=transformed.env,
                      unit=unit, lowered=lowered, transformed=transformed,
                      partition=partition, options=options)
