"""Reference interpreter: direct numpy execution of the Fortran subset.

This is the correctness oracle.  It executes parsed ASTs with numpy,
independently of NIR, the transformations and the machine model; every
end-to-end test compares the compiled pipeline's arrays against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..frontend import ast_nodes as A
from ..frontend import intrinsics as intr
from ..lowering.environment import build_environment


class ReferenceError_(Exception):
    """Raised on programs outside the supported subset."""


@dataclass
class ReferenceResult:
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    scalars: dict[str, object] = field(default_factory=dict)
    output: list[str] = field(default_factory=list)


def run_reference(unit: A.ProgramUnit,
                  inputs: dict[str, np.ndarray] | None = None
                  ) -> ReferenceResult:
    """Execute a program unit directly; optionally preset named arrays."""
    interp = Interpreter(unit)
    if inputs:
        for name, values in inputs.items():
            arr = interp.arrays[name]
            np.copyto(arr, values, casting="unsafe")
    interp.run()
    return ReferenceResult(arrays=interp.arrays, scalars=interp.scalars,
                           output=interp.output)


class _Stop(Exception):
    pass


class Interpreter:
    def __init__(self, unit: A.ProgramUnit) -> None:
        self.unit = unit
        self.env = build_environment(unit)
        self.arrays: dict[str, np.ndarray] = {}
        self.scalars: dict[str, object] = {}
        self.output: list[str] = []
        for sym in self.env.symbols.values():
            if sym.is_array:
                self.arrays[sym.name] = np.zeros(sym.extents,
                                                 dtype=sym.element.dtype)
            elif sym.init is not None:
                self.scalars[sym.name] = sym.init

    # ------------------------------------------------------------------

    def run(self) -> None:
        try:
            self.exec_block(self.unit.body)
        except _Stop:
            pass

    def exec_block(self, stmts) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    # ------------------------------------------------------------------

    def exec_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Assignment):
            self.assign(stmt, mask=None)
        elif isinstance(stmt, A.WhereConstruct):
            mask = np.asarray(self.eval(stmt.mask), dtype=bool)
            for a in stmt.body:
                self.assign(a, mask=mask)
            for a in stmt.elsewhere:
                self.assign(a, mask=~mask)
        elif isinstance(stmt, A.ForallStmt):
            self.exec_forall(stmt)
        elif isinstance(stmt, A.DoLoop):
            lo = int(self.eval(stmt.lo))
            hi = int(self.eval(stmt.hi))
            step = int(self.eval(stmt.step)) if stmt.step is not None else 1
            i = lo
            while (i <= hi if step > 0 else i >= hi):
                self.scalars[stmt.var] = i
                self.exec_block(stmt.body)
                i += step
        elif isinstance(stmt, A.DoWhile):
            while bool(self.eval(stmt.cond)):
                self.exec_block(stmt.body)
        elif isinstance(stmt, A.IfConstruct):
            for cond, body in stmt.arms:
                if bool(self.eval(cond)):
                    self.exec_block(body)
                    return
            self.exec_block(stmt.else_body)
        elif isinstance(stmt, A.PrintStmt):
            self.output.append(" ".join(str(self.eval(e))
                                        for e in stmt.items))
        elif isinstance(stmt, A.ContinueStmt):
            pass
        elif isinstance(stmt, A.StopStmt):
            raise _Stop()
        elif isinstance(stmt, A.CallStmt):
            raise ReferenceError_(f"CALL '{stmt.name}' is not supported")
        else:
            raise ReferenceError_(
                f"cannot interpret {type(stmt).__name__}")

    # ------------------------------------------------------------------

    def assign(self, stmt: A.Assignment, mask) -> None:
        value = self.eval(stmt.expr)
        target = stmt.target
        if isinstance(target, A.VarRef):
            if target.name in self.arrays:
                arr = self.arrays[target.name]
                self._masked_store(arr, value, mask)
            else:
                if mask is not None:
                    raise ReferenceError_("WHERE over a scalar target")
                self.scalars[target.name] = self._to_scalar(value)
            return
        if isinstance(target, A.ArrayRef):
            arr = self.arrays.get(target.name)
            if arr is None:
                raise ReferenceError_(f"'{target.name}' is not an array")
            index = self._index(target, arr)
            view = arr[index]
            if np.isscalar(view) or view.ndim == 0:
                arr[index] = value
            else:
                self._masked_store(view, value, mask)
            return
        raise ReferenceError_(f"bad assignment target {target}")

    @staticmethod
    def _masked_store(view: np.ndarray, value, mask) -> None:
        val = np.broadcast_to(np.asarray(value), view.shape)
        if mask is None:
            np.copyto(view, val, casting="unsafe")
        else:
            m = np.broadcast_to(np.asarray(mask, bool), view.shape)
            np.copyto(view, np.where(m, val, view), casting="unsafe")

    @staticmethod
    def _to_scalar(value):
        arr = np.asarray(value)
        if arr.size != 1:
            raise ReferenceError_("array value assigned to scalar")
        return arr.reshape(()).item()

    def exec_forall(self, stmt: A.ForallStmt) -> None:
        names = [t.var for t in stmt.triplets]
        ranges = []
        for t in stmt.triplets:
            lo = int(self.eval(t.lo))
            hi = int(self.eval(t.hi))
            st = int(self.eval(t.stride)) if t.stride is not None else 1
            ranges.append(range(lo, hi + (1 if st > 0 else -1), st))

        # Vectorized evaluation for large regions: bind each index to a
        # broadcastable coordinate array and evaluate once.  The
        # per-point loop below remains the defining semantics (and the
        # fallback); a property test asserts the two paths agree.
        total_points = 1
        for r in ranges:
            total_points *= len(r)
        if total_points >= 2048:
            try:
                self._exec_forall_vectorized(stmt, names, ranges)
                return
            except Exception:
                pass  # fall back to the defining per-point loop
        saved = {n: self.scalars.get(n) for n in names}
        # Fortran FORALL: evaluate all right-hand sides before any store.
        pending: list[tuple[tuple, object]] = []

        def rec(k: int) -> None:
            if k == len(names):
                if stmt.mask is not None and not bool(self.eval(stmt.mask)):
                    return
                tgt = stmt.assignment.target
                assert isinstance(tgt, A.ArrayRef)
                arr = self.arrays[tgt.name]
                index = self._index(tgt, arr)
                pending.append((index, self.eval(stmt.assignment.expr)))
                return
            for v in ranges[k]:
                self.scalars[names[k]] = v
                rec(k + 1)

        rec(0)
        tgt = stmt.assignment.target
        arr = self.arrays[tgt.name]
        for index, value in pending:
            arr[index] = value
        for n, v in saved.items():
            if v is None:
                self.scalars.pop(n, None)
            else:
                self.scalars[n] = v

    def _exec_forall_vectorized(self, stmt: A.ForallStmt, names, ranges
                                ) -> None:
        """Evaluate a FORALL with indices bound to coordinate arrays.

        Every triplet variable becomes an integer array shaped to
        broadcast along its own region axis; numpy then evaluates the
        right-hand side, the mask, and every subscript pointwise over
        the whole region in one pass.  Gather subscripts come out as
        broadcastable fancy indices, which matches FORALL's pointwise
        semantics exactly.  Raises on any construct it cannot prove
        vectorizable (mixed slice/array subscripts), triggering the
        per-point fallback.
        """
        k = len(names)
        saved = {n: self.scalars.get(n) for n in names}
        try:
            for axis, (name, rng) in enumerate(zip(names, ranges)):
                shape = [1] * k
                shape[axis] = len(rng)
                self.scalars[name] = np.asarray(list(rng),
                                                dtype=np.int64
                                                ).reshape(shape)
            tgt = stmt.assignment.target
            assert isinstance(tgt, A.ArrayRef)
            arr = self.arrays[tgt.name]
            index_arrays = []
            for sub in tgt.subscripts:
                if isinstance(sub, A.SectionRange):
                    raise ReferenceError_("section in FORALL target")
                index_arrays.append(np.asarray(self.eval(sub)) - 1)
            value = self.eval(stmt.assignment.expr)
            region_shape = np.broadcast_shapes(
                *(ix.shape for ix in index_arrays))
            index_arrays = [np.broadcast_to(ix, region_shape)
                            for ix in index_arrays]
            value_b = np.broadcast_to(np.asarray(value), region_shape)
            if stmt.mask is not None:
                mask = np.broadcast_to(
                    np.asarray(self.eval(stmt.mask), bool), region_shape)
                arr[tuple(ix[mask] for ix in index_arrays)] = value_b[mask]
            else:
                arr[tuple(index_arrays)] = value_b
        finally:
            for n, v in saved.items():
                if v is None:
                    self.scalars.pop(n, None)
                else:
                    self.scalars[n] = v

    # ------------------------------------------------------------------

    def _index(self, ref: A.ArrayRef, arr: np.ndarray):
        index = []
        has_array = False
        has_section = False
        for axis, sub in enumerate(ref.subscripts):
            n = arr.shape[axis]
            if isinstance(sub, A.SectionRange):
                has_section = True
                lo = int(self.eval(sub.lo)) if sub.lo is not None else 1
                hi = int(self.eval(sub.hi)) if sub.hi is not None else n
                st = int(self.eval(sub.stride)) if sub.stride is not None \
                    else 1
                index.append(slice(lo - 1, hi, st))
            else:
                val = self.eval(sub)
                if isinstance(val, np.ndarray) and val.ndim > 0:
                    # Vectorized FORALL index: pointwise fancy indexing.
                    has_array = True
                    index.append(np.asarray(val, dtype=np.int64) - 1)
                else:
                    index.append(int(val) - 1)
        if has_array:
            if has_section:
                raise ReferenceError_(
                    "sections may not mix with vector subscripts")
            # All-fancy pointwise indexing (broadcast scalars along).
            index = [np.asarray(ix) for ix in index]
            return tuple(index)
        return tuple(index)

    # ------------------------------------------------------------------

    def eval(self, expr: A.Expr):
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.RealLit):
            return expr.value
        if isinstance(expr, A.LogicalLit):
            return expr.value
        if isinstance(expr, A.StringLit):
            return expr.value
        if isinstance(expr, A.VarRef):
            return self._load_name(expr.name)
        if isinstance(expr, A.UnExpr):
            val = self.eval(expr.operand)
            if expr.op == "-":
                return np.negative(val) if isinstance(val, np.ndarray) \
                    else -val
            if expr.op == ".not.":
                return np.logical_not(val)
            raise ReferenceError_(f"unary {expr.op}")
        if isinstance(expr, A.BinExpr):
            return self._binop(expr.op, self.eval(expr.left),
                               self.eval(expr.right))
        if isinstance(expr, A.ArrayRef):
            return self._ref_or_call(expr)
        raise ReferenceError_(f"cannot evaluate {expr}")

    def _load_name(self, name: str):
        if name in self.scalars:
            return self.scalars[name]
        if name in self.arrays:
            return self.arrays[name]
        if name in self.env.params:
            return self.env.params[name]
        raise ReferenceError_(f"use of unset variable '{name}'")

    @staticmethod
    def _binop(op: str, left, right):
        def int_like(x):
            if isinstance(x, (bool, np.bool_)):
                return False
            if isinstance(x, (int, np.integer)):
                return True
            return isinstance(x, np.ndarray) and np.issubdtype(
                x.dtype, np.integer)

        table = {
            "+": np.add, "-": np.subtract, "*": np.multiply,
            "**": np.power,
            "==": np.equal, "/=": np.not_equal, "<": np.less,
            "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal,
            ".and.": np.logical_and, ".or.": np.logical_or,
            ".neqv.": np.logical_xor,
        }
        with np.errstate(all="ignore"):
            if op == "/":
                if int_like(left) and int_like(right):
                    return np.trunc(
                        np.asarray(left, np.float64)
                        / np.asarray(right, np.float64)).astype(np.int32)
                return np.divide(left, right)
            if op == ".eqv.":
                return np.equal(np.asarray(left, bool),
                                np.asarray(right, bool))
            return table[op](left, right)

    def _ref_or_call(self, expr: A.ArrayRef):
        name = expr.name.lower()
        if name in self.arrays:
            arr = self.arrays[name]
            out = arr[self._index(expr, arr)]
            return out.copy() if isinstance(out, np.ndarray) else out
        if intr.is_intrinsic(name):
            return self._intrinsic(name, expr)
        raise ReferenceError_(f"unknown function or array '{name}'")

    def _intrinsic(self, name: str, expr: A.ArrayRef):
        positional = []
        keyword = {}
        for a in expr.subscripts:
            if isinstance(a, A.KeywordArg):
                keyword[a.name] = self.eval(a.value)
            else:
                positional.append(self.eval(a))
        with np.errstate(all="ignore"):
            return self._apply_intrinsic(name, positional, keyword)

    def _apply_intrinsic(self, name: str, args, kw):
        simple = {
            "abs": np.abs, "sqrt": np.sqrt, "sin": np.sin, "cos": np.cos,
            "tan": np.tan, "asin": np.arcsin, "acos": np.arccos,
            "atan": np.arctan, "exp": np.exp, "log": np.log,
            "log10": np.log10, "exp10": None,
        }
        if name in simple and simple[name] is not None:
            return simple[name](np.asarray(args[0], np.float64)
                                if not isinstance(args[0], float)
                                else args[0])
        if name == "floor":
            return np.floor(args[0]).astype(np.int32)
        if name == "ceiling":
            return np.ceil(args[0]).astype(np.int32)
        if name == "int":
            return np.trunc(np.asarray(args[0], np.float64)).astype(np.int32)
        if name == "real":
            return np.asarray(args[0], np.float32)
        if name == "dble":
            return np.asarray(args[0], np.float64)
        if name == "mod":
            return np.fmod(args[0], args[1])
        if name == "min":
            out = args[0]
            for a in args[1:]:
                out = np.minimum(out, a)
            return out
        if name == "max":
            out = args[0]
            for a in args[1:]:
                out = np.maximum(out, a)
            return out
        if name == "merge":
            return np.where(np.asarray(args[2], bool), args[0], args[1])
        if name == "cshift":
            arr = np.asarray(args[0])
            shift = int(kw.get("shift", args[1] if len(args) > 1 else 0))
            dim = int(kw.get("dim", args[2] if len(args) > 2 else 1))
            return np.roll(arr, -shift, axis=dim - 1)
        if name == "eoshift":
            arr = np.asarray(args[0]).copy()
            shift = int(kw.get("shift", args[1] if len(args) > 1 else 0))
            boundary = kw.get("boundary",
                              args[2] if len(args) > 2 else 0)
            dim = int(kw.get("dim", args[3] if len(args) > 3 else 1)) - 1
            out = np.roll(arr, -shift, axis=dim)
            idx = [slice(None)] * arr.ndim
            if shift > 0:
                idx[dim] = slice(arr.shape[dim] - shift, None)
                out[tuple(idx)] = boundary
            elif shift < 0:
                idx[dim] = slice(0, -shift)
                out[tuple(idx)] = boundary
            return out
        if name == "transpose":
            return np.asarray(args[0]).T.copy()
        if name == "spread":
            dim = int(kw.get("dim", args[1]))
            ncopies = int(kw.get("ncopies", args[2]))
            return np.repeat(np.expand_dims(np.asarray(args[0]), dim - 1),
                             ncopies, axis=dim - 1)
        if name in ("sum", "product", "maxval", "minval", "count", "any",
                    "all"):
            arr = np.asarray(args[0])
            dim = kw.get("dim", args[1] if len(args) > 1 else None)
            axis = int(dim) - 1 if dim is not None else None
            fns = {
                "sum": lambda: arr.sum(axis=axis),
                "product": lambda: arr.prod(axis=axis),
                "maxval": lambda: arr.max(axis=axis),
                "minval": lambda: arr.min(axis=axis),
                "count": lambda: np.asarray(arr, bool).sum(axis=axis),
                "any": lambda: np.asarray(arr, bool).any(axis=axis),
                "all": lambda: np.asarray(arr, bool).all(axis=axis),
            }
            out = fns[name]()
            return out.item() if np.ndim(out) == 0 else out
        if name == "size":
            arr = np.asarray(args[0])
            if len(args) > 1:
                return arr.shape[int(args[1]) - 1]
            return arr.size
        raise ReferenceError_(f"intrinsic '{name}' not supported")
