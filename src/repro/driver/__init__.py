"""End-to-end driver: compile, execute, measure, and verify."""

from .compiler import (
    CompilerOptions,
    Executable,
    RunResult,
    compile_source,
    compile_unit,
)
from .metrics import PerfSummary, speedup, summarize
from .reference import ReferenceResult, run_reference

__all__ = [name for name in dir() if not name.startswith("_")]
