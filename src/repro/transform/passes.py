"""The NIR transform pipeline, declared as registered passes.

This module *is* the default pipeline: registration order defines the
pass order (racecheck → promote → normalize → pad_masks → dse → block
→ recheck → commaudit; the two analysis passes are report-only and off
by default),
each pass names the :class:`~repro.transform.pipeline.Options` switch
that enables it, and ``config`` projects the option subset that changes
its output (the compile cache keys on exactly that projection, so
reordering, disabling, or reconfiguring a pass invalidates stale
artifacts).  Adding a pass is one :func:`register` call here — the
manager, CLI introspection, cache key, and service metrics all pick it
up from the registry.
"""

from __future__ import annotations

from .. import nir
from ..lowering.check import check_program
from ..pipeline import Pass, PassContext, PassRegistry
from .blocking import BlockingReport, fuse_phases, rebuild, schedule_phases
from .masking import MaskPadder
from .normalize import Normalizer
from .phases import PhaseClassifier
from .promotion import LoopPromoter

#: The process-wide transform pass registry (ordered = default pipeline).
PASSES = PassRegistry()


def register(p: Pass) -> Pass:
    return PASSES.register(p)


def default_pipeline() -> list[Pass]:
    """The declarative default pipeline, in registration order."""
    return PASSES.pipeline()


def pipeline_identity(options) -> list[dict]:
    """Ordered ``{name, config}`` of the enabled passes — the pipeline's
    contribution to the compile-cache key."""
    return PASSES.identity(options)


# -- pass bodies ------------------------------------------------------------


def _run_racecheck(ctx: PassContext) -> nir.Imperative:
    """Report-only: parallel-semantics race detection (``R6xx``).

    Runs first — on the freshly lowered program — so its diagnostics
    carry original source structure, before promotion rewrites loops.
    """
    from ..analysis.racecheck import check_program as racecheck_program
    ctx.report.racecheck = racecheck_program(ctx.node, ctx.env)
    return ctx.node


def _run_commaudit(ctx: PassContext) -> nir.Imperative:
    """Report-only: static communication audit (``C7xx``).

    Runs last — on the transformed body the backend will compile — so
    the entry list prices exactly the communication the runtime meters
    will charge.
    """
    from ..analysis.commaudit import audit_program
    ctx.report.commaudit = audit_program(ctx.node, ctx.env)
    return ctx.node


def _run_promote(ctx: PassContext) -> nir.Imperative:
    promoter = LoopPromoter(ctx.env)
    program = promoter.promote(ctx.node)
    ctx.report.promotion = promoter.report
    return program


def _run_normalize(ctx: PassContext) -> nir.Imperative:
    normalizer = Normalizer(ctx.env, comm_cse=ctx.options.comm_cse,
                            neighborhood=ctx.options.neighborhood)
    program = normalizer.normalize(ctx.node)
    ctx.report.normalize = normalizer.report
    return program


def _run_pad_masks(ctx: PassContext) -> nir.Imperative:
    padder = MaskPadder(ctx.env)
    body = padder.pad_program(ctx.node)
    ctx.report.masking = padder.report
    return body


def _run_dse(ctx: PassContext) -> nir.Imperative:
    return _eliminate_dead_scalar_stores(
        ctx.node, ctx.report.promotion.promoted_indices)


def _run_block(ctx: PassContext) -> nir.Imperative:
    return _block_recursive(ctx.node, ctx.env, ctx.options,
                            ctx.report.blocking, verify=ctx.verify)


def _run_fuse_exec(ctx: PassContext) -> nir.Imperative:
    """Survey cross-routine fusion opportunity (advisory; see execplan).

    The actual fusion is a run-time decision — the host executor batches
    adjacent node calls and the machine's execution-plan layer merges
    their routine plans when alias probing proves it safe.  This pass
    exists so the knob participates in the pipeline identity (compile
    cache key, ``--list-passes``, ``--dump-after``) and so the report
    quantifies how much adjacency the blocked program exposes.
    """
    classifier = PhaseClassifier(ctx.env,
                                 neighborhood=ctx.options.neighborhood)
    report = ctx.report.exec_fusion
    for phases in _phase_runs(ctx.node, classifier):
        run = 0
        for phase in phases:
            if phase.is_compute:
                report.compute_phases += 1
                run += 1
                if run >= 2:
                    report.fusable_adjacencies += 1
                if run == 2:
                    report.candidate_groups += 1
            else:
                run = 0
    return ctx.node


def _phase_runs(node: nir.Imperative, classifier):
    """Yield the phase list of every straight-line sequence in ``node``."""
    if isinstance(node, nir.Sequentially):
        yield classifier.split(node)
        for action in node.actions:
            yield from _phase_runs(action, classifier)
    elif isinstance(node, (nir.Do, nir.While)):
        yield from _phase_runs(node.body, classifier)
    elif isinstance(node, nir.IfThenElse):
        yield from _phase_runs(node.then, classifier)
        yield from _phase_runs(node.els, classifier)


def _run_recheck(ctx: PassContext) -> nir.Imperative:
    check_program(ctx.node, ctx.env)
    return ctx.node


# -- the default pipeline (registration order is execution order) -----------


register(Pass(
    name="racecheck", scope="program", run=_run_racecheck,
    enabled=lambda o: getattr(o, "analyze", False),
    report_slot="racecheck",
    description="report-only parallel-semantics race detection (R6xx)"))

register(Pass(
    name="promote", scope="program", run=_run_promote,
    enabled=lambda o: o.promote_loops,
    report_slot="promotion",
    description="serial DO axes become parallel MOVE dimensions"))

register(Pass(
    name="normalize", scope="program", run=_run_normalize,
    config=lambda o: {"comm_cse": o.comm_cse,
                      "neighborhood": o.neighborhood},
    report_slot="normalize",
    description="communication/reduction extraction, alignment copies"))

register(Pass(
    name="pad_masks", scope="body", run=_run_pad_masks,
    enabled=lambda o: o.pad_masks,
    report_slot="masking",
    description="Figure 10 section padding of disjoint masked moves"))

register(Pass(
    name="dse", scope="body", run=_run_dse,
    description="drop dead exit-value stores to promoted DO variables"))

register(Pass(
    name="block", scope="body", run=_run_block,
    enabled=lambda o: o.block or o.fuse,
    config=lambda o: {"block": o.block, "fuse": o.fuse,
                      "neighborhood": o.neighborhood},
    report_slot="blocking",
    description="Figure 9 domain blocking and like-domain MOVE fusion"))

register(Pass(
    name="fuse_exec", scope="body", run=_run_fuse_exec,
    enabled=lambda o: getattr(o, "fuse_exec", True),
    config=lambda o: {"neighborhood": o.neighborhood},
    report_slot="exec_fusion",
    description="cross-routine execution-plan fusion survey (runtime "
                "fusion keys off this knob)"))

register(Pass(
    name="recheck", scope="program", run=_run_recheck,
    enabled=lambda o: o.recheck,
    description="re-run type/shape checks on the optimized program"))

register(Pass(
    name="commaudit", scope="body", run=_run_commaudit,
    enabled=lambda o: getattr(o, "analyze", False),
    report_slot="commaudit",
    description="report-only static communication-cost audit (C7xx)"))


# -- transformation helpers -------------------------------------------------


def _scalar_reads(node: nir.Imperative) -> set[str]:
    """Every scalar name the program can observe (reads, conditions, IO)."""
    reads: set[str] = set()
    for n in nir.imperatives.walk(node):
        if isinstance(n, nir.Move):
            # A move READS its mask, source, and target subscripts — the
            # stored-to scalar itself is a write, not a read.
            for clause in n.clauses:
                reads |= nir.scalar_vars(clause.mask)
                reads |= nir.scalar_vars(clause.src)
                if isinstance(clause.tgt, nir.AVar) \
                        and isinstance(clause.tgt.field, nir.Subscript):
                    for idx in clause.tgt.field.indices:
                        if not isinstance(idx, nir.IndexRange):
                            reads |= nir.scalar_vars(idx)
        else:
            for value in nir.imperatives.values_of(n):
                reads |= nir.scalar_vars(value)
    return reads


def _eliminate_dead_scalar_stores(node: nir.Imperative,
                                  candidates: set[str]) -> nir.Imperative:
    """Drop dead exit-value stores to promoted DO variables.

    Loop promotion preserves each DO variable's Fortran exit value with a
    constant scalar move; when nothing ever reads the variable again the
    store is dead front-end work and is removed.  Only promotion-
    generated index stores are candidates — user scalar assignments are
    observable program state and always survive.
    """
    if not candidates:
        return node
    live = _scalar_reads(node)

    def clean(n: nir.Imperative) -> nir.Imperative:
        if isinstance(n, nir.Move):
            kept = tuple(
                c for c in n.clauses
                if not (isinstance(c.tgt, nir.SVar)
                        and c.tgt.name in candidates
                        and c.tgt.name not in live
                        and nir.is_constant(c.src)
                        and c.mask == nir.TRUE))
            if not kept:
                return nir.Skip()
            if len(kept) != len(n.clauses):
                return nir.Move(kept)
            return n
        if isinstance(n, nir.Sequentially):
            return nir.seq(*[clean(a) for a in n.actions])
        if isinstance(n, nir.Do):
            return nir.Do(n.shape, clean(n.body), n.index_names)
        if isinstance(n, nir.While):
            return nir.While(n.cond, clean(n.body))
        if isinstance(n, nir.IfThenElse):
            return nir.IfThenElse(n.cond, clean(n.then), clean(n.els))
        return n

    return clean(node)


def _block_recursive(node: nir.Imperative, env, options,
                     report: BlockingReport,
                     verify: bool = False) -> nir.Imperative:
    """Apply schedule+fuse to every statement sequence, bottom-up.

    Under ``verify``, each sequence's reordering is audited against
    dependences recomputed on the pre-schedule phases, and fusion is
    checked to be pure clause concatenation.
    """
    if isinstance(node, nir.Sequentially):
        children = [_block_recursive(a, env, options, report, verify)
                    for a in node.actions]
        seq = nir.seq(*children)
        if not isinstance(seq, nir.Sequentially):
            return seq
        classifier = PhaseClassifier(env, neighborhood=options.neighborhood)
        phases = classifier.split(seq)
        report.phases_in += len(phases)
        if options.block:
            before = list(phases)
            phases = schedule_phases(phases, report)
            if verify:
                from ..analysis.dep_audit import assert_schedule
                assert_schedule(before, phases, env, "block/schedule")
        if options.fuse:
            before = list(phases)
            phases = fuse_phases(phases, report)
            if verify:
                from ..analysis.dep_audit import assert_fusion
                assert_fusion(before, phases, "block/fuse")
        else:
            report.phases_out += len(phases)
        return rebuild(phases)
    if isinstance(node, nir.Do):
        return nir.Do(
            node.shape,
            _block_recursive(node.body, env, options, report, verify),
            node.index_names)
    if isinstance(node, nir.While):
        return nir.While(
            node.cond,
            _block_recursive(node.body, env, options, report, verify))
    if isinstance(node, nir.IfThenElse):
        return nir.IfThenElse(
            node.cond,
            _block_recursive(node.then, env, options, report, verify),
            _block_recursive(node.els, env, options, report, verify))
    if isinstance(node, nir.Concurrently):
        return nir.Concurrently(tuple(
            _block_recursive(a, env, options, report, verify)
            for a in node.actions))
    return node
