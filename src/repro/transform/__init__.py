"""Target-independent NIR transformations (the paper's section 4.2)."""

from .blocking import BlockingReport, fuse_phases, rebuild, schedule_phases
from .dependence import EffectAnalyzer, Effects, may_depend
from .loops import fuse_do, interchange, strip_mine, unroll_do
from .masking import MaskingReport, MaskPadder, masks_disjoint
from .normalize import NormalizeReport, Normalizer
from .phases import DomainKey, Phase, PhaseClassifier, PhaseKind
from .promotion import LoopPromoter, PromotionReport
from .passes import PASSES, default_pipeline, pipeline_identity
from .pipeline import (
    Options,
    TransformedProgram,
    TransformReport,
    optimize,
    unwrap_body,
    wrap_body,
)
from .regions import (
    Region,
    full_region,
    region_of_field,
    region_shape,
    regions_equal,
    regions_overlap,
    unknown_region,
)

__all__ = [name for name in dir() if not name.startswith("_")]
