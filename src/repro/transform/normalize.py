"""Normalization: communication and reduction extraction.

Naive lowering leaves communication intrinsics (``CSHIFT``), reductions
(``SUM``) and misaligned section references nested inside MOVE sources.
The CM programming model, however, separates interprocessor
communication (CM runtime calls issued by the front end) from purely
local computation (PEAC virtual subgrid loops).  This pass rewrites each
MOVE so that afterwards every MOVE is exactly one of:

* a **computation**: all array operands aligned with the target region,
  arbitrary elemental operators, optionally masked;
* a **communication**: a lone ``cshift``/``eoshift``/``transpose``/
  ``spread`` call, or a plain misaligned copy, moving data into an
  aligned temporary or the final target;
* a **reduction**: a lone reduction call whose result lands in a scalar;
* a **serial** action (scalar moves, element moves under serial loops).

This realizes the execution-partition analysis of section 4.2: "each
phase either carries out a single computational action over data with a
common shape and alignment, or expresses a single communication of data
from one shape/alignment to another."  Figure 12's ``tmp0``/``tmp1``
temporaries for the SWE CSHIFTs come from exactly this rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import nir
from ..frontend import intrinsics as intr
from ..lowering.analysis import Inference
from ..lowering.environment import Environment
from . import regions as rg


def _is_gather(field: nir.FieldAction) -> bool:
    """True for subscripts carrying field-valued (coordinate) indices."""
    if not isinstance(field, nir.Subscript):
        return False
    return any(
        not isinstance(i, (nir.IndexRange, nir.Scalar, nir.SVar))
        for i in field.indices)


@dataclass
class NormalizeReport:
    """What the pass did, for tests and the experiment harness."""

    comm_hoisted: int = 0
    comm_cse_hits: int = 0
    reductions_hoisted: int = 0
    alignment_copies: int = 0
    moves_in: int = 0
    moves_out: int = 0


class Normalizer:
    def __init__(self, env: Environment,
                 domains: dict[str, nir.Shape] | None = None,
                 comm_cse: bool = True,
                 neighborhood: bool = False) -> None:
        self.env = env
        self.domains = domains if domains is not None else env.domains
        self.infer = Inference(env, self.domains)
        self.report = NormalizeReport()
        self.comm_cse = comm_cse
        # §5.3.2 "Other Computation Models": under the neighborhood
        # model, circular shifts of whole arrays are not hoisted into
        # communication phases; they compile directly into the node
        # code as halo streams, "performing physical communications as
        # required".
        self.neighborhood = neighborhood
        # Communication CSE: identical communication calls within one
        # straight-line region reuse one temporary.  SWE repeats a third
        # of its CSHIFTs ("a series of circular shifts interspersed with
        # blocks of local computation"), so this saves real router/grid
        # traffic.  Entries are keyed by the normalized call and
        # invalidated when any array the call reads is stored to.
        self._comm_memo: dict[nir.FcnCall, str] = {}

    # -- communication CSE scope control ---------------------------------

    def _memo_barrier(self) -> None:
        self._comm_memo.clear()

    def _note_store(self, array: str) -> None:
        stale = [call for call, home in self._comm_memo.items()
                 if array in nir.array_vars(call) or home == array]
        for call in stale:
            del self._comm_memo[call]

    # ------------------------------------------------------------------

    def normalize(self, node: nir.Imperative) -> nir.Imperative:
        """Normalize an imperative tree (bodies of scopes included)."""
        if isinstance(node, nir.Program):
            return nir.Program(self.normalize(node.body), node.name)
        if isinstance(node, nir.WithDomain):
            return nir.WithDomain(node.name, node.shape,
                                  self.normalize(node.body))
        if isinstance(node, nir.WithDecl):
            return nir.WithDecl(node.decl, self.normalize(node.body))
        if isinstance(node, nir.Sequentially):
            return nir.seq(*[self.normalize(a) for a in node.actions])
        if isinstance(node, nir.Concurrently):
            return nir.Concurrently(
                tuple(self.normalize(a) for a in node.actions))
        if isinstance(node, nir.Move):
            self.report.moves_in += len(node.clauses)
            out = self.normalize_move(node)
            self.report.moves_out += sum(
                len(m.clauses) for m in out if isinstance(m, nir.Move))
            return nir.seq(*out)
        if isinstance(node, nir.Do):
            self._memo_barrier()
            body = self.normalize(node.body)
            self._memo_barrier()
            return nir.Do(node.shape, body, node.index_names)
        if isinstance(node, nir.While):
            cond, prelude = self._extract_scalar_value(node.cond)
            self._memo_barrier()
            # Condition temporaries must be refreshed each iteration.
            body = nir.seq(self.normalize(node.body), *prelude)
            self._memo_barrier()
            return nir.seq(*prelude, nir.While(cond, body))
        if isinstance(node, nir.IfThenElse):
            cond, prelude = self._extract_scalar_value(node.cond)
            self._memo_barrier()
            then = self.normalize(node.then)
            self._memo_barrier()
            els = self.normalize(node.els)
            self._memo_barrier()
            return nir.seq(*prelude, nir.IfThenElse(cond, then, els))
        if isinstance(node, nir.CallStmt):
            preludes: list[nir.Imperative] = []
            args = []
            for a in node.args:
                val, pre = self._extract_scalar_value(a)
                preludes.extend(pre)
                args.append(val)
            return nir.seq(*preludes, nir.CallStmt(node.name, tuple(args)))
        return node

    # ------------------------------------------------------------------

    def normalize_move(self, move: nir.Move) -> list[nir.Imperative]:
        out: list[nir.Imperative] = []
        for clause in move.clauses:
            out.extend(self._normalize_clause(clause))
        return out

    def _normalize_clause(self, clause: nir.MoveClause
                          ) -> list[nir.Imperative]:
        prelude: list[nir.Imperative] = []
        scalar_target = isinstance(clause.tgt, nir.SVar)
        src = self._extract(clause.src, prelude,
                            root_scalar=scalar_target,
                            root_comm=(not scalar_target
                                       and clause.mask == nir.TRUE))
        mask = self._extract(clause.mask, prelude, root_scalar=False,
                             root_comm=False)
        new_clause = nir.MoveClause(mask, src, clause.tgt,
                                    loc=clause.loc)
        if not scalar_target:
            new_clause, copies = self._align(new_clause)
            prelude.extend(copies)
        prelude.append(nir.Move((new_clause,)))
        if isinstance(clause.tgt, nir.AVar):
            self._note_store(clause.tgt.name)
            # A root communication also seeds the CSE table: its target
            # holds the shifted data until either side is overwritten.
            if (self.comm_cse and new_clause.mask == nir.TRUE
                    and isinstance(new_clause.src, nir.FcnCall)
                    and new_clause.src.name.lower() in intr.COMMUNICATION
                    and isinstance(clause.tgt.field, nir.Everywhere)):
                self._comm_memo[new_clause.src] = clause.tgt.name
        return prelude

    # -- extraction ----------------------------------------------------

    def _extract_scalar_value(self, value: nir.Value
                              ) -> tuple[nir.Value, list[nir.Imperative]]:
        prelude: list[nir.Imperative] = []
        out = self._extract(value, prelude, root_scalar=False,
                            root_comm=False)
        return out, prelude

    def _extract(self, value: nir.Value, prelude: list[nir.Imperative],
                 root_scalar: bool, root_comm: bool) -> nir.Value:
        """Hoist nested communication/reduction calls out of a value tree.

        ``root_scalar``: the value is the whole source of a scalar move,
        so a root reduction may stay in place.  ``root_comm``: the value
        is the whole source of an unmasked array move, so a root
        communication call may stay in place.
        """
        if isinstance(value, nir.Binary):
            return nir.Binary(
                value.op,
                self._extract(value.left, prelude, False, False),
                self._extract(value.right, prelude, False, False))
        if isinstance(value, nir.Unary):
            return nir.Unary(
                value.op, self._extract(value.operand, prelude, False, False))
        if isinstance(value, nir.FcnCall):
            name = value.name.lower()
            if name in intr.COMMUNICATION:
                return self._extract_comm(value, prelude, root_comm)
            if name in intr.REDUCTIONS:
                return self._extract_reduction(value, prelude, root_scalar)
            # Elemental call (merge): recurse into arguments.
            return nir.FcnCall(value.name, tuple(
                self._extract(a, prelude, False, False) for a in value.args))
        return value

    def _is_halo_shift(self, call: nir.FcnCall) -> bool:
        """A CSHIFT the neighborhood PE model reads as a halo stream."""
        if call.name.lower() != "cshift":
            return False
        arr, shift, dim = call.args
        return (isinstance(arr, nir.AVar)
                and isinstance(arr.field, nir.Everywhere)
                and isinstance(shift, nir.Scalar)
                and isinstance(dim, nir.Scalar))

    def _extract_comm(self, call: nir.FcnCall,
                      prelude: list[nir.Imperative],
                      is_root: bool) -> nir.Value:
        args = list(call.args)
        args[0] = self._materialize(
            self._extract(args[0], prelude, False, False), prelude)
        fixed = nir.FcnCall(call.name, tuple(args))
        if self.neighborhood and not is_root and self._is_halo_shift(fixed):
            return fixed
        if self.comm_cse and fixed in self._comm_memo:
            self.report.comm_cse_hits += 1
            return nir.AVar(self._comm_memo[fixed], nir.Everywhere())
        if is_root:
            return fixed
        info = self.infer.infer(fixed)
        tmp = self.env.fresh_temp(nir.extents(info.shape, self.domains),
                                  info.elem)
        prelude.append(nir.move1(fixed, nir.AVar(tmp.name, nir.Everywhere())))
        self.report.comm_hoisted += 1
        if self.comm_cse:
            self._comm_memo[fixed] = tmp.name
        return nir.AVar(tmp.name, nir.Everywhere())

    def _extract_reduction(self, call: nir.FcnCall,
                           prelude: list[nir.Imperative],
                           is_root: bool) -> nir.Value:
        args = list(call.args)
        args[0] = self._materialize(
            self._extract(args[0], prelude, False, False), prelude)
        fixed = nir.FcnCall(call.name, tuple(args))
        info = self.infer.infer(fixed)
        if info.shape is not None:
            # Dimensional reduction produces an array: materialize it.
            tmp = self.env.fresh_temp(nir.extents(info.shape, self.domains),
                                      info.elem)
            prelude.append(
                nir.move1(fixed, nir.AVar(tmp.name, nir.Everywhere())))
            self.report.reductions_hoisted += 1
            return nir.AVar(tmp.name, nir.Everywhere())
        if is_root:
            return fixed
        tmp = self.env.fresh_scalar_temp(info.elem)
        prelude.append(nir.move1(fixed, nir.SVar(tmp.name)))
        self.report.reductions_hoisted += 1
        return nir.SVar(tmp.name)

    def _materialize(self, value: nir.Value,
                     prelude: list[nir.Imperative]) -> nir.Value:
        """Ensure a communication/reduction argument is a plain array ref."""
        if isinstance(value, nir.AVar):
            return value
        info = self.infer.infer(value)
        if info.shape is None:
            return value
        tmp = self.env.fresh_temp(nir.extents(info.shape, self.domains),
                                  info.elem)
        prelude.append(nir.move1(value, nir.AVar(tmp.name, nir.Everywhere())))
        return nir.AVar(tmp.name, nir.Everywhere())

    # -- alignment -----------------------------------------------------

    def _align(self, clause: nir.MoveClause
               ) -> tuple[nir.MoveClause, list[nir.Imperative]]:
        """Hoist misaligned array operands into aligned temporaries."""
        assert isinstance(clause.tgt, nir.AVar)
        tgt_sym = self.env.lookup(clause.tgt.name)
        tregion = rg.region_of_field(clause.tgt.field, tgt_sym.extents,
                                     self.domains)
        if not tregion.exact:
            return clause, []  # serial element move; alignment n/a
        # A plain unmasked copy IS a communication when misaligned;
        # leave it to be classified by the phase splitter.
        if isinstance(clause.src, nir.AVar) and clause.mask == nir.TRUE:
            return clause, []
        if isinstance(clause.src, nir.FcnCall) \
                and clause.src.name.lower() in intr.COMMUNICATION:
            return clause, []

        copies: list[nir.Imperative] = []

        def fix(value: nir.Value) -> nir.Value:
            if isinstance(value, nir.AVar):
                return self._align_operand(value, clause.tgt, tregion, copies)
            if isinstance(value, nir.Binary):
                return nir.Binary(value.op, fix(value.left), fix(value.right))
            if isinstance(value, nir.Unary):
                return nir.Unary(value.op, fix(value.operand))
            if isinstance(value, nir.FcnCall):
                return nir.FcnCall(value.name,
                                   tuple(fix(a) for a in value.args))
            return value

        new = nir.MoveClause(fix(clause.mask), fix(clause.src),
                             clause.tgt, loc=clause.loc)
        return new, copies

    def _align_operand(self, operand: nir.AVar, tgt: nir.AVar,
                       tregion: rg.Region,
                       copies: list[nir.Imperative]) -> nir.Value:
        sym = self.env.lookup(operand.name)
        if _is_gather(operand.field):
            # Coordinate-subscripted read (e.g. a diagonal): a router
            # gather, routed through an aligned temporary.
            tmp = self.env.fresh_temp(tregion.base_extents, sym.element)
            copies.append(nir.move1(operand, nir.AVar(tmp.name, tgt.field)))
            self.report.alignment_copies += 1
            return nir.AVar(tmp.name, tgt.field)
        oregion = rg.region_of_field(operand.field, sym.extents, self.domains)
        if tregion.is_full and oregion.is_full \
                and oregion.base_extents == tregion.base_extents:
            return operand
        if rg.regions_equal(oregion, tregion):
            return operand
        if not oregion.exact:
            # Element accesses under serial loops are host business.
            return operand
        if oregion.extents != tregion.extents:
            return operand  # scalar-ish or broadcast; shapecheck governs
        # Misaligned: route through a temporary aligned with the target.
        tmp = self.env.fresh_temp(tregion.base_extents, sym.element)
        aligned_field = tgt.field
        copies.append(nir.move1(operand, nir.AVar(tmp.name, aligned_field)))
        self.report.alignment_copies += 1
        return nir.AVar(tmp.name, aligned_field)
