"""Domain blocking: the Figure 9 transformation.

"[The compiler] attempts to rearrange these phases so as to maximize the
length of the blocks of aligned computation between successive
communications.  Successive loops over common, aligned domains appear in
NIR as DO- or MOVE-constructs with common shapes, and as such are easily
recognized and their actions composed sequentially — the shape
equivalent of loop fusion."

The scheduler performs greedy dependence-respecting list scheduling that
prefers to continue the current shape-and-alignment class; the fuser
merges adjacent like-class MOVEs into single multi-clause MOVEs (one
PEAC computation burst each).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import nir
from .dependence import may_depend
from .phases import Phase, PhaseKind


def _halo_read_arrays(node: nir.Imperative) -> set[str]:
    """Arrays read through un-hoisted CSHIFT operands (neighborhood mode).

    A halo read observes *other* points of its array, so a MOVE that
    halo-reads an array may not fuse after a MOVE that writes it — the
    pointwise-locality argument that makes fusion always legal does not
    cover it.
    """
    if not isinstance(node, nir.Move):
        return set()
    out: set[str] = set()
    for clause in node.clauses:
        for v in (clause.src, clause.mask):
            for n in nir.values.walk(v):
                if isinstance(n, nir.FcnCall) and n.name.lower() == "cshift":
                    out |= nir.array_vars(n.args[0])
    return out


@dataclass
class BlockingReport:
    phases_in: int = 0
    phases_out: int = 0
    moves_reordered: int = 0
    fused_blocks: int = 0
    compute_blocks: int = 0
    block_lengths: list[int] = field(default_factory=list)


def schedule_phases(phases: list[Phase],
                    report: BlockingReport | None = None) -> list[Phase]:
    """Reorder phases to group like-domain computations, respecting deps.

    Greedy list scheduling: repeatedly emit a ready phase (all
    predecessors emitted), preferring one whose domain key matches the
    previously emitted compute phase; ties break on original order, so
    the result is a dependence-safe permutation that is stable when no
    grouping is possible.
    """
    n = len(phases)
    preds: list[set[int]] = [set() for _ in range(n)]
    succs: list[set[int]] = [set() for _ in range(n)]
    for j in range(n):
        for i in range(j):
            if may_depend(phases[i].effects, phases[j].effects):
                preds[j].add(i)
                succs[i].add(j)

    emitted: list[Phase] = []
    done: set[int] = set()
    ready = [i for i in range(n) if not preds[i]]
    last_key = None
    moved = 0
    while ready:
        pick = None
        if last_key is not None:
            for i in sorted(ready):
                p = phases[i]
                if p.is_compute and p.key == last_key:
                    pick = i
                    break
        if pick is None:
            pick = min(ready)
        if emitted and phases[pick].index < emitted[-1].index:
            moved += 1
        ready.remove(pick)
        done.add(pick)
        emitted.append(phases[pick])
        last_key = phases[pick].key if phases[pick].is_compute else None
        for j in sorted(succs[pick]):
            if j not in done and preds[j] <= done and j not in ready:
                if all(k in done for k in preds[j]):
                    ready.append(j)
    if len(emitted) != n:  # pragma: no cover - dependence graph is a DAG
        raise RuntimeError("phase scheduling failed to emit all phases")
    if report is not None:
        report.moves_reordered += moved
    return emitted


def fuse_phases(phases: list[Phase],
                report: BlockingReport | None = None) -> list[Phase]:
    """Merge adjacent compute phases of one domain key into single MOVEs.

    Fusing aligned pointwise MOVEs is always semantics-preserving: every
    point is independent of every other, and clauses within a MOVE apply
    in order at each point, preserving the original statement order.
    """
    out: list[Phase] = []
    for p in phases:
        if (out and p.is_compute and out[-1].is_compute
                and p.key == out[-1].key
                and isinstance(p.node, nir.Move)
                and isinstance(out[-1].node, nir.Move)
                and not (_halo_read_arrays(p.node)
                         & set(out[-1].effects.array_writes))):
            prev = out[-1]
            merged_move = nir.Move(prev.node.clauses + p.node.clauses)
            merged_eff = prev.effects
            merged_eff.merge(p.effects)
            out[-1] = Phase(merged_move, PhaseKind.COMPUTE, p.key,
                            merged_eff, prev.index)
            if report is not None:
                report.fused_blocks += 1
        else:
            out.append(p)
    if report is not None:
        report.phases_out += len(out)
        for p in out:
            if p.is_compute and isinstance(p.node, nir.Move):
                report.compute_blocks += 1
                report.block_lengths.append(len(p.node.clauses))
    return out


def rebuild(phases: list[Phase]) -> nir.Imperative:
    """Reassemble a phase list into a SEQUENTIALLY."""
    return nir.seq(*[p.node for p in phases])
