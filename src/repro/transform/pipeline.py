"""The NIR optimization pipeline (the paper's target-independent phase).

The pipeline itself is declarative: :mod:`repro.transform.passes`
registers the default pass order (promote → normalize → pad_masks →
dse → block/fuse → recheck) and the
:class:`~repro.pipeline.manager.PassManager` drives it — timing every
pass, measuring IR-size deltas, running the NIR verifier between
passes, and capturing ``--dump-after`` snapshots into the
:class:`~repro.pipeline.trace.PipelineTrace` that
:class:`TransformedProgram` carries.  Each pass is individually
switchable for the ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import nir
from ..lowering.environment import Environment
from ..lowering.lower import LoweredProgram
from ..pipeline import PassManager, PipelineTrace, unwrap_body, wrap_body
from .blocking import BlockingReport
from .masking import MaskingReport
from .normalize import NormalizeReport
from .promotion import PromotionReport

__all__ = [
    "ExecFusionReport", "Options", "TransformReport",
    "TransformedProgram", "optimize", "unwrap_body", "wrap_body",
]


@dataclass(frozen=True)
class Options:
    """Optimization switches (each is a DESIGN.md ablation point)."""

    promote_loops: bool = True  # serial DO axes to parallel MOVE dims
    comm_cse: bool = True    # reuse identical communication results
    neighborhood: bool = False  # §5.3.2: CSHIFT operands stay in blocks
    block: bool = True       # reorder phases to group like domains
    fuse: bool = True        # merge adjacent like-domain MOVEs
    pad_masks: bool = True   # Figure 10 section padding
    recheck: bool = True     # re-run type/shape checks afterwards
    fuse_exec: bool = True   # cross-routine execution-plan fusion
    analyze: bool = False    # report-only racecheck + comm audit passes

    @classmethod
    def naive(cls) -> "Options":
        """Promotion and normalization only — the per-statement comparison
        point (loops still vectorize, but no cross-statement blocking)."""
        return cls(comm_cse=False, block=False, fuse=False,
                   pad_masks=False, fuse_exec=False)


@dataclass
class ExecFusionReport:
    """What the execution-plan fusion layer can work with.

    The fusion itself happens at run time (the host executor batches
    node calls into :class:`~repro.machine.execplan.ExecutionPlan`
    dispatches); this compile-time pass surveys the phase structure so
    ``--dump-report`` shows the opportunity and the pipeline identity —
    hence the compile cache key — reflects the knob.
    """

    compute_phases: int = 0      # blocked computation phases seen
    fusable_adjacencies: int = 0  # adjacent compute-compute pairs
    candidate_groups: int = 0    # maximal runs of >=2 compute phases


def _racecheck_report():
    from ..analysis.racecheck import RacecheckReport
    return RacecheckReport()


def _commaudit_report():
    from ..analysis.commaudit import CommAuditReport
    return CommAuditReport()


@dataclass
class TransformReport:
    promotion: PromotionReport = field(default_factory=PromotionReport)
    normalize: NormalizeReport = field(default_factory=NormalizeReport)
    masking: MaskingReport = field(default_factory=MaskingReport)
    blocking: BlockingReport = field(default_factory=BlockingReport)
    exec_fusion: ExecFusionReport = field(default_factory=ExecFusionReport)
    # Report-only dataflow analyses (``Options.analyze``; `repro analyze`).
    racecheck: object = field(default_factory=_racecheck_report)
    commaudit: object = field(default_factory=_commaudit_report)


@dataclass
class TransformedProgram:
    """An optimized NIR program ready for the target-specific phase."""

    nir: nir.Program
    env: Environment
    options: Options
    report: TransformReport
    trace: PipelineTrace = field(default_factory=PipelineTrace)

    @property
    def domains(self) -> dict[str, nir.Shape]:
        return self.env.domains

    def inner_body(self) -> nir.Imperative:
        node: nir.Imperative = self.nir.body
        while isinstance(node, (nir.WithDomain, nir.WithDecl)):
            node = node.body
        return node


def optimize(lowered: LoweredProgram,
             options: Options | None = None,
             verify: bool | None = None,
             dump_after: tuple[str, ...] = (),
             store=None, context: dict | None = None,
             input_hash: str | None = None) -> TransformedProgram:
    """Apply the target-independent NIR transformations.

    With ``verify`` on (default: the ``REPRO_VERIFY=1`` environment
    switch) the NIR verifier runs on the input and after every pass, and
    the blocking stage's schedule and fusion are audited against freshly
    recomputed dependences; a :class:`~repro.analysis.diagnostics.
    VerifyError` names the pass whose output first went wrong.

    ``dump_after`` names passes whose output should be pretty-printed
    into the trace's ``dumps`` (the CLI ``--dump-after`` surface); an
    unknown name raises :class:`~repro.pipeline.registry.
    UnknownPassError` listing the registered passes.

    ``store`` (an :class:`~repro.service.store.ArtifactStore`) turns on
    incremental compilation: the manager consults per-pass artifacts
    fingerprinted from ``input_hash`` (the front end's state hash) and
    ``context`` (the resolved target and ``fuse_exec``), reusing every
    prefix artifact an edit did not perturb.
    """
    from .passes import default_pipeline

    options = options or Options()
    if verify is None:
        from ..analysis import verify_enabled
        verify = verify_enabled()
    report = TransformReport()
    manager = PassManager(default_pipeline(), verify=verify,
                          dump_after=dump_after, store=store,
                          context=context, input_hash=input_hash)
    program, trace = manager.run(lowered.nir, lowered.env, options,
                                 report, input_stage="lower")
    return TransformedProgram(nir=program, env=lowered.env,
                              options=options, report=report, trace=trace)
