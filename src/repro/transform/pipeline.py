"""The NIR optimization pipeline (the paper's target-independent phase).

Runs, in order: normalization (communication/reduction extraction and
alignment copies), mask padding (Figure 10), and domain blocking with
fusion (Figure 9), recursively inside serial control structure.  Each
step is individually switchable for the ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import nir
from ..lowering.check import check_program
from ..lowering.environment import Environment
from ..lowering.lower import LoweredProgram
from .blocking import BlockingReport, fuse_phases, rebuild, schedule_phases
from .masking import MaskingReport, MaskPadder
from .normalize import Normalizer, NormalizeReport
from .phases import PhaseClassifier
from .promotion import LoopPromoter, PromotionReport


@dataclass(frozen=True)
class Options:
    """Optimization switches (each is a DESIGN.md ablation point)."""

    promote_loops: bool = True  # serial DO axes to parallel MOVE dims
    comm_cse: bool = True    # reuse identical communication results
    neighborhood: bool = False  # §5.3.2: CSHIFT operands stay in blocks
    block: bool = True       # reorder phases to group like domains
    fuse: bool = True        # merge adjacent like-domain MOVEs
    pad_masks: bool = True   # Figure 10 section padding
    recheck: bool = True     # re-run type/shape checks afterwards

    @classmethod
    def naive(cls) -> "Options":
        """Promotion and normalization only — the per-statement comparison
        point (loops still vectorize, but no cross-statement blocking)."""
        return cls(comm_cse=False, block=False, fuse=False,
                   pad_masks=False)


@dataclass
class TransformReport:
    promotion: PromotionReport = field(default_factory=PromotionReport)
    normalize: NormalizeReport = field(default_factory=NormalizeReport)
    masking: MaskingReport = field(default_factory=MaskingReport)
    blocking: BlockingReport = field(default_factory=BlockingReport)


@dataclass
class TransformedProgram:
    """An optimized NIR program ready for the target-specific phase."""

    nir: nir.Program
    env: Environment
    options: Options
    report: TransformReport

    @property
    def domains(self) -> dict[str, nir.Shape]:
        return self.env.domains

    def inner_body(self) -> nir.Imperative:
        node: nir.Imperative = self.nir.body
        while isinstance(node, (nir.WithDomain, nir.WithDecl)):
            node = node.body
        return node


def unwrap_body(program: nir.Program) -> nir.Imperative:
    """Strip the PROGRAM/WITH_DOMAIN/WITH_DECL scaffolding."""
    node: nir.Imperative = program.body
    while isinstance(node, (nir.WithDomain, nir.WithDecl)):
        node = node.body
    return node


def wrap_body(body: nir.Imperative, env: Environment,
              name: str) -> nir.Program:
    """Re-apply scoping: declarations innermost, domains around them."""
    scoped: nir.Imperative = nir.WithDecl(env.nir_declarations(), body)
    for dom_name, shape in reversed(list(env.domains.items())):
        scoped = nir.WithDomain(dom_name, shape, scoped)
    return nir.Program(scoped, name=name)


def optimize(lowered: LoweredProgram,
             options: Options | None = None,
             verify: bool | None = None) -> TransformedProgram:
    """Apply the target-independent NIR transformations.

    With ``verify`` on (default: the ``REPRO_VERIFY=1`` environment
    switch) the NIR verifier runs on the input and after every pass, and
    the blocking stage's schedule and fusion are audited against freshly
    recomputed dependences; a :class:`~repro.analysis.diagnostics.
    VerifyError` names the pass whose output first went wrong.
    """
    options = options or Options()
    if verify is None:
        from ..analysis import verify_enabled
        verify = verify_enabled()
    env = lowered.env
    report = TransformReport()

    def checked(stage: str, node: nir.Imperative) -> None:
        if verify:
            from ..analysis.nir_verifier import assert_valid
            assert_valid(node, env, stage)

    program = lowered.nir
    checked("lower", program)
    if options.promote_loops:
        promoter = LoopPromoter(env)
        program = promoter.promote(program)
        report.promotion = promoter.report
        checked("promote", program)

    normalizer = Normalizer(env, comm_cse=options.comm_cse,
                            neighborhood=options.neighborhood)
    program = normalizer.normalize(program)
    report.normalize = normalizer.report
    checked("normalize", program)

    body = unwrap_body(program)

    if options.pad_masks:
        padder = MaskPadder(env)
        body = padder.pad_program(body)
        report.masking = padder.report
        checked("pad_masks", body)

    body = _eliminate_dead_scalar_stores(
        body, report.promotion.promoted_indices)
    checked("dse", body)

    if options.block or options.fuse:
        body = _block_recursive(body, env, options, report.blocking,
                                verify=verify)
        checked("block", body)

    program = wrap_body(body, env, program.name)
    result = TransformedProgram(nir=program, env=env, options=options,
                                report=report)
    if options.recheck:
        check_program(program, env)
    return result


def _scalar_reads(node: nir.Imperative) -> set[str]:
    """Every scalar name the program can observe (reads, conditions, IO)."""
    reads: set[str] = set()
    for n in nir.imperatives.walk(node):
        if isinstance(n, nir.Move):
            # A move READS its mask, source, and target subscripts — the
            # stored-to scalar itself is a write, not a read.
            for clause in n.clauses:
                reads |= nir.scalar_vars(clause.mask)
                reads |= nir.scalar_vars(clause.src)
                if isinstance(clause.tgt, nir.AVar) \
                        and isinstance(clause.tgt.field, nir.Subscript):
                    for idx in clause.tgt.field.indices:
                        if not isinstance(idx, nir.IndexRange):
                            reads |= nir.scalar_vars(idx)
        else:
            for value in nir.imperatives.values_of(n):
                reads |= nir.scalar_vars(value)
    return reads


def _eliminate_dead_scalar_stores(node: nir.Imperative,
                                  candidates: set[str]) -> nir.Imperative:
    """Drop dead exit-value stores to promoted DO variables.

    Loop promotion preserves each DO variable's Fortran exit value with a
    constant scalar move; when nothing ever reads the variable again the
    store is dead front-end work and is removed.  Only promotion-
    generated index stores are candidates — user scalar assignments are
    observable program state and always survive.
    """
    if not candidates:
        return node
    live = _scalar_reads(node)

    def clean(n: nir.Imperative) -> nir.Imperative:
        if isinstance(n, nir.Move):
            kept = tuple(
                c for c in n.clauses
                if not (isinstance(c.tgt, nir.SVar)
                        and c.tgt.name in candidates
                        and c.tgt.name not in live
                        and nir.is_constant(c.src)
                        and c.mask == nir.TRUE))
            if not kept:
                return nir.Skip()
            if len(kept) != len(n.clauses):
                return nir.Move(kept)
            return n
        if isinstance(n, nir.Sequentially):
            return nir.seq(*[clean(a) for a in n.actions])
        if isinstance(n, nir.Do):
            return nir.Do(n.shape, clean(n.body), n.index_names)
        if isinstance(n, nir.While):
            return nir.While(n.cond, clean(n.body))
        if isinstance(n, nir.IfThenElse):
            return nir.IfThenElse(n.cond, clean(n.then), clean(n.els))
        return n

    return clean(node)


def _block_recursive(node: nir.Imperative, env: Environment,
                     options: Options, report: BlockingReport,
                     verify: bool = False) -> nir.Imperative:
    """Apply schedule+fuse to every statement sequence, bottom-up.

    Under ``verify``, each sequence's reordering is audited against
    dependences recomputed on the pre-schedule phases, and fusion is
    checked to be pure clause concatenation.
    """
    if isinstance(node, nir.Sequentially):
        children = [_block_recursive(a, env, options, report, verify)
                    for a in node.actions]
        seq = nir.seq(*children)
        if not isinstance(seq, nir.Sequentially):
            return seq
        classifier = PhaseClassifier(env, neighborhood=options.neighborhood)
        phases = classifier.split(seq)
        report.phases_in += len(phases)
        if options.block:
            before = list(phases)
            phases = schedule_phases(phases, report)
            if verify:
                from ..analysis.dep_audit import assert_schedule
                assert_schedule(before, phases, env, "block/schedule")
        if options.fuse:
            before = list(phases)
            phases = fuse_phases(phases, report)
            if verify:
                from ..analysis.dep_audit import assert_fusion
                assert_fusion(before, phases, "block/fuse")
        else:
            report.phases_out += len(phases)
        return rebuild(phases)
    if isinstance(node, nir.Do):
        return nir.Do(
            node.shape,
            _block_recursive(node.body, env, options, report, verify),
            node.index_names)
    if isinstance(node, nir.While):
        return nir.While(
            node.cond,
            _block_recursive(node.body, env, options, report, verify))
    if isinstance(node, nir.IfThenElse):
        return nir.IfThenElse(
            node.cond,
            _block_recursive(node.then, env, options, report, verify),
            _block_recursive(node.els, env, options, report, verify))
    if isinstance(node, nir.Concurrently):
        return nir.Concurrently(tuple(
            _block_recursive(a, env, options, report, verify)
            for a in node.actions))
    return node
