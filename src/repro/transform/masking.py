"""Mask padding: the Figure 10 transformation.

"By generating mask code, the compiler pads computations over array
subsections to full-array operations, increasing the pool of sibling
computations which could be implemented in the same computation block.
When multiple array subsections can be shown to be disjoint, as in a
WHERE/ELSEWHERE construct, the logical mask which is generated can be
reused and the computations blocked together."

A section assignment ``B(1:32:2,:) = A(1:32:2,:)`` becomes a full-shape
masked MOVE whose mask tests the axis coordinate:
``mod(local_under(S,1) - 1, 2) == 0``.  Afterwards the move's domain key
is the full array shape, so the blocking fuser can group it with other
full-shape computations — including its ELSEWHERE sibling, whose mask is
provably disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import nir
from ..lowering.environment import Environment
from . import regions as rg


@dataclass
class MaskingReport:
    padded: int = 0
    skipped: int = 0


class MaskPadder:
    def __init__(self, env: Environment,
                 domains: dict[str, nir.Shape] | None = None) -> None:
        self.env = env
        self.domains = domains if domains is not None else env.domains
        self.report = MaskingReport()

    def pad_program(self, node: nir.Imperative) -> nir.Imperative:
        if isinstance(node, nir.Program):
            return nir.Program(self.pad_program(node.body), node.name)
        if isinstance(node, nir.WithDomain):
            return nir.WithDomain(node.name, node.shape,
                                  self.pad_program(node.body))
        if isinstance(node, nir.WithDecl):
            return nir.WithDecl(node.decl, self.pad_program(node.body))
        if isinstance(node, nir.Sequentially):
            return nir.seq(*[self.pad_program(a) for a in node.actions])
        if isinstance(node, nir.Do):
            return nir.Do(node.shape, self.pad_program(node.body),
                          node.index_names)
        if isinstance(node, nir.While):
            return nir.While(node.cond, self.pad_program(node.body))
        if isinstance(node, nir.IfThenElse):
            return nir.IfThenElse(node.cond, self.pad_program(node.then),
                                  self.pad_program(node.els))
        if isinstance(node, nir.Move):
            return nir.Move(tuple(self.pad_clause(c) for c in node.clauses))
        return node

    # ------------------------------------------------------------------

    def pad_clause(self, clause: nir.MoveClause) -> nir.MoveClause:
        padded = self.try_pad(clause)
        if padded is None:
            return clause
        return padded

    def try_pad(self, clause: nir.MoveClause) -> nir.MoveClause | None:
        """Pad a section computation to a full-shape masked move, or None.

        Applicable when: the target is a pure-range section (no scalar or
        computed subscripts), every array operand is a section with the
        *identical* region (so index spaces coincide pointwise), strides
        are positive, and coordinate values (``LocalUnder``) refer to the
        section region.
        """
        if not isinstance(clause.tgt, nir.AVar) \
                or not isinstance(clause.tgt.field, nir.Subscript):
            return None
        sym = self.env.lookup(clause.tgt.name)
        tregion = rg.region_of_field(clause.tgt.field, sym.extents,
                                     self.domains)
        if not tregion.exact or tregion.is_full:
            return None
        if any(not isinstance(i, nir.IndexRange)
               for i in clause.tgt.field.indices):
            return None
        if any(st <= 0 for _, _, st in tregion.axes):
            return None

        base_dom = sym.domain
        base_shape = (nir.DomainRef(base_dom) if base_dom is not None
                      else nir.shape_of_extents(sym.extents))

        ok = True

        def rewrite(value: nir.Value) -> nir.Value:
            nonlocal ok
            if isinstance(value, nir.AVar):
                osym = self.env.lookup(value.name)
                oreg = rg.region_of_field(value.field, osym.extents,
                                          self.domains)
                if rg.regions_equal(oreg, tregion):
                    return nir.AVar(value.name, nir.Everywhere())
                if oreg.is_full and osym.extents == sym.extents:
                    # Full-shape operand (e.g. an earlier-padded mask
                    # input); reading extra points under the mask is safe.
                    return value
                ok = False
                return value
            if isinstance(value, nir.LocalUnder):
                # Section coordinates equal base coordinates at the same
                # points, so retarget the coordinate field to the base.
                return nir.LocalUnder(base_shape, value.dim)
            if isinstance(value, nir.Binary):
                return nir.Binary(value.op, rewrite(value.left),
                                  rewrite(value.right))
            if isinstance(value, nir.Unary):
                return nir.Unary(value.op, rewrite(value.operand))
            if isinstance(value, nir.FcnCall):
                return nir.FcnCall(value.name,
                                   tuple(rewrite(a) for a in value.args))
            return value

        new_src = rewrite(clause.src)
        new_mask_in = rewrite(clause.mask)
        if not ok:
            self.report.skipped += 1
            return None

        region_mask = self.region_mask(base_shape, sym.extents, tregion)
        if clause.mask == nir.TRUE:
            mask = region_mask
        else:
            mask = nir.Binary(nir.BinOp.AND, region_mask, new_mask_in)
        self.report.padded += 1
        return nir.MoveClause(mask, new_src,
                              nir.AVar(clause.tgt.name, nir.Everywhere()),
                              loc=clause.loc)

    def region_mask(self, base_shape: nir.Shape,
                    base_extents: tuple[int, ...],
                    region: rg.Region) -> nir.Value:
        """The logical mask selecting ``region`` within the full shape."""
        conds: list[nir.Value] = []
        for axis, ((lo, hi, st), n) in enumerate(
                zip(region.axes, base_extents), start=1):
            coord = nir.LocalUnder(base_shape, axis)
            if lo > 1:
                conds.append(nir.Binary(nir.BinOp.GE, coord,
                                        nir.int_const(lo)))
            if hi < n:
                conds.append(nir.Binary(nir.BinOp.LE, coord,
                                        nir.int_const(hi)))
            if st > 1:
                offset = nir.Binary(nir.BinOp.SUB, coord, nir.int_const(lo))
                conds.append(nir.Binary(
                    nir.BinOp.EQ,
                    nir.Binary(nir.BinOp.MOD, offset, nir.int_const(st)),
                    nir.int_const(0)))
        if not conds:
            return nir.TRUE
        mask = conds[0]
        for c in conds[1:]:
            mask = nir.Binary(nir.BinOp.AND, mask, c)
        return mask


def masks_disjoint(a: nir.MoveClause, b: nir.MoveClause,
                   env: Environment,
                   domains: dict[str, nir.Shape]) -> bool:
    """Are two padded clauses' masks provably disjoint (Figure 10)?

    Recognizes the complement pattern (``m`` vs ``.not. m``) and
    residue-class masks over the same coordinate with different
    remainders (odd/even strided sections).
    """
    ma, mb = a.mask, b.mask
    if ma == nir.Unary(nir.UnOp.NOT, mb) or mb == nir.Unary(nir.UnOp.NOT, ma):
        return True
    ra = _residue_pattern(ma)
    rb = _residue_pattern(mb)
    if ra is not None and rb is not None:
        (coord_a, mod_a, res_a) = ra
        (coord_b, mod_b, res_b) = rb
        if coord_a == coord_b and mod_a == mod_b and res_a != res_b:
            return True
    return False


def _residue_pattern(mask: nir.Value):
    """Match ``mod(coord - k, m) == r`` and return (coord, m, (k + r) % m)."""
    if not (isinstance(mask, nir.Binary) and mask.op is nir.BinOp.EQ):
        return None
    modexpr, target = mask.left, mask.right
    if not (isinstance(target, nir.Scalar) and target.type.is_integer):
        return None
    if not (isinstance(modexpr, nir.Binary)
            and modexpr.op is nir.BinOp.MOD):
        return None
    base, modulus = modexpr.left, modexpr.right
    if not (isinstance(modulus, nir.Scalar) and modulus.type.is_integer):
        return None
    shift = 0
    if isinstance(base, nir.Binary) and base.op is nir.BinOp.SUB \
            and isinstance(base.right, nir.Scalar):
        shift = int(base.right.rep)
        base = base.left
    if not isinstance(base, nir.LocalUnder):
        return None
    m = int(modulus.rep)
    r = (int(target.rep) + shift) % m
    return (base, m, r)
