"""Dependence analysis over NIR imperatives.

The blocking transformation (Figure 9) may only move like-domain phases
together "where control dependencies allow".  This module computes, for
any imperative, the sets of scalar and array locations it reads and
writes (arrays with :class:`~repro.transform.regions.Region` precision)
and provides the conservative ``may_depend`` test used by the scheduler:
two phases are dependent when one writes a location the other touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import nir
from ..lowering.environment import Environment
from . import regions as rg


@dataclass
class Effects:
    """Read/write footprint of an imperative fragment."""

    scalar_reads: set[str] = field(default_factory=set)
    scalar_writes: set[str] = field(default_factory=set)
    array_reads: dict[str, list[rg.Region]] = field(default_factory=dict)
    array_writes: dict[str, list[rg.Region]] = field(default_factory=dict)
    # Opaque actions (I/O, STOP) are barriers: they depend on everything.
    barrier: bool = False

    def add_array_read(self, name: str, region: rg.Region) -> None:
        self.array_reads.setdefault(name, []).append(region)

    def add_array_write(self, name: str, region: rg.Region) -> None:
        self.array_writes.setdefault(name, []).append(region)

    def merge(self, other: "Effects") -> None:
        self.scalar_reads |= other.scalar_reads
        self.scalar_writes |= other.scalar_writes
        for name, regs in other.array_reads.items():
            self.array_reads.setdefault(name, []).extend(regs)
        for name, regs in other.array_writes.items():
            self.array_writes.setdefault(name, []).extend(regs)
        self.barrier = self.barrier or other.barrier


class EffectAnalyzer:
    """Computes :class:`Effects` given a unit's environment."""

    def __init__(self, env: Environment,
                 domains: dict[str, nir.Shape] | None = None) -> None:
        self.env = env
        self.domains = domains if domains is not None else env.domains

    # -- values -------------------------------------------------------------

    def value_effects(self, value: nir.Value, eff: Effects) -> None:
        for node in nir.values.walk(value):
            if isinstance(node, nir.SVar):
                eff.scalar_reads.add(node.name)
            elif isinstance(node, nir.AVar):
                sym = self.env.lookup(node.name)
                eff.add_array_read(
                    node.name,
                    rg.region_of_field(node.field, sym.extents, self.domains))

    def target_effects(self, target: nir.Value, eff: Effects) -> None:
        if isinstance(target, nir.SVar):
            eff.scalar_writes.add(target.name)
            return
        if isinstance(target, nir.AVar):
            sym = self.env.lookup(target.name)
            eff.add_array_write(
                target.name,
                rg.region_of_field(target.field, sym.extents, self.domains))
            # Subscript index expressions are reads.
            if isinstance(target.field, nir.Subscript):
                for idx in target.field.indices:
                    if not isinstance(idx, nir.IndexRange):
                        self.value_effects(idx, eff)
            return
        raise TypeError(f"invalid MOVE target {target}")

    # -- imperatives ---------------------------------------------------------

    def effects(self, node: nir.Imperative) -> Effects:
        eff = Effects()
        self._imp(node, eff)
        return eff

    def _imp(self, node: nir.Imperative, eff: Effects) -> None:
        if isinstance(node, nir.Move):
            for clause in node.clauses:
                self.value_effects(clause.mask, eff)
                self.value_effects(clause.src, eff)
                self.target_effects(clause.tgt, eff)
        elif isinstance(node, (nir.Sequentially, nir.Concurrently)):
            for a in node.actions:
                self._imp(a, eff)
        elif isinstance(node, nir.IfThenElse):
            self.value_effects(node.cond, eff)
            self._imp(node.then, eff)
            self._imp(node.els, eff)
        elif isinstance(node, nir.While):
            self.value_effects(node.cond, eff)
            self._imp(node.body, eff)
        elif isinstance(node, nir.Do):
            for name in node.index_names:
                eff.scalar_writes.add(name)
            self._imp(node.body, eff)
        elif isinstance(node, nir.CallStmt):
            for a in node.args:
                self.value_effects(a, eff)
            eff.barrier = True
        elif isinstance(node, (nir.WithDecl, nir.WithDomain, nir.Program)):
            self._imp(node.body, eff)
        elif isinstance(node, (nir.Skip, nir.RefOut, nir.CopyOut)):
            pass
        else:
            eff.barrier = True


def _array_conflict(writes: dict[str, list[rg.Region]],
                    touches: dict[str, list[rg.Region]]) -> bool:
    for name, wregs in writes.items():
        for treg in touches.get(name, ()):
            for wreg in wregs:
                if rg.regions_overlap(wreg, treg):
                    return True
    return False


def may_depend(a: Effects, b: Effects) -> bool:
    """Conservative dependence test between two phases in program order.

    True if reordering ``a`` and ``b`` could change behaviour: flow
    (a writes, b reads), anti (a reads, b writes) or output (both write)
    dependence on any scalar or overlapping array region, or either is a
    barrier.
    """
    if a.barrier or b.barrier:
        return True
    if a.scalar_writes & (b.scalar_reads | b.scalar_writes):
        return True
    if b.scalar_writes & a.scalar_reads:
        return True
    if _array_conflict(a.array_writes, b.array_reads):
        return True
    if _array_conflict(b.array_writes, a.array_reads):
        return True
    if _array_conflict(a.array_writes, b.array_writes):
        return True
    return False
