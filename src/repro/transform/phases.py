"""Execution-partition analysis: classifying NIR actions into phases.

After normalization every top-level action in a sequence is a *phase*:
a computation over a common shape and alignment, a communication, a
reduction, or serial front-end work.  The classification here is shared
by the blocking scheduler (Figure 9), the mask padder (Figure 10) and
the CM2/NIR partitioner (Figure 11).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .. import nir
from ..frontend import intrinsics as intr
from ..lowering.environment import Environment
from . import regions as rg
from .dependence import EffectAnalyzer, Effects


class PhaseKind(enum.Enum):
    COMPUTE = "compute"      # PEAC virtual subgrid loop material
    COMM = "comm"            # CM runtime communication
    REDUCE = "reduce"        # CM runtime reduction (scalar to front end)
    SERIAL = "serial"        # front-end scalar/element work
    CONTROL = "control"      # loops/branches/calls containing sub-phases


DomainKey = tuple
"""Hashable key identifying a computation's shape-and-alignment class:
``(base_extents, region_axes)``.  Phases fuse only within one class."""


@dataclass
class Phase:
    """One schedulable unit plus its classification and footprint."""

    node: nir.Imperative
    kind: PhaseKind
    key: DomainKey | None
    effects: Effects
    index: int  # original position, for stable scheduling

    @property
    def is_compute(self) -> bool:
        return self.kind is PhaseKind.COMPUTE


def _is_gather_field(field: nir.FieldAction) -> bool:
    if not isinstance(field, nir.Subscript):
        return False
    return any(
        not isinstance(i, (nir.IndexRange, nir.Scalar, nir.SVar))
        for i in field.indices)


class PhaseClassifier:
    def __init__(self, env: Environment,
                 domains: dict[str, nir.Shape] | None = None,
                 neighborhood: bool = False) -> None:
        self.env = env
        self.domains = domains if domains is not None else env.domains
        self.analyzer = EffectAnalyzer(env, self.domains)
        self.neighborhood = neighborhood

    def split(self, node: nir.Imperative) -> list[Phase]:
        """Phase list of a sequence (or a single action)."""
        actions = (list(node.actions) if isinstance(node, nir.Sequentially)
                   else [node])
        return [self.classify(a, i) for i, a in enumerate(actions)]

    def classify(self, node: nir.Imperative, index: int = 0) -> Phase:
        effects = self.analyzer.effects(node)
        if isinstance(node, nir.Move):
            kind, key = self._classify_move(node)
            return Phase(node, kind, key, effects, index)
        if isinstance(node, (nir.Do, nir.While, nir.IfThenElse,
                             nir.Concurrently)):
            return Phase(node, PhaseKind.CONTROL, None, effects, index)
        if isinstance(node, (nir.CallStmt, nir.Skip, nir.RefOut,
                             nir.CopyOut)):
            return Phase(node, PhaseKind.SERIAL, None, effects, index)
        return Phase(node, PhaseKind.CONTROL, None, effects, index)

    # ------------------------------------------------------------------

    def _classify_move(self, move: nir.Move
                       ) -> tuple[PhaseKind, DomainKey | None]:
        kinds_keys = [self._classify_clause(c) for c in move.clauses]
        kind, key = kinds_keys[0]
        for k2, key2 in kinds_keys[1:]:
            if k2 is not kind or key2 != key:
                # Mixed move (shouldn't arise after normalization).
                return PhaseKind.CONTROL, None
        return kind, key

    def _classify_clause(self, clause: nir.MoveClause
                         ) -> tuple[PhaseKind, DomainKey | None]:
        if isinstance(clause.tgt, nir.SVar):
            if isinstance(clause.src, nir.FcnCall) \
                    and clause.src.name.lower() in intr.REDUCTIONS:
                return PhaseKind.REDUCE, None
            return PhaseKind.SERIAL, None

        assert isinstance(clause.tgt, nir.AVar)
        sym = self.env.lookup(clause.tgt.name)
        tregion = rg.region_of_field(clause.tgt.field, sym.extents,
                                     self.domains)
        if not tregion.exact:
            # Element store through computed subscripts: front-end code.
            return PhaseKind.SERIAL, None
        key: DomainKey = (tregion.base_extents, tregion.axes)

        if isinstance(clause.src, nir.FcnCall) \
                and clause.src.name.lower() in intr.COMMUNICATION:
            return PhaseKind.COMM, key
        if isinstance(clause.src, nir.FcnCall) \
                and clause.src.name.lower() in intr.REDUCTIONS:
            # Dimensional reduction into an array target.
            return PhaseKind.REDUCE, key
        if isinstance(clause.src, nir.AVar) and clause.mask == nir.TRUE:
            ssym = self.env.lookup(clause.src.name)
            sregion = rg.region_of_field(clause.src.field, ssym.extents,
                                         self.domains)
            if not sregion.exact:
                return PhaseKind.SERIAL, None
            aligned = (rg.regions_equal(sregion, tregion)
                       or (sregion.is_full and tregion.is_full
                           and sregion.base_extents == tregion.base_extents))
            if not aligned:
                return PhaseKind.COMM, key
            return PhaseKind.COMPUTE, key

        # General elemental computation: all operands were aligned by the
        # normalizer, so this is PEAC material unless an operand retains a
        # serial (inexact) access.
        for v in (clause.src, clause.mask):
            for node in nir.values.walk(v):
                if isinstance(node, nir.AVar):
                    if _is_gather_field(node.field):
                        # Un-hoisted coordinate gather: host fallback.
                        return PhaseKind.SERIAL, None
                    osym = self.env.lookup(node.name)
                    oreg = rg.region_of_field(node.field, osym.extents,
                                              self.domains)
                    if not oreg.exact:
                        return PhaseKind.SERIAL, None
                elif isinstance(node, nir.FcnCall) and \
                        node.name.lower() not in intr.SPECIAL_ELEMENTAL:
                    if self.neighborhood and node.name.lower() == "cshift":
                        continue  # a halo stream of the node program
                    return PhaseKind.CONTROL, None
        return PhaseKind.COMPUTE, key
