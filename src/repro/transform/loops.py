"""The inductive LOOP rules of Figure 4, plus loop utilities.

Figure 4 defines serial loops over shapes by structural induction:

1. ``LOOP(action, point X)             => action(X)``
2. ``LOOP(action, interval(min..max))  => SEQUENTIALLY[LOOP(action, min);
                                          LOOP(action, interval(succ min..max))]``
3. ``LOOP(action, prod [d1])           => LOOP(action, d1)``
4. ``LOOP(action, prod [d1, d2, ...])  => LOOP(LOOP(action, prod [d2...]), d1)``

``unroll_do`` applies these rules to a serial ``DO(S, I)``, substituting
the bound index names; ``interchange`` permutes the dims of a product-
shape loop (rule 4 read both ways); ``strip_mine`` splits an interval
into blocks, the shape view of the CM's virtual subgrid loop.
"""

from __future__ import annotations

from .. import nir


def loop_point(action, x: int):
    """Rule 1: a loop over a single point is the action applied there."""
    return action(x)


def unroll_do(node: nir.Do, limit: int | None = None) -> nir.Imperative:
    """Fully unroll a serial DO by the Figure 4 rules.

    The body is replicated once per point with the index names bound to
    scalar constants.  ``limit`` guards against exploding large loops:
    if the shape has more points, the node is returned unchanged.
    """
    shape = node.shape
    try:
        total = nir.size(shape)
    except nir.ShapeError:
        return node
    if limit is not None and total > limit:
        return node
    names = node.index_names
    out: list[nir.Imperative] = []
    for point in nir.points(shape):
        bindings = {
            name: nir.int_const(coord)
            for name, coord in zip(names, point)
        }
        out.append(nir.substitute_svars(node.body, bindings))
    return nir.seq(*out)


def interchange(node: nir.Do, perm: tuple[int, ...]) -> nir.Do:
    """Permute the axes of a product-shape DO (loop interchange).

    ``perm`` gives the new order as 0-based positions into the old dims.
    Index names are permuted alongside, preserving bindings.
    """
    shape = node.shape
    if not isinstance(shape, nir.ProdDom):
        raise nir.ShapeError("interchange requires a product-shape DO")
    if sorted(perm) != list(range(len(shape.dims))):
        raise ValueError(f"invalid permutation {perm}")
    dims = tuple(shape.dims[i] for i in perm)
    names = node.index_names
    if names and len(names) == len(shape.dims):
        names = tuple(names[i] for i in perm)
    return nir.Do(nir.ProdDom(dims), node.body, names)


def strip_mine(interval: nir.Shape, block: int) -> list[nir.Shape]:
    """Split an interval shape into contiguous blocks of ``block`` points.

    This is the shape-level view of subgrid layout: a parallel interval
    laid out blockwise to processors becomes a list of per-processor
    serial subintervals.
    """
    if block < 1:
        raise ValueError("block size must be positive")
    if not isinstance(interval, (nir.Interval, nir.SerialInterval)):
        raise nir.ShapeError("strip_mine requires an interval shape")
    if interval.stride != 1:
        raise nir.ShapeError("strip_mine requires unit stride")
    serial = isinstance(interval, nir.SerialInterval)
    out: list[nir.Shape] = []
    lo = interval.lo
    while lo <= interval.hi:
        hi = min(lo + block - 1, interval.hi)
        out.append(nir.SerialInterval(lo, hi) if serial
                   else nir.Interval(lo, hi))
        lo = hi + 1
    return out


def fuse_do(a: nir.Do, b: nir.Do) -> nir.Do | None:
    """Classical loop fusion: two DOs over the same shape become one.

    Returns ``None`` when the shapes differ (callers must also have
    checked dependences).  This is the serial-loop analogue of the MOVE
    fusion performed by the blocking pass.
    """
    if a.shape != b.shape:
        return None
    if a.index_names != b.index_names and a.index_names and b.index_names:
        # Rename b's indices to a's.
        renames = {
            old: nir.SVar(new)
            for old, new in zip(b.index_names, a.index_names)
        }
        b_body = nir.substitute_svars(b.body, renames)
    else:
        b_body = b.body
    names = a.index_names or b.index_names
    return nir.Do(a.shape, nir.seq(a.body, b_body), names)
