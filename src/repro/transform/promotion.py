"""Loop promotion: serial DO axes become parallel MOVE dimensions.

Figure 9's naive NIR represents the nest ``do i / forall j
A(i,j)=B(i,j)+j`` as a *single* MOVE over a two-dimensional domain.  To
reach that form from per-statement lowering, this pass rewrites a serial
``DO(i, MOVE)`` whose iterations are provably independent into one MOVE
over the enlarged region: the loop index disappears from subscripts in
favour of an index range, and its value uses become ``local_under``
coordinates.  Applied bottom-up, it also vectorizes dusty-deck Fortran
77 loop nests (the paper's SWE benchmark is "an updated Fortran-90
version of a dusty deck code").

Independence test (per clause): every target must subscript the loop
index directly on some axis, and every read of an array that the MOVE
writes must use the loop index at that same axis — so iteration ``i``
touches only slice ``i`` of any written array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import nir
from ..lowering.environment import Environment


@dataclass
class PromotionReport:
    promoted: int = 0
    rejected: int = 0
    promoted_indices: set[str] = field(default_factory=set)


class LoopPromoter:
    def __init__(self, env: Environment,
                 domains: dict[str, nir.Shape] | None = None) -> None:
        self.env = env
        self.domains = domains if domains is not None else env.domains
        self.report = PromotionReport()

    # ------------------------------------------------------------------

    def promote(self, node: nir.Imperative) -> nir.Imperative:
        """Apply promotion bottom-up throughout an imperative tree."""
        if isinstance(node, nir.Program):
            return nir.Program(self.promote(node.body), node.name)
        if isinstance(node, nir.WithDomain):
            return nir.WithDomain(node.name, node.shape,
                                  self.promote(node.body))
        if isinstance(node, nir.WithDecl):
            return nir.WithDecl(node.decl, self.promote(node.body))
        if isinstance(node, nir.Sequentially):
            return nir.seq(*[self.promote(a) for a in node.actions])
        if isinstance(node, nir.Concurrently):
            return nir.Concurrently(
                tuple(self.promote(a) for a in node.actions))
        if isinstance(node, nir.While):
            return nir.While(node.cond, self.promote(node.body))
        if isinstance(node, nir.IfThenElse):
            return nir.IfThenElse(node.cond, self.promote(node.then),
                                  self.promote(node.els))
        if isinstance(node, nir.Do):
            body = self.promote(node.body)
            node = nir.Do(node.shape, body, node.index_names)
            return self.try_promote_do(node)
        return node

    # ------------------------------------------------------------------

    def try_promote_do(self, node: nir.Do) -> nir.Imperative:
        """Promote one serial DO level if legal, else return it unchanged."""
        if not isinstance(node.shape, nir.SerialInterval):
            return node
        if len(node.index_names) != 1:
            return node
        index = node.index_names[0]
        axis_rng = (node.shape.lo, node.shape.hi, node.shape.stride)
        if axis_rng[2] <= 0:
            return node

        if isinstance(node.body, nir.Sequentially):
            return self._try_distribute(node, index, axis_rng)
        if not isinstance(node.body, nir.Move):
            return node
        move = node.body

        written = {}
        for clause in move.clauses:
            if not isinstance(clause.tgt, nir.AVar) \
                    or not isinstance(clause.tgt.field, nir.Subscript):
                self.report.rejected += 1
                return node
            axis = self._index_axis(clause.tgt.field, index)
            if axis is None:
                self.report.rejected += 1
                return node
            prev = written.get(clause.tgt.name)
            if prev is not None and prev != axis:
                self.report.rejected += 1
                return node
            written[clause.tgt.name] = axis

        for clause in move.clauses:
            for value in (clause.src, clause.mask):
                if not self._reads_safe(value, index, written):
                    self.report.rejected += 1
                    return node

        new_clauses = tuple(
            self._rewrite_clause(clause, index, axis_rng, written)
            for clause in move.clauses)
        self.report.promoted += 1
        self.report.promoted_indices.add(index)
        return nir.seq(nir.Move(new_clauses),
                       self._final_index_move(index, axis_rng))

    def _final_index_move(self, index: str,
                          axis_rng: tuple[int, int, int]) -> nir.Imperative:
        """Preserve the Fortran value of the DO variable after the loop."""
        lo, hi, st = axis_rng
        count = max(0, (hi - lo) // st + 1)
        final = lo + count * st
        return nir.move1(nir.int_const(final), nir.SVar(index))

    def _try_distribute(self, node: nir.Do, index: str,
                        axis_rng: tuple[int, int, int]) -> nir.Imperative:
        """Loop distribution: ``DO i [S1; S2]`` becomes ``DO i S1; DO i S2``.

        Legal when every written array is slice-``i``-local throughout the
        whole body (each instance of any statement touches only slice
        ``i``), so no value flows between different iterations across
        statements.  Each distributed loop is then promoted on its own.
        """
        actions = node.body.actions
        if not all(isinstance(m, nir.Move) for m in actions):
            return node
        # Constant stores to scalars nobody in the body reads (e.g. the
        # final-index moves emitted by inner promotions) are loop-
        # invariant: hoist them after the distributed loops.
        body_reads: set[str] = set()
        for m in actions:
            for clause in m.clauses:
                body_reads |= nir.scalar_vars(clause.src)
                body_reads |= nir.scalar_vars(clause.mask)
                if isinstance(clause.tgt, nir.AVar) \
                        and isinstance(clause.tgt.field, nir.Subscript):
                    for idx in clause.tgt.field.indices:
                        if not isinstance(idx, nir.IndexRange):
                            body_reads |= nir.scalar_vars(idx)
        moves: list[nir.Move] = []
        tail: list[nir.Move] = []
        for m in actions:
            if all(isinstance(c.tgt, nir.SVar)
                   and c.tgt.name not in body_reads
                   and c.tgt.name != index
                   and nir.is_constant(c.src) and c.mask == nir.TRUE
                   for c in m.clauses):
                tail.append(m)
            else:
                moves.append(m)

        written: dict[str, int] = {}
        for move in moves:
            for clause in move.clauses:
                if not isinstance(clause.tgt, nir.AVar) \
                        or not isinstance(clause.tgt.field, nir.Subscript):
                    self.report.rejected += 1
                    return node
                axis = self._index_axis(clause.tgt.field, index)
                if axis is None:
                    self.report.rejected += 1
                    return node
                prev = written.get(clause.tgt.name)
                if prev is not None and prev != axis:
                    self.report.rejected += 1
                    return node
                written[clause.tgt.name] = axis
        for move in moves:
            for clause in move.clauses:
                for value in (clause.src, clause.mask):
                    if not self._reads_safe(value, index, written):
                        self.report.rejected += 1
                        return node

        out = [
            self.try_promote_do(nir.Do(node.shape, move, node.index_names))
            for move in moves
        ]
        return nir.seq(*out, *tail)

    # ------------------------------------------------------------------

    def _index_axis(self, sub: nir.Subscript, index: str) -> int | None:
        """Axis (1-based) where ``index`` appears as a plain subscript."""
        axis = None
        for k, idx in enumerate(sub.indices, start=1):
            if isinstance(idx, nir.SVar) and idx.name == index:
                if axis is not None:
                    return None  # used on two axes: diagonal write
                axis = k
        return axis

    def _reads_safe(self, value: nir.Value, index: str,
                    written: dict[str, int]) -> bool:
        """Reads of written arrays must hit the loop index's own slice."""
        for node in nir.values.walk(value):
            if isinstance(node, nir.AVar) and node.name in written:
                if not isinstance(node.field, nir.Subscript):
                    return False
                axis = written[node.name]
                idx = node.field.indices[axis - 1]
                if not (isinstance(idx, nir.SVar) and idx.name == index):
                    return False
        return True

    def _rewrite_clause(self, clause: nir.MoveClause, index: str,
                        axis_rng: tuple[int, int, int],
                        written: dict[str, int]) -> nir.MoveClause:
        tgt = self._rewrite_avar(clause.tgt, index, axis_rng)
        # Compute the promoted axis position among the *region* axes of
        # the target, for coordinate-value rewrites.
        _, promoted_pos = self._region_positions(clause.tgt, index)
        new_region = self._new_region_shape(clause.tgt, index, axis_rng)
        src = self._rewrite_value(clause.src, index, axis_rng, new_region,
                                  promoted_pos)
        mask = self._rewrite_value(clause.mask, index, axis_rng, new_region,
                                   promoted_pos)
        return nir.MoveClause(mask, src, tgt, loc=clause.loc)

    def _region_positions(self, tgt: nir.AVar,
                          index: str) -> tuple[int, int]:
        """(number of region axes after rewrite, promoted axis position)."""
        assert isinstance(tgt.field, nir.Subscript)
        count = 0
        promoted_pos = 0
        for idx in tgt.field.indices:
            if isinstance(idx, nir.SVar) and idx.name == index:
                count += 1
                promoted_pos = count
            elif isinstance(idx, (nir.IndexRange, nir.LocalUnder)):
                count += 1
        return count, promoted_pos

    def _new_region_shape(self, tgt: nir.AVar, index: str,
                          axis_rng: tuple[int, int, int]) -> nir.Shape:
        assert isinstance(tgt.field, nir.Subscript)
        dims: list[nir.Shape] = []
        for idx in tgt.field.indices:
            if isinstance(idx, nir.SVar) and idx.name == index:
                dims.append(nir.Interval(*axis_rng))
            elif isinstance(idx, nir.IndexRange):
                dims.append(self._range_to_interval(idx))
            elif isinstance(idx, nir.LocalUnder):
                dims.extend(nir.dims_of(idx.shape, self.domains))
        if len(dims) == 1:
            return dims[0]
        return nir.ProdDom(tuple(dims))

    def _range_to_interval(self, rng: nir.IndexRange) -> nir.Shape:
        def const(v, d):
            if v is None:
                return d
            assert isinstance(v, nir.Scalar)
            return int(v.rep)

        # Bounds were folded to constants at lowering; missing parts can
        # only appear on Everywhere-canonical fields which are not ranges.
        lo = const(rng.lo, 1)
        hi = const(rng.hi, lo)
        st = const(rng.stride, 1)
        return nir.Interval(lo, hi, st)

    def _rewrite_read(self, ref: nir.AVar, index: str,
                      axis_rng: tuple[int, int, int],
                      new_region: nir.Shape,
                      promoted_pos: int) -> nir.AVar:
        """Rewrite an array *read* under promotion.

        When the read stays rectangular (the loop index appears at the
        same region position as in the target) the index becomes a range;
        otherwise the whole reference switches to canonical gather form —
        every region-contributing subscript a coordinate field over the
        promoted region, as in Figure 9's diagonal access.
        """
        assert isinstance(ref.field, nir.Subscript)
        region_dims = nir.dims_of(new_region, self.domains)

        # Decide mode: gather is needed if any subscript is field-valued
        # after rewriting, or the loop index sits at a mismatched position.
        pos = 0
        needs_gather = False
        for idx in ref.field.indices:
            if isinstance(idx, nir.IndexRange):
                pos += 1
            elif isinstance(idx, nir.SVar) and idx.name == index:
                pos += 1
                if pos != promoted_pos:
                    needs_gather = True
            elif isinstance(idx, nir.LocalUnder):
                pos += 1
                needs_gather = True
            elif not self._is_scalar_index(idx, index):
                needs_gather = True

        indices: list[nir.Value] = []
        pos = 0
        for idx in ref.field.indices:
            if isinstance(idx, nir.IndexRange):
                pos += 1
                if needs_gather:
                    indices.append(self._range_as_gather(
                        idx, new_region, region_dims, pos))
                else:
                    indices.append(idx)
            elif isinstance(idx, nir.SVar) and idx.name == index:
                pos += 1
                if needs_gather:
                    indices.append(nir.LocalUnder(new_region, promoted_pos))
                else:
                    indices.append(nir.IndexRange(
                        nir.int_const(axis_rng[0]),
                        nir.int_const(axis_rng[1]),
                        nir.int_const(axis_rng[2])))
            elif isinstance(idx, nir.LocalUnder):
                pos += 1
                indices.append(self._rewrite_value(
                    idx, index, axis_rng, new_region, promoted_pos))
            else:
                indices.append(self._rewrite_value(
                    idx, index, axis_rng, new_region, promoted_pos))

        # Canonicalize identity gathers back to rectangular sections.
        if needs_gather and self._is_identity_gather(indices, region_dims):
            indices = self._gather_to_ranges(indices, region_dims)
        sym = self.env.lookup(ref.name)
        field = nir.Subscript(tuple(indices))
        if self._covers_fully(field, sym.extents):
            return nir.AVar(ref.name, nir.Everywhere())
        return nir.AVar(ref.name, field)

    def _is_scalar_index(self, idx: nir.Value, index: str) -> bool:
        """A subscript with no loop-index or field content stays scalar."""
        for node in nir.values.walk(idx):
            if isinstance(node, nir.SVar) and node.name == index:
                return False
            if isinstance(node, (nir.LocalUnder, nir.AVar)):
                return False
        return True

    def _range_as_gather(self, rng: nir.IndexRange, new_region: nir.Shape,
                         region_dims, pos: int) -> nir.Value:
        """Express a range subscript as a coordinate field over the region.

        The range pairs pointwise with region axis ``pos``: the k-th
        region point reads the k-th range element, i.e. the affine map
        ``lo + ((coord - axis.lo) / axis.stride) * stride``.
        """
        axis = region_dims[pos - 1]
        if isinstance(axis, nir.Point):
            axis_lo, axis_st = axis.value, 1
        else:
            axis_lo, axis_st = axis.lo, axis.stride
        coord = nir.LocalUnder(new_region, pos)
        lo = int(rng.lo.rep) if isinstance(rng.lo, nir.Scalar) else 1
        st = int(rng.stride.rep) if isinstance(rng.stride, nir.Scalar) else 1
        steps: nir.Value = coord
        if axis_lo != 0:
            steps = nir.Binary(nir.BinOp.SUB, coord, nir.int_const(axis_lo))
        if axis_st != 1:
            steps = nir.Binary(nir.BinOp.DIV, steps, nir.int_const(axis_st))
        if st != 1:
            steps = nir.Binary(nir.BinOp.MUL, steps, nir.int_const(st))
        if lo != 0:
            steps = nir.Binary(nir.BinOp.ADD, steps, nir.int_const(lo))
        return steps

    def _is_identity_gather(self, indices, region_dims) -> bool:
        pos = 0
        for idx in indices:
            if isinstance(idx, nir.LocalUnder):
                pos += 1
                if idx.dim != pos:
                    return False
            elif not isinstance(idx, (nir.Scalar, nir.SVar)):
                return False
        return pos == len(region_dims)

    def _gather_to_ranges(self, indices, region_dims):
        out: list[nir.Value] = []
        pos = 0
        for idx in indices:
            if isinstance(idx, nir.LocalUnder):
                axis = region_dims[pos]
                pos += 1
                if isinstance(axis, nir.Point):
                    out.append(nir.int_const(axis.value))
                else:
                    out.append(nir.IndexRange(nir.int_const(axis.lo),
                                              nir.int_const(axis.hi),
                                              nir.int_const(axis.stride)))
            else:
                out.append(idx)
        return out

    def _rewrite_avar(self, ref: nir.AVar, index: str,
                      axis_rng: tuple[int, int, int]) -> nir.AVar:
        """Replace the plain loop-index subscript with its range."""
        assert isinstance(ref.field, nir.Subscript)
        sym = self.env.lookup(ref.name)
        new_indices: list[nir.Value] = []
        for idx in ref.field.indices:
            if isinstance(idx, nir.SVar) and idx.name == index:
                new_indices.append(nir.IndexRange(
                    nir.int_const(axis_rng[0]), nir.int_const(axis_rng[1]),
                    nir.int_const(axis_rng[2])))
            else:
                new_indices.append(idx)
        field = nir.Subscript(tuple(new_indices))
        if self._covers_fully(field, sym.extents):
            return nir.AVar(ref.name, nir.Everywhere())
        return nir.AVar(ref.name, field)

    def _covers_fully(self, field: nir.Subscript,
                      extents: tuple[int, ...]) -> bool:
        if len(field.indices) != len(extents):
            return False
        for idx, n in zip(field.indices, extents):
            if not isinstance(idx, nir.IndexRange):
                return False
            lo = idx.lo.rep if isinstance(idx.lo, nir.Scalar) else 1
            hi = idx.hi.rep if isinstance(idx.hi, nir.Scalar) else n
            st = idx.stride.rep if isinstance(idx.stride, nir.Scalar) else 1
            if not (int(lo) == 1 and int(hi) == n and int(st) == 1):
                return False
        return True

    def _rewrite_value(self, value: nir.Value, index: str,
                       axis_rng: tuple[int, int, int],
                       new_region: nir.Shape,
                       promoted_pos: int) -> nir.Value:
        if isinstance(value, nir.SVar) and value.name == index:
            return nir.LocalUnder(new_region, promoted_pos)
        if isinstance(value, nir.AVar):
            if isinstance(value.field, nir.Subscript):
                return self._rewrite_read(value, index, axis_rng, new_region,
                                          promoted_pos)
            return value
        if isinstance(value, nir.LocalUnder):
            # Old region coordinates shift past the inserted axis.
            old_dims = nir.dims_of(value.shape, self.domains)
            new_dim = value.dim + (1 if value.dim >= promoted_pos else 0)
            if len(old_dims) == nir.rank(new_region, self.domains):
                # Shape already includes the axis (shared region reference).
                return nir.LocalUnder(new_region, value.dim)
            return nir.LocalUnder(new_region, new_dim)
        if isinstance(value, nir.Binary):
            return nir.Binary(
                value.op,
                self._rewrite_value(value.left, index, axis_rng, new_region,
                                    promoted_pos),
                self._rewrite_value(value.right, index, axis_rng, new_region,
                                    promoted_pos))
        if isinstance(value, nir.Unary):
            return nir.Unary(
                value.op,
                self._rewrite_value(value.operand, index, axis_rng,
                                    new_region, promoted_pos))
        if isinstance(value, nir.FcnCall):
            return nir.FcnCall(value.name, tuple(
                self._rewrite_value(a, index, axis_rng, new_region,
                                    promoted_pos)
                for a in value.args))
        return value

