"""Array regions: the sections of a base array a MOVE touches.

A region is a per-axis list of arithmetic progressions ``(lo, hi, stride)``
within a base array's 1-based index space.  Regions drive both the
dependence test (may two MOVEs touch a common element?) and the
disjoint-mask grouping of Figure 10 (odd/even strided sections of the
same array provably never collide).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import nir


@dataclass(frozen=True)
class Region:
    """A rectangular strided section of a base array.

    ``axes`` holds one ``(lo, hi, stride)`` triple per array axis;
    ``base_extents`` are the declared extents.  ``exact`` is False when
    the region is a conservative over-approximation (e.g. an indirect
    subscript), in which case disjointness may never be concluded.
    """

    base_extents: tuple[int, ...]
    axes: tuple[tuple[int, int, int], ...]
    exact: bool = True

    def __post_init__(self) -> None:
        if len(self.axes) != len(self.base_extents):
            raise ValueError("region rank does not match base rank")

    @property
    def extents(self) -> tuple[int, ...]:
        return tuple(_prog_len(lo, hi, st) for lo, hi, st in self.axes)

    @property
    def is_full(self) -> bool:
        return self.exact and all(
            lo == 1 and hi == n and st == 1
            for (lo, hi, st), n in zip(self.axes, self.base_extents))

    def size(self) -> int:
        return math.prod(self.extents)


def full_region(extents: tuple[int, ...]) -> Region:
    """The region covering an entire array."""
    return Region(extents, tuple((1, n, 1) for n in extents))


def unknown_region(extents: tuple[int, ...]) -> Region:
    """A conservative whole-array region for unanalyzable subscripts."""
    return Region(extents, tuple((1, n, 1) for n in extents), exact=False)


def _prog_len(lo: int, hi: int, stride: int) -> int:
    if stride > 0:
        span = hi - lo
    else:
        span = lo - hi
    if span < 0:
        return 0
    return span // abs(stride) + 1


def _axes_overlap(a: tuple[int, int, int], b: tuple[int, int, int]) -> bool:
    """Can two arithmetic progressions share a point?

    Exact for the common cases (unit strides, equal strides); falls back
    to a gcd residue test, conservative where that is inconclusive.
    """
    alo, ahi, ast = a
    blo, bhi, bst = b
    ast, bst = abs(ast), abs(bst)
    if ast < 0 or bst < 0:  # normalized above; defensive
        return True
    a_min, a_max = min(alo, ahi), max(alo, ahi)
    b_min, b_max = min(blo, bhi), max(blo, bhi)
    if a_max < b_min or b_max < a_min:
        return False
    g = math.gcd(ast, bst)
    if (alo - blo) % g != 0:
        return False
    return True


def regions_overlap(a: Region, b: Region) -> bool:
    """May the two regions (of the same base) share an element?

    Conservative: returns True unless disjointness is provable.  Regions
    of different bases never reach this test.
    """
    if a.base_extents != b.base_extents:
        raise ValueError("regions of different bases are incomparable")
    if not (a.exact and b.exact):
        return True
    # Disjoint along ANY axis implies disjoint overall.
    return all(_axes_overlap(x, y) for x, y in zip(a.axes, b.axes))


def regions_equal(a: Region, b: Region) -> bool:
    """Exactly the same set of elements (used for alignment tests)."""
    return (a.exact and b.exact and a.base_extents == b.base_extents
            and a.axes == b.axes)


def region_of_field(field: nir.FieldAction, base_extents: tuple[int, ...],
                    domains: dict[str, nir.Shape]) -> Region:
    """The region a field action selects from an array of ``base_extents``."""
    if isinstance(field, nir.Everywhere):
        return full_region(base_extents)
    if isinstance(field, nir.LocalUnder):
        return full_region(base_extents)
    if isinstance(field, nir.Subscript):
        axes: list[tuple[int, int, int]] = []
        exact = True
        for idx, n in zip(field.indices, base_extents):
            if isinstance(idx, nir.IndexRange):
                lo = _const_or(idx.lo, 1)
                hi = _const_or(idx.hi, n)
                st = _const_or(idx.stride, 1)
                if lo is None or hi is None or st is None or st == 0:
                    axes.append((1, n, 1))
                    exact = False
                else:
                    axes.append((lo, hi, st))
            elif isinstance(idx, nir.Scalar) and idx.type.is_integer:
                axes.append((int(idx.rep), int(idx.rep), 1))
            elif isinstance(idx, nir.LocalUnder):
                # Coordinate-valued subscript: covers exactly the points of
                # the named axis of its shape (Figure 9's diagonal access).
                dim = nir.dims_of(idx.shape, domains)[idx.dim - 1]
                if isinstance(dim, (nir.Interval, nir.SerialInterval)):
                    axes.append((dim.lo, dim.hi, dim.stride))
                elif isinstance(dim, nir.Point):
                    axes.append((dim.value, dim.value, 1))
                else:
                    axes.append((1, n, 1))
                    exact = False
            else:
                # Loop-index or computed subscript: unknown single point.
                axes.append((1, n, 1))
                exact = False
        return Region(base_extents, tuple(axes), exact=exact)
    raise TypeError(f"unknown field action {field}")


def _const_or(v: nir.Value | None, default: int) -> int | None:
    if v is None:
        return default
    if isinstance(v, nir.Scalar) and v.type.is_integer:
        return int(v.rep)
    return None


def region_shape(region: Region) -> nir.Shape:
    """The NIR shape of a region's iteration space."""
    dims = tuple(nir.Interval(lo, hi, st) for lo, hi, st in region.axes)
    if len(dims) == 1:
        return dims[0]
    return nir.ProdDom(dims)
