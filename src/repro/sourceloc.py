"""Source locations threaded from lexer tokens to NIR nodes.

Every diagnostic-producing layer (the lint engine, the NIR verifier,
semantic lowering) points at program text through a :class:`SourceLoc`.
Locations ride along on AST and NIR nodes as non-comparing fields, so
structural equality and hashing of IR nodes are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourceLoc:
    """A 1-based line / column position in the source text."""

    line: int
    col: int = 0

    def __str__(self) -> str:
        if self.col:
            return f"{self.line}:{self.col}"
        return str(self.line)


def attach_loc(exc: Exception, loc: SourceLoc | None) -> None:
    """Record ``loc`` on an exception unless one is already attached.

    Lowering wraps nested value/statement translation, so the innermost
    (most precise) location wins.
    """
    if loc is not None and getattr(exc, "source_loc", None) is None:
        exc.source_loc = loc  # type: ignore[attr-defined]


def loc_of(obj) -> SourceLoc | None:
    """The source location carried by an AST/NIR node or exception."""
    loc = getattr(obj, "loc", None)
    if loc is None:
        loc = getattr(obj, "source_loc", None)
    if loc is None:
        line = getattr(obj, "line", 0)
        if line:
            return SourceLoc(line)
    return loc
