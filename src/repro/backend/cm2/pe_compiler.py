"""The CM2/PE NIR compiler: computation blocks to PEAC routines.

"The prototype CM/PE node compiler is carefully tuned for optimizing the
loop over local data in each processor, the process known as virtual
subgrid looping.  ...  CM/PE therefore only needs to process procedures
whose body is a single loop containing a sequence of (optionally masked)
moves from the local points of source arrays to the corresponding points
in the target" (section 5.2).

Pipeline: instruction selection (NIR MOVE → vector IR with load/value
memoization), chained multiply-add fusion, load chaining, lifetime-based
register allocation with spill placement, memory-access overlap, and
PEAC encoding.  Every optimization is switchable so the naive encoding
of Figure 12 is reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ... import nir
from ...lowering.environment import Environment
from ...peac.isa import (
    NUM_PREGS,
    NUM_SREGS,
    CReg,
    Imm,
    Instr,
    Mem,
    ParamSpec,
    PReg,
    Routine,
    SReg,
    VReg,
)
from ...transform import regions as rg
from .chaining import chain_loads, pair_memory_ops
from .regalloc import AllocationResult, PhysOp, allocate
from .vir import (
    ScalarSpec,
    Src,
    SrcKind,
    StreamSpec,
    VOp,
    VProgram,
    imm,
    scalar_src,
    stream_src,
)


class BackendError(Exception):
    """Raised on uncompilable computation blocks."""


class TooManyStreams(BackendError):
    """The block references more arrays than pointer registers exist."""


@dataclass(frozen=True)
class BackendOptions:
    """PE-compiler switches (the Figure 12 naive/optimized axis)."""

    memoize: bool = True     # value/load CSE across the block
    fma: bool = True         # chained multiply-add fusion
    chaining: bool = True    # in-memory operand substitution
    overlap: bool = True     # dual-issue loads/stores with arithmetic
    neighborhood: bool = False  # §5.3.2: CSHIFT operands as halo streams

    @classmethod
    def naive(cls) -> "BackendOptions":
        """Figure 12's naive encoding: every operand through a register."""
        return cls(memoize=False, fma=False, chaining=False, overlap=False)


@dataclass
class CompiledBlock:
    """A compiled computation phase: routine plus call information."""

    routine: Routine
    arg_info: list[dict]            # ArgBinding construction data
    region_extents: tuple[int, ...]
    real_elements: int
    allocation: AllocationResult | None = None


# ---------------------------------------------------------------------------
# Instruction selection
# ---------------------------------------------------------------------------

_ARITH_OPS = {
    nir.BinOp.ADD: ("iaddv", "faddv"),
    nir.BinOp.SUB: ("isubv", "fsubv"),
    nir.BinOp.MUL: ("imulv", "fmulv"),
    nir.BinOp.DIV: ("idivv", "fdivv"),
    nir.BinOp.MOD: ("imodv", "fmodv"),
    nir.BinOp.POW: ("fpowv", "fpowv"),
    nir.BinOp.MIN: ("fminv", "fminv"),
    nir.BinOp.MAX: ("fmaxv", "fmaxv"),
}

_CMP_OPS = {
    nir.BinOp.EQ: "fceqv",
    nir.BinOp.NE: "fcnev",
    nir.BinOp.LT: "fcltv",
    nir.BinOp.LE: "fclev",
    nir.BinOp.GT: "fcgtv",
    nir.BinOp.GE: "fcgev",
}

_UN_OPS = {
    nir.UnOp.ABS: "fabsv",
    nir.UnOp.SQRT: "fsqrtv",
    nir.UnOp.SIN: "fsinv",
    nir.UnOp.COS: "fcosv",
    nir.UnOp.TAN: "ftanv",
    nir.UnOp.ASIN: "fasinv",
    nir.UnOp.ACOS: "facosv",
    nir.UnOp.ATAN: "fatanv",
    nir.UnOp.EXP: "fexpv",
    nir.UnOp.LOG: "flogv",
    nir.UnOp.LOG10: "flog10v",
    nir.UnOp.FLOOR: "ffloorv",
    nir.UnOp.CEILING: "fceilv",
    nir.UnOp.TO_INT: "fintv",
    nir.UnOp.TO_FLOAT32: "ffltv",
    nir.UnOp.TO_FLOAT64: "fdblv",
}


class Selector:
    """Lowers one computation MOVE to straight-line vector IR."""

    def __init__(self, env: Environment, domains: dict[str, nir.Shape],
                 options: BackendOptions) -> None:
        self.env = env
        self.domains = domains
        self.options = options
        self.program = VProgram()
        self._stream_ids: dict[tuple, int] = {}
        self._scalar_ids: dict[str, int] = {}
        # Value memo: NIR node -> (src, elem, array deps); invalidated on
        # stores to any dependency.
        self._memo: dict[nir.Value, tuple[Src, str, frozenset[str]]] = {}
        self._stored_arrays: set[str] = set()

    # -- streams ---------------------------------------------------------

    def array_stream(self, name: str,
                     region: tuple | None, direction: str) -> int:
        key = ("arr", name, region, direction)
        if key not in self._stream_ids:
            sid = self.program.add_stream(StreamSpec(
                kind="array", array=name, region=region,
                direction=direction))
            self._stream_ids[key] = sid
        return self._stream_ids[key]

    def halo_stream(self, name: str, shift: int, dim: int) -> int:
        key = ("halo", name, shift, dim)
        if key not in self._stream_ids:
            sid = self.program.add_stream(StreamSpec(
                kind="halo", array=name, halo_shift=shift, halo_dim=dim,
                direction="r"))
            self._stream_ids[key] = sid
        return self._stream_ids[key]

    def coord_stream(self, shape: nir.Shape, dim: int) -> int:
        resolved = nir.resolve(shape, self.domains)
        extents = nir.extents(resolved, self.domains)
        axis = nir.dims_of(resolved, self.domains)[dim - 1]
        if isinstance(axis, nir.Point):
            lo, stride = axis.value, 1
        else:
            lo, stride = axis.lo, axis.stride
        key = ("coord", extents, dim, lo, stride)
        if key not in self._stream_ids:
            sid = self.program.add_stream(StreamSpec(
                kind="coord", coord_axis=dim, coord_extents=extents,
                coord_lo=lo, coord_stride=stride, direction="r"))
            self._stream_ids[key] = sid
        return self._stream_ids[key]

    def scalar_id(self, value: nir.Value, key: str) -> int:
        if key not in self._scalar_ids:
            self._scalar_ids[key] = self.program.add_scalar(
                ScalarSpec(value=value))
        return self._scalar_ids[key]

    # -- emission ---------------------------------------------------------

    def emit_move(self, move: nir.Move,
                  region: rg.Region) -> None:
        for clause in move.clauses:
            self.emit_clause(clause, region)

    def emit_clause(self, clause: nir.MoveClause, region: rg.Region) -> None:
        assert isinstance(clause.tgt, nir.AVar)
        tgt_region = self._field_region(clause.tgt)
        wstream = self.array_stream(clause.tgt.name, tgt_region, "w")

        value, velem, vdeps = self.emit_value(clause.src)
        if clause.mask == nir.TRUE:
            out, deps = value, vdeps
        else:
            mask, _, mdeps = self.emit_value(clause.mask)
            old, _, odeps = self.emit_value(
                nir.AVar(clause.tgt.name, clause.tgt.field))
            out = self.program.emit("fselv", (mask, value, old))
            deps = vdeps | mdeps | odeps
        if out.kind is not SrcKind.VIRT:
            out = self.program.emit("fmovv", (out,))
        self.program.emit_store(out, wstream)
        # The stored register now holds the target's memory contents.
        self._invalidate(clause.tgt.name)
        self._stored_arrays.add(clause.tgt.name)
        if self.options.memoize:
            tgt_elem = self.env.lookup(clause.tgt.name).element
            self._memo[nir.AVar(clause.tgt.name, clause.tgt.field)] = (
                out, _elem_code(tgt_elem), deps | {clause.tgt.name})

    def _invalidate(self, array: str) -> None:
        stale = [k for k, (_, _, deps) in self._memo.items()
                 if array in deps]
        for k in stale:
            del self._memo[k]

    def _field_region(self, ref: nir.AVar) -> tuple | None:
        sym = self.env.lookup(ref.name)
        if isinstance(ref.field, nir.Everywhere):
            return None
        region = rg.region_of_field(ref.field, sym.extents, self.domains)
        if not region.exact:
            raise BackendError(
                f"'{ref.name}': non-constant subscripts reached the PE "
                f"compiler")
        if region.is_full:
            return None
        return region.axes

    # -- values -----------------------------------------------------------

    def emit_value(self, value: nir.Value) -> tuple[Src, str, frozenset]:
        if self.options.memoize and value in self._memo:
            return self._memo[value]
        out = self._emit_value(value)
        if self.options.memoize and out[0].kind is SrcKind.VIRT:
            self._memo[value] = out
        return out

    def _emit_value(self, value: nir.Value) -> tuple[Src, str, frozenset]:
        none: frozenset = frozenset()
        if isinstance(value, nir.Scalar):
            if value.type.is_logical:
                return imm(1.0 if value.pyvalue else 0.0), "b", none
            return imm(float(value.pyvalue)), _elem_code(value.type), none
        if isinstance(value, nir.SVar):
            sym = self.env.lookup(value.name)
            sid = self.scalar_id(value, f"svar:{value.name}")
            return scalar_src(sid), _elem_code(sym.element), none
        if isinstance(value, nir.AVar):
            return self._emit_avar(value)
        if isinstance(value, nir.LocalUnder):
            sid = self.coord_stream(value.shape, value.dim)
            out = self.program.emit("load", (stream_src(sid),))
            return out, "i", none
        if isinstance(value, nir.Binary):
            return self._emit_binary(value)
        if isinstance(value, nir.Unary):
            return self._emit_unary(value)
        if isinstance(value, nir.FcnCall) \
                and value.name.lower() == "cshift" \
                and self.options.neighborhood:
            arr, shift, dim = value.args
            if not (isinstance(arr, nir.AVar)
                    and isinstance(arr.field, nir.Everywhere)
                    and isinstance(shift, nir.Scalar)
                    and isinstance(dim, nir.Scalar)):
                raise BackendError(
                    "neighborhood model requires whole-array constant "
                    "shifts")
            if arr.name in self._stored_arrays:
                raise BackendError(
                    f"halo read of '{arr.name}' after a store in the same "
                    f"block (fusion must keep them apart)")
            sym = self.env.lookup(arr.name)
            sid = self.halo_stream(arr.name, int(shift.rep), int(dim.rep))
            out = self.program.emit("load", (stream_src(sid),))
            return out, _elem_code(sym.element), frozenset({arr.name})
        if isinstance(value, nir.FcnCall) and value.name.lower() == "merge":
            t, telem, tdeps = self.emit_value(value.args[0])
            f, felem, fdeps = self.emit_value(value.args[1])
            m, _, mdeps = self.emit_value(value.args[2])
            out = self.program.emit("fselv", (m, t, f))
            elem = "f" if "f" in (telem, felem) else telem
            return out, elem, tdeps | fdeps | mdeps
        raise BackendError(
            f"cannot select code for {type(value).__name__}: {value}")

    def _emit_avar(self, ref: nir.AVar) -> tuple[Src, str, frozenset]:
        sym = self.env.lookup(ref.name)
        region = self._field_region(ref)
        sid = self.array_stream(ref.name, region, "r")
        out = self.program.emit("load", (stream_src(sid),))
        return out, _elem_code(sym.element), frozenset({ref.name})

    def _emit_binary(self, value: nir.Binary) -> tuple[Src, str, frozenset]:
        left, lelem, ldeps = self.emit_value(value.left)
        right, relem, rdeps = self.emit_value(value.right)
        deps = ldeps | rdeps
        op = value.op
        if op in _ARITH_OPS:
            int_op, float_op = _ARITH_OPS[op]
            if lelem == "i" and relem == "i":
                out = self.program.emit(int_op, (left, right))
                return out, "i", deps
            out = self.program.emit(float_op, (left, right))
            return out, "f", deps
        if op in _CMP_OPS:
            out = self.program.emit(_CMP_OPS[op], (left, right))
            return out, "b", deps
        if op is nir.BinOp.AND:
            return self.program.emit("candv", (left, right)), "b", deps
        if op is nir.BinOp.OR:
            return self.program.emit("corv", (left, right)), "b", deps
        if op is nir.BinOp.EQV:
            return self.program.emit("fceqv", (left, right)), "b", deps
        if op is nir.BinOp.NEQV:
            return self.program.emit("cxorv", (left, right)), "b", deps
        raise BackendError(f"no selection for operator {op}")

    def _emit_unary(self, value: nir.Unary) -> tuple[Src, str, frozenset]:
        operand, elem, deps = self.emit_value(value.operand)
        op = value.op
        if op is nir.UnOp.NEG:
            if elem == "i":
                return self.program.emit("inegv", (operand,)), "i", deps
            return self.program.emit("fnegv", (operand,)), "f", deps
        if op is nir.UnOp.NOT:
            return self.program.emit("cnotv", (operand,)), "b", deps
        opcode = _UN_OPS.get(op)
        if opcode is None:
            raise BackendError(f"no selection for operator {op}")
        if op is nir.UnOp.TO_INT or op in (nir.UnOp.FLOOR, nir.UnOp.CEILING):
            out_elem = "i"
        elif op is nir.UnOp.ABS:
            out_elem = elem
        else:
            out_elem = "f"
        return self.program.emit(opcode, (operand,)), out_elem, deps


def _elem_code(elem: nir.ScalarType) -> str:
    if elem.is_logical:
        return "b"
    if elem.is_integer:
        return "i"
    return "f"


# ---------------------------------------------------------------------------
# FMA fusion
# ---------------------------------------------------------------------------


def fuse_multiply_adds(program: VProgram) -> VProgram:
    """Convert ``t = a*b; d = t + c`` (t single-use) to ``d = fmav a b c``.

    Also matches ``d = t - c`` to ``fmsv``.  Integer multiplies are left
    alone (the Weitek chain is a floating-point path).
    """
    from .vir import uses_of

    ops = program.ops
    uses = uses_of(ops)
    def_pos: dict[int, int] = {}
    for pos, op in enumerate(ops):
        if op.dst >= 0:
            def_pos[op.dst] = pos

    fused_defs: set[int] = set()
    out_ops: list[VOp] = []
    replacements: dict[int, VOp] = {}

    for pos, op in enumerate(ops):
        if op.op in ("faddv", "fsubv"):
            for i, src in enumerate(op.srcs):
                if src.kind is not SrcKind.VIRT:
                    continue
                dpos = def_pos.get(src.index)
                if dpos is None:
                    continue
                mul = ops[dpos]
                if mul.op != "fmulv" or len(uses.get(src.index, [])) != 1:
                    continue
                other = op.srcs[1 - i]
                if op.op == "fsubv" and i == 1:
                    continue  # c - a*b has no single-instruction chain
                new_op = "fmav" if op.op == "faddv" else "fmsv"
                replacements[pos] = VOp(new_op,
                                        (mul.srcs[0], mul.srcs[1], other),
                                        op.dst)
                fused_defs.add(dpos)
                break

    out = VProgram(streams=program.streams, scalars=program.scalars,
                   n_virtuals=program.n_virtuals)
    for pos, op in enumerate(ops):
        if pos in fused_defs:
            continue
        out.ops.append(replacements.get(pos, op))
    return out


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def encode_routine(name: str, program: VProgram,
                   allocation: AllocationResult,
                   options: BackendOptions) -> Routine:
    """Turn allocated physical ops into a PEAC routine."""
    phys_ops = allocation.ops
    if options.overlap:
        phys_ops = pair_memory_ops(phys_ops)

    n_streams = len(program.streams)
    if n_streams + allocation.spill_slots > NUM_PREGS:
        raise TooManyStreams(
            f"{n_streams} operand streams + {allocation.spill_slots} spill "
            f"slots exceed {NUM_PREGS} pointer registers")
    if len(program.scalars) > NUM_SREGS:
        raise BackendError("too many broadcast scalars")

    def spill_mem(slot: int) -> Mem:
        return Mem(PReg(NUM_PREGS - 1 - slot), 0, 0)

    def operand(src: Src):
        if src.kind is SrcKind.VIRT:
            return VReg(src.index)
        if src.kind is SrcKind.STREAM:
            return Mem(PReg(src.index), 0, 1)
        if src.kind is SrcKind.SCALAR:
            return SReg(NUM_SREGS - 1 - src.index)
        return Imm(src.value)

    def encode_one(op: PhysOp) -> Instr:
        if op.op == "load":
            return Instr("flodv", (operand(op.srcs[0]), VReg(op.dst)))
        if op.op == "store":
            return Instr("fstrv", (operand(op.srcs[0]),
                                   operand(op.srcs[1])))
        if op.op == "spill":
            return Instr("fstrv", (operand(op.srcs[0]), spill_mem(op.slot)))
        if op.op == "restore":
            return Instr("flodv", (spill_mem(op.slot), VReg(op.dst)))
        ops_out = tuple(operand(s) for s in op.srcs) + (VReg(op.dst),)
        return Instr(op.op, ops_out)

    body: list[Instr] = []
    for op in phys_ops:
        if op.op.startswith("+"):
            mem_instr = encode_one(PhysOp(op.op[1:], op.srcs, op.dst,
                                          op.slot))
            prev = body[-1]
            body[-1] = Instr(prev.op, prev.operands, paired=mem_instr)
        else:
            body.append(encode_one(op))

    routine = Routine(name=name, spill_slots=allocation.spill_slots)
    routine.body = body
    routine.params = _build_params(program)
    return routine


def _build_params(program: VProgram) -> list[ParamSpec]:
    params: list[ParamSpec] = []
    for sid, spec in enumerate(program.streams):
        if spec.kind == "array":
            pname = f"{spec.array}.{spec.direction}{sid}"
            kind = "subgrid"
        elif spec.kind == "halo":
            pname = f"{spec.array}.h{spec.halo_dim}s{spec.halo_shift}.{sid}"
            kind = "halo"
        else:
            pname = f"coord{spec.coord_axis}.{sid}"
            kind = "coord"
        params.append(ParamSpec(kind=kind, name=pname, reg=PReg(sid),
                                meta=(sid,)))
    for i, _spec in enumerate(program.scalars):
        params.append(ParamSpec(kind="scalar", name=f"scalar{i}",
                                reg=SReg(NUM_SREGS - 1 - i), meta=(i,)))
    params.append(ParamSpec(kind="vlen", name="vlen", reg=CReg(2)))
    return params


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


_routine_counter = [0]


def compile_block(move: nir.Move, env: Environment,
                  domains: dict[str, nir.Shape],
                  options: BackendOptions | None = None,
                  name: str | None = None) -> CompiledBlock:
    """Compile one computation MOVE into a PEAC routine + call info."""
    options = options or BackendOptions()
    if name is None:
        _routine_counter[0] += 1
        name = f"Pk{_routine_counter[0]}vs1"

    first_tgt = move.clauses[0].tgt
    assert isinstance(first_tgt, nir.AVar)
    sym = env.lookup(first_tgt.name)
    region = rg.region_of_field(first_tgt.field, sym.extents, domains)

    selector = Selector(env, domains, options)
    selector.emit_move(move, region)
    program = selector.program

    if options.fma:
        program = fuse_multiply_adds(program)
    if options.chaining:
        stream_arrays = {
            sid: spec.array for sid, spec in enumerate(program.streams)}
        program = chain_loads(program, stream_arrays)

    allocation = allocate(program)
    routine = encode_routine(name, program, allocation, options)
    # Spill scratch must hold the computation's element type exactly
    # (an integer spill through float64 scratch would change dtypes on
    # restore); the blocked MOVE's target array carries that type.
    routine.dtype = np.dtype(sym.element.dtype).name

    arg_info: list[dict] = []
    for param in routine.params:
        if param.kind == "vlen":
            continue
        if param.kind == "subgrid":
            spec = program.streams[param.meta[0]]
            arg_info.append({
                "kind": "subgrid", "name": param.name,
                "array": spec.array, "region": spec.region,
            })
        elif param.kind == "halo":
            spec = program.streams[param.meta[0]]
            arg_info.append({
                "kind": "halo", "name": param.name, "array": spec.array,
                "axis": spec.halo_dim, "shift": spec.halo_shift,
            })
        elif param.kind == "coord":
            spec = program.streams[param.meta[0]]
            arg_info.append({
                "kind": "coord", "name": param.name,
                "extents": spec.coord_extents, "axis": spec.coord_axis,
                "lo": spec.coord_lo, "step": spec.coord_stride,
                "region": None,
            })
        else:
            spec = program.scalars[param.meta[0]]
            arg_info.append({
                "kind": "scalar", "name": param.name, "value": spec.value,
            })

    region_extents = region.extents
    return CompiledBlock(
        routine=routine,
        arg_info=arg_info,
        region_extents=region_extents,
        real_elements=math.prod(region_extents),
        allocation=allocation,
    )
