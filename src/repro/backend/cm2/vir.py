"""Vector IR: the PE compiler's three-address form over virtual registers.

The CM/PE compiler "only needs to process procedures whose body is a
single loop containing a sequence of (optionally masked) moves from the
local points of source arrays to the corresponding points in the target"
(section 5.2).  Such a body is straight-line code — "one basic block
with a single back-edge" — so the IR is a flat list of operations over
unlimited virtual registers, later mapped to the eight Weitek vector
registers by the allocator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SrcKind(enum.Enum):
    VIRT = "virt"       # virtual vector register
    STREAM = "stream"   # subgrid memory stream (pointer-register operand)
    SCALAR = "scalar"   # broadcast scalar register
    IMM = "imm"         # sequencer immediate


@dataclass(frozen=True)
class Src:
    kind: SrcKind
    index: int = 0         # virt number / stream id / scalar id
    value: float = 0.0     # for IMM

    def __str__(self) -> str:
        if self.kind is SrcKind.VIRT:
            return f"v{self.index}"
        if self.kind is SrcKind.STREAM:
            return f"m{self.index}"
        if self.kind is SrcKind.SCALAR:
            return f"s{self.index}"
        return f"#{self.value}"


def virt(n: int) -> Src:
    return Src(SrcKind.VIRT, n)


def stream_src(n: int) -> Src:
    return Src(SrcKind.STREAM, n)


def scalar_src(n: int) -> Src:
    return Src(SrcKind.SCALAR, n)


def imm(value: float) -> Src:
    return Src(SrcKind.IMM, value=float(value))


@dataclass(frozen=True)
class VOp:
    """One vector operation: ``dst = op(srcs)``.

    ``op`` is a PEAC opcode ("faddv", "fselv", ...), or the pseudo-ops
    ``"load"`` (dst ← stream) and ``"store"`` (stream ← src, dst = -1).
    """

    op: str
    srcs: tuple[Src, ...]
    dst: int = -1           # virtual register number; -1 for stores

    def __str__(self) -> str:
        args = " ".join(str(s) for s in self.srcs)
        if self.dst < 0:
            return f"{self.op} {args}"
        return f"{self.op} {args} -> v{self.dst}"


@dataclass(frozen=True)
class StreamSpec:
    """One memory stream of the routine (a pointer-register binding).

    kinds: ``array`` (a subgrid of a named array, read or written),
    ``coord`` (a runtime coordinate subgrid), ``halo`` (a neighbour-
    shifted view of an array under the §5.3.2 neighborhood model),
    ``spill`` (per-call PE scratch).
    """

    kind: str
    array: str = ""
    region: tuple[tuple[int, int, int], ...] | None = None
    coord_axis: int = 0
    coord_extents: tuple[int, ...] = ()
    coord_lo: int = 1
    coord_stride: int = 1
    halo_shift: int = 0
    halo_dim: int = 0
    direction: str = "r"  # 'r' | 'w'


@dataclass(frozen=True)
class ScalarSpec:
    """One broadcast scalar argument: a host-evaluated NIR value."""

    value: object  # nir.Value


@dataclass
class VProgram:
    """A complete straight-line vector program plus its operand table."""

    ops: list[VOp] = field(default_factory=list)
    streams: list[StreamSpec] = field(default_factory=list)
    scalars: list[ScalarSpec] = field(default_factory=list)
    n_virtuals: int = 0

    def new_virtual(self) -> int:
        n = self.n_virtuals
        self.n_virtuals += 1
        return n

    def add_stream(self, spec: StreamSpec) -> int:
        self.streams.append(spec)
        return len(self.streams) - 1

    def add_scalar(self, spec: ScalarSpec) -> int:
        self.scalars.append(spec)
        return len(self.scalars) - 1

    def emit(self, op: str, srcs: tuple[Src, ...]) -> Src:
        dst = self.new_virtual()
        self.ops.append(VOp(op, srcs, dst))
        return virt(dst)

    def emit_store(self, value: Src, stream: int) -> None:
        self.ops.append(VOp("store", (value, stream_src(stream))))

    def __str__(self) -> str:
        return "\n".join(str(op) for op in self.ops)


def uses_of(ops: list[VOp]) -> dict[int, list[int]]:
    """Map virtual register -> positions of instructions that read it."""
    uses: dict[int, list[int]] = {}
    for pos, op in enumerate(ops):
        for src in op.srcs:
            if src.kind is SrcKind.VIRT:
                uses.setdefault(src.index, []).append(pos)
    return uses


def defs_of(ops: list[VOp]) -> dict[int, int]:
    """Map virtual register -> position of its defining instruction."""
    defs: dict[int, int] = {}
    for pos, op in enumerate(ops):
        if op.dst >= 0:
            if op.dst in defs:
                raise ValueError(f"virtual v{op.dst} defined twice (not SSA)")
            defs[op.dst] = pos
    return defs
