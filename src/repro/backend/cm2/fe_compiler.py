"""The CM2/FE NIR compiler: the remainder program becomes host code.

"The FE/NIR compiler translates the NIR remainder program into SPARC
assembly code plus runtime system library calls.  DO- and
MOVE-constructs over serial shapes become explicit iteration.
Declarative NIR constructs become memory allocations, with their home
determined by usage.  Certain primitive function calls which represent
communication intrinsics are replaced by calls to their CM runtime
library implementations.  For each computation block being executed
remotely, the compiler inserts calling code to push PEAC procedure
arguments over the IFIFO to the processors" (section 5.2).

Here the "SPARC assembly" is the host IR of :mod:`repro.runtime.host`
(see that module for the disassembly format); this module provides the
declaration, serial-code and runtime-call halves, while
:mod:`repro.backend.cm2.partition` performs the host/node division.
"""

from __future__ import annotations

from ... import nir
from ...frontend import intrinsics as intr
from ...lowering.environment import Environment
from ...runtime import host as h


def allocation_ops(env: Environment,
                   layouts: dict[str, tuple[str, ...]] | None = None
                   ) -> list[h.HostOp]:
    """Alloc/ScalarInit prologue from the unit's declarations.

    ``layouts`` carries ``!layout:`` directive modes per array (explicit
    data layout, section 5.3.2).
    """
    layouts = layouts or {}
    ops: list[h.HostOp] = []
    for sym in env.symbols.values():
        if sym.is_array:
            ops.append(h.Alloc(name=sym.name, extents=sym.extents,
                               dtype=sym.element.dtype.name,
                               layout=layouts.get(sym.name)))
        elif sym.init is not None:
            ops.append(h.ScalarInit(name=sym.name, value=sym.init))
    return ops


def comm_kind(clause: nir.MoveClause) -> str:
    """Which CM runtime service implements a communication MOVE."""
    src = clause.src
    if isinstance(src, nir.FcnCall):
        name = src.name.lower()
        if name in intr.COMMUNICATION:
            return name if name in ("cshift", "eoshift", "transpose",
                                    "spread") else "copy"
        raise ValueError(f"not a communication call: {src.name}")
    if isinstance(src, nir.AVar):
        if isinstance(src.field, nir.Subscript) and any(
                not isinstance(i, (nir.IndexRange, nir.Scalar))
                for i in src.field.indices):
            return "gather"
        return "copy"
    raise ValueError(f"cannot classify communication source {src}")


def serial_ops(move: nir.Move) -> list[h.HostOp]:
    """Front-end execution of a serial MOVE (scalar or element work)."""
    ops: list[h.HostOp] = []
    for clause in move.clauses:
        if isinstance(clause.tgt, nir.SVar):
            ops.append(h.ScalarMove(clause))
        else:
            ops.append(h.ElementMove(clause))
    return ops


def call_ops(stmt: nir.CallStmt) -> list[h.HostOp]:
    """Host realizations of CALL/PRINT/STOP statements."""
    if stmt.name == "print":
        return [h.Print(values=stmt.args)]
    if stmt.name == "stop":
        return [h.Stop()]
    raise ValueError(f"unsupported procedure call '{stmt.name}'")
