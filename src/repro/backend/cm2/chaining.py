"""Load chaining and memory-access overlap (the Figure 12 optimizations).

Two independently switchable passes:

* :func:`chain_loads` (before register allocation) — "PEAC's support for
  load chaining also allows one in-memory operand to be substituted for
  a register operand, which helps reduce register pressure": a load
  whose value has exactly one consumer folds into that consumer as a
  streaming memory operand.

* :func:`pair_memory_ops` (after register allocation) — "wherever
  possible, loads and stores of data have been chained with the first or
  last use of a live variable, respectively, or overlapped with
  unrelated computations": a standalone load/store (including spill
  traffic) dual-issues with the preceding arithmetic instruction when no
  register hazard exists, moving its cost into the arithmetic slot.
"""

from __future__ import annotations

from .regalloc import PhysOp
from .vir import SrcKind, VOp, VProgram, stream_src, uses_of

_CHAINABLE_KINDS_OPS = {
    "faddv", "fsubv", "fmulv", "fdivv", "fminv", "fmaxv", "fmodv",
    "fpowv", "fmav", "fmsv", "fceqv", "fcnev", "fcltv", "fclev",
    "fcgtv", "fcgev", "candv", "corv", "cxorv", "fselv",
    "iaddv", "isubv", "imulv", "idivv", "imodv",
}


def chain_loads(program: VProgram,
                stream_arrays: dict[int, str]) -> VProgram:
    """Fold single-use loads into their consumers as memory operands.

    ``stream_arrays`` maps stream ids to array names ('' for coordinate
    streams); a load may not move past a store to the same array, since
    the streamed read would then observe the new value.
    """
    ops = program.ops
    uses = uses_of(ops)
    # Positions of stores per array name, to honour the no-crossing rule.
    store_positions: list[tuple[int, str]] = []
    for pos, op in enumerate(ops):
        if op.op == "store":
            sid = op.srcs[1].index
            store_positions.append((pos, stream_arrays.get(sid, "")))

    def store_between(lo: int, hi: int, array: str) -> bool:
        if not array:
            return False
        return any(lo < pos < hi and name == array
                   for pos, name in store_positions)

    folded: dict[int, VOp] = {}    # load position -> replacement None
    new_ops: list[VOp] = []
    replace_src: dict[int, VOp] = {}

    to_fold: dict[int, tuple[int, int]] = {}  # use pos -> (load pos, virt)
    for pos, op in enumerate(ops):
        if op.op != "load":
            continue
        consumers = uses.get(op.dst, [])
        if len(consumers) != 1:
            continue
        use_pos = consumers[0]
        use_op = ops[use_pos]
        if use_op.op not in _CHAINABLE_KINDS_OPS:
            continue
        if any(s.kind is SrcKind.STREAM for s in use_op.srcs):
            continue  # at most one in-memory operand per instruction
        if use_pos in to_fold:
            continue  # that consumer already chains another load
        sid = op.srcs[0].index
        if store_between(pos, use_pos, stream_arrays.get(sid, "")):
            continue
        to_fold[use_pos] = (pos, op.dst)

    fold_loads = {load_pos for load_pos, _ in to_fold.values()}
    out = VProgram(streams=program.streams, scalars=program.scalars,
                   n_virtuals=program.n_virtuals)
    for pos, op in enumerate(ops):
        if pos in fold_loads:
            continue
        if pos in to_fold:
            load_pos, v = to_fold[pos]
            sid = ops[load_pos].srcs[0].index
            new_srcs = tuple(
                stream_src(sid)
                if (s.kind is SrcKind.VIRT and s.index == v) else s
                for s in op.srcs)
            op = VOp(op.op, new_srcs, op.dst)
        out.ops.append(op)
    return out


def pair_memory_ops(ops: list[PhysOp]) -> list[PhysOp]:
    """Dual-issue standalone memory ops with the preceding computation.

    A memory op ``M`` directly following a computation ``C`` may share
    ``C``'s issue slot (both halves read pre-instruction register state):

    * a load/restore may not write ``C``'s destination;
    * a store/spill may not read ``C``'s destination (it would capture
      the pre-``C`` value).
    """
    out: list[PhysOp] = []
    paired_flags: list[bool] = []
    for op in ops:
        is_mem = op.op in ("load", "store", "spill", "restore")
        if is_mem and out:
            prev = out[-1]
            prev_is_compute = prev.op not in ("load", "store", "spill",
                                              "restore") and \
                not paired_flags[-1]
            if prev_is_compute and prev.dst >= 0:
                if op.op in ("load", "restore"):
                    ok = op.dst != prev.dst
                else:  # store / spill
                    ok = all(not (s.kind is SrcKind.VIRT
                                  and s.index == prev.dst)
                             for s in op.srcs)
                if ok:
                    out[-1] = PhysOp(prev.op, prev.srcs, prev.dst,
                                     slot=prev.slot)
                    # Represent the pairing by tagging: handled at encode
                    # time via a parallel list.
                    paired_flags[-1] = True
                    out.append(op)
                    paired_flags.append(True)
                    continue
        out.append(op)
        paired_flags.append(False)
    # Re-encode pairing as (compute, mem) adjacency marks.
    return _mark_pairs(out, paired_flags)


def _mark_pairs(ops: list[PhysOp], flags: list[bool]) -> list[PhysOp]:
    """Attach a pairing marker understood by the encoder.

    The encoder receives pairs as a pseudo-op ``"pair"`` whose ``srcs``
    is empty; instead we return the list with explicit (compute, mem)
    runs marked by interleaving sentinel booleans kept alongside.
    """
    # Encode pairing in-band: a paired mem op is renamed with a '+'
    # prefix so the encoder attaches it to the previous instruction.
    out: list[PhysOp] = []
    i = 0
    while i < len(ops):
        if (i + 1 < len(ops) and flags[i] and flags[i + 1]
                and ops[i + 1].op in ("load", "store", "spill", "restore")):
            out.append(ops[i])
            mem = ops[i + 1]
            out.append(PhysOp("+" + mem.op, mem.srcs, mem.dst, mem.slot))
            i += 2
        else:
            out.append(ops[i])
            i += 1
    return out


def count_pairs(ops: list[PhysOp]) -> int:
    return sum(1 for op in ops if op.op.startswith("+"))
