"""Vector register allocation for the virtual subgrid loop.

"Because such a virtual subgrid loop with purely local references can be
represented graphically as one basic block with a single back-edge,
register allocation can be optimized.  Vector registers tend to be the
limiting resource, so spill code is generated where necessary ...
Finally, lifetime analysis allows optimal register assignment within the
body of the virtual subgrid loop, with minimal spill traffic"
(sections 5.2 and 6).

The allocator is a linear scan over the straight-line vector IR with
exact lifetimes (the code is SSA) and Belady's choice of spill victim
(furthest next use).  Spills write to per-call PE scratch streams; one
spill/restore pair costs 18 cycles, the paper's anchor constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...peac.isa import NUM_VREGS
from .vir import Src, SrcKind, VProgram, uses_of, virt


class AllocationError(Exception):
    """Raised when allocation is impossible (e.g. too many live operands)."""


@dataclass(frozen=True)
class PhysOp:
    """A vector operation over physical registers.

    ``op`` as in :class:`VOp`, plus the pseudo-ops ``spill``/``restore``
    (physical reg <-> spill slot).  Register numbers are physical.
    """

    op: str
    srcs: tuple[Src, ...]    # VIRT sources now carry *physical* numbers
    dst: int = -1
    slot: int = -1           # spill/restore: scratch slot index


@dataclass
class AllocationResult:
    ops: list[PhysOp] = field(default_factory=list)
    spill_slots: int = 0
    spills: int = 0
    restores: int = 0
    max_pressure: int = 0


def allocate(program: VProgram, num_regs: int = NUM_VREGS
             ) -> AllocationResult:
    """Map virtual registers to ``num_regs`` physical vector registers."""
    ops = program.ops
    uses = uses_of(ops)
    result = AllocationResult()

    # State: where each live virtual currently lives.
    reg_of: dict[int, int] = {}      # virtual -> physical
    slot_of: dict[int, int] = {}     # virtual -> spill slot (may coexist)
    owner: dict[int, int] = {}       # physical -> virtual
    free: list[int] = list(range(num_regs - 1, -1, -1))
    next_slot = 0

    def next_use(v: int, after: int) -> int:
        for pos in uses.get(v, ()):
            if pos >= after:
                return pos
        return 1 << 30

    def release_dead(pos: int) -> None:
        dead = [v for v in list(reg_of) if next_use(v, pos) == 1 << 30]
        for v in dead:
            phys = reg_of.pop(v)
            owner.pop(phys, None)
            free.append(phys)
            slot_of.pop(v, None)

    def spill_one(pos: int, protected: set[int],
                  allow_protected: bool = False) -> int:
        nonlocal next_slot
        candidates = [v for v in reg_of if v not in protected]
        if not candidates and allow_protected:
            # Destination allocation may evict a current source: the
            # instruction reads its operands before the write commits,
            # and the evicted value survives in its spill slot.
            candidates = list(reg_of)
        if not candidates:
            raise AllocationError(
                "all registers pinned by one instruction's operands")
        victim = max(candidates, key=lambda v: next_use(v, pos))
        phys = reg_of.pop(victim)
        owner.pop(phys, None)
        if victim not in slot_of:
            slot_of[victim] = next_slot
            next_slot += 1
            result.ops.append(PhysOp("spill", (virt(phys),),
                                     slot=slot_of[victim]))
            result.spills += 1
        free.append(phys)
        return phys

    def take_reg(pos: int, protected: set[int],
                 for_dst: bool = False) -> int:
        if not free:
            spill_one(pos, protected, allow_protected=for_dst)
        return free.pop()

    def ensure_in_reg(v: int, pos: int, protected: set[int]) -> int:
        if v in reg_of:
            return reg_of[v]
        if v not in slot_of:
            raise AllocationError(f"use of undefined virtual v{v}")
        phys = take_reg(pos, protected)
        result.ops.append(PhysOp("restore", (), dst=phys,
                                 slot=slot_of[v]))
        result.restores += 1
        reg_of[v] = phys
        owner[phys] = v
        return phys

    for pos, op in enumerate(ops):
        release_dead(pos)
        # Bring spilled sources back; pin everything this op touches.
        protected: set[int] = set()
        for src in op.srcs:
            if src.kind is SrcKind.VIRT:
                protected.add(src.index)
        phys_srcs: list[Src] = []
        for src in op.srcs:
            if src.kind is SrcKind.VIRT:
                phys = ensure_in_reg(src.index, pos, protected)
                phys_srcs.append(virt(phys))
            else:
                phys_srcs.append(src)
        if op.dst >= 0:
            # Sources whose last use is this op can donate their register.
            for src in op.srcs:
                if src.kind is SrcKind.VIRT \
                        and next_use(src.index, pos + 1) == 1 << 30:
                    v = src.index
                    if v in reg_of:
                        phys = reg_of.pop(v)
                        owner.pop(phys, None)
                        free.append(phys)
                        slot_of.pop(v, None)
            dst_phys = take_reg(pos, protected, for_dst=True)
            reg_of[op.dst] = dst_phys
            owner[dst_phys] = op.dst
            result.ops.append(PhysOp(op.op, tuple(phys_srcs), dst=dst_phys))
        else:
            result.ops.append(PhysOp(op.op, tuple(phys_srcs)))
        result.max_pressure = max(result.max_pressure, len(reg_of))

    result.spill_slots = next_slot
    return result
