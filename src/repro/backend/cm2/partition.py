"""The top-level CM2/NIR compiler: host/node partitioning (Figure 11).

"The source NIR program has been restructured by the optimization phase
to consist of blocked computation and communication phases.  The CM2/NIR
compiler just cuts out the computation phases and patches the remaining
program to include appropriate NIR calling code.  Each computation phase
will be compiled as a single node procedure, and the remainder will
become supporting host code" (section 5.1).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ... import nir
from ...lowering.environment import Environment
from ...runtime import host as h
from ...transform.phases import PhaseClassifier, PhaseKind
from . import fe_compiler as fe
from .pe_compiler import (
    BackendError,
    BackendOptions,
    CompiledBlock,
    TooManyStreams,
    compile_block,
)


@dataclass
class PartitionReport:
    """The host/node division, for Figure 11's program graphs."""

    compute_blocks: int = 0
    comm_phases: int = 0
    reductions: int = 0
    serial_moves: int = 0
    node_instructions: int = 0
    block_clause_counts: list[int] = field(default_factory=list)


class Cm2Compiler:
    """Drives the host/node split and the sibling FE and PE compilers."""

    #: The target-registry name this backend serves
    #: (see :mod:`repro.targets`).
    target_name = "cm2"

    def __init__(self, env: Environment,
                 domains: dict[str, nir.Shape] | None = None,
                 options: BackendOptions | None = None,
                 layouts: dict[str, tuple[str, ...]] | None = None,
                 store=None, context: dict | None = None) -> None:
        self.env = env
        self.domains = domains if domains is not None else env.domains
        self.options = options or BackendOptions()
        self.layouts = layouts or {}
        self.classifier = PhaseClassifier(
            env, self.domains,
            neighborhood=self.options.neighborhood)
        self.routines: dict[str, object] = {}
        self.report = PartitionReport()
        self.blocks: list[CompiledBlock] = []
        self._counter = 0
        #: Incremental compilation: a per-phase artifact store
        #: (:class:`~repro.service.store.ArtifactStore`) consulted
        #: before each computation block is compiled, plus the compile
        #: context (resolved target, ``fuse_exec``) its keys carry.
        self.store = store
        self.context = dict(context or {})
        self.phase_hits = 0
        self.phase_misses = 0

    # ------------------------------------------------------------------

    def compile_program(self, program: nir.Program,
                        name: str | None = None) -> h.HostProgram:
        body = program.body
        while isinstance(body, (nir.WithDomain, nir.WithDecl)):
            body = body.body
        ops = fe.allocation_ops(self.env, self.layouts) \
            + self.compile_imperative(body)
        return h.HostProgram(name=name or program.name, ops=tuple(ops),
                             routines=dict(self.routines))

    # ------------------------------------------------------------------

    def compile_imperative(self, node: nir.Imperative) -> list[h.HostOp]:
        if isinstance(node, nir.Sequentially):
            out: list[h.HostOp] = []
            for action in node.actions:
                out.extend(self.compile_imperative(action))
            return out
        if isinstance(node, nir.Concurrently):
            out = []
            for action in node.actions:
                out.extend(self.compile_imperative(action))
            return out
        if isinstance(node, nir.Move):
            return self.compile_move(node)
        if isinstance(node, nir.Do):
            return self.compile_do(node)
        if isinstance(node, nir.While):
            return [h.WhileOp(cond=node.cond, body=tuple(
                self.compile_imperative(node.body)))]
        if isinstance(node, nir.IfThenElse):
            return [h.IfOp(cond=node.cond,
                           then=tuple(self.compile_imperative(node.then)),
                           els=tuple(self.compile_imperative(node.els)))]
        if isinstance(node, nir.CallStmt):
            return fe.call_ops(node)
        if isinstance(node, nir.Skip):
            return []
        if isinstance(node, (nir.WithDecl, nir.WithDomain)):
            return self.compile_imperative(node.body)
        raise BackendError(
            f"cannot partition imperative {type(node).__name__}")

    def compile_do(self, node: nir.Do) -> list[h.HostOp]:
        shape = nir.resolve(node.shape, self.domains)
        if isinstance(shape, nir.SerialInterval) and node.index_names:
            return [h.Loop(var=node.index_names[0], lo=shape.lo,
                           hi=shape.hi, step=shape.stride,
                           body=tuple(self.compile_imperative(node.body)))]
        if isinstance(shape, nir.Point) and node.index_names:
            return [h.Loop(var=node.index_names[0], lo=shape.value,
                           hi=shape.value, step=1,
                           body=tuple(self.compile_imperative(node.body)))]
        raise BackendError(
            f"cannot compile DO over {shape} on the front end")

    # ------------------------------------------------------------------

    def compile_move(self, move: nir.Move) -> list[h.HostOp]:
        phase = self.classifier.classify(move)
        if phase.kind is PhaseKind.COMPUTE:
            return self.compile_compute(move)
        if phase.kind is PhaseKind.COMM:
            self.report.comm_phases += len(move.clauses)
            return [h.CommMove(clause=c, kind=fe.comm_kind(c))
                    for c in move.clauses]
        if phase.kind is PhaseKind.REDUCE:
            self.report.reductions += len(move.clauses)
            return [h.ReduceMove(clause=c) for c in move.clauses]
        if phase.kind is PhaseKind.SERIAL:
            ops = fe.serial_ops(move)
            self.report.serial_moves += len(ops)
            return ops
        # Mixed move: recover by compiling each clause on its own.
        if len(move.clauses) > 1:
            out: list[h.HostOp] = []
            for clause in move.clauses:
                out.extend(self.compile_move(nir.Move((clause,))))
            return out
        raise BackendError(f"unpartitionable MOVE: {move}")

    def _move_symbols(self, move: nir.Move) -> list[tuple]:
        """The environment slice a phase compilation can observe:
        every referenced symbol, sorted by name."""
        names: set[str] = set()
        for clause in move.clauses:
            for value in (clause.tgt, clause.src, clause.mask):
                names |= nir.array_vars(value)
                names |= nir.scalar_vars(value)
        out = []
        for var in sorted(names):
            try:
                out.append((var, self.env.lookup(var)))
            except Exception:
                pass  # implicit/undeclared: cannot shape the block
        return out

    def phase_key(self, move: nir.Move, name: str) -> str:
        """The store fingerprint of one computation phase.

        Keyed on the phase's own content — the MOVE, the referenced
        symbols' declarations, the domain table — plus everything that
        shapes codegen: the backend options, the routine name (names
        are assigned by a deterministic counter, so prefix names are
        stable under tail edits), the resolved target, and
        ``fuse_exec``.  Whole-environment state (temp counters, unused
        symbols) stays out, so unrelated edits keep phase artifacts
        warm.  Every component is a *canonical rendering*, not a
        pickle: pickled bytes encode object-graph sharing, which
        differs between a freshly built NIR state and one materialized
        from a store artifact, and the key must agree across both.
        """
        return self.store.fingerprint("phase", {
            **self.context,
            "target": self.target_name,
            "name": name,
            "backend": dataclasses.asdict(self.options),
            "move": nir.pretty(move),
            "symbols": [
                (var, str(sym.type), list(sym.extents), sym.domain,
                 repr(sym.init))
                for var, sym in self._move_symbols(move)
            ],
            "domains": sorted((dom, str(shape))
                              for dom, shape in self.domains.items()),
        })

    def compute_moves(self, node: nir.Imperative):
        """The compute MOVEs :meth:`compile_imperative` will excise, in
        order — the pre-scan the parallel phase fan-out warms from.

        Mirrors the walk exactly, including the per-clause recovery of
        mixed moves; ``TooManyStreams`` splits are not predicted (the
        fan-out is best-effort warming; the assembly walk is the
        authority).
        """
        if isinstance(node, (nir.Sequentially, nir.Concurrently)):
            for action in node.actions:
                yield from self.compute_moves(action)
        elif isinstance(node, nir.Move):
            kind = self.classifier.classify(node).kind
            if kind is PhaseKind.COMPUTE:
                yield node
            elif kind not in (PhaseKind.COMM, PhaseKind.REDUCE,
                              PhaseKind.SERIAL) and len(node.clauses) > 1:
                for clause in node.clauses:
                    yield from self.compute_moves(nir.Move((clause,)))
        elif isinstance(node, (nir.Do, nir.While)):
            yield from self.compute_moves(node.body)
        elif isinstance(node, nir.IfThenElse):
            yield from self.compute_moves(node.then)
            yield from self.compute_moves(node.els)
        elif isinstance(node, (nir.WithDecl, nir.WithDomain)):
            yield from self.compute_moves(node.body)

    def compile_compute(self, move: nir.Move) -> list[h.HostOp]:
        """Excise one computation block; split it if it exhausts pointers.

        With a ``store``, the block is looked up by its phase
        fingerprint first — a hit reuses the compiled routine (possibly
        produced by another pool worker); a miss compiles inline and
        stores the result.  A split parent never stores (it produced no
        block); its halves key and store themselves.
        """
        self._counter += 1
        name = f"Pk{self._counter}vs1"
        block = None
        key = None
        if self.store is not None:
            key = self.phase_key(move, name)
            artifact = self.store.get("phase", key)
            if artifact is not None and isinstance(artifact.obj,
                                                   CompiledBlock):
                block = artifact.obj
                self.phase_hits += 1
        if block is None:
            try:
                block = compile_block(move, self.env, self.domains,
                                      self.options, name=name)
            except TooManyStreams:
                if len(move.clauses) == 1:
                    raise
                mid = len(move.clauses) // 2
                return (self.compile_compute(nir.Move(move.clauses[:mid]))
                        + self.compile_compute(nir.Move(move.clauses[mid:])))
            if self.store is not None:
                self.phase_misses += 1
                self.store.put("phase", key, block)
        self.blocks.append(block)
        self.routines[block.routine.name] = block.routine
        self.report.compute_blocks += 1
        self.report.block_clause_counts.append(len(move.clauses))
        self.report.node_instructions += block.routine.instruction_count()
        args = tuple(h.ArgBinding(**info) for info in block.arg_info)
        first_tgt = move.clauses[0].tgt
        layout = (self.layouts.get(first_tgt.name)
                  if isinstance(first_tgt, nir.AVar) else None)
        return [h.NodeCall(routine=block.routine, args=args,
                           region_extents=block.region_extents,
                           real_elements=block.real_elements,
                           layout=layout)]
