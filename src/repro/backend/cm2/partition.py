"""The top-level CM2/NIR compiler: host/node partitioning (Figure 11).

"The source NIR program has been restructured by the optimization phase
to consist of blocked computation and communication phases.  The CM2/NIR
compiler just cuts out the computation phases and patches the remaining
program to include appropriate NIR calling code.  Each computation phase
will be compiled as a single node procedure, and the remainder will
become supporting host code" (section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ... import nir
from ...lowering.environment import Environment
from ...runtime import host as h
from ...transform.phases import PhaseClassifier, PhaseKind
from . import fe_compiler as fe
from .pe_compiler import (
    BackendError,
    BackendOptions,
    CompiledBlock,
    TooManyStreams,
    compile_block,
)


@dataclass
class PartitionReport:
    """The host/node division, for Figure 11's program graphs."""

    compute_blocks: int = 0
    comm_phases: int = 0
    reductions: int = 0
    serial_moves: int = 0
    node_instructions: int = 0
    block_clause_counts: list[int] = field(default_factory=list)


class Cm2Compiler:
    """Drives the host/node split and the sibling FE and PE compilers."""

    #: The target-registry name this backend serves
    #: (see :mod:`repro.targets`).
    target_name = "cm2"

    def __init__(self, env: Environment,
                 domains: dict[str, nir.Shape] | None = None,
                 options: BackendOptions | None = None,
                 layouts: dict[str, tuple[str, ...]] | None = None) -> None:
        self.env = env
        self.domains = domains if domains is not None else env.domains
        self.options = options or BackendOptions()
        self.layouts = layouts or {}
        self.classifier = PhaseClassifier(
            env, self.domains,
            neighborhood=self.options.neighborhood)
        self.routines: dict[str, object] = {}
        self.report = PartitionReport()
        self.blocks: list[CompiledBlock] = []
        self._counter = 0

    # ------------------------------------------------------------------

    def compile_program(self, program: nir.Program,
                        name: str | None = None) -> h.HostProgram:
        body = program.body
        while isinstance(body, (nir.WithDomain, nir.WithDecl)):
            body = body.body
        ops = fe.allocation_ops(self.env, self.layouts) \
            + self.compile_imperative(body)
        return h.HostProgram(name=name or program.name, ops=tuple(ops),
                             routines=dict(self.routines))

    # ------------------------------------------------------------------

    def compile_imperative(self, node: nir.Imperative) -> list[h.HostOp]:
        if isinstance(node, nir.Sequentially):
            out: list[h.HostOp] = []
            for action in node.actions:
                out.extend(self.compile_imperative(action))
            return out
        if isinstance(node, nir.Concurrently):
            out = []
            for action in node.actions:
                out.extend(self.compile_imperative(action))
            return out
        if isinstance(node, nir.Move):
            return self.compile_move(node)
        if isinstance(node, nir.Do):
            return self.compile_do(node)
        if isinstance(node, nir.While):
            return [h.WhileOp(cond=node.cond, body=tuple(
                self.compile_imperative(node.body)))]
        if isinstance(node, nir.IfThenElse):
            return [h.IfOp(cond=node.cond,
                           then=tuple(self.compile_imperative(node.then)),
                           els=tuple(self.compile_imperative(node.els)))]
        if isinstance(node, nir.CallStmt):
            return fe.call_ops(node)
        if isinstance(node, nir.Skip):
            return []
        if isinstance(node, (nir.WithDecl, nir.WithDomain)):
            return self.compile_imperative(node.body)
        raise BackendError(
            f"cannot partition imperative {type(node).__name__}")

    def compile_do(self, node: nir.Do) -> list[h.HostOp]:
        shape = nir.resolve(node.shape, self.domains)
        if isinstance(shape, nir.SerialInterval) and node.index_names:
            return [h.Loop(var=node.index_names[0], lo=shape.lo,
                           hi=shape.hi, step=shape.stride,
                           body=tuple(self.compile_imperative(node.body)))]
        if isinstance(shape, nir.Point) and node.index_names:
            return [h.Loop(var=node.index_names[0], lo=shape.value,
                           hi=shape.value, step=1,
                           body=tuple(self.compile_imperative(node.body)))]
        raise BackendError(
            f"cannot compile DO over {shape} on the front end")

    # ------------------------------------------------------------------

    def compile_move(self, move: nir.Move) -> list[h.HostOp]:
        phase = self.classifier.classify(move)
        if phase.kind is PhaseKind.COMPUTE:
            return self.compile_compute(move)
        if phase.kind is PhaseKind.COMM:
            self.report.comm_phases += len(move.clauses)
            return [h.CommMove(clause=c, kind=fe.comm_kind(c))
                    for c in move.clauses]
        if phase.kind is PhaseKind.REDUCE:
            self.report.reductions += len(move.clauses)
            return [h.ReduceMove(clause=c) for c in move.clauses]
        if phase.kind is PhaseKind.SERIAL:
            ops = fe.serial_ops(move)
            self.report.serial_moves += len(ops)
            return ops
        # Mixed move: recover by compiling each clause on its own.
        if len(move.clauses) > 1:
            out: list[h.HostOp] = []
            for clause in move.clauses:
                out.extend(self.compile_move(nir.Move((clause,))))
            return out
        raise BackendError(f"unpartitionable MOVE: {move}")

    def compile_compute(self, move: nir.Move) -> list[h.HostOp]:
        """Excise one computation block; split it if it exhausts pointers."""
        self._counter += 1
        name = f"Pk{self._counter}vs1"
        try:
            block = compile_block(move, self.env, self.domains,
                                  self.options, name=name)
        except TooManyStreams:
            if len(move.clauses) == 1:
                raise
            mid = len(move.clauses) // 2
            return (self.compile_compute(nir.Move(move.clauses[:mid]))
                    + self.compile_compute(nir.Move(move.clauses[mid:])))
        self.blocks.append(block)
        self.routines[block.routine.name] = block.routine
        self.report.compute_blocks += 1
        self.report.block_clause_counts.append(len(move.clauses))
        self.report.node_instructions += block.routine.instruction_count()
        args = tuple(h.ArgBinding(**info) for info in block.arg_info)
        first_tgt = move.clauses[0].tgt
        layout = (self.layouts.get(first_tgt.name)
                  if isinstance(first_tgt, nir.AVar) else None)
        return [h.NodeCall(routine=block.routine, args=args,
                           region_extents=block.region_extents,
                           real_elements=block.real_elements,
                           layout=layout)]
