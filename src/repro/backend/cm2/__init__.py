"""The CM2/NIR compiler hierarchy: CM2 (partition), PE and FE siblings."""

from .chaining import chain_loads, count_pairs, pair_memory_ops
from .fe_compiler import allocation_ops, call_ops, comm_kind, serial_ops
from .partition import Cm2Compiler, PartitionReport
from .pe_compiler import (
    BackendError,
    BackendOptions,
    CompiledBlock,
    Selector,
    TooManyStreams,
    compile_block,
    encode_routine,
    fuse_multiply_adds,
)
from .regalloc import AllocationError, AllocationResult, PhysOp, allocate
from .vir import (
    ScalarSpec,
    Src,
    SrcKind,
    StreamSpec,
    VOp,
    VProgram,
    imm,
    scalar_src,
    stream_src,
    virt,
)

__all__ = [name for name in dir() if not name.startswith("_")]
