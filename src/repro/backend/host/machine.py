"""The host machine: the CM dispatch contract over compiled kernels.

:class:`HostMachine` keeps the whole :class:`~repro.machine.cm2.Machine`
contract — storage and geometry, ``call_routine``/``call_fused``, the
deterministic :class:`~repro.machine.stats.RunStats` accounting, the
dispatch-time verifier hook — and swaps only the node execution engine:
``"fast"`` and ``"fused"`` dispatches route through the host kernel
tiers (:mod:`.kernels`) instead of the plan step loop, and cycles are
charged under the measured :func:`~repro.machine.costs.host_model`
(1 cycle = 1 ns), so ``stats.seconds()`` is a calibrated wallclock
estimate rather than a simulated Weitek figure.

``exec_mode="interp"`` still runs the :class:`VectorExecutor` oracle —
the bit-identity tests hold across all three engines on this target
exactly as they do on cm2/cm5.  The default engine is ``"fused"``:
with no simulated machine to stay faithful to, there is no reason not
to batch adjacent calls into mega-kernels.
"""

from __future__ import annotations

import os

from ...machine.cm2 import Machine
from ...machine.costs import CostModel, host_model
from . import kernels
from .kernels import run_dispatch


class HostMachine(Machine):
    """A native-host execution engine behind the Machine contract."""

    @property
    def kernel_flavor(self) -> str | None:
        """Mega-kernel cache flavor: host-tuned builds key separately."""
        return "host" if kernels.tuning_enabled() else None

    def tune_kernel(self, kern) -> object:
        """Hook for the fused engine: retune native mega-kernels."""
        return kernels.tune(kern)

    def __init__(self, model: CostModel | None = None,
                 exec_mode: str | None = None) -> None:
        mode = exec_mode or os.environ.get("REPRO_EXEC") or "fused"
        super().__init__(model or host_model(), exec_mode=mode)
        self.host_metrics: dict[str, int] = {
            "native_dispatches": 0,
            "native_builds": 0,
            "blocked_dispatches": 0,
            "steps_dispatches": 0,
        }

    def _execute_dispatch(self, d) -> None:
        if self.exec_mode == "interp":
            super()._execute_dispatch(d)
            return
        tier = run_dispatch(self, d)
        self.host_metrics[f"{tier}_dispatches"] += 1

    def fusion_summary(self) -> dict:
        out = super().fusion_summary()
        out.update({f"host_{key}": value
                    for key, value in self.host_metrics.items()})
        return out
