"""The host/NIR compiler: the CM/2 structure, retargeted to the CPU.

The retargeting recipe of §5.3.1, applied a second time: the host
backend *inherits* the CM/2 partitioning — phase classification, the
Figure 9/10 blocker output, PE code generation, the host-program
structure — and changes only what the node actually is.  Where the
CM/5 port split each computation block three ways for the SPARC and
vector units, the host port lowers each block's routine plan onto the
compiled kernel tiers (:mod:`.kernels`) and audits, at compile time,
which phases can reach the native per-element C loop.

The PEAC routines themselves are kept as the portable node ISA (they
are the input the kernel codegen consumes and the oracle the
bit-identity tests replay), so ``--verify`` still runs the routine
verifier over the backend output, ``--emit peac`` still prints it, and
the compile cache is shared with cm2 byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ... import nir
from ...runtime import host as h
from ..cm2.partition import Cm2Compiler, PartitionReport
from .kernels import audit_routine


@dataclass
class PhaseLowering:
    """One blocked computation phase as the host backend lowers it."""

    routine: str
    instructions: int
    #: All compute ops inside the IEEE-exact native whitelist (the
    #: structural, compile-time half of the eligibility decision).
    native_eligible: bool
    blockers: tuple[str, ...] = ()


@dataclass
class HostReport(PartitionReport):
    """CM/2 partition stats plus the per-phase kernel lowering audit."""

    lowerings: list[PhaseLowering] = field(default_factory=list)

    @property
    def native_fraction(self) -> float:
        if not self.lowerings:
            return 0.0
        return (sum(1 for lw in self.lowerings if lw.native_eligible)
                / len(self.lowerings))


class HostCompiler(Cm2Compiler):
    """Two-level target: front-end program / compiled CPU kernels."""

    target_name = "host"

    def __init__(self, env, domains=None, options=None,
                 layouts=None, store=None, context=None) -> None:
        super().__init__(env, domains=domains, options=options,
                         layouts=layouts, store=store, context=context)
        self.report = HostReport()

    def compile_compute(self, move: nir.Move) -> list[h.HostOp]:
        ops = super().compile_compute(move)
        for op in ops:
            if isinstance(op, h.NodeCall):
                count, eligible, blockers = audit_routine(op.routine)
                self.report.lowerings.append(PhaseLowering(
                    routine=op.routine.name, instructions=count,
                    native_eligible=eligible, blockers=blockers))
        return ops
