"""The host kernel engine: every dispatch runs compiled, never stepped.

The CM targets treat the generated blocked kernels
(:mod:`repro.machine.kernel`) and the native C mega-kernels
(:mod:`repro.machine.ckernel`) as *fast paths* bolted onto a simulated
dispatch loop.  On the host target they **are** the execution model:

* the first call with a new binding signature runs the plan's recording
  pass (plain numpy ufuncs capturing intermediate shapes/dtypes — PEAC
  is never interpreted instruction by instruction);
* every later call compiles — once — to a **native per-element C loop**
  when the routine stays inside the IEEE-exact whitelist, giving one
  memory pass over the operands with all intermediates in registers;
* routines outside that whitelist (transcendentals, integer division,
  allocating conversions) run through the cache-blocked Python kernel,
  and bindings the prover cannot clear (overlapping distinct views,
  non-contiguous streams) fall back to the plan's step engine.

All three tiers are bit-identical by construction: the native emitter
declines anything whose C semantics are not an exact match of the numpy
ufunc, and the blocked kernel replays the interpreter's own ufunc
sequence.  ``REPRO_FAST_KERNEL=0`` and ``REPRO_FUSED_CC=0`` degrade the
tiers exactly as they do for the CM fast paths.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np

from ...machine.ckernel import (
    _BINOPS,
    _CMPOPS,
    _FMAOPS,
    retune,
    try_native,
)
from ...machine.kernel import _probe, try_kernel
from ...machine.plan import _ComputeStep, get_plan

#: ComputeStep ops the native emitter can prove IEEE-exact (the
#: structural half of the whitelist; dtypes are checked at build time).
NATIVE_OPS = (frozenset(_BINOPS) | frozenset(_CMPOPS) | frozenset(_FMAOPS)
              | frozenset({"fselv", "fnegv", "fabsv", "fsqrtv"}))

#: Extra compiler flags for host-native kernels.  The CM targets build
#: for the portable baseline ISA; the host target compiles for the CPU
#: actually running — ``-ffp-contract=off`` stays in force from the
#: base flags, so wider vector units change throughput, not results
#: (each lane is still the scalar IEEE operation).
TUNE_FLAGS = ("-march=native", "-funroll-loops")

_NO_NATIVE = "no-native"
_NATIVE_CACHE: OrderedDict[tuple, object] = OrderedDict()
_NATIVE_CAP = 64

#: Placeholder stream for unused slots below the kernel's slot count —
#: the pointer is passed but never dereferenced.
_DUMMY = np.zeros(1)


def kernels_enabled() -> bool:
    return os.environ.get("REPRO_FAST_KERNEL") != "0"


def tuning_enabled() -> bool:
    return os.environ.get("REPRO_HOST_TUNE") != "0"


def tune(kern) -> object:
    """A host-tuned rebuild of a native kernel (no-op when disabled)."""
    if not tuning_enabled():
        return kern
    return retune(kern, TUNE_FLAGS)


def _slot_table(S, classes) -> list:
    nslots = max(classes) + 1
    return [a if a is not None else _DUMMY for a in S[:nslots]]


def _native_kernel(machine, plan, sig, spec, classes, n, S):
    """The cached per-routine native kernel, ``None`` when declined."""
    key = (plan.serial, sig, classes, n, tuning_enabled())
    kern = _NATIVE_CACHE.get(key)
    if kern is None:
        kern = try_native(plan, spec, classes, n, _slot_table(S, classes))
        if kern is None:
            kern = _NO_NATIVE
        else:
            kern = tune(kern)
            machine.host_metrics["native_builds"] += 1
        if len(_NATIVE_CACHE) >= _NATIVE_CAP:
            _NATIVE_CACHE.popitem(last=False)
        _NATIVE_CACHE[key] = kern
    else:
        _NATIVE_CACHE.move_to_end(key)
    return None if kern is _NO_NATIVE else kern


def run_dispatch(machine, d) -> str:
    """Execute one prepared dispatch through the best available tier.

    Returns the tier used (``"native"``, ``"blocked"`` or ``"steps"``)
    so the machine can report lowering coverage.
    """
    plan = d.plan
    if kernels_enabled():
        sig = plan._signature(d.streams, d.scalars)
        spec = plan.specs.get(sig)
        if spec is not None:
            probe = _probe(plan, d.streams)
            if probe is not None:
                classes, n, S = probe
                kern = _native_kernel(machine, plan, sig, spec,
                                      classes, n, S)
                if kern is not None:
                    with np.errstate(all="ignore"):
                        kern(_slot_table(S, classes), d.scalars, n)
                    return "native"
            if try_kernel(plan, sig, spec, d.streams, d.scalars):
                return "blocked"
    # Recording pass (first call per signature) or prover fallback:
    # plan.execute records the spec / runs the general step engine.
    plan.execute(d.streams, d.scalars, machine.pool)
    return "steps"


# -- static lowering audit (compile time) -----------------------------------


def audit_routine(routine) -> tuple[int, bool, tuple[str, ...]]:
    """(instruction count, native-eligible, blocking ops) for a routine.

    The structural half of the native whitelist, decided at compile
    time: which compute ops the C emitter handles.  Dtype and aliasing
    eligibility is a per-binding decision made at dispatch.
    """
    plan = get_plan(routine)
    blockers: list[str] = []
    count = 0
    for steps in plan.groups:
        for step in steps:
            count += 1
            if isinstance(step, _ComputeStep) and step.op not in NATIVE_OPS:
                blockers.append(step.op)
    return count, not blockers, tuple(sorted(set(blockers)))
