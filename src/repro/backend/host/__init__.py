"""The host target: NIR lowered straight to native vector kernels.

The third first-class backend, and the second retargeting of the
CM/2 specification (§5.3.1 done again, this time onto the CPU running
the process).  The package supplies:

* :class:`~repro.backend.host.compiler.HostCompiler` — inherits the
  whole CM/2 partitioning pipeline and audits each blocked phase for
  native-kernel eligibility;
* :mod:`~repro.backend.host.kernels` — the execution engine: native
  per-element C loops where IEEE-exact, cache-blocked generated numpy
  kernels otherwise, the step engine as the prover's fallback;
* :class:`~repro.backend.host.machine.HostMachine` — the Machine
  contract (storage, dispatch, RunStats) over those tiers, costed by
  the measured :func:`~repro.machine.costs.host_model`.

There is no ``HostExecutable`` subclass on purpose: the shared
:class:`~repro.driver.compiler.Executable` runs host programs
unchanged, which is the retargeting thesis stated as code — the
executable/driver layer needed zero new lines for this port.
"""

from .compiler import HostCompiler, HostReport, PhaseLowering
from .machine import HostMachine

#: The host executable *is* the shared driver executable (see above).
from ...driver.compiler import Executable as HostExecutable

__all__ = ["HostCompiler", "HostExecutable", "HostMachine",
           "HostReport", "PhaseLowering"]
