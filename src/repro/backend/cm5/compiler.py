"""The CM5/NIR compiler.

"The CM/5 NIR compiler retains the majority of its structure and,
therefore, its specification from the CM/2 version. ... The host
subcompiler remains relatively unchanged from the CM/2 implementation,
but the node subcompiler partitions its input into subprograms for the
SPARC and the four vector pipelines, instead of performing direct
compilation.  Porting effort is thus concentrated on taking advantage of
the additional powers of the processing node.  Most importantly, the new
compiler can still take advantage of the machine-independent blocking
and vectorizing NIR transformations defined in the front end"
(section 5.3.1).

Accordingly, this compiler *inherits* the CM/2 partitioning and PE
compilation and adds the node-level three-way split: each computation
block is divided between the SPARC scalar unit and the vector datapaths.
Programs it produces run against the :func:`repro.machine.costs.cm5_model`
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ... import nir
from ..cm2.partition import Cm2Compiler, PartitionReport
from ...runtime import host as h
from .vector_unit import NodeSplit, split_routine


@dataclass
class Cm5Report(PartitionReport):
    """CM/2 partition stats plus the per-block node splits."""

    node_splits: list[NodeSplit] = field(default_factory=list)

    @property
    def vu_fraction(self) -> float:
        total = sum(s.total for s in self.node_splits)
        if not total:
            return 0.0
        return sum(s.vu_instructions for s in self.node_splits) / total


class Cm5Compiler(Cm2Compiler):
    """Three-level target: control processor / SPARC node / vector units."""

    target_name = "cm5"

    def __init__(self, env, domains=None, options=None,
                 layouts=None, store=None, context=None) -> None:
        super().__init__(env, domains=domains, options=options,
                         layouts=layouts, store=store, context=context)
        self.report = Cm5Report()

    def compile_compute(self, move: nir.Move) -> list[h.HostOp]:
        ops = super().compile_compute(move)
        for op in ops:
            if isinstance(op, h.NodeCall):
                self.report.node_splits.append(split_routine(op.routine))
        return ops
