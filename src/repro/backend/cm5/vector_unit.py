"""CM/5 node model: SPARC scalar unit plus four vector datapaths.

"In the new model a single NIR program will be split three ways rather
than two; one part will go to the control processor, as before; a second
part will be executed on the SPARC node processor, and a third part will
carry out floating point vector operations on the CM/5 vector datapaths"
(section 5.3.1).

This module classifies each PEAC instruction of a compiled computation
block by the unit that executes it on a CM/5 node, giving the three-way
split statistics of the retargeting experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...peac.isa import Instr, Routine

# Instruction kinds executed by the vector datapaths; everything else in
# a node program (address arithmetic, masks, integer work) stays on the
# SPARC scalar unit.
_VU_KINDS = {
    "arith", "arith1", "div", "sqrt", "trans", "fma", "cmp", "select",
    "load", "store", "move",
}
_SPARC_KINDS = {"logic", "logic1", "iarith", "iarith1", "idiv", "branch"}


def unit_of(instr: Instr) -> str:
    """'vu' or 'sparc' — which node unit issues this instruction."""
    if instr.kind in _VU_KINDS:
        return "vu"
    return "sparc"


@dataclass(frozen=True)
class NodeSplit:
    """Three-way division of one computation block on a CM/5 node."""

    routine: str
    vu_instructions: int
    sparc_instructions: int

    @property
    def total(self) -> int:
        return self.vu_instructions + self.sparc_instructions

    @property
    def vu_fraction(self) -> float:
        return self.vu_instructions / self.total if self.total else 0.0


def split_routine(routine: Routine) -> NodeSplit:
    vu = 0
    sparc = 0
    for instr in routine.body:
        if unit_of(instr) == "vu":
            vu += 1
        else:
            sparc += 1
        if instr.paired is not None:
            if unit_of(instr.paired) == "vu":
                vu += 1
            else:
                sparc += 1
    return NodeSplit(routine=routine.name, vu_instructions=vu,
                     sparc_instructions=sparc)
