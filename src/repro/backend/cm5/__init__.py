"""The CM5/NIR compiler: the retargeting experiment of section 5.3.1."""

from .compiler import Cm5Compiler

__all__ = ["Cm5Compiler"]
