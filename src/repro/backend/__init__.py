"""Target-specific NIR compilers: CM/2 and CM/5 back ends."""
