"""The dataflow substrate: CFG construction, access summaries, and the
forward/backward fixed-point solver (reaching defs, liveness)."""

from __future__ import annotations

from repro.analysis.dataflow import (
    Liveness,
    ReachingDefinitions,
    build_cfg,
    solve,
    summarize,
)
from repro.frontend.parser import parse_program
from repro.lowering.lower import lower_program


def analyze(source):
    low = lower_program(parse_program(source))
    cfg = build_cfg(low.nir)
    return cfg, summarize(cfg, low.env)


def writers_of(cfg, summaries, name):
    """Statements whose summary writes ``name``, in program order."""
    return [s for s in cfg.statements()
            if name in summaries[s.sid].written_names and s.role == "stmt"]


STRAIGHT = """
program s
  real :: a(8)
  integer :: x
  x = 1
  a = 2.0
  x = x + 1
  print *, a, x
end program s
"""

BRANCHY = """
program b
  integer :: x, y, c
  c = 1
  if (c > 0) then
    x = 1
  else
    x = 2
  end if
  y = x
end program b
"""

LOOPY = """
program l
  integer :: x, i
  x = 0
  do i = 1, 4
    x = x + i
  end do
  print *, x
end program l
"""


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


class TestCfg:
    def test_straight_line_is_one_block(self):
        cfg, _ = analyze(STRAIGHT)
        populated = [b for b in cfg.blocks if b.statements]
        assert len(populated) == 1
        assert cfg.n_edges == 0
        assert cfg.entry == cfg.exit

    def test_if_forks_and_joins(self):
        cfg, _ = analyze(BRANCHY)
        branches = [s for s in cfg.statements() if s.role == "branch"]
        assert len(branches) == 1
        head = cfg.blocks[branches[0].block]
        assert len(head.succs) == 2
        # Both arms reconverge: one block has two predecessors.
        joins = [b for b in cfg.blocks if len(b.preds) == 2]
        assert len(joins) == 1
        assert cfg.exit != cfg.entry

    def test_do_loop_has_back_edge(self):
        cfg, _ = analyze(LOOPY)
        loops = [s for s in cfg.statements() if s.role == "loop"]
        assert len(loops) == 1
        header = cfg.blocks[loops[0].block]
        assert len(header.succs) == 2   # body entry + after
        assert len(header.preds) == 2   # fall-in + the back edge

    def test_statement_ids_are_unique_and_ordered(self):
        cfg, _ = analyze(BRANCHY)
        sids = [s.sid for s in cfg.statements()]
        assert len(sids) == len(set(sids))


# ---------------------------------------------------------------------------
# Access summaries
# ---------------------------------------------------------------------------


class TestSummaries:
    def test_scalar_reads_and_writes(self):
        cfg, summaries = analyze(STRAIGHT)
        incr = writers_of(cfg, summaries, "x")[-1]  # x = x + 1
        s = summaries[incr.sid]
        assert "x" in s.scalar_reads
        assert "x" in s.scalar_writes
        assert s.definite_writes() >= {"x"}

    def test_full_array_write_is_definite(self):
        cfg, summaries = analyze(STRAIGHT)
        store = writers_of(cfg, summaries, "a")[0]  # a = 2.0
        s = summaries[store.sid]
        assert "a" in s.definite_writes()

    def test_sectioned_write_is_not_definite(self):
        cfg, summaries = analyze("""
program p
  real :: a(8)
  a = 0.0
  a(2:5) = 1.0
end program p
""")
        partial = writers_of(cfg, summaries, "a")[-1]
        s = summaries[partial.sid]
        assert "a" in s.written_names
        assert "a" not in s.definite_writes()

    def test_masked_write_is_not_definite(self):
        cfg, summaries = analyze("""
program p
  real :: a(8), m(8)
  a = 0.0
  m = 1.0
  where (m > 0.0) a = 1.0
end program p
""")
        masked = writers_of(cfg, summaries, "a")[-1]
        s = summaries[masked.sid]
        assert "a" in s.written_names
        assert "a" not in s.definite_writes()
        assert any(w.name == "a" and w.masked for w in s.array_writes)

    def test_branch_statement_reads_only_its_condition(self):
        cfg, summaries = analyze(BRANCHY)
        branch = next(s for s in cfg.statements() if s.role == "branch")
        s = summaries[branch.sid]
        assert "c" in s.scalar_reads
        assert s.scalar_writes == frozenset()


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


class TestReachingDefinitions:
    def test_redefinition_kills(self):
        cfg, summaries = analyze(STRAIGHT)
        result = solve(cfg, ReachingDefinitions(summaries))
        first, second = writers_of(cfg, summaries, "x")
        after = result.after(second)
        assert ("x", second.sid) in after
        assert ("x", first.sid) not in after

    def test_both_branch_definitions_reach_the_join(self):
        cfg, summaries = analyze(BRANCHY)
        result = solve(cfg, ReachingDefinitions(summaries))
        defs_x = writers_of(cfg, summaries, "x")
        use = writers_of(cfg, summaries, "y")[0]  # y = x
        reaching = result.before(use)
        for d in defs_x:
            assert ("x", d.sid) in reaching

    def test_loop_carried_definition_reaches_around_back_edge(self):
        cfg, summaries = analyze(LOOPY)
        result = solve(cfg, ReachingDefinitions(summaries))
        init, update = writers_of(cfg, summaries, "x")
        reaching = result.before(update)  # x = x + i reads both defs
        assert ("x", init.sid) in reaching
        assert ("x", update.sid) in reaching

    def test_masked_store_does_not_kill(self):
        cfg, summaries = analyze("""
program p
  real :: a(8), m(8)
  a = 0.0
  m = 1.0
  where (m > 0.0) a = 1.0
  print *, a
end program p
""")
        result = solve(cfg, ReachingDefinitions(summaries))
        full, masked = writers_of(cfg, summaries, "a")
        after = result.after(masked)
        assert ("a", full.sid) in after     # survives the masked store
        assert ("a", masked.sid) in after


# ---------------------------------------------------------------------------
# Liveness
# ---------------------------------------------------------------------------


class TestLiveness:
    def test_read_makes_live(self):
        # Backward problem: before() is the analysis-order input (the
        # live-OUT set); after() applies the transfer (the live-IN set).
        cfg, summaries = analyze(STRAIGHT)
        result = solve(cfg, Liveness(summaries))
        first, second = writers_of(cfg, summaries, "x")
        assert "x" in result.after(second)      # x = x + 1 reads x
        assert "x" not in result.after(first)   # x = 1 only writes it

    def test_live_out_boundary_propagates(self):
        source = """
program p
  integer :: x
  x = 1
end program p
"""
        cfg, summaries = analyze(source)
        dead = solve(cfg, Liveness(summaries))
        live = solve(cfg, Liveness(summaries,
                                   live_out=frozenset({"x"})))
        store = writers_of(cfg, summaries, "x")[0]
        assert "x" not in dead.before(store)   # live-out without boundary
        assert "x" in live.before(store)       # boundary keeps it live

    def test_loop_keeps_accumulator_live(self):
        cfg, summaries = analyze(LOOPY)
        result = solve(cfg, Liveness(summaries))
        init, _update = writers_of(cfg, summaries, "x")
        assert "x" in result.before(init)      # live-out of x = 0
