"""Constant folding tests (compile-time shape arithmetic)."""

import pytest

from repro.frontend.parser import parse_expression
from repro.lowering.fold import NotConstant, fold, fold_int, try_fold_int


def f(src, params=None):
    return fold(parse_expression(src), params or {})


class TestFold:
    def test_literals(self):
        assert f("42") == 42
        assert f("2.5") == 2.5
        assert f(".true.") is True

    def test_arithmetic(self):
        assert f("2 + 3 * 4") == 14
        assert f("(2 + 3) * 4") == 20
        assert f("2 ** 10") == 1024

    def test_integer_division_truncates(self):
        assert f("7 / 2") == 3
        assert f("-7 / 2") == -3  # toward zero, not floor

    def test_float_division(self):
        assert f("7.0 / 2") == 3.5

    def test_unary(self):
        assert f("-5") == -5
        assert f(".not. .true.") is False

    def test_relational(self):
        assert f("3 > 2") is True
        assert f("3 .le. 2") is False

    def test_logical(self):
        assert f(".true. .and. .false.") is False
        assert f(".true. .or. .false.") is True
        assert f(".true. .eqv. .true.") is True

    def test_parameters(self):
        assert f("n * 2", {"n": 32}) == 64

    def test_unknown_var_raises(self):
        with pytest.raises(NotConstant):
            f("x + 1")

    def test_intrinsics(self):
        assert f("max(3, 7)") == 7
        assert f("min(3, 7, 1)") == 1
        assert f("abs(-4)") == 4
        assert f("mod(7, 3)") == 1
        assert f("sqrt(16.0)") == 4.0

    def test_unfoldable_call(self):
        with pytest.raises(NotConstant):
            f("sum(a)")


class TestFoldInt:
    def test_int_result(self):
        assert fold_int(parse_expression("4 * 8"), {}) == 32

    def test_integral_float_ok(self):
        assert fold_int(parse_expression("8.0"), {}) == 8

    def test_fractional_rejected(self):
        with pytest.raises(NotConstant):
            fold_int(parse_expression("2.5"), {})

    def test_bool_rejected(self):
        with pytest.raises(NotConstant):
            fold_int(parse_expression(".true."), {})

    def test_try_fold_int_none(self):
        assert try_fold_int(parse_expression("x"), {}) is None
        assert try_fold_int(parse_expression("3+1"), {}) == 4
