"""Edge cases of the hypercube network cost models (machine/network.py).

The tariffs must stay well-defined on degenerate geometries: zero-element
arrays (allocatable corners, empty sections), shifts that wrap a full
axis, and axes held entirely in-processor (where a CSHIFT degenerates to
the local block copy and a halo exchange to nothing).
"""

from __future__ import annotations

import math

import pytest

from repro.machine import slicewise_model
from repro.machine.geometry import Geometry, make_geometry
from repro.machine.network import (
    cshift_cycles,
    halo_exchange_cycles,
    router_cycles,
)

MODEL = slicewise_model(n_pes=64)


def zero_geometry(spread: bool) -> Geometry:
    """A zero-element shape laid out across PEs (or on one PE)."""
    if spread:
        return Geometry(extents=(0, 8), pe_grid=(1, 4), subgrid=(0, 2))
    return Geometry(extents=(0, 8), pe_grid=(1, 1), subgrid=(0, 8))


# -- zero-element geometries ------------------------------------------------


def test_cshift_zero_elements_is_free():
    for spread in (False, True):
        geom = zero_geometry(spread)
        assert geom.total_elements == 0
        assert cshift_cycles(MODEL, geom, axis=1, shift=1) == 0
        assert cshift_cycles(MODEL, geom, axis=2, shift=3) == 0


def test_halo_exchange_zero_elements():
    # No PEs along the axis: nothing crosses, exchange is free.
    geom = zero_geometry(spread=False)
    assert halo_exchange_cycles(MODEL, geom, axis=2, shift=1) == 0
    # PEs along the axis but an empty subgrid: columns "cross" with a
    # zero payload, so only the wire latency is charged.
    geom = zero_geometry(spread=True)
    assert geom.vlen == 0
    assert halo_exchange_cycles(MODEL, geom, axis=2, shift=1) \
        == MODEL.grid_latency


def test_router_zero_elements_charges_latency_only():
    geom = zero_geometry(spread=True)
    assert router_cycles(MODEL, geom) == MODEL.router_latency
    # An explicit per-PE element count overrides the geometry's vlen.
    assert router_cycles(MODEL, geom, elements_per_pe=5) \
        == MODEL.router_latency + 5 * MODEL.router_per_element
    assert router_cycles(MODEL, geom, elements_per_pe=0) \
        == MODEL.router_latency


# -- full-axis wraps --------------------------------------------------------


def test_cshift_full_axis_wrap():
    """shift == extent: every subgrid column crosses, hops span the
    whole PE row — the most expensive circular shift on the axis."""
    geom = make_geometry((8,), 4)
    assert geom.subgrid == (2,) and geom.pe_grid == (4,)
    full = cshift_cycles(MODEL, geom, axis=1, shift=8)
    one = cshift_cycles(MODEL, geom, axis=1, shift=1)
    local_copy = math.ceil(geom.vlen / 4) * MODEL.instr.move
    # All columns cross (capped at the subgrid extent), data travels
    # the full pe_grid distance.
    cols = geom.boundary_columns(0, 8)
    assert cols == geom.subgrid[0]
    assert geom.hops(0, 8) == 4
    expected = (MODEL.grid_latency + local_copy
                + (geom.vlen // geom.subgrid[0]) * cols
                * MODEL.grid_per_element * 4)
    assert full == expected
    assert full > one  # wrapping the axis costs more than a unit shift


def test_halo_exchange_full_axis_wrap_matches_formula():
    geom = make_geometry((16, 16), 16)
    axis0 = 0
    shift = geom.extents[axis0]
    cols = geom.boundary_columns(axis0, shift)
    hops = geom.hops(axis0, shift)
    assert cols == geom.subgrid[axis0]
    expected = (MODEL.grid_latency
                + (geom.vlen // geom.subgrid[axis0]) * cols
                * MODEL.grid_per_element * hops)
    assert halo_exchange_cycles(MODEL, geom, axis=1, shift=shift) \
        == expected
    # A full wrap is never cheaper than the unit-shift halo.
    assert halo_exchange_cycles(MODEL, geom, axis=1, shift=shift) \
        >= halo_exchange_cycles(MODEL, geom, axis=1, shift=1)


# -- the crossing_cols == 0 local-copy path ---------------------------------


@pytest.mark.parametrize("shift", [0, 1, -3, 8])
def test_cshift_serial_axis_is_local_copy(shift):
    """One PE along the axis (a ``!layout: serial`` axis): nothing
    crosses a wire, any shift is a pure in-processor block copy (and
    charges no grid latency)."""
    geom = make_geometry((8, 8), 8, ("news", "serial"))
    serial_axis0 = 1
    assert geom.pe_grid[serial_axis0] == 1
    assert geom.boundary_columns(serial_axis0, shift) == 0
    local_copy = math.ceil(geom.vlen / 4) * MODEL.instr.move
    assert cshift_cycles(MODEL, geom, axis=serial_axis0 + 1, shift=shift) \
        == local_copy


def test_cshift_zero_shift_is_local_copy_even_when_spread():
    geom = make_geometry((8,), 4)
    assert geom.boundary_columns(0, 0) == 0
    local_copy = math.ceil(geom.vlen / 4) * MODEL.instr.move
    assert cshift_cycles(MODEL, geom, axis=1, shift=0) == local_copy


def test_halo_exchange_serial_axis_is_free():
    """Unlike CSHIFT, the neighborhood model's halo stream makes no
    local copy: a serial axis exchanges nothing and costs nothing."""
    geom = make_geometry((8, 8), 8, ("news", "serial"))
    assert geom.pe_grid[1] == 1
    assert halo_exchange_cycles(MODEL, geom, axis=2, shift=2) == 0
