"""Checker error paths, environment details, executor opcode coverage."""

import numpy as np
import pytest

from repro import nir
from repro.frontend.parser import parse_program
from repro.lowering import CheckError, build_environment, check_program
from repro.lowering.environment import Environment, Symbol
from repro.machine import SubgridStream, VectorExecutor, slicewise_model
from repro.machine.costs import cm5_model
from repro.peac import Imm, Instr, Mem, PReg, Routine, SReg, VReg


def program_with(body: nir.Imperative, env: Environment) -> nir.Program:
    from repro.transform.pipeline import wrap_body

    return wrap_body(body, env, "t")


@pytest.fixture
def env():
    return build_environment(parse_program(
        "integer a(8), b(8)\ninteger x\nlogical m(8)\nend"))


class TestCheckerErrors:
    def check(self, body, env):
        check_program(program_with(body, env), env)

    def test_valid_program_passes(self, env):
        self.check(nir.move1(nir.int_const(1), nir.AVar("a")), env)

    def test_nonlogical_mask_rejected(self, env):
        move = nir.move1(nir.int_const(1), nir.AVar("a"),
                         mask=nir.int_const(1))
        with pytest.raises(CheckError, match="mask"):
            self.check(move, env)

    def test_move_target_must_be_storage(self, env):
        move = nir.Move((nir.MoveClause(
            nir.TRUE, nir.int_const(1), nir.int_const(2)),))
        with pytest.raises(CheckError, match="storage"):
            self.check(move, env)

    def test_logical_arith_mix_rejected(self, env):
        move = nir.move1(nir.AVar("m"), nir.AVar("a"))
        with pytest.raises(CheckError, match="logical"):
            self.check(move, env)

    def test_array_to_scalar_rejected(self, env):
        move = nir.move1(nir.AVar("a"), nir.SVar("x"))
        with pytest.raises(CheckError, match="scalar"):
            self.check(move, env)

    def test_array_mask_on_scalar_move_rejected(self, env):
        mask = nir.Binary(nir.BinOp.GT, nir.AVar("a"), nir.int_const(0))
        move = nir.move1(nir.int_const(1), nir.SVar("x"), mask=mask)
        with pytest.raises(CheckError, match="mask"):
            self.check(move, env)

    def test_nonscalar_condition_rejected(self, env):
        cond = nir.Binary(nir.BinOp.GT, nir.AVar("a"), nir.int_const(0))
        node = nir.IfThenElse(cond, nir.Skip())
        with pytest.raises(CheckError, match="scalar"):
            self.check(node, env)

    def test_nonlogical_condition_rejected(self, env):
        node = nir.While(nir.SVar("x"), nir.Skip())
        with pytest.raises(CheckError, match="logical"):
            self.check(node, env)

    def test_unbound_domain_in_do_rejected(self, env):
        node = nir.Do(nir.DomainRef("ghost"), nir.Skip())
        with pytest.raises(CheckError, match="unbound"):
            self.check(node, env)

    def test_mask_shape_must_conform(self, env):
        # 8-element mask on a scalar-subscript (single-element) target.
        mask = nir.Binary(nir.BinOp.GT, nir.AVar("a"), nir.int_const(0))
        tgt = nir.AVar("a", nir.Subscript((nir.int_const(1),)))
        with pytest.raises(CheckError):
            self.check(nir.move1(nir.int_const(1), tgt, mask=mask), env)


class TestEnvironmentDetails:
    def test_fresh_temp_registers_domain(self, env):
        sym = env.fresh_temp((5, 5), nir.FLOAT_64)
        assert sym.name.startswith("tmp")
        assert sym.domain in env.domains
        assert nir.extents(env.domains[sym.domain]) == (5, 5)

    def test_fresh_temps_unique(self, env):
        names = {env.fresh_temp((4,), nir.FLOAT_64).name
                 for _ in range(5)}
        assert len(names) == 5

    def test_fresh_scalar_temp(self, env):
        sym = env.fresh_scalar_temp(nir.INTEGER_32)
        assert not sym.is_array
        assert sym.element == nir.INTEGER_32

    def test_domain_reused_for_same_extents(self, env):
        d1 = env.domain_for((9, 9))
        d2 = env.domain_for((9, 9))
        assert d1 == d2

    def test_many_domains_roll_past_greek(self):
        env = Environment()
        names = [env.domain_for((i + 1,)) for i in range(30)]
        assert len(set(names)) == 30
        assert names[0] == "alpha"
        assert any(n.startswith("dom") for n in names)

    def test_nir_declarations_initialized_scalars(self):
        env = build_environment(parse_program(
            "integer, parameter :: n = 3\ndouble precision :: t = 1.5\n"
            "end"))
        decls = env.nir_declarations()
        inits = nir.initial_values(decls)
        assert inits["n"] == nir.Scalar(nir.INTEGER_32, 3)
        assert inits["t"] == nir.Scalar(nir.FLOAT_64, 1.5)


class TestExecutorOpcodes:
    def run1(self, instrs, pointers=None, scalars=None):
        ex = VectorExecutor()
        for preg, arr in (pointers or {}).items():
            ex.bind_pointer(PReg(preg), SubgridStream(arr))
        for sreg, val in (scalars or {}).items():
            ex.bind_scalar(SReg(sreg), val)
        r = Routine("t")
        r.body = instrs
        ex.run(r)
        return ex

    def test_transcendentals(self):
        a = np.array([0.0, np.pi / 2])
        ex = self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("fsinv", (VReg(0), VReg(1))),
            Instr("fcosv", (VReg(0), VReg(2))),
            Instr("fexpv", (VReg(0), VReg(3))),
        ], pointers={0: a})
        np.testing.assert_allclose(ex.vregs[1], np.sin(a))
        np.testing.assert_allclose(ex.vregs[2], np.cos(a))
        np.testing.assert_allclose(ex.vregs[3], np.exp(a))

    def test_sqrt_abs_neg(self):
        a = np.array([4.0, -9.0])
        ex = self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("fabsv", (VReg(0), VReg(1))),
            Instr("fsqrtv", (VReg(1), VReg(2))),
            Instr("fnegv", (VReg(2), VReg(3))),
        ], pointers={0: a})
        np.testing.assert_allclose(ex.vregs[3], [-2.0, -3.0])

    def test_conversions(self):
        a = np.array([2.7, -2.7])
        ex = self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("fintv", (VReg(0), VReg(1))),   # truncation toward 0
            Instr("ffloorv", (VReg(0), VReg(2))),
            Instr("fceilv", (VReg(0), VReg(3))),
            Instr("fdblv", (VReg(1), VReg(4))),
        ], pointers={0: a})
        np.testing.assert_array_equal(ex.vregs[1], [2, -2])
        np.testing.assert_array_equal(ex.vregs[2], [2, -3])
        np.testing.assert_array_equal(ex.vregs[3], [3, -2])
        assert ex.vregs[4].dtype == np.float64

    def test_min_max_mod_pow(self):
        a = np.array([5.0, 2.0])
        b = np.array([3.0, 8.0])
        ex = self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("flodv", (Mem(PReg(1)), VReg(1))),
            Instr("fminv", (VReg(0), VReg(1), VReg(2))),
            Instr("fmaxv", (VReg(0), VReg(1), VReg(3))),
            Instr("fmodv", (VReg(0), VReg(1), VReg(4))),
            Instr("fpowv", (VReg(0), Imm(2.0), VReg(5))),
        ], pointers={0: a, 1: b})
        np.testing.assert_array_equal(ex.vregs[2], [3.0, 2.0])
        np.testing.assert_array_equal(ex.vregs[3], [5.0, 8.0])
        np.testing.assert_array_equal(ex.vregs[4], [2.0, 2.0])
        np.testing.assert_array_equal(ex.vregs[5], [25.0, 4.0])

    def test_logical_ops(self):
        m1 = np.array([True, True, False])
        m2 = np.array([True, False, False])
        ex = self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("flodv", (Mem(PReg(1)), VReg(1))),
            Instr("candv", (VReg(0), VReg(1), VReg(2))),
            Instr("corv", (VReg(0), VReg(1), VReg(3))),
            Instr("cxorv", (VReg(0), VReg(1), VReg(4))),
            Instr("cnotv", (VReg(0), VReg(5))),
        ], pointers={0: m1, 1: m2})
        np.testing.assert_array_equal(ex.vregs[2], [True, False, False])
        np.testing.assert_array_equal(ex.vregs[3], [True, True, False])
        np.testing.assert_array_equal(ex.vregs[4], [False, True, False])
        np.testing.assert_array_equal(ex.vregs[5], [False, False, True])

    def test_integer_mod_sign(self):
        a = np.array([-7, 7], dtype=np.int32)
        ex = self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("imodv", (VReg(0), Imm(3), VReg(1))),
        ], pointers={0: a})
        # Fortran MOD takes the dividend's sign.
        np.testing.assert_array_equal(ex.vregs[1], [-1, 1])

    def test_integer_immediate_stays_integer(self):
        a = np.array([2_000_000_000], dtype=np.int32)
        ex = self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("iaddv", (VReg(0), Imm(2_000_000_000), VReg(1))),
        ], pointers={0: a})
        # int32 wraparound, not float64 rounding.
        assert ex.vregs[1].dtype == np.int32

    def test_fmovv_immediate(self):
        ex = self.run1([Instr("fmovv", (Imm(3.5), VReg(0)))])
        assert float(np.asarray(ex.vregs[0])) == 3.5


class TestCostModels:
    def test_cm5_model_parameters(self):
        m = cm5_model()
        assert m.clock_hz == 32e6
        assert m.n_pes == 256
        assert m.fma_supported

    def test_with_override(self):
        m = slicewise_model().with_(n_pes=128)
        assert m.n_pes == 128
        assert slicewise_model().n_pes == 2048  # original untouched

    def test_unknown_kind_cost_raises(self):
        with pytest.raises(KeyError):
            slicewise_model().instr.for_kind("teleport")
