"""The verifier suite: NIR well-formedness, dependence audits, PEAC
invariants, inter-pass hooks, and the service/machine verify plumbing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import nir
from repro.analysis import VerifyError
from repro.analysis.dep_audit import audit_fusion, audit_schedule
from repro.analysis.nir_verifier import (assert_valid, region_of_mask,
                                         verify_program)
from repro.analysis.peac_verifier import verify_routine
from repro.driver.compiler import CompilerOptions, compile_source
from repro.frontend.parser import parse_program
from repro.lowering.lower import lower_program
from repro.machine import Machine, slicewise_model
from repro.peac.isa import (NUM_PREGS, Instr, Mem, ParamSpec, PReg,
                            Routine, SReg, VReg)
from repro.service.jobs import execute_request
from repro.service.metrics import ServiceMetrics
from repro.transform import regions as rg
from repro.transform.masking import MaskPadder
from repro.transform.phases import PhaseClassifier
from repro.transform.pipeline import Options, optimize

SWE = open("examples/swe.f90").read()

SMALL = """
program small
  real :: a(8), b(8), c(8)
  real :: s
  a = 1.0
  b = a * 2.0
  c = cshift(a, 1) + b
  s = sum(c)
  print *, s
end program small
"""


def lower(source):
    return lower_program(parse_program(source))


# ---------------------------------------------------------------------------
# Level 1: NIR verifier
# ---------------------------------------------------------------------------


class TestNirVerifier:
    def test_lowered_program_is_clean(self):
        low = lower(SMALL)
        assert verify_program(low.nir, low.env) == []

    def test_optimized_program_is_clean(self):
        low = lower(SWE)
        opt = optimize(low, Options())
        assert verify_program(opt.nir, opt.env) == []

    def test_undeclared_reference_is_v301(self):
        low = lower(SMALL)
        bad = nir.move1(nir.SVar("ghost"), nir.SVar("s"))
        codes = [d.code for d in verify_program(bad, low.env)]
        assert codes == ["V301"]

    def test_shape_mismatch_is_v303(self):
        low = lower(SMALL)
        # 'a' has 8 elements, 's' is scalar: array value into scalar.
        bad = nir.move1(nir.AVar("a", nir.Everywhere()), nir.SVar("s"))
        codes = [d.code for d in verify_program(bad, low.env)]
        assert "V303" in codes

    def test_arith_mask_is_v302(self):
        low = lower(SMALL)
        bad = nir.move1(nir.SVar("s"), nir.SVar("s"),
                        mask=nir.int_const(1))
        codes = [d.code for d in verify_program(bad, low.env)]
        assert "V302" in codes

    def test_nested_program_is_v305(self):
        low = lower(SMALL)
        bad = nir.Program(nir.Program(nir.Skip()))
        codes = [d.code for d in verify_program(bad, low.env)]
        assert "V305" in codes

    def test_assert_valid_raises_with_stage(self):
        low = lower(SMALL)
        bad = nir.move1(nir.SVar("ghost"), nir.SVar("s"))
        with pytest.raises(VerifyError) as exc:
            assert_valid(bad, low.env, "unit-test-stage")
        assert exc.value.stage == "unit-test-stage"
        assert "unit-test-stage" in str(exc.value)

    def test_region_mask_reverse_parses(self):
        low = lower(SMALL)
        sym = low.env.lookup("a")
        shape = low.env.domains[sym.domain]
        padder = MaskPadder(low.env)
        region = rg.Region(sym.extents, axes=((2, 7, 1),))
        mask = padder.region_mask(shape, sym.extents, region)
        assert region_of_mask(mask, sym.extents) == [(2, 7, 1)]

    def test_out_of_bounds_region_mask_is_v307(self):
        low = lower(SMALL)
        sym = low.env.lookup("a")
        shape = low.env.domains[sym.domain]
        padder = MaskPadder(low.env)
        # Selects 2:12 on an 8-element axis: outside declared bounds.
        # (Build the mask against a 13-wide base so both bound
        # conditions are emitted, then apply it to the 8-wide array.)
        region = rg.Region((13,), axes=((2, 12, 1),))
        mask = padder.region_mask(shape, (13,), region)
        bad = nir.move1(nir.AVar("b", nir.Everywhere()),
                        nir.AVar("a", nir.Everywhere()), mask=mask)
        codes = [d.code for d in verify_program(bad, low.env)]
        assert "V307" in codes

    def test_user_masks_are_not_region_masks(self):
        # A data-dependent mask must parse to None, never a region.
        mask = nir.Binary(nir.BinOp.GT, nir.AVar("a", nir.Everywhere()),
                          nir.Scalar(nir.FLOAT_32, 0.0))
        assert region_of_mask(mask, (8,)) is None


# ---------------------------------------------------------------------------
# Level 2: dependence audit
# ---------------------------------------------------------------------------


def split_phases(source):
    low = lower(source)
    opt = optimize(low, Options(block=False, fuse=False, pad_masks=False))
    body = opt.inner_body()
    assert isinstance(body, nir.Sequentially)
    classifier = PhaseClassifier(low.env)
    return classifier.split(body), low.env


class TestDepAudit:
    def test_identity_schedule_is_clean(self):
        phases, env = split_phases(SMALL)
        assert audit_schedule(phases, phases, env) == []

    def test_reversal_violates_dependences(self):
        phases, env = split_phases(SMALL)
        diags = audit_schedule(phases, list(reversed(phases)), env)
        assert diags and all(d.code == "D402" for d in diags)

    def test_dropped_phase_is_d401(self):
        phases, env = split_phases(SMALL)
        diags = audit_schedule(phases, phases[:-1], env)
        assert [d.code for d in diags] == ["D401"]

    def test_identity_fusion_is_clean(self):
        phases, _env = split_phases(SMALL)
        assert audit_fusion(phases, phases) == []

    def test_dropped_clause_is_d403(self):
        phases, _env = split_phases(SMALL)
        assert any(isinstance(p.node, nir.Move) for p in phases)
        chopped = phases[:-1]
        diags = audit_fusion(phases, chopped)
        assert diags and diags[0].code == "D403"


# ---------------------------------------------------------------------------
# Level 3: PEAC verifier
# ---------------------------------------------------------------------------


def make_routine(body, spill_slots=0, n_streams=2, n_scalars=0):
    params = [ParamSpec(kind="subgrid", name=f"arr{i}", reg=PReg(i))
              for i in range(n_streams)]
    params += [ParamSpec(kind="scalar", name=f"s{i}", reg=SReg(31 - i))
               for i in range(n_scalars)]
    return Routine(name="t", params=params, body=body,
                   spill_slots=spill_slots)


class TestPeacVerifier:
    def test_compiled_routines_are_clean(self):
        exe = compile_source(SWE, CompilerOptions.optimized())
        assert exe.routines
        for routine in exe.routines.values():
            assert verify_routine(routine) == []

    def test_read_before_def_is_p501(self):
        r = make_routine([
            Instr("faddv", (VReg(3), VReg(4), VReg(0))),
        ])
        codes = [d.code for d in verify_routine(r)]
        assert codes.count("P501") == 2

    def test_spill_slot_out_of_range_is_p502(self):
        r = make_routine([
            Instr("flodv", (Mem(PReg(0), 0, 1), VReg(0))),
            Instr("fstrv", (VReg(0), Mem(PReg(NUM_PREGS - 1), 0, 0))),
        ], spill_slots=0)
        codes = [d.code for d in verify_routine(r)]
        assert "P502" in codes

    def test_restore_before_spill_is_p503(self):
        r = make_routine([
            Instr("flodv", (Mem(PReg(NUM_PREGS - 1), 0, 0), VReg(0))),
        ], spill_slots=1)
        codes = [d.code for d in verify_routine(r)]
        assert "P503" in codes

    def test_unbound_stream_is_p504(self):
        r = make_routine([
            Instr("flodv", (Mem(PReg(9), 0, 1), VReg(0))),
        ], n_streams=2)
        codes = [d.code for d in verify_routine(r)]
        assert "P504" in codes

    def test_unbound_scalar_is_p505(self):
        r = make_routine([
            Instr("flodv", (Mem(PReg(0), 0, 1), VReg(0))),
            Instr("fmulv", (SReg(5), VReg(0), VReg(1))),
        ], n_scalars=0)
        codes = [d.code for d in verify_routine(r)]
        assert "P505" in codes

    def test_chained_mem_on_move_is_p506(self):
        r = make_routine([
            Instr("fmovv", (Mem(PReg(0), 0, 1), VReg(0))),
        ])
        codes = [d.code for d in verify_routine(r)]
        assert "P506" in codes

    def test_paired_load_clobbering_dest_is_p507(self):
        load = Instr("flodv", (Mem(PReg(1), 0, 1), VReg(2)))
        r = make_routine([
            Instr("flodv", (Mem(PReg(0), 0, 1), VReg(0))),
            Instr("flodv", (Mem(PReg(1), 0, 1), VReg(1))),
            Instr("faddv", (VReg(0), VReg(1), VReg(2)), paired=load),
        ])
        codes = [d.code for d in verify_routine(r)]
        assert "P507" in codes

    def test_legal_pair_is_clean(self):
        load = Instr("flodv", (Mem(PReg(1), 0, 1), VReg(3)))
        r = make_routine([
            Instr("flodv", (Mem(PReg(0), 0, 1), VReg(0))),
            Instr("flodv", (Mem(PReg(1), 0, 1), VReg(1))),
            Instr("faddv", (VReg(0), VReg(1), VReg(2)), paired=load),
        ])
        assert verify_routine(r) == []


# ---------------------------------------------------------------------------
# Inter-pass hooks: a corrupted transform is caught and named
# ---------------------------------------------------------------------------


class TestPipelineHooks:
    def test_corrupted_dse_pass_is_named(self, monkeypatch):
        import repro.transform.passes as pl

        orig = pl._eliminate_dead_scalar_stores

        def corrupt(node, candidates):
            node = orig(node, candidates)

            def rename(n):
                if isinstance(n, nir.Move):
                    return nir.Move(tuple(
                        nir.MoveClause(
                            c.mask, c.src,
                            nir.SVar("bogus_xyz")
                            if isinstance(c.tgt, nir.SVar) else c.tgt)
                        for c in n.clauses))
                if isinstance(n, nir.Sequentially):
                    return nir.seq(*[rename(a) for a in n.actions])
                return n

            return rename(node)

        monkeypatch.setattr(pl, "_eliminate_dead_scalar_stores", corrupt)
        with pytest.raises(VerifyError) as exc:
            optimize(lower(SWE), Options(), verify=True)
        assert exc.value.stage == "dse"
        assert any(d.code == "V301" for d in exc.value.diagnostics)

    def test_corrupted_schedule_is_named(self, monkeypatch):
        import repro.transform.passes as pl

        orig = pl.schedule_phases

        def reverse(phases, report=None):
            return list(reversed(orig(phases, report)))

        monkeypatch.setattr(pl, "schedule_phases", reverse)
        with pytest.raises(VerifyError) as exc:
            optimize(lower(SWE), Options(), verify=True)
        assert exc.value.stage == "block/schedule"
        assert all(d.code == "D402" for d in exc.value.diagnostics)

    def test_verify_off_misses_the_corruption(self, monkeypatch):
        # The same corrupted schedule sails through unverified — the
        # audit, not luck, is what catches it.
        import repro.transform.passes as pl

        orig = pl.schedule_phases
        monkeypatch.setattr(
            pl, "schedule_phases",
            lambda phases, report=None: list(
                reversed(orig(phases, report))))
        optimize(lower(SWE), Options(), verify=False)

    def test_repro_verify_env_enables_hooks(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        opt = optimize(lower(SWE))
        assert verify_program(opt.nir, opt.env) == []

    def test_end_to_end_verified_compile_and_run(self):
        exe = compile_source(
            SWE, CompilerOptions(verify=True), cache=False)
        result = exe.run(Machine(slicewise_model(64)))
        assert result.arrays and result.stats.node_calls > 0


# ---------------------------------------------------------------------------
# Property: verifier-clean programs stay clean through the pipeline
# ---------------------------------------------------------------------------


@st.composite
def array_programs(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    lines = [f"integer a({n}), b({n}), c({n})",
             f"forall (i=1:{n}) a(i) = i",
             "b = a * 2",
             "c = a + b"]
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        tgt, src1, src2 = (draw(st.sampled_from(["a", "b", "c"]))
                           for _ in range(3))
        op = draw(st.sampled_from(["+", "-", "*"]))
        lines.append(f"{tgt} = {src1} {op} {src2}")
    if draw(st.booleans()):
        lines.append(f"a = cshift(b, {draw(st.integers(-2, 2))})")
    lines.append("end")
    return "\n".join(lines)


@settings(max_examples=25, deadline=None)
@given(array_programs())
def test_verifier_clean_survives_optimization(source):
    low = lower(source)
    assert verify_program(low.nir, low.env) == []
    opt = optimize(low, Options(), verify=True)  # hooks raise on failure
    assert verify_program(opt.nir, opt.env) == []


# ---------------------------------------------------------------------------
# Service and machine plumbing
# ---------------------------------------------------------------------------


class TestServiceVerify:
    def test_verified_compile_request(self):
        r = execute_request({"op": "compile", "source": SWE,
                             "verify": True})
        assert r["ok"]

    def test_verify_failure_is_structured(self, monkeypatch):
        import repro.transform.passes as pl

        orig = pl.schedule_phases
        monkeypatch.setattr(
            pl, "schedule_phases",
            lambda phases, report=None: list(
                reversed(orig(phases, report))))
        metrics = ServiceMetrics()
        r = execute_request({"op": "compile", "source": SWE,
                             "verify": True})
        metrics.observe(r)
        assert not r["ok"]
        assert r["error"]["type"] == "VerifyError"
        assert r["error"]["stage"] == "block/schedule"
        assert r["diagnostics"]
        assert all(d["code"] == "D402" for d in r["diagnostics"])
        snap = metrics.snapshot()
        assert snap["verify_failures"] == 1
        assert "verify failures 1" in metrics.summary()

    def test_unverified_compile_skips_the_suite(self, monkeypatch):
        import repro.transform.passes as pl

        orig = pl.schedule_phases
        monkeypatch.setattr(
            pl, "schedule_phases",
            lambda phases, report=None: list(
                reversed(orig(phases, report))))
        metrics = ServiceMetrics()
        r = execute_request({"op": "compile", "source": SMALL})
        metrics.observe(r)
        assert metrics.snapshot()["verify_failures"] == 0

    def test_machine_dispatch_check(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        exe = compile_source(SWE, cache=False)
        name, routine = next(iter(exe.routines.items()))
        routine.body.insert(
            0, Instr("faddv", (VReg(5), VReg(6), VReg(7))))
        with pytest.raises(VerifyError) as exc:
            exe.run(Machine(slicewise_model(64)))
        assert exc.value.stage == "machine/dispatch"
        assert any(d.code == "P501" for d in exc.value.diagnostics)
