"""Semantic lowering tests: the five semantic equations (section 4.1)."""

import pytest

from repro import nir
from repro.frontend.parser import parse_program
from repro.lowering import (
    CheckError,
    LoweringError,
    check_program,
    lower_program,
)
from repro.lowering.environment import build_environment

from .conftest import lower


def inner_moves(lowered):
    body = lowered.inner_body()
    if isinstance(body, nir.Sequentially):
        return [a for a in body.actions if isinstance(a, nir.Move)]
    return [body] if isinstance(body, nir.Move) else []


class TestEnvironment:
    def test_domains_get_greek_names(self):
        lowered = lower("INTEGER K(128,64), L(128)\nL = 6\nK = 5\nEND")
        assert set(lowered.domains) == {"alpha", "beta"}
        assert nir.extents(lowered.domains["alpha"]) == (128, 64)
        assert nir.extents(lowered.domains["beta"]) == (128,)

    def test_same_extents_share_domain(self):
        lowered = lower(
            "integer, array(8,8) :: a, b\na = 1\nb = 2\nend")
        assert len(lowered.domains) == 1

    def test_parameter_folding(self):
        lowered = lower("integer, parameter :: n = 4*16\n"
                        "integer, array(n) :: a\na = 0\nend")
        assert nir.extents(lowered.domains["alpha"]) == (64,)

    def test_parameter_depends_on_parameter(self):
        env = build_environment(parse_program(
            "integer, parameter :: n = 8\n"
            "integer, parameter :: m = n * 2\nend"))
        assert env.params["m"] == 16

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(LoweringError, match="duplicate"):
            lower("integer x\nreal x\nend")

    def test_nonconstant_extent_rejected(self):
        with pytest.raises(LoweringError, match="constant"):
            lower("integer n\ninteger a(n)\nend")

    def test_undeclared_identifier(self):
        with pytest.raises(LoweringError, match="undeclared"):
            lower("x = 1\nend")

    def test_scalar_initializer(self):
        lowered = lower("double precision :: t = 1.5\nend")
        decls = nir.bindings(lowered.env.nir_declarations())
        assert ("t", nir.FLOAT_64) in decls


class TestWholeArrayLowering:
    def test_figure8_shape(self):
        lowered = lower("INTEGER K(128,64), L(128)\nL = 6\nK = 2*K+5\nEND")
        text = nir.pretty(lowered.nir)
        assert "WITH_DOMAIN(('alpha'" in text
        assert "AVAR('l', everywhere)" in text
        assert "BINARY(Mul, SCALAR(integer_32,'2'), "\
            "AVAR('k', everywhere))" in text

    def test_scalar_assignment_is_svar_move(self):
        lowered = lower("integer x\nx = 3\nend")
        (move,) = inner_moves(lowered)
        assert isinstance(move.clauses[0].tgt, nir.SVar)

    def test_section_assignment_subscript(self):
        lowered = lower("INTEGER L(128)\nL(32:64) = 0\nEND")
        (move,) = inner_moves(lowered)
        tgt = move.clauses[0].tgt
        assert isinstance(tgt.field, nir.Subscript)
        assert isinstance(tgt.field.indices[0], nir.IndexRange)

    def test_full_colon_canonicalizes_to_everywhere(self):
        lowered = lower("INTEGER K(8,8)\nK(:,:) = 1\nEND")
        (move,) = inner_moves(lowered)
        assert isinstance(move.clauses[0].tgt.field, nir.Everywhere)

    def test_parameter_substituted_as_constant(self):
        lowered = lower("integer, parameter :: c = 5\ninteger x\n"
                        "x = c + 1\nend")
        (move,) = inner_moves(lowered)
        assert nir.int_const(5) in list(nir.values.walk(
            move.clauses[0].src))

    def test_assignment_to_parameter_rejected(self):
        with pytest.raises(LoweringError, match="PARAMETER"):
            lower("integer, parameter :: n = 4\nn = 5\nend")


class TestForallLowering:
    def test_figure7_form(self):
        lowered = lower("INTEGER, ARRAY(32,32) :: A\n"
                        "FORALL (i=1:32, j=1:32) A(i,j) = i+j\nEND")
        (move,) = inner_moves(lowered)
        clause = move.clauses[0]
        assert isinstance(clause.tgt.field, nir.Everywhere)
        lus = nir.collect(clause.src, nir.LocalUnder)
        assert {lu.dim for lu in lus} == {1, 2}
        assert all(lu.shape == nir.DomainRef("alpha") for lu in lus)

    def test_partial_region_keeps_subscript(self):
        lowered = lower("integer, array(32) :: a\n"
                        "forall (i=2:31) a(i) = i\nend")
        (move,) = inner_moves(lowered)
        assert isinstance(move.clauses[0].tgt.field, nir.Subscript)

    def test_permuted_triplets(self):
        lowered = lower("integer, array(8,4) :: a\n"
                        "forall (j=1:4, i=1:8) a(i,j) = i*10 + j\nend")
        (move,) = inner_moves(lowered)
        lus = {lu.dim for lu in nir.collect(move.clauses[0].src,
                                            nir.LocalUnder)}
        assert lus == {1, 2}

    def test_pinned_scalar_axis(self):
        lowered = lower(
            "integer, array(8,8) :: a\ninteger i\n"
            "do 1 i=1,8\nforall (j=1:8) a(i,j) = j\n1 continue\nend")
        assert lowered is not None  # lowers without error

    def test_duplicate_triplet_var_rejected(self):
        with pytest.raises(LoweringError):
            lower("integer, array(4,4) :: a\n"
                  "forall (i=1:4) a(i,i) = 1\nend")

    def test_unused_triplet_var_rejected(self):
        with pytest.raises(LoweringError, match="unused"):
            lower("integer, array(4) :: a\n"
                  "forall (i=1:4, j=1:4) a(i) = 1\nend")


class TestControlFlowLowering:
    def test_do_becomes_serial_shape(self):
        lowered = lower("integer a(8)\ninteger i\n"
                        "do 1 i=1,8\na(i) = i*i\n1 continue\nend")
        body = lowered.inner_body()
        assert isinstance(body, nir.Do)
        assert isinstance(body.shape, nir.SerialInterval)
        assert body.index_names == ("i",)

    def test_do_with_step(self):
        lowered = lower("integer a(9)\ninteger i\n"
                        "do i=1,9,3\na(i) = 1\nend do\nend")
        assert lowered.inner_body().shape.stride == 3

    def test_nonconstant_bounds_become_while(self):
        lowered = lower("integer a(8)\ninteger i, n\nn = 8\n"
                        "do i=1,n\na(i) = 1\nend do\nend")
        whiles = [x for x in nir.imperatives.walk(lowered.inner_body())
                  if isinstance(x, nir.While)]
        assert len(whiles) == 1

    def test_do_while_lowering(self):
        lowered = lower("integer x\nx = 0\n"
                        "do while (x < 5)\nx = x + 1\nend do\nend")
        whiles = [n for n in nir.imperatives.walk(lowered.inner_body())
                  if isinstance(n, nir.While)]
        assert len(whiles) == 1

    def test_if_chain_lowering(self):
        lowered = lower(
            "integer x\nx = 1\nif (x > 2) then\nx = 3\n"
            "else if (x > 0) then\nx = 4\nelse\nx = 5\nendif\nend")
        ifs = [n for n in nir.imperatives.walk(lowered.inner_body())
               if isinstance(n, nir.IfThenElse)]
        assert len(ifs) == 2  # chain of two

    def test_array_condition_rejected(self):
        with pytest.raises((nir.ShapeError, CheckError)):
            lower("integer a(4)\nif (a > 2) then\na = 1\nendif\nend")

    def test_print_becomes_call(self):
        lowered = lower("integer x\nx = 1\nprint *, x\nend")
        calls = [n for n in nir.imperatives.walk(lowered.inner_body())
                 if isinstance(n, nir.CallStmt)]
        assert calls and calls[0].name == "print"


class TestWhereLowering:
    def test_where_masks(self):
        lowered = lower("integer a(8), b(8)\n"
                        "where (b > 0)\na = 1\nelsewhere\na = 2\n"
                        "end where\nend")
        moves = inner_moves(lowered)
        assert len(moves) == 2
        assert not moves[0].clauses[0].is_unconditional
        assert isinstance(moves[1].clauses[0].mask, nir.Unary)

    def test_self_modifying_where_materializes_mask(self):
        lowered = lower("integer a(8)\n"
                        "where (a > 0)\na = a - 1\nelsewhere\na = 9\n"
                        "end where\nend")
        moves = inner_moves(lowered)
        # Mask hoist + two masked moves.
        assert len(moves) == 3
        assert isinstance(moves[1].clauses[0].mask, nir.AVar)

    def test_scalar_mask_rejected(self):
        with pytest.raises((nir.TypeError_, CheckError)):
            lower("integer a(4)\ninteger x\nx = 1\n"
                  "where (x > 0) a = 1\nend")


class TestIntrinsicLowering:
    def test_cshift_normalized_args(self):
        lowered = lower("integer v(8), z(8)\n"
                        "z = cshift(v, dim=1, shift=-1)\nend")
        (move,) = inner_moves(lowered)
        call = move.clauses[0].src
        assert call.name == "cshift"
        assert call.args[1] == nir.int_const(-1)
        assert call.args[2] == nir.int_const(1)

    def test_cshift_default_dim(self):
        lowered = lower("integer v(8), z(8)\nz = cshift(v, 2)\nend")
        (move,) = inner_moves(lowered)
        assert move.clauses[0].src.args[2] == nir.int_const(1)

    def test_sum_reduction(self):
        lowered = lower("integer a(8)\ninteger s\na = 1\ns = sum(a)\nend")
        moves = inner_moves(lowered)
        assert moves[-1].clauses[0].src.name == "sum"

    def test_elemental_unary(self):
        lowered = lower("double precision x\nx = sin(1.0d0)\nend")
        (move,) = inner_moves(lowered)
        assert isinstance(move.clauses[0].src, nir.Unary)
        assert move.clauses[0].src.op is nir.UnOp.SIN

    def test_min_multiarg_folds_left(self):
        lowered = lower("integer x\nx = min(1, 2, 3)\nend")
        (move,) = inner_moves(lowered)
        src = move.clauses[0].src
        assert isinstance(src, nir.Binary) and src.op is nir.BinOp.MIN
        assert isinstance(src.left, nir.Binary)

    def test_size_inquiry_folds(self):
        lowered = lower("integer a(6,7)\ninteger n\nn = size(a)\nend")
        (move,) = inner_moves(lowered)
        assert move.clauses[0].src == nir.int_const(42)

    def test_merge_stays_elemental(self):
        lowered = lower("integer a(4), b(4), c(4)\n"
                        "c = merge(a, b, a > b)\nend")
        (move,) = inner_moves(lowered)
        assert move.clauses[0].src.name == "merge"

    def test_unknown_function_rejected(self):
        with pytest.raises(LoweringError, match="unknown"):
            lower("integer x\nx = frobnicate(1)\nend")


class TestShapeChecking:
    def test_conforming_ok(self):
        lower("integer a(8), b(8)\na = b + 1\nend")

    def test_nonconforming_rejected(self):
        with pytest.raises((nir.ShapeError, CheckError)):
            lower("integer a(8), b(9)\na = b\nend")

    def test_section_conformance(self):
        lower("integer a(10)\na(1:5) = a(6:10)\nend")

    def test_section_mismatch_rejected(self):
        with pytest.raises((nir.ShapeError, CheckError)):
            lower("integer a(10)\na(1:5) = a(6:9)\nend")

    def test_array_to_scalar_rejected(self):
        with pytest.raises((nir.ShapeError, CheckError)):
            lower("integer a(4)\ninteger x\nx = a\nend")

    def test_scalar_broadcast_ok(self):
        lower("integer a(4)\ninteger x\nx = 2\na = x\nend")

    def test_rank_mismatch_subscripts(self):
        with pytest.raises(nir.ShapeError):
            lower("integer a(4,4)\na(1) = 0\nend")

    def test_checker_runs_on_lowered_program(self):
        lowered = lower_program(parse_program(
            "integer a(4)\na = 1\nend"))
        check_program(lowered.nir, lowered.env)
